// Triple-modular-redundancy (TMR) voting with spin-wave majority gates —
// the error-masking application the paper's introduction motivates ("most
// of the error detection and correction schemes rely on n-input
// majorities").
//
// Builds a TMR voter per output bit of a redundant 4-bit adder, injects
// single-module faults, and shows the MAJ3 gates mask every one of them;
// then builds a 9-input majority from a tree of FO2 MAJ3 gates and measures
// its fault-masking statistics under random multi-bit faults.
//
//   $ ./majority_voter
#include <iostream>

#include "core/circuit.h"
#include "core/logic.h"
#include "io/table.h"
#include "math/constants.h"
#include "math/rng.h"

using namespace swsim;
using swsim::io::Table;

namespace {

// A software model of one protected module: a 4-bit adder that may have a
// stuck output bit.
struct Module {
  int stuck_bit = -1;  // -1: healthy
  bool stuck_value = false;

  std::size_t run(std::size_t a, std::size_t b) const {
    std::size_t r = (a + b) & 0x1F;
    if (stuck_bit >= 0) {
      r &= ~(std::size_t{1} << stuck_bit);
      if (stuck_value) r |= std::size_t{1} << stuck_bit;
    }
    return r;
  }
};

}  // namespace

int main() {
  std::cout << "=== TMR voting with FO2 spin-wave MAJ3 gates ===\n\n";

  // 1. Per-bit TMR voter circuit: 5 voted output bits.
  core::Circuit circuit(/*max_fanout=*/2);
  std::vector<core::Signal> m0, m1, m2, voted;
  for (int bit = 0; bit < 5; ++bit) {
    m0.push_back(circuit.input("m0b" + std::to_string(bit)));
    m1.push_back(circuit.input("m1b" + std::to_string(bit)));
    m2.push_back(circuit.input("m2b" + std::to_string(bit)));
  }
  for (int bit = 0; bit < 5; ++bit) {
    const core::Signal v = core::build_tmr_voter(
        circuit, m0[static_cast<std::size_t>(bit)],
        m1[static_cast<std::size_t>(bit)], m2[static_cast<std::size_t>(bit)]);
    circuit.mark_output(v, "v" + std::to_string(bit));
    voted.push_back(v);
  }

  auto vote = [&](std::size_t r0, std::size_t r1, std::size_t r2) {
    // Inputs were created interleaved (m0, m1, m2 per bit): pack to match.
    std::vector<bool> in;
    for (int bit = 0; bit < 5; ++bit) {
      in.push_back((r0 >> bit) & 1);
      in.push_back((r1 >> bit) & 1);
      in.push_back((r2 >> bit) & 1);
    }
    const auto out = circuit.evaluate(in);
    std::size_t r = 0;
    for (int bit = 0; bit < 5; ++bit) {
      r |= static_cast<std::size_t>(out[static_cast<std::size_t>(bit)]) << bit;
    }
    return r;
  };

  std::cout << "1. single-module fault injection (stuck output bits)\n\n";
  Table table({"faulty module", "stuck bit", "stuck at", "masked ops",
               "total ops", "ok"});
  bool all_masked = true;
  for (int victim = 0; victim < 3; ++victim) {
    for (int bit : {0, 2, 4}) {
      for (bool value : {false, true}) {
        Module mods[3];
        mods[victim].stuck_bit = bit;
        mods[victim].stuck_value = value;
        std::size_t masked = 0, total = 0;
        for (std::size_t a = 0; a < 16; a += 3) {
          for (std::size_t b = 0; b < 16; b += 3) {
            const std::size_t truth = (a + b) & 0x1F;
            const std::size_t v =
                vote(mods[0].run(a, b), mods[1].run(a, b), mods[2].run(a, b));
            if (v == truth) ++masked;
            ++total;
          }
        }
        all_masked = all_masked && masked == total;
        table.add_row({std::to_string(victim), std::to_string(bit),
                       value ? "1" : "0", std::to_string(masked),
                       std::to_string(total),
                       masked == total ? "yes" : "NO"});
      }
    }
  }
  std::cout << table.str() << '\n';

  // 2. 9-input majority tree from FO2 MAJ3 gates: MAJ9 approximated by the
  //    classic two-level MAJ3 network MAJ3(MAJ3(g1), MAJ3(g2), MAJ3(g3)).
  std::cout << "2. 9-input majority tree (two MAJ3 levels)\n\n";
  core::Circuit tree(/*max_fanout=*/2);
  std::vector<core::Signal> leaves;
  for (int i = 0; i < 9; ++i) {
    leaves.push_back(tree.input("x" + std::to_string(i)));
  }
  const core::Signal g1 = tree.add_maj3(leaves[0], leaves[1], leaves[2]);
  const core::Signal g2 = tree.add_maj3(leaves[3], leaves[4], leaves[5]);
  const core::Signal g3 = tree.add_maj3(leaves[6], leaves[7], leaves[8]);
  tree.mark_output(tree.add_maj3(g1, g2, g3), "maj9");

  // Exhaustive: how often does the tree agree with true 9-input majority?
  std::size_t agree = 0, total = 0, masked_le2 = 0, cases_le2 = 0;
  for (std::size_t pattern = 0; pattern < 512; ++pattern) {
    std::vector<bool> in(9);
    int ones = 0;
    for (int i = 0; i < 9; ++i) {
      in[static_cast<std::size_t>(i)] = (pattern >> i) & 1;
      ones += (pattern >> i) & 1;
    }
    const bool tree_out = tree.evaluate(in)[0];
    const bool true_maj = ones > 4;
    if (tree_out == true_maj) ++agree;
    ++total;
    // The fault-masking guarantee: with <= 2 faulty inputs against a
    // unanimous background, the tree always votes correctly.
    if (ones <= 2 || ones >= 7) {
      ++cases_le2;
      if (tree_out == (ones >= 7)) ++masked_le2;
    }
  }
  std::cout << "  agreement with exact MAJ9:      " << agree << "/" << total
            << " (the 2-level tree is a well-known approximation)\n"
            << "  <=2 faults always outvoted:     " << masked_le2 << "/"
            << cases_le2 << '\n';

  const core::CircuitCost tree_cost = tree.cost();
  std::cout << "  tree cost: " << tree_cost.maj_gates << " MAJ3 gates, "
            << math::to_aj(tree_cost.energy) << " aJ/op, "
            << math::to_ns(tree_cost.delay) << " ns\n";

  const bool ok = all_masked && masked_le2 == cases_le2;
  std::cout << "\nmajority_voter " << (ok ? "PASSED" : "FAILED") << '\n';
  return ok ? 0 : 1;
}
