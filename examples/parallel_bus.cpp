// Frequency-division-multiplexed majority bus: n majorities evaluated
// simultaneously on ONE triangle structure (the authors' companion concept,
// ref. [9], realized here as a library extension).
//
//   $ ./parallel_bus [channels]    (default: 4)
#include <cstdlib>
#include <iostream>

#include "core/logic.h"
#include "core/parallel_bus.h"
#include "io/table.h"
#include "math/constants.h"
#include "math/rng.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

int main(int argc, char** argv) {
  const std::size_t channels =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  if (channels == 0 || channels > 8) {
    std::cerr << "channels must be in [1, 8]\n";
    return 1;
  }

  std::cout << "=== " << channels
            << "-channel FDM spin-wave majority bus ===\n\n";

  core::ParallelBusConfig cfg;
  cfg.channels = channels;
  cfg.params.width = nm(10);  // single-mode for every channel
  // Compact geometry: short wavelengths attenuate fast, so high channels
  // need short paths (the physical channel-count limit).
  cfg.params.n_arm = 2;
  cfg.params.n_axis_half = 1;
  cfg.params.n_feed = 1;
  core::ParallelMajBus bus(cfg);

  std::cout << "channel plan (one waveguide structure, lambda_0 = "
            << to_nm(cfg.params.wavelength) << " nm):\n\n";
  Table plan({"channel", "lambda (nm)", "f (GHz)"});
  for (std::size_t c = 0; c < bus.channels(); ++c) {
    plan.add_row({std::to_string(c), Table::num(to_nm(bus.channel_wavelength(c)), 2),
                  Table::num(to_ghz(bus.channel_frequency(c)), 1)});
  }
  std::cout << plan.str() << '\n';

  // Random words on every channel, a few rounds.
  Pcg32 rng(2026);
  Table results({"round", "channel", "word (I1 I2 I3)", "MAJ", "detected",
                 "ok"});
  bool all_ok = true;
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<bool>> words;
    for (std::size_t c = 0; c < bus.channels(); ++c) {
      words.push_back({rng.bounded(2) == 1, rng.bounded(2) == 1,
                       rng.bounded(2) == 1});
    }
    const core::BusResult r = bus.evaluate(words);
    all_ok = all_ok && r.all_correct;
    for (std::size_t c = 0; c < r.channels.size(); ++c) {
      const auto& w = words[c];
      const bool expected = core::maj3(w[0], w[1], w[2]);
      results.add_row(
          {std::to_string(round), std::to_string(c),
           std::string(w[0] ? "1 " : "0 ") + (w[1] ? "1 " : "0 ") +
               (w[2] ? "1" : "0"),
           expected ? "1" : "0",
           r.channels[c].outputs.o1.logic ? "1" : "0",
           r.channels[c].outputs.o1.logic == expected ? "yes" : "NO"});
    }
  }
  std::cout << results.str() << '\n'
            << "throughput: " << channels
            << " majority evaluations per gate delay on one structure; "
            << bus.excitation_tones() << " excitation tones per evaluation\n"
            << "\nparallel_bus " << (all_ok ? "PASSED" : "FAILED") << '\n';
  return all_ok ? 0 : 1;
}
