// Quickstart: build the paper's fan-out-of-2 triangle gates and validate
// their truth tables (Tables I and II of the paper).
//
//   $ ./quickstart
//
// Walks through: device geometry from the paper's dimensions, the FVSW
// dispersion fixing the operating frequency, truth-table validation with
// phase detection (MAJ3) and threshold detection (XOR), and the energy/delay
// cost under the paper's ME-cell model.
#include <iostream>

#include "core/derived_gates.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "math/constants.h"
#include "perf/gate_cost.h"

int main() {
  using namespace swsim;

  std::cout << "=== swsim quickstart: triangle FO2 spin-wave gates ===\n\n";

  // 1. The paper's device: lambda = 55 nm on a 50 nm wide, 1 nm thick
  //    Fe60Co20B20 waveguide with PMA.
  core::TriangleMajGate maj = core::TriangleMajGate::paper_device();
  const auto& params = maj.layout().params();
  std::cout << "geometry: d1 = " << math::to_nm(params.d1())
            << " nm, d3 = " << math::to_nm(params.d3())
            << " nm, d4 = " << math::to_nm(params.d4())
            << " nm, d2 (axis) = " << math::to_nm(params.d2())
            << " nm\n";

  const double k = wavenet::Dispersion::k_of_lambda(params.wavelength);
  std::cout << "dispersion: f(" << math::to_nm(params.wavelength)
            << " nm) = " << math::to_ghz(maj.dispersion().frequency(k))
            << " GHz, v_g = " << maj.dispersion().group_velocity(k)
            << " m/s, L_att = "
            << math::to_nm(maj.dispersion().attenuation_length(k)) / 1000.0
            << " um\n\n";

  // 2. Majority gate truth table (phase detection).
  auto maj_report = core::validate_gate(maj);
  std::cout << core::format_report(maj_report) << '\n';

  // 3. XOR gate truth table (threshold detection at 0.5).
  core::TriangleXorGate xg = core::TriangleXorGate::paper_device();
  auto xor_report = core::validate_gate(xg);
  std::cout << core::format_report(xor_report) << '\n';

  // 4. Derived gates: MAJ with I3 as a control input.
  for (auto fn : {core::TwoInputFunction::kAnd, core::TwoInputFunction::kOr,
                  core::TwoInputFunction::kNand, core::TwoInputFunction::kNor}) {
    core::ControlledMajGate g = core::ControlledMajGate::paper_device(fn);
    auto report = core::validate_gate(g);
    std::cout << g.name() << ": " << (report.all_pass ? "PASS" : "FAIL")
              << '\n';
  }

  // 5. Cost under the paper's ME-cell model.
  const auto maj_cost = perf::SwGateCost::triangle_maj3();
  const auto xor_cost = perf::SwGateCost::triangle_xor();
  std::cout << "\nenergy: MAJ3 = " << math::to_aj(maj_cost.energy())
            << " aJ, XOR = " << math::to_aj(xor_cost.energy())
            << " aJ; delay = " << math::to_ns(maj_cost.delay()) << " ns\n";

  const bool ok = maj_report.all_pass && xor_report.all_pass;
  std::cout << "\nquickstart " << (ok ? "PASSED" : "FAILED") << '\n';
  return ok ? 0 : 1;
}
