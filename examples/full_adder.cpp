// Full adder and ripple-carry adder built from the paper's FO2 gates.
//
// The carry of a full adder is MAJ3(a, b, cin) — the paper's motivating
// primitive — and the sum is a ^ b ^ cin from two XOR stages. The fan-out
// of 2 matters structurally: each carry signal feeds exactly two loads in
// the next stage (its XOR and its MAJ), so the FO2 gate drives a ripple
// chain with no replication and no repeaters.
//
//   $ ./full_adder [bits]     (default: 8)
#include <cstdlib>
#include <iostream>

#include "core/circuit.h"
#include "core/logic.h"
#include "core/triangle_gate.h"
#include "io/table.h"
#include "math/constants.h"

using namespace swsim;
using swsim::io::Table;

int main(int argc, char** argv) {
  const std::size_t bits =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  if (bits == 0 || bits > 20) {
    std::cerr << "bits must be in [1, 20]\n";
    return 1;
  }

  std::cout << "=== " << bits << "-bit ripple-carry adder from FO2 spin-wave "
            << "gates ===\n\n";

  // 1. Device-level check: one full adder evaluated gate-by-gate on the
  //    analytical spin-wave backend (every gate is a physical simulation).
  std::cout << "1. one full adder, gate-by-gate on the wave backend\n\n";
  core::TriangleMajGate maj = core::TriangleMajGate::paper_device();
  core::TriangleXorGate x1 = core::TriangleXorGate::paper_device();
  core::TriangleXorGate x2 = core::TriangleXorGate::paper_device();

  Table fa_table({"a", "b", "cin", "sum", "cout", "ok"});
  bool fa_ok = true;
  for (const auto& p : core::all_input_patterns(3)) {
    const bool a = p[0], b = p[1], cin = p[2];
    // sum = (a ^ b) ^ cin; each XOR's two outputs would feed the next
    // stage and a test port in hardware — we use output O1 here.
    const bool ab = x1.evaluate({a, b}).o1.logic;
    const bool sum = x2.evaluate({ab, cin}).o1.logic;
    const bool cout = maj.evaluate({a, b, cin}).o1.logic;
    const int total = static_cast<int>(a) + b + cin;
    const bool ok = sum == ((total & 1) != 0) && cout == (total >= 2);
    fa_ok = fa_ok && ok;
    fa_table.add_row({a ? "1" : "0", b ? "1" : "0", cin ? "1" : "0",
                      sum ? "1" : "0", cout ? "1" : "0", ok ? "yes" : "NO"});
  }
  std::cout << fa_table.str() << '\n';

  // 2. Word-level adder on the netlist model, verified exhaustively (small
  //    widths) or on a corner/sample sweep.
  std::cout << "2. " << bits << "-bit ripple-carry netlist\n\n";
  core::Circuit circuit(/*max_fanout=*/2);
  const core::RippleAdderSignals adder = core::build_ripple_adder(circuit, bits);
  for (std::size_t i = 0; i < bits; ++i) {
    circuit.mark_output(adder.sum[i], "s" + std::to_string(i));
  }
  circuit.mark_output(adder.cout, "cout");

  auto add = [&](std::size_t a, std::size_t b) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < bits; ++i) in.push_back((a >> i) & 1);
    for (std::size_t i = 0; i < bits; ++i) in.push_back((b >> i) & 1);
    const auto out = circuit.evaluate(in);
    std::size_t r = 0;
    for (std::size_t i = 0; i <= bits; ++i) {
      r |= static_cast<std::size_t>(out[i]) << i;
    }
    return r;
  };

  const std::size_t limit = std::size_t{1} << bits;
  std::size_t checked = 0, wrong = 0;
  if (bits <= 6) {
    for (std::size_t a = 0; a < limit; ++a) {
      for (std::size_t b = 0; b < limit; ++b) {
        if (add(a, b) != a + b) ++wrong;
        ++checked;
      }
    }
  } else {
    // Corners plus a deterministic stride sample.
    const std::size_t samples[] = {0, 1, 2, limit / 2, limit - 2, limit - 1};
    for (std::size_t a : samples) {
      for (std::size_t b : samples) {
        if (add(a, b) != a + b) ++wrong;
        ++checked;
      }
    }
    for (std::size_t a = 3; a < limit; a += limit / 97 + 1) {
      for (std::size_t b = 5; b < limit; b += limit / 89 + 1) {
        if (add(a, b) != a + b) ++wrong;
        ++checked;
      }
    }
  }
  std::cout << "verified " << checked << " operand pairs, " << wrong
            << " wrong\n\n";

  // 3. Cost roll-up under the paper's ME-cell model.
  const core::CircuitCost cost = circuit.cost();
  std::cout << "3. cost (ME-cell model of Table III)\n\n"
            << "  MAJ gates:        " << cost.maj_gates << '\n'
            << "  XOR gates:        " << cost.xor_gates << '\n'
            << "  repeaters:        " << cost.repeaters
            << "  (FO2 suffices for the carry chain)\n"
            << "  excitation cells: " << cost.excitation_cells << '\n'
            << "  energy/op:        " << math::to_aj(cost.energy) << " aJ\n"
            << "  critical path:    " << cost.depth << " stages = "
            << math::to_ns(cost.delay) << " ns\n";

  const bool ok = fa_ok && wrong == 0;
  std::cout << "\nfull_adder " << (ok ? "PASSED" : "FAILED") << '\n';
  return ok ? 0 : 1;
}
