// End-to-end micromagnetic demonstration: watch a spin-wave XOR evaluate.
//
// Runs the reduced-scale triangle XOR through the full LLG solver for two
// input patterns (in-phase and antiphase), printing ASCII frames of the
// m_x precession map as the waves launch, merge at the triangle vertex,
// and either flood the outputs (logic 0) or cancel (logic 1). This is the
// library's "hello physics" program.
//
//   $ ./micromagnetic_demo
#include <iostream>

#include "core/micromag_gate.h"
#include "io/render.h"
#include "math/constants.h"

using namespace swsim;
using namespace swsim::math;

int main() {
  std::cout << "=== micromagnetic spin-wave XOR, live ===\n\n";

  core::MicromagGateConfig cfg;
  cfg.params = geom::TriangleGateParams::reduced_xor(nm(50), nm(20));
  core::MicromagTriangleGate gate(cfg);

  std::cout << "device: bowtie XOR, lambda = " << to_nm(cfg.params.wavelength)
            << " nm, width = " << to_nm(cfg.params.width) << " nm, f = "
            << to_ghz(gate.drive_frequency()) << " GHz\n"
            << "grid: " << gate.grid().nx() << " x " << gate.grid().ny()
            << " cells of " << to_nm(cfg.cell_size) << " nm, "
            << gate.body_mask().count() << " magnetic cells\n"
            << "simulated time per run: " << to_ns(gate.simulated_duration())
            << " ns\n\n";

  struct Case {
    bool i1, i2;
    const char* label;
  };
  for (const Case& c : {Case{false, false, "{0,0}: in-phase -> constructive "
                                           "-> strong output (logic 0)"},
                        Case{true, false, "{1,0}: antiphase -> destructive "
                                          "-> suppressed output (logic 1)"}}) {
    std::cout << "inputs " << c.label << "\n";
    const auto ev = gate.evaluate_full({c.i1, c.i2});
    std::cout << io::ascii_map(ev.snapshot_mx, 2e-4, &ev.body, 0, 120) << '\n'
              << "  O1: normalized " << ev.outputs.normalized_o1 << " -> logic "
              << ev.outputs.o1.logic << "   O2: normalized "
              << ev.outputs.normalized_o2 << " -> logic "
              << ev.outputs.o2.logic << "\n\n";
  }

  std::cout << "threshold detection at 0.5 of the reference amplitude "
               "(paper Sec. III-B / Table II)\n";
  return 0;
}
