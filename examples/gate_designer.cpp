// Parametric gate designer: pick an operating wavelength (or frequency) and
// a material, get a manufacturable triangle-gate design back — dimensions
// per the paper's rules, the dispersion operating point, attenuation
// budget, a functional verification, and the energy/delay cost.
//
//   $ ./gate_designer                 (paper design: FeCoB, 55 nm)
//   $ ./gate_designer 80              (lambda in nm)
//   $ ./gate_designer 80 yig          (material: fecob | yig | permalloy)
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/triangle_gate.h"
#include "core/validator.h"
#include "io/table.h"
#include "math/constants.h"
#include "perf/gate_cost.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

int main(int argc, char** argv) {
  const double lambda_nm = argc > 1 ? std::atof(argv[1]) : 55.0;
  const std::string mat_name = argc > 2 ? argv[2] : "fecob";

  mag::Material material;
  double applied = 0.0;
  if (mat_name == "fecob") {
    material = mag::Material::fecob();
  } else if (mat_name == "yig") {
    material = mag::Material::yig();
    // YIG has no PMA: bias out of plane with an external field.
    applied = 1.5 * material.ms;
  } else if (mat_name == "permalloy") {
    material = mag::Material::permalloy();
    applied = 1.5 * material.ms;
  } else {
    std::cerr << "unknown material '" << mat_name
              << "' (use fecob | yig | permalloy)\n";
    return 1;
  }
  if (!(lambda_nm >= 10.0 && lambda_nm <= 1000.0)) {
    std::cerr << "lambda must be in [10, 1000] nm\n";
    return 1;
  }

  std::cout << "=== triangle FO2 gate designer ===\n\n"
            << "material: " << material.name << " (Ms = " << material.ms / 1e3
            << " kA/m, Aex = " << material.aex * 1e12
            << " pJ/m, alpha = " << material.alpha << ")\n";
  if (applied > 0.0) {
    std::cout << "bias field: " << applied / 1e3
              << " kA/m out of plane (no PMA in this material)\n";
  }

  const double thickness = nm(1);
  wavenet::Dispersion disp(material, thickness, applied);
  const double lambda = nm(lambda_nm);
  const double k = wavenet::Dispersion::k_of_lambda(lambda);
  const double f = disp.frequency(k);
  const double vg = disp.group_velocity(k);
  const double latt = disp.attenuation_length(k);

  std::cout << "\noperating point:\n"
            << "  lambda = " << lambda_nm << " nm -> f = " << to_ghz(f)
            << " GHz, v_g = " << vg << " m/s, L_att = " << latt * 1e6
            << " um\n";

  // Dimension synthesis per Sec. III-A: the paper's multiples, scaled.
  geom::TriangleGateParams params = geom::TriangleGateParams::paper_maj3();
  params.wavelength = lambda;
  params.width = 0.4 * lambda;  // single-mode: width < lambda/2

  Table dims({"dimension", "rule", "value (nm)"});
  dims.add_row({"width", "w < lambda/2 (single transverse mode)",
                Table::num(to_nm(params.width), 1)});
  dims.add_row({"d1 (arms)", "n1 * lambda, n1 = 6",
                Table::num(to_nm(params.d1()), 1)});
  dims.add_row({"d2 (axis)", "n2 * lambda, n2 = 16 (I3 at midpoint)",
                Table::num(to_nm(params.d2()), 1)});
  dims.add_row({"d3 (taps)", "n3 * lambda, n3 = 4",
                Table::num(to_nm(params.d3()), 1)});
  dims.add_row({"d4 (detectors)", "n4 * lambda (n4 + 1/2 inverts), n4 = 1",
                Table::num(to_nm(params.d4()), 1)});
  std::cout << '\n' << dims.str();

  const double longest =
      params.d1() + params.d2() + params.d3() + params.d4();
  std::cout << "\nattenuation budget: longest path " << to_nm(longest) / 1000
            << " um = " << Table::num(longest / latt, 2)
            << " L_att -> amplitude retained "
            << Table::num(100 * std::exp(-longest / latt), 1) << "%\n";
  if (longest > 1.5 * latt) {
    std::cout << "WARNING: path exceeds 1.5 attenuation lengths - consider "
                 "a repeater (ref. [37]) or smaller multiples\n";
  }

  // Functional verification on the wave-network backend.
  core::TriangleGateConfig cfg;
  cfg.params = params;
  cfg.material = material;
  // Fold the bias field into the dispersion via a custom material proxy is
  // not needed: the gate uses its own Dispersion; rebuild it to match.
  bool pass = false;
  std::string note;
  try {
    if (applied > 0.0) {
      // The gate's internal dispersion assumes PMA-only; emulate the bias
      // by boosting Ku to produce the same internal field.
      cfg.material.ku =
          0.5 * kMu0 * cfg.material.ms *
          (cfg.material.ms + applied + disp.internal_field() -
           cfg.material.internal_field(applied));
    }
    core::TriangleMajGate maj(cfg);
    auto report = core::validate_gate(maj);
    pass = report.all_pass;
    std::cout << "\nverification (MAJ3 truth table on the wave backend): "
              << (pass ? "PASS" : "FAIL") << ", worst margin "
              << Table::num(report.min_margin, 3) << " rad\n";
  } catch (const std::exception& e) {
    note = e.what();
    std::cout << "\nverification failed to construct: " << note << '\n';
  }

  const auto cost = perf::SwGateCost::triangle_maj3();
  std::cout << "cost (ME-cell model): " << to_aj(cost.energy())
            << " aJ/op, " << to_ns(cost.delay()) << " ns, "
            << cost.total_cells() << " transducers\n";
  return pass ? 0 : 1;
}
