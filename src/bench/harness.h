// Shared bench driver: every bench/bench_*.cpp target runs through this
// harness so that all of them agree on warmup/repeat policy, robust
// statistics (min / median / MAD over steady-clock samples), and a
// machine-readable artifact — BENCH_<name>.json, schema "swsim.bench/1" —
// written next to the bench's existing CSV output.
//
// A bench main looks like:
//
//   int main(int argc, char** argv) {
//     swsim::bench::Harness h("fig1_dispersion", &argc, argv);
//     h.time_case("fdtd_sweep", [&] { run_sweep(); });
//     h.add_scalar("peak_frequency_ghz", f);
//     ... existing console tables / CSV writers, unchanged ...
//     return h.finish() ? 0 : 1;
//   }
//
// The harness strips its own flags from argc/argv before the bench sees
// them (so bench_solver_perf can still forward the rest to
// benchmark::Initialize):
//
//   --quick          fewer repeats + benches may skip their slow half
//   --repeats N      timing samples per case          (default 5, quick 3)
//   --warmup N       untimed runs before sampling     (default 1)
//   --out-dir DIR    where BENCH_<name>.json is written (default ".")
//
// The JSON also records an environment fingerprint (git SHA, compiler,
// flags, build type, core count) so `swsim bench diff` can warn when two
// runs are not comparable, plus an optional embedded obs::RunProfile.
//
// The second half of this header is the *reader*: parse_bench_json() and
// compare_benches(), the noise-aware comparison shared by `swsim bench
// diff`/`gate` and the unit tests. A case regresses when
//
//   cur.median - base.median > max(rel_tolerance * base.median,
//                                  mad_k * (base.mad + cur.mad))
//
// i.e. the slowdown must clear both a relative floor and the combined
// measurement noise; improvements are the symmetric condition.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace swsim::obs {
class JsonValue;
}

namespace swsim::bench {

// ---------------------------------------------------------------------------
// Robust sample statistics.

struct SampleStats {
  double min = 0.0;
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation from the median
};

// Median/MAD of `samples` (empty input -> all zeros; input is copied, not
// reordered). Median of an even count is the mean of the middle pair.
SampleStats compute_stats(const std::vector<double>& samples);

// ---------------------------------------------------------------------------
// Environment fingerprint (values baked in at configure time, cores at run
// time).

struct EnvInfo {
  std::string git_sha;
  std::string compiler;    // "GNU 13.2.0"
  std::string flags;       // CMAKE_CXX_FLAGS_<BUILDTYPE>
  std::string build_type;  // "Release", ...
  unsigned cores = 0;
};

EnvInfo current_env();

// ---------------------------------------------------------------------------
// The writer.

class Harness {
 public:
  static constexpr const char* kSchema = "swsim.bench/1";

  // Parses and REMOVES harness flags from argc/argv. Throws
  // std::invalid_argument on a malformed flag value.
  Harness(std::string name, int* argc, char** argv);

  bool quick() const { return quick_; }
  int repeats() const { return repeats_; }
  int warmup() const { return warmup_; }
  const std::string& out_dir() const { return out_dir_; }

  // Times `fn` warmup()+repeats() times (first warmup() runs untimed) on
  // the steady clock and records the samples in seconds. When
  // `items_per_iter` > 0 an items-per-second figure (items / median
  // seconds) is derived for throughput display.
  void time_case(const std::string& case_name, const std::function<void()>& fn,
                 double items_per_iter = 0.0);

  // Records externally measured samples (unit is free-form, e.g. "s").
  // Use for one-shot heavy passes where re-running is too expensive:
  // a single sample gets mad = 0 and median = min = that sample.
  void record_samples(const std::string& case_name, const std::string& unit,
                      const std::vector<double>& samples,
                      double items_per_second = 0.0);

  // Records a named scalar result (figure-of-merit, speedup, count...).
  void add_scalar(const std::string& name, double value);

  // Embeds a pre-serialized obs::RunProfile document ("profile" key).
  void set_profile_json(std::string profile_json);

  // Serializes the run (schema swsim.bench/1).
  std::string to_json() const;

  // Writes to_json() to <out_dir>/BENCH_<name>.json and reports the path
  // on stdout. Returns false (message on stderr) on I/O failure.
  bool finish() const;

  const std::string& name() const { return name_; }

  struct Case {
    std::string unit;
    int warmup = 0;
    std::vector<double> samples;
    SampleStats stats;
    double items_per_second = 0.0;
  };

  // Cases recorded so far, in insertion order — lets a bench derive
  // scalars (speedups, ratios) from already-timed cases.
  const std::vector<std::pair<std::string, Case>>& cases() const {
    return cases_;
  }

 private:
  std::string name_;
  bool quick_ = false;
  int repeats_ = 5;
  int warmup_ = 1;
  std::string out_dir_ = ".";
  std::vector<std::pair<std::string, Case>> cases_;  // insertion order
  std::vector<std::pair<std::string, double>> scalars_;
  std::string profile_json_;
};

// Keeps a value alive past the optimizer so timed kernels are not deleted.
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// ---------------------------------------------------------------------------
// The reader + comparison (shared by `swsim bench diff/gate` and tests).

struct CaseStats {
  std::string unit;
  double min = 0.0;
  double median = 0.0;
  double mad = 0.0;
  double items_per_second = 0.0;
};

struct BenchDoc {
  std::string name;
  bool quick = false;
  EnvInfo env;
  std::map<std::string, CaseStats> cases;
  std::map<std::string, double> scalars;
};

// Throws std::runtime_error naming the problem on a wrong schema or a
// structurally invalid document.
BenchDoc parse_bench_json(const obs::JsonValue& root);
// Convenience: read + parse_json + parse_bench_json. Throws on I/O and
// parse errors alike ("<path>: <reason>").
BenchDoc load_bench_file(const std::string& path);

struct CompareOptions {
  double rel_tolerance = 0.05;  // 5% relative floor
  double mad_k = 3.0;           // noise multiplier on base.mad + cur.mad
};

enum class Verdict { kOk, kRegression, kImprovement, kNew, kMissing };

struct CaseDelta {
  std::string name;
  Verdict verdict = Verdict::kOk;
  double base_median = 0.0;
  double cur_median = 0.0;
  double threshold = 0.0;  // the slowdown (seconds) that would trip kRegression
};

struct CompareResult {
  std::vector<CaseDelta> deltas;  // name-sorted
  int regressions = 0;
  int improvements = 0;
};

// Case-by-case comparison of `cur` against `base` medians (time units:
// lower is better). Cases present on only one side are kNew/kMissing and
// never count as regressions.
CompareResult compare_benches(const BenchDoc& base, const BenchDoc& cur,
                              const CompareOptions& opts = {});

const char* verdict_name(Verdict v);

// ---------------------------------------------------------------------------
// Registry of bench targets, for `swsim bench list/run` (names match the
// bench_<name> binaries; slow ones are skipped by `run --quick-only`).

struct BenchTarget {
  const char* name;    // "fig1_dispersion" -> binary bench_fig1_dispersion
  const char* output;  // primary CSV the bench writes, for the docs table
  bool heavy;          // minutes-scale at full fidelity
};

const std::vector<BenchTarget>& bench_registry();

}  // namespace swsim::bench
