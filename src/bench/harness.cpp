#include "bench/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json.h"

namespace swsim::bench {

namespace {

// Same compact rendering as the obs dumps; NaN/inf clamp to 0 to keep the
// document valid JSON.
std::string num_str(double v) {
  if (!std::isfinite(v)) v = 0.0;
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

double number_field(const obs::JsonValue& obj, const std::string& key) {
  const obs::JsonValue* v = obj.find(key);
  if (!v || !v->is_number()) {
    throw std::runtime_error("bench json: missing numeric field \"" + key +
                             "\"");
  }
  return v->number();
}

std::string string_field(const obs::JsonValue& obj, const std::string& key) {
  const obs::JsonValue* v = obj.find(key);
  if (!v || !v->is_string()) {
    throw std::runtime_error("bench json: missing string field \"" + key +
                             "\"");
  }
  return v->str();
}

}  // namespace

SampleStats compute_stats(const std::vector<double>& samples) {
  SampleStats s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  const auto median_of = [](std::vector<double>& v) {
    const std::size_t n = v.size();
    std::sort(v.begin(), v.end());
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  s.median = median_of(sorted);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double x : samples) dev.push_back(std::fabs(x - s.median));
  s.mad = median_of(dev);
  return s;
}

EnvInfo current_env() {
  EnvInfo e;
#ifdef SWSIM_GIT_SHA
  e.git_sha = SWSIM_GIT_SHA;
#endif
#ifdef SWSIM_COMPILER
  e.compiler = SWSIM_COMPILER;
#endif
#ifdef SWSIM_CXX_FLAGS
  e.flags = SWSIM_CXX_FLAGS;
#endif
#ifdef SWSIM_BUILD_TYPE
  e.build_type = SWSIM_BUILD_TYPE;
#endif
  e.cores = std::thread::hardware_concurrency();
#if defined(_SC_NPROCESSORS_ONLN)
  if (e.cores == 0) {
    // hardware_concurrency() may legally return 0 (it did under some
    // container runtimes); fall back to the POSIX count so the env
    // fingerprint never records an impossible core count.
    const long n = sysconf(_SC_NPROCESSORS_ONLN);
    if (n > 0) e.cores = static_cast<unsigned>(n);
  }
#endif
  return e;
}

Harness::Harness(std::string name, int* argc, char** argv)
    : name_(std::move(name)) {
  // Strip harness flags in place, compacting argv so the bench (and
  // benchmark::Initialize in bench_solver_perf) sees only what is left.
  int out = 1;
  bool repeats_given = false;
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= *argc) {
      throw std::invalid_argument(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      quick_ = true;
    } else if (std::strcmp(a, "--repeats") == 0) {
      repeats_ = std::atoi(value_of(i, "--repeats"));
      if (repeats_ < 1) throw std::invalid_argument("--repeats must be >= 1");
      repeats_given = true;
    } else if (std::strcmp(a, "--warmup") == 0) {
      warmup_ = std::atoi(value_of(i, "--warmup"));
      if (warmup_ < 0) throw std::invalid_argument("--warmup must be >= 0");
    } else if (std::strcmp(a, "--out-dir") == 0) {
      out_dir_ = value_of(i, "--out-dir");
      if (out_dir_.empty()) out_dir_ = ".";
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  if (quick_ && !repeats_given) repeats_ = 3;
}

void Harness::time_case(const std::string& case_name,
                        const std::function<void()>& fn,
                        double items_per_iter) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup_; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats_));
  for (int i = 0; i < repeats_; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  const SampleStats stats = compute_stats(samples);
  const double ips = (items_per_iter > 0.0 && stats.median > 0.0)
                         ? items_per_iter / stats.median
                         : 0.0;
  Case c{"s", warmup_, std::move(samples), stats, ips};
  cases_.emplace_back(case_name, std::move(c));
}

void Harness::record_samples(const std::string& case_name,
                             const std::string& unit,
                             const std::vector<double>& samples,
                             double items_per_second) {
  Case c{unit, 0, samples, compute_stats(samples), items_per_second};
  cases_.emplace_back(case_name, std::move(c));
}

void Harness::add_scalar(const std::string& name, double value) {
  scalars_.emplace_back(name, value);
}

void Harness::set_profile_json(std::string profile_json) {
  profile_json_ = std::move(profile_json);
}

std::string Harness::to_json() const {
  const EnvInfo env = current_env();
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"" << kSchema << "\",\n"
     << "  \"name\": \"" << obs::escape_json(name_) << "\",\n"
     << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n"
     << "  \"env\": {\n"
     << "    \"git_sha\": \"" << obs::escape_json(env.git_sha) << "\",\n"
     << "    \"compiler\": \"" << obs::escape_json(env.compiler) << "\",\n"
     << "    \"flags\": \"" << obs::escape_json(env.flags) << "\",\n"
     << "    \"build_type\": \"" << obs::escape_json(env.build_type) << "\",\n"
     << "    \"cores\": " << env.cores << "\n"
     << "  },\n"
     << "  \"cases\": {";
  bool first = true;
  for (const auto& [case_name, c] : cases_) {
    os << (first ? "\n" : ",\n") << "    \"" << obs::escape_json(case_name)
       << "\": {\"unit\": \"" << obs::escape_json(c.unit)
       << "\", \"warmup\": " << c.warmup << ", \"samples\": [";
    for (std::size_t i = 0; i < c.samples.size(); ++i) {
      if (i) os << ", ";
      os << num_str(c.samples[i]);
    }
    os << "], \"min\": " << num_str(c.stats.min)
       << ", \"median\": " << num_str(c.stats.median)
       << ", \"mad\": " << num_str(c.stats.mad)
       << ", \"items_per_second\": " << num_str(c.items_per_second) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"scalars\": {";
  first = true;
  for (const auto& [scalar_name, value] : scalars_) {
    os << (first ? "\n" : ",\n") << "    \"" << obs::escape_json(scalar_name)
       << "\": " << num_str(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"profile\": ";
  if (profile_json_.empty()) {
    os << "null";
  } else {
    // Embed verbatim, stripped of the trailing newline RunProfile emits.
    std::string p = profile_json_;
    while (!p.empty() && (p.back() == '\n' || p.back() == '\r')) p.pop_back();
    os << p;
  }
  os << "\n}\n";
  return os.str();
}

bool Harness::finish() const {
  const std::string path = out_dir_ + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (out) out << to_json();
  if (!out) {
    std::fprintf(stderr, "bench harness: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

BenchDoc parse_bench_json(const obs::JsonValue& root) {
  if (!root.is_object()) {
    throw std::runtime_error("bench json: document is not a JSON object");
  }
  const obs::JsonValue* schema = root.find("schema");
  if (!schema || !schema->is_string()) {
    throw std::runtime_error("bench json: missing \"schema\"");
  }
  if (schema->str() != Harness::kSchema) {
    throw std::runtime_error("bench json: unsupported schema \"" +
                             schema->str() + "\" (want " +
                             std::string(Harness::kSchema) + ")");
  }
  BenchDoc doc;
  doc.name = string_field(root, "name");
  const obs::JsonValue* quick = root.find("quick");
  doc.quick = quick && quick->is_bool() && quick->boolean();
  if (const obs::JsonValue* env = root.find("env"); env && env->is_object()) {
    doc.env.git_sha = string_field(*env, "git_sha");
    doc.env.compiler = string_field(*env, "compiler");
    doc.env.flags = string_field(*env, "flags");
    doc.env.build_type = string_field(*env, "build_type");
    doc.env.cores = static_cast<unsigned>(number_field(*env, "cores"));
  } else {
    throw std::runtime_error("bench json: missing \"env\" object");
  }
  const obs::JsonValue* cases = root.find("cases");
  if (!cases || !cases->is_object()) {
    throw std::runtime_error("bench json: missing \"cases\" object");
  }
  for (const auto& [case_name, c] : cases->object()) {
    if (!c.is_object()) {
      throw std::runtime_error("bench json: case \"" + case_name +
                               "\" is not an object");
    }
    CaseStats cs;
    cs.unit = string_field(c, "unit");
    cs.min = number_field(c, "min");
    cs.median = number_field(c, "median");
    cs.mad = number_field(c, "mad");
    cs.items_per_second = number_field(c, "items_per_second");
    doc.cases.emplace(case_name, std::move(cs));
  }
  if (const obs::JsonValue* scalars = root.find("scalars");
      scalars && scalars->is_object()) {
    for (const auto& [scalar_name, v] : scalars->object()) {
      if (!v.is_number()) {
        throw std::runtime_error("bench json: scalar \"" + scalar_name +
                                 "\" is not a number");
      }
      doc.scalars.emplace(scalar_name, v.number());
    }
  }
  return doc;
}

BenchDoc load_bench_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(path + ": cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_bench_json(obs::parse_json(buf.str()));
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

CompareResult compare_benches(const BenchDoc& base, const BenchDoc& cur,
                              const CompareOptions& opts) {
  CompareResult result;
  for (const auto& [name, b] : base.cases) {
    CaseDelta d;
    d.name = name;
    d.base_median = b.median;
    const auto it = cur.cases.find(name);
    if (it == cur.cases.end()) {
      d.verdict = Verdict::kMissing;
      result.deltas.push_back(std::move(d));
      continue;
    }
    const CaseStats& c = it->second;
    d.cur_median = c.median;
    d.threshold = std::max(opts.rel_tolerance * b.median,
                           opts.mad_k * (b.mad + c.mad));
    const double delta = c.median - b.median;
    if (delta > d.threshold) {
      d.verdict = Verdict::kRegression;
      ++result.regressions;
    } else if (-delta > d.threshold) {
      d.verdict = Verdict::kImprovement;
      ++result.improvements;
    }
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [name, c] : cur.cases) {
    if (base.cases.count(name)) continue;
    CaseDelta d;
    d.name = name;
    d.cur_median = c.median;
    d.verdict = Verdict::kNew;
    result.deltas.push_back(std::move(d));
  }
  // Throughput scalars ("*_per_second": higher is better) are gated with
  // the plain relative tolerance — scalars carry no per-sample spread, so
  // there is no MAD term. Other scalars (ratios, flags) stay informational.
  const auto is_throughput = [](const std::string& name) {
    static const std::string suffix = "_per_second";
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  for (const auto& [name, base_value] : base.scalars) {
    if (!is_throughput(name)) continue;
    CaseDelta d;
    d.name = "scalar:" + name;
    d.base_median = base_value;
    const auto it = cur.scalars.find(name);
    if (it == cur.scalars.end()) {
      d.verdict = Verdict::kMissing;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.cur_median = it->second;
    d.threshold = opts.rel_tolerance * base_value;
    const double drop = base_value - it->second;  // positive = slower
    if (drop > d.threshold) {
      d.verdict = Verdict::kRegression;
      ++result.regressions;
    } else if (-drop > d.threshold) {
      d.verdict = Verdict::kImprovement;
      ++result.improvements;
    }
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [name, value] : cur.scalars) {
    if (!is_throughput(name) || base.scalars.count(name)) continue;
    CaseDelta d;
    d.name = "scalar:" + name;
    d.cur_median = value;
    d.verdict = Verdict::kNew;
    result.deltas.push_back(std::move(d));
  }
  std::sort(result.deltas.begin(), result.deltas.end(),
            [](const CaseDelta& a, const CaseDelta& b) {
              return a.name < b.name;
            });
  return result;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kRegression: return "REGRESSION";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kNew: return "new";
    case Verdict::kMissing: return "missing";
  }
  return "?";
}

const std::vector<BenchTarget>& bench_registry() {
  static const std::vector<BenchTarget> targets = {
      {"fig1_dispersion", "bench_fig1_dispersion.csv", false},
      {"fig2_interference", "bench_fig2_interference.csv", false},
      {"fig5_snapshots", "fig5_a.pgm ... fig5_h.pgm", true},
      {"table1_maj", "bench_table1_maj.csv", false},
      {"table2_xor", "bench_table2_xor.csv", false},
      {"table3_performance", "bench_table3_performance.csv", false},
      {"ablation_dimensions", "bench_ablation_dimensions.csv", false},
      {"ablation_robustness", "bench_ablation_robustness.csv", true},
      {"ablation_cascade", "bench_ablation_cascade.csv", false},
      {"ladder_vs_triangle", "bench_ladder_vs_triangle.csv", false},
      {"solver_perf", "bench_engine_speedup.csv", true},
      {"serve_resilience", "BENCH_serve_resilience.json", false},
      {"serve_throughput", "BENCH_serve_throughput.json", false},
      {"probe_overhead", "BENCH_probe_overhead.json", false},
  };
  return targets;
}

}  // namespace swsim::bench
