#include "engine/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/logic.h"
#include "engine/hash.h"
#include "engine/scheduler.h"
#include "math/rng.h"
#include "obs/obs.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace swsim::engine {

namespace {

// Trials per yield job. Fixed (NOT derived from the thread count) so the
// floating-point fold order — and therefore the reported statistics — is
// identical for every --jobs value.
constexpr std::size_t kYieldChunk = 16;

// FanoutOutputs <-> flat payload (the cache value format for truth-table
// rows). 12 doubles: o1 {logic, amplitude, phase, margin}, o2 likewise,
// then the two normalized outputs.
std::vector<double> encode_outputs(const core::FanoutOutputs& o) {
  return {o.o1.logic ? 1.0 : 0.0, o.o1.amplitude, o.o1.phase, o.o1.margin,
          o.o2.logic ? 1.0 : 0.0, o.o2.amplitude, o.o2.phase, o.o2.margin,
          o.normalized_o1,        o.normalized_o2};
}

core::FanoutOutputs decode_outputs(const std::vector<double>& v) {
  if (v.size() != 10) {
    throw std::runtime_error(
        "engine: cached row payload has wrong size (stale spill file from "
        "an incompatible build?)");
  }
  core::FanoutOutputs o;
  o.o1.logic = v[0] != 0.0;
  o.o1.amplitude = v[1];
  o.o1.phase = v[2];
  o.o1.margin = v[3];
  o.o2.logic = v[4] != 0.0;
  o.o2.amplitude = v[5];
  o.o2.phase = v[6];
  o.o2.margin = v[7];
  o.normalized_o1 = v[8];
  o.normalized_o2 = v[9];
  return o;
}

std::uint64_t row_key(std::uint64_t config_key,
                      const std::vector<bool>& pattern) {
  return combine(config_key, Fnv1a().str("row").bits(pattern).digest());
}

class WallClock {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_ =
      std::chrono::steady_clock::now();
};

bool job_struck_out(const Job& j) {
  // Strikes count jobs whose closure itself misbehaved; cancelled jobs are
  // collateral damage and do not poison the config. A request-deadline
  // expiry is the caller's budget running out, not the config's fault, so
  // it never strikes either.
  if (j.status.code() == robust::StatusCode::kDeadlineExceeded) return false;
  return j.state == JobState::kFailed || j.state == JobState::kTimedOut;
}

}  // namespace

double EngineStats::parallel_efficiency() const {
  return wall_seconds > 0.0 ? job_seconds / wall_seconds : 0.0;
}

io::Table EngineStats::table() const {
  io::Table t({"metric", "value"});
  t.add_row({"threads", std::to_string(threads)});
  t.add_row({"batch runs", std::to_string(runs)});
  t.add_row({"jobs executed", std::to_string(jobs_executed)});
  t.add_row({"jobs failed", std::to_string(jobs_failed)});
  t.add_row({"jobs timed out", std::to_string(jobs_timed_out)});
  t.add_row({"retries spent", std::to_string(jobs_retried)});
  t.add_row({"quarantined configs", std::to_string(quarantined_configs)});
  t.add_row({"wall (s)", io::Table::num(wall_seconds, 3)});
  t.add_row({"job time (s)", io::Table::num(job_seconds, 3)});
  t.add_row({"parallelism", io::Table::num(parallel_efficiency(), 2)});
  t.add_row({"cache hits", std::to_string(cache.hits)});
  t.add_row({"cache misses", std::to_string(cache.misses)});
  t.add_row({"hit rate", io::Table::num(cache.hit_rate() * 100.0, 1) + "%"});
  t.add_row({"evictions", std::to_string(cache.evictions)});
  t.add_row({"spill writes", std::to_string(cache.spill_writes)});
  t.add_row({"spill loads", std::to_string(cache.spill_loads)});
  t.add_row({"spill corrupt", std::to_string(cache.spill_corrupt)});
  return t;
}

std::string EngineStats::str() const {
  std::ostringstream os;
  os << "engine stats\n" << table().str();
  return os.str();
}

BatchRunner::BatchRunner(const EngineConfig& config)
    : config_(config),
      pool_(config.jobs),
      cache_(config.cache_capacity, config.spill_dir) {
  if (config_.cell_jobs > 0) mag::kernels::set_cell_jobs(config_.cell_jobs);
  // Share the job pool with the kernel layer's intra-solve sweeps
  // (constructed only after cell_jobs is applied; no-op when <= 1).
  shared_pool_ = std::make_unique<mag::kernels::ScopedSharedPool>(&pool_);
}

JobOptions BatchRunner::job_options(double deadline_seconds) const {
  JobOptions o;
  o.timeout_seconds = config_.job_timeout_seconds;
  o.max_retries = config_.max_retries;
  o.backoff_seconds = config_.retry_backoff_seconds;
  if (deadline_seconds > 0.0) {
    o.not_after = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(deadline_seconds));
  }
  return o;
}

bool BatchRunner::is_quarantined(std::uint64_t config_key) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return quarantine_.count(config_key) != 0;
}

EngineStats BatchRunner::stats() const {
  EngineStats s;
  s.threads = pool_.thread_count();
  s.cache = cache_.stats();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  s.runs = runs_;
  s.jobs_executed = jobs_executed_;
  s.jobs_failed = jobs_failed_;
  s.jobs_timed_out = jobs_timed_out_;
  s.jobs_retried = jobs_retried_;
  s.quarantined_configs = quarantine_.size();
  s.wall_seconds = wall_seconds_;
  s.job_seconds = job_seconds_;
  return s;
}

void BatchRunner::absorb_scheduler_stats_locked(const Scheduler& scheduler) {
  jobs_executed_ += scheduler.count(JobState::kDone);
  job_seconds_ += scheduler.total_job_seconds();
  jobs_failed_ += scheduler.count(JobState::kFailed) +
                  scheduler.count(JobState::kTimedOut);
  jobs_timed_out_ += scheduler.count(JobState::kTimedOut);
  for (JobId id = 0; id < scheduler.size(); ++id) {
    const std::size_t attempts = scheduler.job(id).attempts;
    jobs_retried_ += attempts > 1 ? attempts - 1 : 0;
  }
}

core::ValidationReport BatchRunner::run_truth_table(
    const GateFactory& factory, std::uint64_t config_key,
    std::function<void()> prepare) {
  TruthTableOutcome outcome =
      run_truth_table_checked(factory, config_key, std::move(prepare));
  if (!outcome.ok()) {
    // All-or-nothing contract of the unchecked entry point: surface the
    // first failure, classification intact.
    throw robust::SolveError(outcome.failures.failures().front().status);
  }
  return std::move(outcome.report);
}

TruthTableOutcome BatchRunner::run_truth_table_checked(
    const GateFactory& factory, std::uint64_t config_key,
    std::function<void()> prepare, const std::string& label,
    double deadline_seconds) {
  const WallClock clock;
  const std::string prefix = label.empty() ? "" : label + " / ";
  // Probe instance: name, arity and the (pure) reference function. Gate
  // construction must stay cheap relative to evaluation; solves happen in
  // evaluate(), not the constructor.
  const auto probe = factory();
  const auto patterns = core::all_input_patterns(probe->num_inputs());
  obs::Span span("truthtable " + probe->name(), "engine");

  TruthTableOutcome outcome;

  // Quarantine gate: a known-poison config is refused before any solve.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    const auto q = quarantine_.find(config_key);
    if (q != quarantine_.end()) {
      std::vector<core::ValidationRow> rows(patterns.size());
      for (std::size_t i = 0; i < patterns.size(); ++i) {
        rows[i].inputs = patterns[i];
        rows[i].expected = probe->reference(patterns[i]);
        rows[i].status = q->second;
      }
      outcome.report = core::assemble_report(probe->name(), std::move(rows));
      outcome.failures.add({prefix + probe->name(), q->second,
                            /*attempts=*/0, /*quarantined=*/true,
                            obs::wall_now_us(), config_key,
                            /*wall_seconds=*/0.0});
      ++runs_;
      wall_seconds_ += clock.seconds();
      return outcome;
    }
  }

  std::vector<core::ValidationRow> rows(patterns.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (config_.use_cache) {
      if (const auto hit = cache_.lookup(row_key(config_key, patterns[i]))) {
        core::ValidationRow row;
        row.inputs = patterns[i];
        row.expected = probe->reference(patterns[i]);
        row.outputs = decode_outputs(*hit);
        row.pass_o1 = row.outputs.o1.logic == row.expected;
        row.pass_o2 = row.outputs.o2.logic == row.expected;
        rows[i] = std::move(row);
        continue;
      }
    }
    missing.push_back(i);
  }

  if (!missing.empty()) {
    Scheduler scheduler(pool_);
    const JobOptions options = job_options(deadline_seconds);
    std::vector<JobId> deps;
    std::optional<JobId> prepare_id;
    if (prepare) {
      prepare_id =
          scheduler.add(prefix + "prepare", std::move(prepare), options);
      deps.push_back(*prepare_id);
    }
    std::vector<JobId> row_ids;
    row_ids.reserve(missing.size());
    for (const std::size_t i : missing) {
      row_ids.push_back(scheduler.add(
          prefix + "row " + std::to_string(i),
          [this, &factory, &patterns, &rows, i,
           config_key](const robust::CancelToken& token) {
            auto gate = factory();
            gate->set_cancel_token(token);
            rows[i] = core::evaluate_row(*gate, patterns[i]);
            if (config_.use_cache) {
              cache_.insert(row_key(config_key, patterns[i]),
                            encode_outputs(rows[i].outputs));
            }
          },
          options, deps));
    }
    scheduler.run_all();

    // Collect failures in row order (deterministic report) and mark the
    // failed rows so the report keeps a slot for them.
    std::vector<robust::JobFailure> failed;
    std::size_t strikes = 0;
    if (prepare_id) {
      const Job& j = scheduler.job(*prepare_id);
      if (j.state != JobState::kDone) {
        failed.push_back({j.label, j.status, j.attempts, false,
                          j.failed_at_us, config_key, j.seconds});
        strikes += job_struck_out(j) ? 1 : 0;
      }
    }
    for (std::size_t k = 0; k < missing.size(); ++k) {
      const Job& j = scheduler.job(row_ids[k]);
      if (j.state == JobState::kDone) continue;
      const std::size_t i = missing[k];
      rows[i] = core::ValidationRow{};
      rows[i].inputs = patterns[i];
      rows[i].expected = probe->reference(patterns[i]);
      rows[i].status = j.status;
      failed.push_back({j.label, j.status, j.attempts, false,
                        j.failed_at_us, config_key, j.seconds});
      strikes += job_struck_out(j) ? 1 : 0;
    }

    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      absorb_scheduler_stats_locked(scheduler);
      if (strikes > 0 && config_.quarantine_threshold > 0) {
        std::size_t& tally = strikes_[config_key];
        tally += strikes;
        if (tally >= config_.quarantine_threshold &&
            quarantine_.count(config_key) == 0) {
          quarantine_.emplace(
              config_key,
              robust::Status::error(
                  robust::StatusCode::kQuarantined,
                  "config quarantined after " + std::to_string(tally) +
                      " failed jobs",
                  probe->name()));
          for (robust::JobFailure& f : failed) f.quarantined = true;
          obs::MetricsRegistry::global().counter("engine.quarantines").add();
          auto& elog = obs::EventLog::global();
          if (elog.enabled(obs::LogLevel::kWarn)) {
            elog.event(obs::LogLevel::kWarn, "quarantine")
                .str("gate", probe->name())
                .hex("config_key", config_key)
                .uint("strikes", tally)
                .emit();
          }
        }
      }
    }
    for (robust::JobFailure& f : failed) outcome.failures.add(std::move(f));
  }

  outcome.report = core::assemble_report(probe->name(), std::move(rows));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++runs_;
    wall_seconds_ += clock.seconds();
  }
  return outcome;
}

core::YieldReport BatchRunner::run_yield(const TriangleFactory& factory,
                                         const core::VariabilityModel& model,
                                         std::size_t trials) {
  YieldOutcome outcome = run_yield_checked(factory, model, trials);
  if (!outcome.ok()) {
    throw robust::SolveError(outcome.failures.failures().front().status);
  }
  return outcome.report;
}

YieldOutcome BatchRunner::run_yield_checked(
    const TriangleFactory& factory, const core::VariabilityModel& model,
    std::size_t trials, const std::string& label, double deadline_seconds) {
  if (trials == 0) {
    throw std::invalid_argument("BatchRunner::run_yield: trials must be >= 1");
  }
  if (model.sigma_phase < 0.0 || model.sigma_amplitude < 0.0) {
    throw std::invalid_argument("BatchRunner::run_yield: sigmas must be >= 0");
  }
  const WallClock clock;
  const std::string prefix = label.empty() ? "" : label + " / ";
  obs::Span span("yield " + std::to_string(trials) + " trials", "engine");

  struct ChunkPartial {
    std::size_t passing = 0;
    std::size_t row_failures = 0;
    double margin_acc = 0.0;
  };
  const std::size_t chunks = (trials + kYieldChunk - 1) / kYieldChunk;
  std::vector<ChunkPartial> partials(chunks);

  Scheduler scheduler(pool_);
  const JobOptions options = job_options(deadline_seconds);
  std::vector<JobId> chunk_ids;
  chunk_ids.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    chunk_ids.push_back(scheduler.add(
        prefix + "trials " + std::to_string(c * kYieldChunk),
        [&, c](const robust::CancelToken& token) {
          auto gate = factory();
          gate->set_cancel_token(token);
          const auto patterns = core::all_input_patterns(gate->num_inputs());
          const std::size_t begin = c * kYieldChunk;
          const std::size_t end = std::min(trials, begin + kYieldChunk);
          // Accumulate locally and publish only after the full chunk
          // succeeds: a retried attempt that failed mid-chunk must not
          // leave half its trials behind to be counted twice.
          ChunkPartial part;
          for (std::size_t t = begin; t < end; ++t) {
            if (token.cancelled()) {
              throw robust::SolveError(robust::Status::error(
                  robust::StatusCode::kCancelled,
                  "cancelled at trial " + std::to_string(t)));
            }
            robust::FaultPlan::global().on_trial_enter(t);
            // Independent, trial-indexed RNG stream: trial t draws the
            // same disturbances no matter which thread or chunk runs it.
            swsim::math::Pcg32 rng(model.seed, /*stream=*/t);
            const auto outcome =
                core::run_variability_trial(*gate, model, rng, patterns);
            if (outcome.all_rows) ++part.passing;
            part.row_failures += outcome.row_failures;
            part.margin_acc += outcome.worst_margin;
          }
          partials[c] = part;
        },
        options));
  }
  scheduler.run_all();

  // Fold surviving chunks in chunk order: the FP sum is then independent
  // of the job count, and — because each trial's RNG stream is indexed by
  // the trial, not the chunk — a lost chunk removes exactly its own trials
  // from the statistics without disturbing any other trial's draw.
  YieldOutcome out;
  out.requested_trials = trials;
  std::size_t completed = 0;
  double margin_acc = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const Job& j = scheduler.job(chunk_ids[c]);
    const std::size_t begin = c * kYieldChunk;
    const std::size_t end = std::min(trials, begin + kYieldChunk);
    if (j.state == JobState::kDone) {
      out.report.passing += partials[c].passing;
      out.report.worst_row_failures += partials[c].row_failures;
      margin_acc += partials[c].margin_acc;
      completed += end - begin;
    } else {
      out.failures.add({j.label, j.status, j.attempts, false, j.failed_at_us,
                        /*job_key=*/0, j.seconds});
    }
  }
  out.report.trials = completed;
  if (completed > 0) {
    out.report.yield = static_cast<double>(out.report.passing) /
                       static_cast<double>(completed);
    out.report.mean_worst_margin =
        margin_acc / static_cast<double>(completed);
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++runs_;
  absorb_scheduler_stats_locked(scheduler);
  wall_seconds_ += clock.seconds();
  return out;
}

}  // namespace swsim::engine
