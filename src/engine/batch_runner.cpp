#include "engine/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/logic.h"
#include "engine/hash.h"
#include "engine/scheduler.h"
#include "math/rng.h"

namespace swsim::engine {

namespace {

// Trials per yield job. Fixed (NOT derived from the thread count) so the
// floating-point fold order — and therefore the reported statistics — is
// identical for every --jobs value.
constexpr std::size_t kYieldChunk = 16;

// FanoutOutputs <-> flat payload (the cache value format for truth-table
// rows). 12 doubles: o1 {logic, amplitude, phase, margin}, o2 likewise,
// then the two normalized outputs.
std::vector<double> encode_outputs(const core::FanoutOutputs& o) {
  return {o.o1.logic ? 1.0 : 0.0, o.o1.amplitude, o.o1.phase, o.o1.margin,
          o.o2.logic ? 1.0 : 0.0, o.o2.amplitude, o.o2.phase, o.o2.margin,
          o.normalized_o1,        o.normalized_o2};
}

core::FanoutOutputs decode_outputs(const std::vector<double>& v) {
  if (v.size() != 10) {
    throw std::runtime_error(
        "engine: cached row payload has wrong size (stale spill file from "
        "an incompatible build?)");
  }
  core::FanoutOutputs o;
  o.o1.logic = v[0] != 0.0;
  o.o1.amplitude = v[1];
  o.o1.phase = v[2];
  o.o1.margin = v[3];
  o.o2.logic = v[4] != 0.0;
  o.o2.amplitude = v[5];
  o.o2.phase = v[6];
  o.o2.margin = v[7];
  o.normalized_o1 = v[8];
  o.normalized_o2 = v[9];
  return o;
}

std::uint64_t row_key(std::uint64_t config_key,
                      const std::vector<bool>& pattern) {
  return combine(config_key, Fnv1a().str("row").bits(pattern).digest());
}

class WallClock {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_ =
      std::chrono::steady_clock::now();
};

}  // namespace

double EngineStats::parallel_efficiency() const {
  return wall_seconds > 0.0 ? job_seconds / wall_seconds : 0.0;
}

io::Table EngineStats::table() const {
  io::Table t({"metric", "value"});
  t.add_row({"threads", std::to_string(threads)});
  t.add_row({"batch runs", std::to_string(runs)});
  t.add_row({"jobs executed", std::to_string(jobs_executed)});
  t.add_row({"wall (s)", io::Table::num(wall_seconds, 3)});
  t.add_row({"job time (s)", io::Table::num(job_seconds, 3)});
  t.add_row({"parallelism", io::Table::num(parallel_efficiency(), 2)});
  t.add_row({"cache hits", std::to_string(cache.hits)});
  t.add_row({"cache misses", std::to_string(cache.misses)});
  t.add_row({"hit rate", io::Table::num(cache.hit_rate() * 100.0, 1) + "%"});
  t.add_row({"evictions", std::to_string(cache.evictions)});
  t.add_row({"spill writes", std::to_string(cache.spill_writes)});
  t.add_row({"spill loads", std::to_string(cache.spill_loads)});
  return t;
}

std::string EngineStats::str() const {
  std::ostringstream os;
  os << "engine stats\n" << table().str();
  return os.str();
}

BatchRunner::BatchRunner(const EngineConfig& config)
    : config_(config),
      pool_(config.jobs),
      cache_(config.cache_capacity, config.spill_dir) {}

EngineStats BatchRunner::stats() const {
  EngineStats s;
  s.threads = pool_.thread_count();
  s.cache = cache_.stats();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  s.runs = runs_;
  s.jobs_executed = jobs_executed_;
  s.wall_seconds = wall_seconds_;
  s.job_seconds = job_seconds_;
  return s;
}

core::ValidationReport BatchRunner::run_truth_table(
    const GateFactory& factory, std::uint64_t config_key,
    std::function<void()> prepare) {
  const WallClock clock;
  // Probe instance: name, arity and the (pure) reference function. Gate
  // construction must stay cheap relative to evaluation; solves happen in
  // evaluate(), not the constructor.
  const auto probe = factory();
  const auto patterns = core::all_input_patterns(probe->num_inputs());

  std::vector<core::ValidationRow> rows(patterns.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (config_.use_cache) {
      if (const auto hit = cache_.lookup(row_key(config_key, patterns[i]))) {
        core::ValidationRow row;
        row.inputs = patterns[i];
        row.expected = probe->reference(patterns[i]);
        row.outputs = decode_outputs(*hit);
        row.pass_o1 = row.outputs.o1.logic == row.expected;
        row.pass_o2 = row.outputs.o2.logic == row.expected;
        rows[i] = std::move(row);
        continue;
      }
    }
    missing.push_back(i);
  }

  if (!missing.empty()) {
    Scheduler scheduler(pool_);
    std::vector<JobId> deps;
    if (prepare) {
      deps.push_back(scheduler.add("prepare", std::move(prepare)));
    }
    for (const std::size_t i : missing) {
      scheduler.add(
          "row " + std::to_string(i),
          [this, &factory, &patterns, &rows, i, config_key] {
            auto gate = factory();
            rows[i] = core::evaluate_row(*gate, patterns[i]);
            if (config_.use_cache) {
              cache_.insert(row_key(config_key, patterns[i]),
                            encode_outputs(rows[i].outputs));
            }
          },
          deps);
    }
    scheduler.run();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    jobs_executed_ += scheduler.count(JobState::kDone);
    job_seconds_ += scheduler.total_job_seconds();
  }

  auto report = core::assemble_report(probe->name(), std::move(rows));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++runs_;
    wall_seconds_ += clock.seconds();
  }
  return report;
}

core::YieldReport BatchRunner::run_yield(const TriangleFactory& factory,
                                         const core::VariabilityModel& model,
                                         std::size_t trials) {
  if (trials == 0) {
    throw std::invalid_argument("BatchRunner::run_yield: trials must be >= 1");
  }
  if (model.sigma_phase < 0.0 || model.sigma_amplitude < 0.0) {
    throw std::invalid_argument("BatchRunner::run_yield: sigmas must be >= 0");
  }
  const WallClock clock;

  struct ChunkPartial {
    std::size_t passing = 0;
    std::size_t row_failures = 0;
    double margin_acc = 0.0;
  };
  const std::size_t chunks = (trials + kYieldChunk - 1) / kYieldChunk;
  std::vector<ChunkPartial> partials(chunks);

  Scheduler scheduler(pool_);
  for (std::size_t c = 0; c < chunks; ++c) {
    scheduler.add(
        "trials " + std::to_string(c * kYieldChunk),
        [&, c] {
          auto gate = factory();
          const auto patterns =
              core::all_input_patterns(gate->num_inputs());
          const std::size_t begin = c * kYieldChunk;
          const std::size_t end = std::min(trials, begin + kYieldChunk);
          ChunkPartial& part = partials[c];
          for (std::size_t t = begin; t < end; ++t) {
            // Independent, trial-indexed RNG stream: trial t draws the
            // same disturbances no matter which thread or chunk runs it.
            swsim::math::Pcg32 rng(model.seed, /*stream=*/t);
            const auto outcome =
                core::run_variability_trial(*gate, model, rng, patterns);
            if (outcome.all_rows) ++part.passing;
            part.row_failures += outcome.row_failures;
            part.margin_acc += outcome.worst_margin;
          }
        });
  }
  scheduler.run();

  // Fold in chunk order: the FP sum is then independent of the job count.
  core::YieldReport report;
  report.trials = trials;
  double margin_acc = 0.0;
  for (const ChunkPartial& part : partials) {
    report.passing += part.passing;
    report.worst_row_failures += part.row_failures;
    margin_acc += part.margin_acc;
  }
  report.yield =
      static_cast<double>(report.passing) / static_cast<double>(trials);
  report.mean_worst_margin = margin_acc / static_cast<double>(trials);

  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++runs_;
  jobs_executed_ += scheduler.count(JobState::kDone);
  job_seconds_ += scheduler.total_job_seconds();
  wall_seconds_ += clock.seconds();
  return report;
}

}  // namespace swsim::engine
