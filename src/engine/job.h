// The unit of work the scheduler tracks: a closure plus dependency edges,
// a lifecycle state, and per-job accounting (run time, failure status).
//
// Jobs are owned by a Scheduler; user code only sees JobId handles. A job
// becomes kReady when every dependency has finished successfully, runs on
// the thread pool, and ends kDone, kFailed (its closure threw), kTimedOut
// (its deadline passed while running), or kCancelled (explicitly, or
// because a dependency failed/was cancelled — cancellation is transitive
// over the dependency DAG). Cancellation is cooperative: a job that is
// already running is not preempted; it is handed a robust::CancelToken and
// is expected to poll it. A timed-out job is terminal the moment the
// deadline expires, but its closure keeps the worker until it observes the
// token (or returns); its result is then discarded.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "robust/cancel.h"
#include "robust/status.h"

namespace swsim::engine {

using JobId = std::size_t;

enum class JobState {
  kPending,    // waiting on dependencies
  kReady,      // dependencies met, queued for execution
  kRunning,    // executing on a pool thread
  kBackoff,    // failed retryably; waiting (off the pool) until retry_at
  kDone,       // finished successfully
  kFailed,     // closure threw; `status`/`error` hold the cause
  kTimedOut,   // deadline expired while running; result discarded
  kCancelled,  // never ran (explicit cancel or upstream failure)
};

std::string to_string(JobState s);

// True for states a job can no longer leave.
bool is_terminal(JobState s);

// Per-job resilience policy. Defaults reproduce the original scheduler:
// no deadline, no retries.
struct JobOptions {
  // User-declared so JobOptions is not an aggregate: keeps Scheduler::add's
  // {deps...} brace lists from ever matching this parameter.
  JobOptions() = default;

  // Wall-clock budget per attempt; 0 disables the deadline. Enforcement is
  // cooperative (see JobState::kTimedOut above).
  double timeout_seconds = 0.0;
  // Extra attempts granted when the closure fails with a *retryable*
  // status (robust::is_retryable). Timeouts are never retried: the
  // timed-out closure may still be running, and a concurrent retry would
  // race it on shared result slots.
  std::size_t max_retries = 0;
  // Delay before retry attempt k (1-based) is backoff_seconds * k. The
  // job waits in kBackoff without occupying a pool worker.
  double backoff_seconds = 0.0;
  // Absolute end-to-end deadline (steady clock). Unlike timeout_seconds —
  // which is a *per-attempt* budget measured from the attempt's start —
  // this caps the job's whole life, including pool-queue wait and backoff
  // sleeps. A job whose deadline has already passed when a worker picks it
  // up fails kTimedOut with StatusCode::kDeadlineExceeded *without running*
  // (this is how a served request's deadline keeps the engine from
  // computing answers nobody is waiting for). max() disables it.
  std::chrono::steady_clock::time_point not_after =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return not_after != std::chrono::steady_clock::time_point::max();
  }
};

struct Job {
  JobId id = 0;
  std::string label;
  // The obs flow id (obs::current_flow_id()) of the thread that added the
  // job — a served request's dispatcher sets it so the job's span on the
  // pool worker is linked back to the request's trace across threads
  // (and, after `swsim trace merge`, across processes). 0 = no flow.
  std::uint64_t flow_id = 0;
  std::function<void(const robust::CancelToken&)> fn;
  JobOptions options;
  JobState state = JobState::kPending;
  std::size_t remaining_deps = 0;
  std::vector<JobId> dependents;
  double seconds = 0.0;       // wall time of fn(), summed over attempts
  std::size_t attempts = 0;   // executions started (1 = no retries)
  // Wall-clock stamp (epoch microseconds) of the moment the job became
  // kFailed / kTimedOut / kCancelled; 0 while healthy. The scheduler takes
  // this stamp once and shares it with the structured event log, so a
  // FailureReport row and its JSONL line carry the identical timestamp.
  std::uint64_t failed_at_us = 0;
  robust::Status status;      // cause when kFailed / kTimedOut / kCancelled
  std::string error;          // status.message() — kept for older callers
  // Current attempt's cancellation token and start time (valid while
  // kRunning; the deadline is started_at + timeout).
  robust::CancelToken token;
  std::chrono::steady_clock::time_point started_at;
  // When a kBackoff job becomes eligible to run again. The run_all()
  // timer loop re-releases it; no pool worker sleeps through the backoff.
  std::chrono::steady_clock::time_point retry_at;
};

}  // namespace swsim::engine
