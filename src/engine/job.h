// The unit of work the scheduler tracks: a closure plus dependency edges,
// a lifecycle state, and per-job accounting (run time, failure message).
//
// Jobs are owned by a Scheduler; user code only sees JobId handles. A job
// becomes kReady when every dependency has finished successfully, runs on
// the thread pool, and ends kDone, kFailed (its closure threw), or
// kCancelled (explicitly, or because a dependency failed/was cancelled —
// cancellation is transitive over the dependency DAG). Cancellation is
// cooperative: a job that is already running is not preempted.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace swsim::engine {

using JobId = std::size_t;

enum class JobState {
  kPending,    // waiting on dependencies
  kReady,      // dependencies met, queued for execution
  kRunning,    // executing on a pool thread
  kDone,       // finished successfully
  kFailed,     // closure threw; `error` holds what()
  kCancelled,  // never ran (explicit cancel or upstream failure)
};

std::string to_string(JobState s);

// True for states a job can no longer leave.
bool is_terminal(JobState s);

struct Job {
  JobId id = 0;
  std::string label;
  std::function<void()> fn;
  JobState state = JobState::kPending;
  std::size_t remaining_deps = 0;
  std::vector<JobId> dependents;
  double seconds = 0.0;  // wall time of fn() when it ran
  std::string error;     // exception message when state == kFailed
};

}  // namespace swsim::engine
