#include "engine/job.h"

namespace swsim::engine {

std::string to_string(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kReady:
      return "ready";
    case JobState::kRunning:
      return "running";
    case JobState::kBackoff:
      return "backoff";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kTimedOut:
      return "timed out";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kTimedOut || s == JobState::kCancelled;
}

}  // namespace swsim::engine
