#include "engine/result_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace swsim::engine {

namespace {
// Spill file layout: magic, count, then count raw doubles. Host byte
// order — a spill directory is a local cache, not an interchange format.
constexpr std::uint64_t kSpillMagic = 0x73777370696c6c31ULL;  // "swspill1"
}  // namespace

double ResultCache::Stats::hit_rate() const {
  const std::size_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

ResultCache::ResultCache(std::size_t capacity, std::string spill_dir)
    : capacity_(capacity == 0 ? 1 : capacity), spill_dir_(std::move(spill_dir)) {
  if (!spill_dir_.empty()) {
    std::filesystem::create_directories(spill_dir_);
  }
}

std::string ResultCache::spill_filename(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx.swc",
                static_cast<unsigned long long>(key));
  return buf;
}

std::optional<std::vector<double>> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->second;
  }
  std::vector<double> loaded;
  if (load_spilled_locked(key, loaded)) {
    ++stats_.hits;
    ++stats_.spill_loads;
    store_locked(key, loaded);  // promote back into memory
    return loaded;
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(std::uint64_t key, std::vector<double> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Content-addressed: the payload for a key is unique, so keep the
    // stored one and only refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.insertions;
  store_locked(key, std::move(value));
}

void ResultCache::store_locked(std::uint64_t key, std::vector<double> value) {
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) evict_locked();
}

void ResultCache::evict_locked() {
  const Entry& victim = lru_.back();
  if (!spill_dir_.empty()) {
    const auto path =
        std::filesystem::path(spill_dir_) / spill_filename(victim.first);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      const std::uint64_t count = victim.second.size();
      out.write(reinterpret_cast<const char*>(&kSpillMagic),
                sizeof kSpillMagic);
      out.write(reinterpret_cast<const char*>(&count), sizeof count);
      out.write(reinterpret_cast<const char*>(victim.second.data()),
                static_cast<std::streamsize>(count * sizeof(double)));
      if (out) ++stats_.spill_writes;
    }
    // A failed spill write is a silent capacity loss, not an error: the
    // entry can always be recomputed.
  }
  index_.erase(victim.first);
  lru_.pop_back();
  ++stats_.evictions;
}

bool ResultCache::load_spilled_locked(std::uint64_t key,
                                      std::vector<double>& out) {
  if (spill_dir_.empty()) return false;
  const auto path = std::filesystem::path(spill_dir_) / spill_filename(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kSpillMagic) return false;
  out.resize(count);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return static_cast<bool>(in);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ResultCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats{};
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace swsim::engine
