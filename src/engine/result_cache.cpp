#include "engine/result_cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace swsim::engine {

namespace {

// Process-wide cache metrics (all ResultCache instances aggregate into the
// same names; per-instance numbers stay available via stats()).
struct CacheMetrics {
  obs::Counter& hits = obs::MetricsRegistry::global().counter("cache.hits");
  obs::Counter& misses =
      obs::MetricsRegistry::global().counter("cache.misses");
  obs::Counter& insertions =
      obs::MetricsRegistry::global().counter("cache.insertions");
  obs::Counter& evictions =
      obs::MetricsRegistry::global().counter("cache.evictions");
  obs::Counter& spill_writes =
      obs::MetricsRegistry::global().counter("cache.spill_writes");
  obs::Counter& spill_loads =
      obs::MetricsRegistry::global().counter("cache.spill_loads");
  obs::Counter& spill_corrupt =
      obs::MetricsRegistry::global().counter("cache.spill_corrupt");
  obs::Histogram& lookup_seconds =
      obs::MetricsRegistry::global().histogram("cache.lookup_seconds");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics* m = new CacheMetrics();
  return *m;
}
// Spill file layout (v2): magic, count, payload checksum, then count raw
// doubles. Host byte order — a spill directory is a local cache, not an
// interchange format. v1 files (no checksum) fail the magic test and are
// treated like any other corrupt file: deleted and recomputed.
constexpr std::uint64_t kSpillMagic = 0x73777370696c6c32ULL;  // "swspill2"

// FNV-1a over the payload bytes, seeded with the count so a file whose
// length field was damaged in a way that still matches the byte count
// cannot collide with the original.
std::uint64_t payload_checksum(const double* data, std::uint64_t count) {
  std::uint64_t h = 1469598103934665603ULL ^ count;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  const std::size_t n = static_cast<std::size_t>(count) * sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// Full integrity check of one spill file — the same magic/size/checksum
// tests load_spilled_locked applies, without touching cache state.
bool spill_file_intact(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  constexpr std::uint64_t kHeaderBytes = 3 * sizeof(std::uint64_t);
  std::uint64_t magic = 0, count = 0, checksum = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  in.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (!in || magic != kSpillMagic) return false;
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec || file_size != kHeaderBytes + count * sizeof(double)) return false;
  std::vector<double> payload(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) return false;
  return payload_checksum(payload.data(), count) == checksum;
}
}  // namespace

double ResultCache::Stats::hit_rate() const {
  const std::size_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

ResultCache::ResultCache(std::size_t capacity, std::string spill_dir)
    : capacity_(capacity == 0 ? 1 : capacity), spill_dir_(std::move(spill_dir)) {
  if (!spill_dir_.empty()) {
    std::filesystem::create_directories(spill_dir_);
  }
}

std::string ResultCache::spill_filename(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx.swc",
                static_cast<unsigned long long>(key));
  return buf;
}

ResultCache::RecoveryReport ResultCache::recover_spill_dir() {
  RecoveryReport report;
  if (spill_dir_.empty()) return report;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto dir = std::filesystem::path(spill_dir_);
  const auto quarantine = dir / "quarantine";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const auto& path = entry.path();
    const std::string name = path.filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      // A tmp file at startup is a write that never reached its rename: a
      // torn shutdown. The publish path never reads tmp names, so deleting
      // is always safe at a quiescent start.
      std::error_code rm;
      std::filesystem::remove(path, rm);
      if (!rm) ++report.removed_tmp;
      continue;
    }
    if (path.extension() != ".swc") continue;
    ++report.scanned;
    if (spill_file_intact(path)) {
      ++report.healthy;
      continue;
    }
    ++report.quarantined;
    ++stats_.spill_corrupt;
    cache_metrics().spill_corrupt.add();
    std::error_code mv;
    std::filesystem::create_directories(quarantine, mv);
    std::filesystem::rename(path, quarantine / name, mv);
    if (mv) std::filesystem::remove(path, mv);  // cross-device etc: drop it
    auto& elog = obs::EventLog::global();
    if (elog.enabled(obs::LogLevel::kWarn)) {
      elog.event(obs::LogLevel::kWarn, "cache_recovery_quarantined")
          .str("path", path.string())
          .emit();
    }
  }
  {
    auto& elog = obs::EventLog::global();
    if (elog.enabled(obs::LogLevel::kInfo)) {
      elog.event(obs::LogLevel::kInfo, "cache_recovery")
          .uint("scanned", report.scanned)
          .uint("healthy", report.healthy)
          .uint("quarantined", report.quarantined)
          .uint("removed_tmp", report.removed_tmp)
          .emit();
    }
  }
  return report;
}

std::optional<std::vector<double>> ResultCache::lookup(std::uint64_t key) {
  obs::ScopedLatency timer(cache_metrics().lookup_seconds);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++stats_.hits;
    cache_metrics().hits.add();
    return it->second->second;
  }
  std::vector<double> loaded;
  if (load_spilled_locked(key, loaded)) {
    ++stats_.hits;
    ++stats_.spill_loads;
    cache_metrics().hits.add();
    cache_metrics().spill_loads.add();
    store_locked(key, loaded);  // promote back into memory
    return loaded;
  }
  ++stats_.misses;
  cache_metrics().misses.add();
  return std::nullopt;
}

void ResultCache::insert(std::uint64_t key, std::vector<double> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Content-addressed: the payload for a key is unique, so keep the
    // stored one and only refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++stats_.insertions;
  cache_metrics().insertions.add();
  store_locked(key, std::move(value));
}

void ResultCache::store_locked(std::uint64_t key, std::vector<double> value) {
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) evict_locked();
}

void ResultCache::evict_locked() {
  const Entry& victim = lru_.back();
  bool spilled = false;
  if (!spill_dir_.empty()) {
    // Publish via atomic rename: a spill directory may be shared by several
    // caches (threads in this process, or other processes pointed at the
    // same --cache-dir), and a reader racing a plain ofstream would see a
    // torn file. Writing to a unique temp name and renaming into place
    // means a concurrent lookup observes either the old complete file, the
    // new complete file, or nothing — never a partial write.
    static std::atomic<std::uint64_t> tmp_seq{0};
    const auto dir = std::filesystem::path(spill_dir_);
    const auto path = dir / spill_filename(victim.first);
    char suffix[48];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      tmp_seq.fetch_add(1, std::memory_order_relaxed)));
    const auto tmp = dir / (spill_filename(victim.first) + suffix);
    bool written = false;
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) {
        const std::uint64_t count = victim.second.size();
        const std::uint64_t checksum =
            payload_checksum(victim.second.data(), count);
        out.write(reinterpret_cast<const char*>(&kSpillMagic),
                  sizeof kSpillMagic);
        out.write(reinterpret_cast<const char*>(&count), sizeof count);
        out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
        out.write(reinterpret_cast<const char*>(victim.second.data()),
                  static_cast<std::streamsize>(count * sizeof(double)));
        written = static_cast<bool>(out);
      }
    }
    if (written) {
      std::error_code ec;
      std::filesystem::rename(tmp, path, ec);
      if (!ec) {
        ++stats_.spill_writes;
        cache_metrics().spill_writes.add();
        spilled = true;
      }
    }
    if (!spilled) {
      // A failed spill write is a silent capacity loss, not an error: the
      // entry can always be recomputed. Drop the temp file if it exists.
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
    }
  }
  {
    auto& elog = obs::EventLog::global();
    if (elog.enabled(obs::LogLevel::kDebug)) {
      elog.event(obs::LogLevel::kDebug, "cache_evict")
          .hex("key", victim.first)
          .boolean("spilled", spilled)
          .emit();
    }
  }
  index_.erase(victim.first);
  lru_.pop_back();
  ++stats_.evictions;
  cache_metrics().evictions.add();
}

bool ResultCache::load_spilled_locked(std::uint64_t key,
                                      std::vector<double>& out) {
  if (spill_dir_.empty()) return false;
  const auto path = std::filesystem::path(spill_dir_) / spill_filename(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // absent: a plain miss, not corruption

  // Any integrity failure below means the file cannot be trusted: evict it
  // from disk so the slot is recomputed and re-spilled clean.
  const auto corrupt = [&] {
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    ++stats_.spill_corrupt;
    cache_metrics().spill_corrupt.add();
    auto& elog = obs::EventLog::global();
    if (elog.enabled(obs::LogLevel::kWarn)) {
      elog.event(obs::LogLevel::kWarn, "cache_corrupt_evicted")
          .hex("key", key)
          .str("path", path.string())
          .emit();
    }
    return false;
  };

  constexpr std::uint64_t kHeaderBytes = 3 * sizeof(std::uint64_t);
  std::uint64_t magic = 0, count = 0, checksum = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  in.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (!in || magic != kSpillMagic) return corrupt();

  // Size check before allocating: catches truncation and a damaged count
  // field without trusting either.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec || file_size != kHeaderBytes + count * sizeof(double)) {
    return corrupt();
  }

  out.resize(count);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) return corrupt();
  if (payload_checksum(out.data(), count) != checksum) return corrupt();
  return true;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ResultCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats{};
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace swsim::engine
