// Content-addressed result cache.
//
// Maps a stable 64-bit content key (engine/hash.h) to a flat payload of
// doubles — the serialized result of a gate solve, probe trace, or any
// other deterministic computation. In-memory entries are LRU-evicted at a
// fixed capacity; with a spill directory configured, evicted entries are
// written to disk (one small binary file per key, named by the hex key)
// and transparently re-loaded — promoting back into memory — on a later
// lookup. Because keys are content hashes, a spill directory written by
// one process is valid for every later process with the same code.
//
// Thread-safe. Inserting an existing key refreshes recency but keeps the
// stored payload: by the content-addressing contract two payloads for one
// key are identical, so first-write-wins equals last-write-wins, and
// results cannot depend on job completion order.
//
// Integrity: every spill file carries an FNV-1a checksum of its payload.
// A file that fails the magic, size, or checksum test — truncated write,
// bit rot, a stale format from an older build — is evicted from disk and
// counted in stats().spill_corrupt; the lookup then reports a miss and the
// caller transparently recomputes, so a corrupted cache can degrade
// performance but never correctness.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace swsim::engine {

class ResultCache {
 public:
  struct Stats {
    std::size_t hits = 0;         // lookup served (memory or spill)
    std::size_t misses = 0;       // lookup found nothing
    std::size_t insertions = 0;   // new keys stored
    std::size_t evictions = 0;    // LRU entries dropped from memory
    std::size_t spill_writes = 0; // evictions persisted to disk
    std::size_t spill_loads = 0;  // hits served from disk
    std::size_t spill_corrupt = 0; // spill files that failed integrity checks
    double hit_rate() const;      // hits / (hits + misses), 0 when idle
  };

  // What a recover_spill_dir() pass found in the spill directory.
  struct RecoveryReport {
    std::size_t scanned = 0;      // *.swc entries examined
    std::size_t healthy = 0;      // entries that passed every check
    std::size_t quarantined = 0;  // corrupt entries moved to quarantine/
    std::size_t removed_tmp = 0;  // stale .tmp.* files deleted
  };

  // capacity: max in-memory entries (>= 1). spill_dir: optional directory
  // for evicted entries; created if missing; empty disables spill.
  explicit ResultCache(std::size_t capacity, std::string spill_dir = "");

  // Crash-safe startup scan over the spill directory: validates every
  // *.swc entry (magic, size, checksum) and moves the corrupt ones into a
  // `quarantine/` subdirectory for post-mortem instead of serving them;
  // deletes stale `*.tmp.*` files left behind by a torn shutdown (writers
  // publish via atomic rename, so at a quiescent start any surviving tmp
  // file is garbage — do not run this concurrently with other processes
  // actively spilling into the same directory). No-op without a spill dir.
  RecoveryReport recover_spill_dir();

  std::optional<std::vector<double>> lookup(std::uint64_t key);
  void insert(std::uint64_t key, std::vector<double> value);

  std::size_t size() const;         // in-memory entries
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;
  void reset_stats();
  // Drops the in-memory state (spilled files are kept).
  void clear();

  static std::string spill_filename(std::uint64_t key);

 private:
  void evict_locked();
  bool load_spilled_locked(std::uint64_t key, std::vector<double>& out);
  void store_locked(std::uint64_t key, std::vector<double> value);

  using Entry = std::pair<std::uint64_t, std::vector<double>>;

  const std::size_t capacity_;
  const std::string spill_dir_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace swsim::engine
