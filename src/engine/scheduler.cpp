#include "engine/scheduler.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/obs.h"
#include "robust/fault_injection.h"

namespace swsim::engine {

namespace {

std::string format_seconds(double s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

// Stable metric references (leaky: the registry never moves them, and a
// heap-allocated holder sidesteps static-destruction-order races with pool
// threads still settling jobs at exit).
struct SchedulerMetrics {
  obs::Counter& done =
      obs::MetricsRegistry::global().counter("engine.jobs.done");
  obs::Counter& retried =
      obs::MetricsRegistry::global().counter("engine.jobs.retried");
  obs::Counter& failed =
      obs::MetricsRegistry::global().counter("engine.jobs.failed");
  obs::Counter& timed_out =
      obs::MetricsRegistry::global().counter("engine.jobs.timed_out");
  obs::Counter& cancelled =
      obs::MetricsRegistry::global().counter("engine.jobs.cancelled");
  obs::Histogram& job_seconds =
      obs::MetricsRegistry::global().histogram("engine.job_seconds");
};

SchedulerMetrics& sched_metrics() {
  static SchedulerMetrics* m = new SchedulerMetrics();
  return *m;
}

}  // namespace

Scheduler::Scheduler(ThreadPool& pool)
    : pool_(pool), first_status_(robust::Status::ok()) {}

JobId Scheduler::add(std::string label,
                     std::function<void(const robust::CancelToken&)> fn,
                     const JobOptions& options,
                     const std::vector<JobId>& deps) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    throw std::logic_error("Scheduler::add: DAG is frozen once run() starts");
  }
  const JobId id = jobs_.size();
  Job job;
  job.id = id;
  job.label = std::move(label);
  job.flow_id = obs::current_flow_id();
  job.fn = std::move(fn);
  job.options = options;
  for (const JobId d : deps) {
    if (d >= id) {
      throw std::invalid_argument(
          "Scheduler::add: dependency on a not-yet-added job");
    }
  }
  jobs_.push_back(std::move(job));
  Job& j = jobs_.back();
  for (const JobId d : deps) {
    Job& dep = jobs_[d];
    if (dep.state == JobState::kCancelled || dep.state == JobState::kFailed ||
        dep.state == JobState::kTimedOut) {
      // Depending on an already-dead job makes this job dead on arrival.
      j.state = JobState::kCancelled;
      return id;
    }
    if (dep.state != JobState::kDone) {
      dep.dependents.push_back(id);
      ++j.remaining_deps;
    }
  }
  return id;
}

JobId Scheduler::add(std::string label, std::function<void()> fn,
                     const JobOptions& options,
                     const std::vector<JobId>& deps) {
  return add(
      std::move(label),
      std::function<void(const robust::CancelToken&)>(
          [f = std::move(fn)](const robust::CancelToken&) { f(); }),
      options, deps);
}

JobId Scheduler::add(std::string label, std::function<void()> fn,
                     const std::vector<JobId>& deps) {
  return add(std::move(label), std::move(fn), JobOptions{}, deps);
}

void Scheduler::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  cancel_locked(id);
}

void Scheduler::cancel_locked(JobId id) {
  Job& j = jobs_[id];
  // Running jobs finish on their own; terminal jobs are already settled.
  if (j.state != JobState::kPending && j.state != JobState::kReady &&
      j.state != JobState::kBackoff) {
    return;
  }
  const bool was_released = j.state == JobState::kReady;
  j.state = JobState::kCancelled;
  j.failed_at_us = obs::wall_now_us();
  j.status = robust::Status::error(robust::StatusCode::kCancelled,
                                   "cancelled before running",
                                   "job '" + j.label + "'");
  sched_metrics().cancelled.add();
  auto& elog = obs::EventLog::global();
  if (elog.enabled(obs::LogLevel::kDebug)) {
    elog.event(obs::LogLevel::kDebug, "job_cancelled", j.failed_at_us)
        .str("job", j.label)
        .emit();
  }
  if (running_) {
    // A released job sits in the pool queue; execute() observes kCancelled,
    // settles its outstanding_ count and cascades. An unreleased or
    // backing-off job (not in the pool queue) settles here.
    if (was_released) return;
    settle_locked();
  }
  for (const JobId d : j.dependents) cancel_locked(d);
}

void Scheduler::settle_locked() {
  obs::ProgressReporter::global().job_done();
  if (--outstanding_ == 0) done_cv_.notify_all();
}

void Scheduler::release_locked(JobId id) {
  Job& j = jobs_[id];
  if (j.state != JobState::kPending || j.remaining_deps != 0) return;
  j.state = JobState::kReady;
  pool_.submit([this, id] { execute(id); });
}

void Scheduler::execute(JobId id) {
  std::function<void(const robust::CancelToken&)> fn;
  robust::CancelToken token;
  std::string label;
  std::uint64_t flow = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job& j = jobs_[id];
    if (j.state == JobState::kCancelled) {
      // Was cancelled after release; settle it now.
      settle_locked();
      for (const JobId d : j.dependents) cancel_locked(d);
      return;
    }
    if (robust::process_cancel_requested()) {
      // Process-wide shutdown (^C / forced drain): skip work that has not
      // started instead of paying each job's setup just to observe the
      // token. Jobs already running abort at their next cooperative poll.
      j.state = JobState::kCancelled;
      j.failed_at_us = obs::wall_now_us();
      j.status = robust::Status::error(robust::StatusCode::kCancelled,
                                       "cancelled by shutdown request",
                                       "job '" + j.label + "'");
      j.error = j.status.message();
      sched_metrics().cancelled.add();
      settle_locked();
      for (const JobId d : j.dependents) cancel_locked(d);
      return;
    }
    if (j.options.has_deadline() &&
        std::chrono::steady_clock::now() >= j.options.not_after) {
      // The request-level deadline expired while the job waited in the pool
      // queue: nobody is waiting for this answer, so refuse to compute it.
      j.state = JobState::kTimedOut;
      j.failed_at_us = obs::wall_now_us();
      j.status = robust::Status::error(
          robust::StatusCode::kDeadlineExceeded,
          "request deadline expired before the job started",
          "job '" + j.label + "'");
      j.error = j.status.message();
      sched_metrics().timed_out.add();
      auto& elog = obs::EventLog::global();
      if (elog.enabled(obs::LogLevel::kWarn)) {
        elog.event(obs::LogLevel::kWarn, "job_deadline_shed", j.failed_at_us)
            .str("job", j.label)
            .emit();
      }
      if (first_error_.empty()) {
        first_error_ = "job '" + j.label + "' failed: " + j.error;
        first_status_ = j.status;
      }
      settle_locked();
      for (const JobId d : j.dependents) cancel_locked(d);
      return;
    }
    j.state = JobState::kRunning;
    j.token = robust::CancelToken();  // fresh token per attempt
    j.started_at = std::chrono::steady_clock::now();
    ++j.attempts;
    token = j.token;
    label = j.label;
    flow = j.flow_id;
    fn = j.fn;  // copy out: run without holding the lock
    if (j.options.timeout_seconds > 0.0 || j.options.has_deadline()) {
      // Wake the run() waiter so it starts watching this deadline.
      done_cv_.notify_all();
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  robust::Status outcome = robust::Status::ok();
  {
    obs::Span span(label, "job");
    // Bind this worker-thread span into the originating request's flow
    // (the arrow chain client → session → dispatcher → solver jobs).
    if (flow != 0) obs::record_flow(label, "job", flow, 't');
    try {
      // Deterministic fault harness: a no-op unless a test or --inject
      // armed a plan for this label.
      robust::FaultPlan::global().on_job_enter(label);
      fn(token);
    } catch (...) {
      outcome = robust::status_of_current_exception();
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sched_metrics().job_seconds.observe(seconds);

  std::lock_guard<std::mutex> lock(mutex_);
  Job& j = jobs_[id];
  j.seconds += seconds;
  if (j.state == JobState::kTimedOut) {
    // The deadline expired while fn ran; the failure is already recorded
    // and dependents cancelled. Discard the result and settle.
    settle_locked();
    return;
  }
  if (outcome.is_ok()) {
    j.state = JobState::kDone;
    sched_metrics().done.add();
    for (const JobId d : j.dependents) {
      if (jobs_[d].state == JobState::kPending &&
          --jobs_[d].remaining_deps == 0) {
        release_locked(d);
      }
    }
    settle_locked();
    return;
  }
  if (robust::is_retryable(outcome.code()) &&
      j.attempts <= j.options.max_retries &&
      !(j.options.has_deadline() &&
        std::chrono::steady_clock::now() >= j.options.not_after)) {
    // Budget left: re-queue this job after a linear backoff. outstanding_
    // is untouched — the job is still in flight. The backoff is served by
    // the run_all() timer loop, not by parking a pool worker: the job sits
    // in kBackoff (off the pool) until retry_at, so other ready jobs keep
    // the workers busy during a fault storm.
    const double backoff =
        j.options.backoff_seconds * static_cast<double>(j.attempts);
    sched_metrics().retried.add();
    auto& elog = obs::EventLog::global();
    if (elog.enabled(obs::LogLevel::kInfo)) {
      elog.event(obs::LogLevel::kInfo, "job_retry")
          .str("job", j.label)
          .uint("attempt", j.attempts)
          .str("code", robust::to_string(outcome.code()))
          .num("backoff_s", backoff)
          .emit();
    }
    if (backoff <= 0.0) {
      j.state = JobState::kReady;
      pool_.submit([this, id] { execute(id); });
    } else {
      j.state = JobState::kBackoff;
      j.retry_at = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(backoff));
      done_cv_.notify_all();  // wake the timer loop to watch retry_at
    }
    return;
  }
  j.state = JobState::kFailed;
  j.failed_at_us = obs::wall_now_us();
  j.status = outcome.with_context("job '" + j.label + "'");
  j.error = outcome.message();
  sched_metrics().failed.add();
  {
    auto& elog = obs::EventLog::global();
    if (elog.enabled(obs::LogLevel::kError)) {
      elog.event(obs::LogLevel::kError, "job_failed", j.failed_at_us)
          .str("job", j.label)
          .str("code", robust::to_string(outcome.code()))
          .str("message", outcome.message())
          .uint("attempts", j.attempts)
          .emit();
    }
  }
  if (first_error_.empty()) {
    first_error_ = "job '" + j.label + "' failed: " + j.error;
    first_status_ = j.status;
  }
  for (const JobId d : j.dependents) cancel_locked(d);
  settle_locked();
}

std::optional<std::chrono::steady_clock::time_point>
Scheduler::next_timer_locked() const {
  std::optional<std::chrono::steady_clock::time_point> next;
  const auto consider = [&next](std::chrono::steady_clock::time_point t) {
    if (!next || t < *next) next = t;
  };
  for (const Job& j : jobs_) {
    if (j.state == JobState::kBackoff) {
      // A backoff whose request deadline lands first should fail then, not
      // wait out the full backoff just to be shed at the next attempt.
      consider(j.options.has_deadline() && j.options.not_after < j.retry_at
                   ? j.options.not_after
                   : j.retry_at);
      continue;
    }
    if (j.state != JobState::kRunning) continue;
    if (j.options.timeout_seconds > 0.0) {
      consider(j.started_at + std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(
                                      j.options.timeout_seconds)));
    }
    if (j.options.has_deadline()) consider(j.options.not_after);
  }
  return next;
}

void Scheduler::service_timers_locked() {
  const auto now = std::chrono::steady_clock::now();
  for (Job& j : jobs_) {
    if (j.state == JobState::kBackoff) {
      if (j.options.has_deadline() && now >= j.options.not_after) {
        // The request deadline expired during the backoff sleep: the retry
        // would only be shed at pickup, so fail the job here. It is off the
        // pool (not queued), so it settles like a cancelled backoff job.
        j.state = JobState::kTimedOut;
        j.failed_at_us = obs::wall_now_us();
        j.status = robust::Status::error(
            robust::StatusCode::kDeadlineExceeded,
            "request deadline expired during retry backoff",
            "job '" + j.label + "'");
        j.error = j.status.message();
        sched_metrics().timed_out.add();
        if (first_error_.empty()) {
          first_error_ = "job '" + j.label + "' failed: " + j.error;
          first_status_ = j.status;
        }
        for (const JobId d : j.dependents) cancel_locked(d);
        settle_locked();
      } else if (now >= j.retry_at) {
        j.state = JobState::kReady;
        const JobId id = j.id;
        pool_.submit([this, id] { execute(id); });
      }
      continue;
    }
    if (j.state != JobState::kRunning) continue;
    const double elapsed =
        std::chrono::duration<double>(now - j.started_at).count();
    const bool attempt_over = j.options.timeout_seconds > 0.0 &&
                              elapsed >= j.options.timeout_seconds;
    const bool deadline_over =
        j.options.has_deadline() && now >= j.options.not_after;
    if (!attempt_over && !deadline_over) continue;
    j.state = JobState::kTimedOut;
    j.failed_at_us = obs::wall_now_us();
    // The request deadline takes classification precedence: the caller
    // stopped waiting, which is retryable with a fresh budget (and never a
    // quarantine strike), unlike a per-attempt kTimeout.
    j.status =
        deadline_over
            ? robust::Status::error(robust::StatusCode::kDeadlineExceeded,
                                    "exceeded request deadline while running",
                                    "job '" + j.label + "'")
            : robust::Status::error(
                  robust::StatusCode::kTimeout,
                  "exceeded " + format_seconds(j.options.timeout_seconds) +
                      " s deadline",
                  "job '" + j.label + "'");
    j.error = j.status.message();
    sched_metrics().timed_out.add();
    {
      auto& elog = obs::EventLog::global();
      if (elog.enabled(obs::LogLevel::kWarn)) {
        elog.event(obs::LogLevel::kWarn, "job_timeout", j.failed_at_us)
            .str("job", j.label)
            .str("code", robust::to_string(j.status.code()))
            .num("limit_s", j.options.timeout_seconds)
            .num("elapsed_s", elapsed)
            .emit();
      }
    }
    // Ask the closure to stop; it settles outstanding_ when it returns.
    j.token.request_cancel();
    if (first_error_.empty()) {
      first_error_ = "job '" + j.label + "' failed: " + j.error;
      first_status_ = j.status;
    }
    for (const JobId d : j.dependents) cancel_locked(d);
  }
}

robust::Status Scheduler::run_all() {
  obs::Span span("scheduler.run", "engine");
  bool any_timer = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      throw std::logic_error("Scheduler::run: already run");
    }
    running_ = true;
    // Jobs cancelled before run() (or dead on arrival) are terminal and
    // never hit the pool; everything else is outstanding. A timer loop is
    // needed if any job can time out or enter a timed retry backoff.
    for (const Job& j : jobs_) {
      if (!is_terminal(j.state)) ++outstanding_;
      any_timer = any_timer || j.options.timeout_seconds > 0.0 ||
                  j.options.has_deadline() ||
                  (j.options.max_retries > 0 &&
                   j.options.backoff_seconds > 0.0);
    }
    if (outstanding_ == 0) return first_status_;
    obs::ProgressReporter::global().add_jobs(outstanding_);
    for (Job& j : jobs_) {
      if (j.state == JobState::kPending && j.remaining_deps == 0) {
        release_locked(j.id);
      }
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!any_timer) {
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  } else {
    // Timer loop: sleep until the earliest running deadline or backoff
    // expiry (or until woken by a settle / a timed job starting / a job
    // entering backoff), then expire overdue jobs and re-release any
    // backoff job whose wait is over.
    while (outstanding_ > 0) {
      if (const auto next = next_timer_locked()) {
        done_cv_.wait_until(lock, *next);
        service_timers_locked();
      } else {
        done_cv_.wait(lock);
      }
    }
  }
  return first_status_;
}

void Scheduler::run() {
  const robust::Status status = run_all();
  if (!status.is_ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    throw std::runtime_error(first_error_);
  }
}

std::size_t Scheduler::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

const Job& Scheduler::job(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.at(id);
}

std::size_t Scheduler::count(JobState s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Job& j : jobs_) n += j.state == s ? 1 : 0;
  return n;
}

double Scheduler::total_job_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double s = 0.0;
  for (const Job& j : jobs_) s += j.seconds;
  return s;
}

}  // namespace swsim::engine
