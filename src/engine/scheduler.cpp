#include "engine/scheduler.h"

#include <chrono>
#include <stdexcept>

namespace swsim::engine {

Scheduler::Scheduler(ThreadPool& pool) : pool_(pool) {}

JobId Scheduler::add(std::string label, std::function<void()> fn,
                     const std::vector<JobId>& deps) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    throw std::logic_error("Scheduler::add: DAG is frozen once run() starts");
  }
  const JobId id = jobs_.size();
  Job job;
  job.id = id;
  job.label = std::move(label);
  job.fn = std::move(fn);
  for (const JobId d : deps) {
    if (d >= id) {
      throw std::invalid_argument(
          "Scheduler::add: dependency on a not-yet-added job");
    }
  }
  jobs_.push_back(std::move(job));
  Job& j = jobs_.back();
  for (const JobId d : deps) {
    Job& dep = jobs_[d];
    if (dep.state == JobState::kCancelled || dep.state == JobState::kFailed) {
      // Depending on an already-dead job makes this job dead on arrival.
      j.state = JobState::kCancelled;
      return id;
    }
    if (dep.state != JobState::kDone) {
      dep.dependents.push_back(id);
      ++j.remaining_deps;
    }
  }
  return id;
}

void Scheduler::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  cancel_locked(id);
}

void Scheduler::cancel_locked(JobId id) {
  Job& j = jobs_[id];
  // Running jobs finish on their own; terminal jobs are already settled.
  if (j.state != JobState::kPending && j.state != JobState::kReady) return;
  const bool was_released = j.state == JobState::kReady;
  j.state = JobState::kCancelled;
  if (running_) {
    // A released job sits in the pool queue; execute() observes kCancelled,
    // settles its outstanding_ count and cascades. An unreleased job
    // settles here.
    if (was_released) return;
    if (--outstanding_ == 0) done_cv_.notify_all();
  }
  for (const JobId d : j.dependents) cancel_locked(d);
}

void Scheduler::release_locked(JobId id) {
  Job& j = jobs_[id];
  if (j.state != JobState::kPending || j.remaining_deps != 0) return;
  j.state = JobState::kReady;
  pool_.submit([this, id] { execute(id); });
}

void Scheduler::execute(JobId id) {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job& j = jobs_[id];
    if (j.state == JobState::kCancelled) {
      // Was cancelled after release; settle it now.
      if (--outstanding_ == 0) done_cv_.notify_all();
      for (const JobId d : j.dependents) cancel_locked(d);
      return;
    }
    j.state = JobState::kRunning;
    fn = j.fn;  // copy out: run without holding the lock
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::string error;
  try {
    fn();
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown exception";
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::lock_guard<std::mutex> lock(mutex_);
  Job& j = jobs_[id];
  j.seconds = seconds;
  if (error.empty()) {
    j.state = JobState::kDone;
    for (const JobId d : j.dependents) {
      if (jobs_[d].state == JobState::kPending &&
          --jobs_[d].remaining_deps == 0) {
        release_locked(d);
      }
    }
  } else {
    j.state = JobState::kFailed;
    j.error = error;
    if (first_error_.empty()) {
      first_error_ = "job '" + j.label + "' failed: " + error;
    }
    for (const JobId d : j.dependents) cancel_locked(d);
  }
  if (--outstanding_ == 0) done_cv_.notify_all();
}

void Scheduler::run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      throw std::logic_error("Scheduler::run: already run");
    }
    running_ = true;
    // Jobs cancelled before run() (or dead on arrival) are terminal and
    // never hit the pool; everything else is outstanding.
    for (const Job& j : jobs_) {
      if (!is_terminal(j.state)) ++outstanding_;
    }
    if (outstanding_ == 0) return;
    for (Job& j : jobs_) {
      if (j.state == JobState::kPending && j.remaining_deps == 0) {
        release_locked(j.id);
      }
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  if (!first_error_.empty()) {
    throw std::runtime_error(first_error_);
  }
}

std::size_t Scheduler::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

const Job& Scheduler::job(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.at(id);
}

std::size_t Scheduler::count(JobState s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Job& j : jobs_) n += j.state == s ? 1 : 0;
  return n;
}

double Scheduler::total_job_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double s = 0.0;
  for (const Job& j : jobs_) s += j.seconds;
  return s;
}

}  // namespace swsim::engine
