// Work-stealing thread pool.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (hot in
// cache) and steals FIFO from the front of a sibling's deque when its own
// is empty, which takes the oldest — typically largest-remaining — work
// item. External submissions are distributed round-robin across the
// worker deques. All deques share one mutex: at the job granularity this
// pool targets (a gate solve is micro- to multi-second work) lock traffic
// is noise, and a single lock keeps the pool trivially
// ThreadSanitizer-clean. The stealing *policy* — who runs what next — is
// what matters for throughput here, not lock-free queue mechanics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace swsim::engine {

class ThreadPool {
 public:
  // threads == 0 picks default_threads(). The pool spawns exactly
  // `threads` workers; the constructing thread never runs jobs.
  explicit ThreadPool(std::size_t threads = 0);
  // Drains nothing: pending tasks are abandoned only if wait_idle() was
  // not called; the destructor stops workers after their current task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Thread-safe; may be called from worker threads
  // (a task submitted from a worker lands on that worker's own deque).
  void submit(std::function<void()> fn);

  // Blocks until every submitted task has finished.
  void wait_idle();

  // Runs fn(begin, end) over every chunk of [0, n) with fixed chunk size
  // `grain`, possibly on several threads, and returns when all chunks are
  // done. The calling thread participates (it claims chunks like any
  // helper), so the call is deadlock-free when issued from a pool worker —
  // that is what lets batch-level jobs and intra-solve work share one
  // pool. Chunk boundaries depend only on (n, grain), never on the thread
  // count, so callers whose chunks write disjoint outputs (or that combine
  // per-chunk partials in chunk order) get byte-identical results for any
  // pool size. The first exception thrown by fn is rethrown here after all
  // chunks finish.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

  // Hardware concurrency, floored at 1.
  static std::size_t default_threads();

 private:
  void worker_loop(std::size_t self);
  // Pops own back, else steals a sibling's front. Caller holds mutex_.
  // `stole` reports whether the task came from a sibling's deque.
  bool try_pop_locked(std::size_t self, std::function<void()>& out,
                      bool& stole);

  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // queues gained work / stopping
  std::condition_variable idle_cv_;   // a task finished
  std::size_t next_queue_ = 0;        // round-robin cursor for submissions
  std::size_t pending_ = 0;           // queued + running tasks
  bool stop_ = false;

  // Observability (stable references into the leaky registry; every record
  // is a no-op relaxed load unless metrics are armed).
  obs::Counter& m_submitted_;
  obs::Counter& m_executed_;
  obs::Counter& m_stolen_;
  obs::Counter& m_busy_us_;
  obs::Gauge& m_pending_;
  obs::Gauge& m_threads_;
};

}  // namespace swsim::engine
