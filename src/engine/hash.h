// Stable content hashing for the result cache.
//
// Cache keys must be identical across runs, processes, and job counts, so
// nothing pointer- or address-dependent may enter the hash and floating
// point values are hashed by a canonical bit pattern (-0.0 folds onto +0.0,
// every NaN folds onto the quiet NaN). The algorithm is FNV-1a over an
// explicit little-endian byte stream, so the key for a given configuration
// is a portable 64-bit constant.
//
// The hash_of() overloads define the cache key *contract*: every parameter
// that changes a gate's physics is hashed; anything that only changes
// presentation (output paths, verbosity) is not. RNG-seeded physics
// (thermal noise, Monte-Carlo disturbances) is hashed too — but callers
// must BYPASS the cache for such runs unless the seed fully determines the
// result they want to reuse (see docs/PHYSICS.md, "Evaluation engine").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/micromag_gate.h"
#include "core/triangle_gate.h"
#include "core/variability.h"
#include "geom/gate_layout.h"
#include "mag/material.h"

namespace swsim::engine {

// Incremental FNV-1a (64-bit) hasher over a canonical byte stream.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t n);
  Fnv1a& u64(std::uint64_t v);  // little-endian byte order, explicitly
  Fnv1a& i64(std::int64_t v);
  Fnv1a& f64(double v);  // canonical: -0.0 -> +0.0, NaN -> quiet NaN
  Fnv1a& boolean(bool b);
  // Length-prefixed so "ab"+"c" and "a"+"bc" hash differently.
  Fnv1a& str(const std::string& s);
  Fnv1a& bits(const std::vector<bool>& v);

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;  // FNV offset basis
};

// Order-dependent key combination (NOT commutative).
std::uint64_t combine(std::uint64_t a, std::uint64_t b);

// Key contract: every physics-relevant field of each configuration.
std::uint64_t hash_of(const geom::TriangleGateParams& p);
std::uint64_t hash_of(const mag::Material& m);
std::uint64_t hash_of(const core::TriangleGateConfig& c);
std::uint64_t hash_of(const core::MicromagGateConfig& c);
std::uint64_t hash_of(const core::VariabilityModel& m);

}  // namespace swsim::engine
