#include "engine/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/clock.h"
#include "obs/trace.h"

namespace swsim::engine {

namespace {
// Which pool/worker the current thread belongs to, so submissions from a
// worker go to its own deque (the LIFO fast path of work stealing).
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : m_submitted_(obs::MetricsRegistry::global().counter("pool.tasks.submitted")),
      m_executed_(obs::MetricsRegistry::global().counter("pool.tasks.executed")),
      m_stolen_(obs::MetricsRegistry::global().counter("pool.tasks.stolen")),
      m_busy_us_(obs::MetricsRegistry::global().counter("pool.busy_us")),
      m_pending_(obs::MetricsRegistry::global().gauge("pool.pending")),
      m_threads_(obs::MetricsRegistry::global().gauge("pool.threads")) {
  if (threads == 0) threads = default_threads();
  m_threads_.set(static_cast<std::int64_t>(threads));
  queues_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t target;
    if (tl_pool == this) {
      target = tl_worker;  // worker self-submission: own deque, LIFO end
    } else {
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    queues_[target].push_back(std::move(fn));
    ++pending_;
    m_submitted_.add();
    m_pending_.set(static_cast<std::int64_t>(pending_));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop_locked(std::size_t self, std::function<void()>& out,
                                bool& stole) {
  stole = false;
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].back());  // own work: LIFO
    queues_[self].pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = (self + k) % queues_.size();
    if (!queues_[victim].empty()) {
      out = std::move(queues_[victim].front());  // steal: FIFO
      queues_[victim].pop_front();
      stole = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_worker = self;
  obs::set_thread_name("worker-" + std::to_string(self));
  for (;;) {
    std::function<void()> task;
    bool stole = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || try_pop_locked(self, task, stole); });
      if (!task) return;  // stop_ and nothing poppable
    }
    if (stole) m_stolen_.add();
    {
      obs::ScopedTimerUs busy(m_busy_us_);
      task();
    }
    m_executed_.add();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      m_pending_.set(static_cast<std::int64_t>(pending_));
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1 || workers_.empty()) {
    fn(0, n);
    return;
  }

  // Shared by the caller and the helper tasks. Helpers hold their own
  // shared_ptr (and a copy of fn lives inside), so a helper that wakes up
  // after the caller has already returned touches nothing dangling.
  struct State {
    std::function<void(std::size_t, std::size_t)> fn;
    std::size_t n = 0, grain = 0, chunks = 0;
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  auto st = std::make_shared<State>();
  st->fn = fn;
  st->n = n;
  st->grain = grain;
  st->chunks = chunks;

  auto drain = [st] {
    for (;;) {
      const std::size_t c = st->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= st->chunks) return;
      const std::size_t begin = c * st->grain;
      const std::size_t end = std::min(st->n, begin + st->grain);
      try {
        st->fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->mu);
        if (!st->error) st->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(st->mu);
        ++st->done;
      }
      st->done_cv.notify_all();
    }
  };

  const std::size_t helpers = std::min(chunks - 1, workers_.size());
  for (std::size_t h = 0; h < helpers; ++h) submit(drain);
  drain();  // the caller claims chunks too — no idle wait, no deadlock
  std::unique_lock<std::mutex> lock(st->mu);
  st->done_cv.wait(lock, [&] { return st->done == st->chunks; });
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace swsim::engine
