// Dependency-aware job scheduler on top of ThreadPool.
//
// Usage: add() jobs (with optional dependency edges, forming a DAG), then
// run() or run_all(). Ready jobs are released to the pool; when a job
// finishes, its dependents' counters tick down and newly-ready jobs are
// released. A failed job (closure threw) transitively cancels everything
// downstream of it; run() then throws with the first failure's message,
// after every job has reached a terminal state, while run_all() returns
// the first failure's robust::Status instead — the entry point for
// partial-batch callers that want every healthy job's result plus a
// structured account of the rest.
//
// Resilience (per-job JobOptions):
//  - timeout_seconds: while a job runs past its deadline it is marked
//    kTimedOut, its dependents are cancelled, and its CancelToken is
//    tripped; the closure keeps its worker until it observes the token
//    (cooperative — no preemption), and its result is discarded.
//  - max_retries / backoff_seconds: a closure that throws with a
//    *retryable* status (robust::is_retryable — numerical divergence,
//    cache corruption, internal errors; never timeouts) is re-executed
//    after a linear backoff, up to the retry budget. The job waits out
//    the backoff in kBackoff, re-released by run_all()'s timer loop —
//    no pool worker is parked, so concurrent retries cannot starve
//    ready jobs of workers.
//
// cancel() before/during run() prunes a job and its dependents; a job
// already running is not preempted (cooperative cancellation).
//
// A Scheduler instance is single-shot: build the DAG, run it, then read
// the per-job records (state, wall seconds, status, attempts).
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>

#include "engine/job.h"
#include "engine/thread_pool.h"
#include "robust/status.h"

namespace swsim::engine {

class Scheduler {
 public:
  explicit Scheduler(ThreadPool& pool);

  // Registers a job. `deps` must name already-added jobs (the DAG is built
  // in topological order by construction). Must not be called after run().
  // Token-aware closures receive the current attempt's CancelToken and
  // should poll it during long solves.
  JobId add(std::string label,
            std::function<void(const robust::CancelToken&)> fn,
            const JobOptions& options, const std::vector<JobId>& deps = {});
  JobId add(std::string label, std::function<void()> fn,
            const JobOptions& options, const std::vector<JobId>& deps = {});
  JobId add(std::string label, std::function<void()> fn,
            const std::vector<JobId>& deps = {});

  // Cancels a non-terminal, not-yet-running job and, transitively, its
  // dependents. Safe to call before or during run().
  void cancel(JobId id);

  // Releases ready jobs and blocks until every job is terminal. Throws
  // std::runtime_error naming the first failed job, if any.
  void run();

  // Like run() but never throws on job failure: returns ok when every job
  // finished, else the first failure's status. Inspect job(id) afterwards
  // for the per-job account.
  robust::Status run_all();

  // Post-run inspection.
  std::size_t size() const;
  const Job& job(JobId id) const;
  std::size_t count(JobState s) const;
  // Sum of wall seconds across jobs that ran (the "work" the DAG cost;
  // compare against elapsed wall time for effective parallelism).
  double total_job_seconds() const;

 private:
  void release_locked(JobId id);           // kPending -> kReady -> pool
  void cancel_locked(JobId id);            // cascades over dependents
  void execute(JobId id);                  // runs on a pool thread
  void settle_locked();                    // one outstanding job became terminal
  // Earliest timer among running jobs' deadlines and backoff expiries.
  std::optional<std::chrono::steady_clock::time_point> next_timer_locked()
      const;
  // kRunning past deadline -> kTimedOut; kBackoff past retry_at -> kReady.
  void service_timers_locked();

  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<Job> jobs_;
  std::size_t outstanding_ = 0;  // jobs not yet settled
  bool running_ = false;
  std::string first_error_;
  robust::Status first_status_;
};

}  // namespace swsim::engine
