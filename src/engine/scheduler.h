// Dependency-aware job scheduler on top of ThreadPool.
//
// Usage: add() jobs (with optional dependency edges, forming a DAG), then
// run(). Ready jobs are released to the pool; when a job finishes, its
// dependents' counters tick down and newly-ready jobs are released. A
// failed job (closure threw) transitively cancels everything downstream
// of it; run() then throws with the first failure's message, after every
// job has reached a terminal state. cancel() before/during run() prunes a
// job and its dependents; a job already running is not preempted
// (cooperative cancellation).
//
// A Scheduler instance is single-shot: build the DAG, run it, then read
// the per-job records (state, wall seconds, error).
#pragma once

#include <mutex>
#include <condition_variable>

#include "engine/job.h"
#include "engine/thread_pool.h"

namespace swsim::engine {

class Scheduler {
 public:
  explicit Scheduler(ThreadPool& pool);

  // Registers a job. `deps` must name already-added jobs (the DAG is built
  // in topological order by construction). Must not be called after run().
  JobId add(std::string label, std::function<void()> fn,
            const std::vector<JobId>& deps = {});

  // Cancels a non-terminal, not-yet-running job and, transitively, its
  // dependents. Safe to call before or during run().
  void cancel(JobId id);

  // Releases ready jobs and blocks until every job is terminal. Throws
  // std::runtime_error naming the first failed job, if any.
  void run();

  // Post-run inspection.
  std::size_t size() const;
  const Job& job(JobId id) const;
  std::size_t count(JobState s) const;
  // Sum of wall seconds across jobs that ran (the "work" the DAG cost;
  // compare against elapsed wall time for effective parallelism).
  double total_job_seconds() const;

 private:
  void release_locked(JobId id);           // kPending -> kReady -> pool
  void cancel_locked(JobId id);            // cascades over dependents
  void execute(JobId id);                  // runs on a pool thread

  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<Job> jobs_;
  std::size_t outstanding_ = 0;  // jobs not yet terminal
  bool running_ = false;
  std::string first_error_;
};

}  // namespace swsim::engine
