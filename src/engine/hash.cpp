#include "engine/hash.h"

#include <bit>
#include <cmath>

namespace swsim::engine {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

Fnv1a& Fnv1a::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= static_cast<std::uint64_t>(p[i]);
    h_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::u64(std::uint64_t v) {
  // Explicit little-endian byte order so the stream does not depend on the
  // host's representation.
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffu);
  }
  return bytes(b, sizeof b);
}

Fnv1a& Fnv1a::i64(std::int64_t v) {
  return u64(static_cast<std::uint64_t>(v));
}

Fnv1a& Fnv1a::f64(double v) {
  if (v == 0.0) v = 0.0;  // folds -0.0 onto +0.0
  if (std::isnan(v)) {
    return u64(0x7ff8000000000000ULL);  // canonical quiet NaN
  }
  return u64(std::bit_cast<std::uint64_t>(v));
}

Fnv1a& Fnv1a::boolean(bool b) {
  const unsigned char byte = b ? 1 : 0;
  return bytes(&byte, 1);
}

Fnv1a& Fnv1a::str(const std::string& s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Fnv1a& Fnv1a::bits(const std::vector<bool>& v) {
  u64(v.size());
  for (const bool b : v) boolean(b);
  return *this;
}

std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return Fnv1a().u64(a).u64(b).digest();
}

std::uint64_t hash_of(const geom::TriangleGateParams& p) {
  return Fnv1a()
      .str("TriangleGateParams")
      .f64(p.wavelength)
      .f64(p.width)
      .f64(p.n_arm)
      .f64(p.n_axis_half)
      .f64(p.n_feed)
      .f64(p.n_out)
      .f64(p.arm_half_angle_deg)
      .boolean(p.has_third_input)
      .f64(p.xor_out_distance)
      .digest();
}

std::uint64_t hash_of(const mag::Material& m) {
  // The name participates only through the physics it implies; two
  // materials with identical parameters are the same device.
  return Fnv1a()
      .str("Material")
      .f64(m.ms)
      .f64(m.aex)
      .f64(m.alpha)
      .f64(m.ku)
      .digest();
}

std::uint64_t hash_of(const core::TriangleGateConfig& c) {
  return Fnv1a()
      .str("TriangleGateConfig")
      .u64(hash_of(c.params))
      .u64(hash_of(c.material))
      .f64(c.film_thickness)
      .i64(static_cast<std::int64_t>(c.split))
      .boolean(c.inverted)
      .f64(c.threshold)
      .digest();
}

std::uint64_t hash_of(const core::MicromagGateConfig& c) {
  Fnv1a h;
  h.str("MicromagGateConfig")
      .u64(hash_of(c.params))
      .u64(hash_of(c.material))
      .f64(c.film_thickness)
      .f64(c.cell_size)
      .f64(c.drive_amplitude)
      .f64(c.antenna_extent_factor)
      .f64(c.duration)
      .f64(c.dt)
      .f64(c.settle_fraction)
      .f64(c.temperature)
      .u64(c.thermal_seed)
      .f64(c.margin)
      .f64(c.absorber_wavelengths)
      .f64(c.absorber_alpha);
  // The watchdog is part of the key: a divergence recovered by step
  // halving legitimately yields different bits than an unguarded solve.
  h.u64(c.watchdog.cadence)
      .f64(c.watchdog.norm_drift_tol)
      .f64(c.watchdog.energy_growth_factor)
      .u64(c.watchdog.max_step_halvings);
  h.boolean(c.roughness.has_value());
  if (c.roughness) {
    h.f64(c.roughness->amplitude)
        .f64(c.roughness->correlation_length)
        .u64(c.roughness->seed);
  }
  // Early stop shortens the integration window, so the bits the offline
  // lock-in sees depend on it and on everything shaping the stop decision.
  // Hashed only when armed: passive telemetry (live_probes, demod window,
  // convergence tracking without early stop) does not change output bytes
  // and must keep the key — and any spilled cache entries — stable.
  if (c.early_stop) {
    h.str("early_stop")
        .f64(c.demod_periods)
        .f64(c.convergence.rel_tolerance)
        .f64(c.convergence.abs_floor)
        .f64(c.convergence.phase_tolerance)
        .i64(c.convergence.windows)
        .f64(c.convergence.min_time);
  }
  return h.digest();
}

std::uint64_t hash_of(const core::VariabilityModel& m) {
  return Fnv1a()
      .str("VariabilityModel")
      .f64(m.sigma_phase)
      .f64(m.sigma_amplitude)
      .u64(m.seed)
      .digest();
}

}  // namespace swsim::engine
