// Batch front-end of the evaluation engine.
//
// Fans a workload — a truth table over any FanoutGate, or a Monte-Carlo
// yield sweep over a TriangleGateBase — out across the thread pool, with
// per-row results memoized in a content-addressed cache. Gate objects are
// not thread-safe, so the caller supplies a *factory* and every job
// constructs its own instance; determinism then follows from the gates
// being pure functions of their configuration.
//
// Determinism contract (tested): for a fixed workload, the outputs are
// bit-identical for every job count, cold or warm cache. Truth-table rows
// are assembled in pattern order; yield trials draw from an independent
// RNG stream per trial (streamed off the model seed) and partial sums are
// folded in a fixed chunk order that does not depend on the thread count.
//
// Cache contract: a truth-table row is cached under
// combine(config_key, hash(pattern)); config_key must hash every
// physics-relevant parameter (use engine::hash_of). Yield sweeps are
// RNG-driven and always bypass the cache — see docs/PHYSICS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "io/table.h"

namespace swsim::engine {

struct EngineConfig {
  std::size_t jobs = 0;  // worker threads; 0 = hardware concurrency
  bool use_cache = true;
  std::size_t cache_capacity = 4096;  // in-memory entries
  std::string spill_dir;              // optional disk spill directory
};

struct EngineStats {
  std::size_t threads = 0;
  std::size_t runs = 0;           // batch calls served
  std::size_t jobs_executed = 0;  // jobs that actually ran (not cache hits)
  double wall_seconds = 0.0;      // wall time across batch calls
  double job_seconds = 0.0;       // summed per-job wall time
  ResultCache::Stats cache;

  // job_seconds / wall_seconds: >1 means the pool ran jobs concurrently.
  double parallel_efficiency() const;
  io::Table table() const;
  std::string str() const;
};

class BatchRunner {
 public:
  using GateFactory = std::function<std::unique_ptr<core::FanoutGate>()>;
  using TriangleFactory =
      std::function<std::unique_ptr<core::TriangleGateBase>()>;

  explicit BatchRunner(const EngineConfig& config = {});

  // Parallel, cached equivalent of core::validate_gate. `config_key` is
  // the content hash of the gate configuration (engine::hash_of).
  // `prepare`, when set, runs once before any row job (rows depend on it)
  // unless every row was served from cache — the hook for shared
  // calibration of micromagnetic gates.
  core::ValidationReport run_truth_table(const GateFactory& factory,
                                         std::uint64_t config_key,
                                         std::function<void()> prepare = {});

  // Parallel equivalent of core::estimate_yield, deterministic for any job
  // count (per-trial RNG streams; fixed-size chunks). Never cached.
  core::YieldReport run_yield(const TriangleFactory& factory,
                              const core::VariabilityModel& model,
                              std::size_t trials);

  ResultCache& cache() { return cache_; }
  const EngineConfig& config() const { return config_; }
  std::size_t threads() const { return pool_.thread_count(); }
  EngineStats stats() const;

 private:
  EngineConfig config_;
  ThreadPool pool_;
  ResultCache cache_;
  mutable std::mutex stats_mutex_;
  std::size_t runs_ = 0;
  std::size_t jobs_executed_ = 0;
  double wall_seconds_ = 0.0;
  double job_seconds_ = 0.0;
};

}  // namespace swsim::engine
