// Batch front-end of the evaluation engine.
//
// Fans a workload — a truth table over any FanoutGate, or a Monte-Carlo
// yield sweep over a TriangleGateBase — out across the thread pool, with
// per-row results memoized in a content-addressed cache. Gate objects are
// not thread-safe, so the caller supplies a *factory* and every job
// constructs its own instance; determinism then follows from the gates
// being pure functions of their configuration.
//
// Determinism contract (tested): for a fixed workload, the outputs are
// bit-identical for every job count, cold or warm cache. Truth-table rows
// are assembled in pattern order; yield trials draw from an independent
// RNG stream per trial (streamed off the model seed) and partial sums are
// folded in a fixed chunk order that does not depend on the thread count.
//
// Cache contract: a truth-table row is cached under
// combine(config_key, hash(pattern)); config_key must hash every
// physics-relevant parameter (use engine::hash_of). Yield sweeps are
// RNG-driven and always bypass the cache — see docs/PHYSICS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"
#include "mag/kernels/runtime.h"
#include "io/table.h"
#include "robust/report.h"
#include "robust/status.h"

namespace swsim::engine {

struct EngineConfig {
  std::size_t jobs = 0;  // worker threads; 0 = hardware concurrency
  // Intra-solve threads for the LLG cell sweeps (mag kernel layer). The
  // sweeps use fixed chunk boundaries, so output is byte-identical for any
  // value. 0 = leave the process-wide setting (SWSIM_CELL_JOBS / CLI)
  // untouched. When > 1, the runner installs its job pool as the shared
  // intra-solve pool for its lifetime, so batch jobs and cell chunks draw
  // from one bounded worker set.
  std::size_t cell_jobs = 0;
  bool use_cache = true;
  std::size_t cache_capacity = 4096;  // in-memory entries
  std::string spill_dir;              // optional disk spill directory

  // Resilience policy, applied per job (see engine/job.h JobOptions).
  double job_timeout_seconds = 0.0;   // 0 disables per-job deadlines
  std::size_t max_retries = 0;        // retry budget for retryable failures
  double retry_backoff_seconds = 0.0; // linear backoff between attempts
  // After this many terminally-failed jobs under one config key, the key is
  // quarantined: later *_checked runs for it are refused without solving.
  // 0 disables quarantine.
  std::size_t quarantine_threshold = 2;
};

struct EngineStats {
  std::size_t threads = 0;
  std::size_t runs = 0;           // batch calls served
  std::size_t jobs_executed = 0;  // jobs that actually ran (not cache hits)
  std::size_t jobs_failed = 0;    // terminal failures (incl. timeouts)
  std::size_t jobs_timed_out = 0; // deadline expiries (subset of failed)
  std::size_t jobs_retried = 0;   // extra attempts spent on retries
  std::size_t quarantined_configs = 0;  // config keys currently quarantined
  double wall_seconds = 0.0;      // wall time across batch calls
  double job_seconds = 0.0;       // summed per-job wall time
  ResultCache::Stats cache;

  // job_seconds / wall_seconds: >1 means the pool ran jobs concurrently.
  double parallel_efficiency() const;
  io::Table table() const;
  std::string str() const;
};

// Result of a fault-tolerant batch call: every healthy row/chunk computed
// normally, plus a structured account of everything that failed. ok() iff
// the whole batch succeeded.
struct TruthTableOutcome {
  core::ValidationReport report;  // failed rows carry a non-ok row.status
  robust::FailureReport failures;
  bool ok() const { return failures.empty(); }
};

struct YieldOutcome {
  // report.trials counts only *completed* trials; yield and margins are
  // normalized over those, so partial results stay statistically honest.
  core::YieldReport report;
  robust::FailureReport failures;
  std::size_t requested_trials = 0;
  bool ok() const { return failures.empty(); }
};

class BatchRunner {
 public:
  using GateFactory = std::function<std::unique_ptr<core::FanoutGate>()>;
  using TriangleFactory =
      std::function<std::unique_ptr<core::TriangleGateBase>()>;

  explicit BatchRunner(const EngineConfig& config = {});

  // Parallel, cached equivalent of core::validate_gate. `config_key` is
  // the content hash of the gate configuration (engine::hash_of).
  // `prepare`, when set, runs once before any row job (rows depend on it)
  // unless every row was served from cache — the hook for shared
  // calibration of micromagnetic gates. Throws (robust::SolveError) on the
  // first row failure; use the _checked variant for partial results.
  core::ValidationReport run_truth_table(const GateFactory& factory,
                                         std::uint64_t config_key,
                                         std::function<void()> prepare = {});

  // Fault-tolerant variant: never throws on job failure. Healthy rows are
  // solved (and cached) as usual; failed rows are returned with a non-ok
  // ValidationRow::status and an entry in the failure report. Jobs run
  // under the EngineConfig resilience policy (timeout, retries); a config
  // key that keeps failing is quarantined and refused outright on later
  // calls. `label` prefixes job names in the failure report ("job 3 / row
  // 2") so batch front-ends can attribute failures. `deadline_seconds`, when
  // > 0, is the caller's remaining end-to-end budget: every job gets an
  // absolute not_after deadline, so rows nobody is waiting for any more are
  // refused at pickup with a retryable kDeadlineExceeded instead of solved
  // (deadline expiries never count as quarantine strikes).
  TruthTableOutcome run_truth_table_checked(
      const GateFactory& factory, std::uint64_t config_key,
      std::function<void()> prepare = {}, const std::string& label = "",
      double deadline_seconds = 0.0);

  // Parallel equivalent of core::estimate_yield, deterministic for any job
  // count (per-trial RNG streams; fixed-size chunks). Never cached. Throws
  // on the first chunk failure; use the _checked variant below.
  core::YieldReport run_yield(const TriangleFactory& factory,
                              const core::VariabilityModel& model,
                              std::size_t trials);

  // Fault-tolerant variant: surviving chunks are folded (in chunk order,
  // so the statistics stay deterministic) over completed trials only; lost
  // chunks are reported. Yield sweeps bypass the cache and carry no config
  // key, so quarantine does not apply.
  YieldOutcome run_yield_checked(const TriangleFactory& factory,
                                 const core::VariabilityModel& model,
                                 std::size_t trials,
                                 const std::string& label = "",
                                 double deadline_seconds = 0.0);

  // True when `config_key` has been quarantined (too many failed jobs).
  bool is_quarantined(std::uint64_t config_key) const;

  ResultCache& cache() { return cache_; }
  const EngineConfig& config() const { return config_; }
  std::size_t threads() const { return pool_.thread_count(); }
  EngineStats stats() const;

 private:
  JobOptions job_options(double deadline_seconds = 0.0) const;
  void absorb_scheduler_stats_locked(const class Scheduler& scheduler);

  EngineConfig config_;
  ThreadPool pool_;
  ResultCache cache_;
  // Installs pool_ as the mag kernels' intra-solve pool for this runner's
  // lifetime (no-op when cell_jobs resolves to <= 1). Declared after pool_
  // so it is destroyed first.
  std::unique_ptr<mag::kernels::ScopedSharedPool> shared_pool_;
  mutable std::mutex stats_mutex_;
  std::size_t runs_ = 0;
  std::size_t jobs_executed_ = 0;
  std::size_t jobs_failed_ = 0;
  std::size_t jobs_timed_out_ = 0;
  std::size_t jobs_retried_ = 0;
  double wall_seconds_ = 0.0;
  double job_seconds_ = 0.0;
  // Poison tracking: failed-job strikes per config key, and the status that
  // quarantined the key once strikes reach the threshold.
  std::unordered_map<std::uint64_t, std::size_t> strikes_;
  std::unordered_map<std::uint64_t, robust::Status> quarantine_;
};

}  // namespace swsim::engine
