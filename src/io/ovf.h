// OVF 2.0 (OOMMF Vector Field) text I/O.
//
// The interchange format of the micromagnetic world: MuMax3 and OOMMF both
// read/write it, so fields simulated here can be compared against those
// packages (and vice versa). Only the rectangular-mesh, text-data subset
// is implemented — the part the ecosystem actually uses for m-files.
#pragma once

#include <string>

#include "math/field.h"

namespace swsim::io {

// Writes a vector field as OVF 2.0 text. `title` lands in the Title
// header. Throws std::runtime_error when the file cannot be written.
void write_ovf(const std::string& path, const swsim::math::VectorField& field,
               const std::string& title = "swsim magnetization");

// Reads an OVF 2.0 text file written by write_ovf (or by MuMax3/OOMMF with
// text data). Throws std::runtime_error on malformed input.
swsim::math::VectorField read_ovf(const std::string& path);

}  // namespace swsim::io
