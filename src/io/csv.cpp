#include "io/csv.h"

#include <stdexcept>

namespace swsim::io {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;       // inside a "..." cell
  bool cell_started = false; // current cell has consumed a character
  bool after_quote = false;  // cell was quoted and the quote has closed
  std::size_t line = 1, col = 0;
  std::size_t quote_line = 0, quote_col = 0;  // where the open quote was

  const auto fail = [&](const std::string& what, std::size_t l,
                        std::size_t c) -> std::runtime_error {
    return std::runtime_error("parse_csv: " + what + " at line " +
                              std::to_string(l) + ", column " +
                              std::to_string(c));
  };
  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
    after_quote = false;
  };
  const auto end_row = [&] {
    // A line with content always contributes a row; a completely blank
    // line (no cells, no pending text) is skipped.
    if (!row.empty() || cell_started || !cell.empty()) {
      end_cell();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    ++col;
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';  // escaped quote
          ++i;
          ++col;
        } else {
          quoted = false;
          after_quote = true;
        }
      } else {
        cell += ch;
        if (ch == '\n') {
          ++line;
          col = 0;
        }
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (after_quote) {
          throw fail("unexpected quote after closing quote", line, col);
        }
        if (cell_started) {
          throw fail("quote opening in the middle of an unquoted cell", line,
                     col);
        }
        quoted = true;
        cell_started = true;
        quote_line = line;
        quote_col = col;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        // Swallowed only as the CR of a CRLF (the '\n' ends the row). A
        // bare CR — lone-CR line endings, or a stray CR inside a cell —
        // would otherwise be silently dropped, so it is an error; put it
        // in a quoted cell to carry one as content.
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        throw fail("bare carriage return (quote the cell to carry a CR; "
                   "lone-CR line endings are not supported)",
                   line, col);
      case '\n':
        end_row();
        ++line;
        col = 0;
        break;
      default:
        if (after_quote) {
          throw fail("unexpected character after closing quote", line, col);
        }
        cell += ch;
        cell_started = true;
        break;
    }
  }
  if (quoted) {
    throw fail("unterminated quoted cell (opened here)", quote_line,
               quote_col);
  }
  end_row();  // final row without trailing newline
  return rows;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_csv: cannot open " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    return parse_csv(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

}  // namespace swsim::io
