#include "io/ovf.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace swsim::io {

using swsim::math::Grid;
using swsim::math::Vec3;
using swsim::math::VectorField;

void write_ovf(const std::string& path, const VectorField& field,
               const std::string& title) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_ovf: cannot open " + path);
  const Grid& g = field.grid();

  out << "# OOMMF OVF 2.0\n"
      << "# Segment count: 1\n"
      << "# Begin: Segment\n"
      << "# Begin: Header\n"
      << "# Title: " << title << '\n'
      << "# meshtype: rectangular\n"
      << "# meshunit: m\n"
      << "# valueunit: 1\n"
      << "# valuedim: 3\n"
      << "# xmin: 0\n# ymin: 0\n# zmin: 0\n"
      << "# xmax: " << g.size_x() << '\n'
      << "# ymax: " << g.size_y() << '\n'
      << "# zmax: " << g.size_z() << '\n'
      << "# xnodes: " << g.nx() << '\n'
      << "# ynodes: " << g.ny() << '\n'
      << "# znodes: " << g.nz() << '\n'
      << "# xstepsize: " << g.dx() << '\n'
      << "# ystepsize: " << g.dy() << '\n'
      << "# zstepsize: " << g.dz() << '\n'
      << "# End: Header\n"
      << "# Begin: Data Text\n";
  out.precision(9);
  for (std::size_t z = 0; z < g.nz(); ++z) {
    for (std::size_t y = 0; y < g.ny(); ++y) {
      for (std::size_t x = 0; x < g.nx(); ++x) {
        const Vec3& v = field.at(x, y, z);
        out << v.x << ' ' << v.y << ' ' << v.z << '\n';
      }
    }
  }
  out << "# End: Data Text\n"
      << "# End: Segment\n";
  if (!out) throw std::runtime_error("write_ovf: write failed for " + path);
}

VectorField read_ovf(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_ovf: cannot open " + path);

  std::size_t nx = 0, ny = 0, nz = 0;
  double dx = 0.0, dy = 0.0, dz = 0.0;
  std::string line;
  std::size_t line_no = 0;
  bool in_data = false;
  bool saw_data = false;

  // Every diagnostic carries file + 1-based line so a broken m-file from
  // another package can be fixed without bisecting it by hand.
  const auto fail = [&](const std::string& what) -> std::runtime_error {
    return std::runtime_error("read_ovf: " + what + " at " + path +
                              " line " + std::to_string(line_no));
  };

  auto header_value = [](const std::string& l) {
    const auto colon = l.find(':');
    return colon == std::string::npos ? std::string{}
                                      : l.substr(colon + 1);
  };
  // stoul/stod accept partial garbage ("3cm" -> 3) and throw bare
  // exceptions on full garbage; both become positioned errors here.
  const auto parse_count = [&](const std::string& key) -> std::size_t {
    const std::string v = header_value(line);
    try {
      std::size_t used = 0;
      const unsigned long n = std::stoul(v, &used);
      if (v.find_first_not_of(" \t", used) != std::string::npos) {
        throw std::invalid_argument("trailing junk");
      }
      return static_cast<std::size_t>(n);
    } catch (const std::exception&) {
      throw fail("bad " + key + " value '" + v + "'");
    }
  };
  const auto parse_step = [&](const std::string& key) -> double {
    const std::string v = header_value(line);
    try {
      std::size_t used = 0;
      const double s = std::stod(v, &used);
      if (v.find_first_not_of(" \t", used) != std::string::npos) {
        throw std::invalid_argument("trailing junk");
      }
      return s;
    } catch (const std::exception&) {
      throw fail("bad " + key + " value '" + v + "'");
    }
  };

  std::vector<Vec3> values;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("# Begin: Data Text", 0) == 0) {
      in_data = true;
      saw_data = true;
      continue;
    }
    if (line.rfind("# End: Data", 0) == 0) {
      in_data = false;
      continue;
    }
    if (!line.empty() && line[0] == '#') {
      if (line.find("xnodes:") != std::string::npos) {
        nx = parse_count("xnodes");
      } else if (line.find("ynodes:") != std::string::npos) {
        ny = parse_count("ynodes");
      } else if (line.find("znodes:") != std::string::npos) {
        nz = parse_count("znodes");
      } else if (line.find("xstepsize:") != std::string::npos) {
        dx = parse_step("xstepsize");
      } else if (line.find("ystepsize:") != std::string::npos) {
        dy = parse_step("ystepsize");
      } else if (line.find("zstepsize:") != std::string::npos) {
        dz = parse_step("zstepsize");
      }
      continue;
    }
    if (in_data) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;  // blank line inside data is tolerated
      }
      std::istringstream ls(line);
      Vec3 v;
      std::string extra;
      if (!(ls >> v.x >> v.y >> v.z)) {
        throw fail("malformed data line '" + line + "' (want 3 numbers)");
      }
      if (ls >> extra) {
        throw fail("trailing data '" + extra + "' (want exactly 3 numbers)");
      }
      values.push_back(v);
    } else if (line.find_first_not_of(" \t\r") != std::string::npos) {
      throw fail("unexpected content outside data section: '" + line + "'");
    }
  }

  if (in_data) {
    throw fail("truncated file: data section never ends ('# End: Data "
               "Text' missing)");
  }
  if (nx == 0 || ny == 0 || nz == 0 || !(dx > 0.0) || !(dy > 0.0) ||
      !(dz > 0.0)) {
    throw std::runtime_error("read_ovf: missing or invalid mesh header in " +
                             path);
  }
  if (!saw_data) {
    throw std::runtime_error("read_ovf: no data section in " + path);
  }
  if (values.size() != nx * ny * nz) {
    throw std::runtime_error(
        "read_ovf: data count mismatch in " + path + ": header promises " +
        std::to_string(nx * ny * nz) + " vectors (" + std::to_string(nx) +
        "x" + std::to_string(ny) + "x" + std::to_string(nz) + "), found " +
        std::to_string(values.size()));
  }

  const Grid g(nx, ny, nz, dx, dy, dz);
  VectorField field(g);
  // OVF data order: x fastest, then y, then z — same as our linear index.
  for (std::size_t i = 0; i < values.size(); ++i) field[i] = values[i];
  return field;
}

}  // namespace swsim::io
