#include "io/ovf.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace swsim::io {

using swsim::math::Grid;
using swsim::math::Vec3;
using swsim::math::VectorField;

void write_ovf(const std::string& path, const VectorField& field,
               const std::string& title) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_ovf: cannot open " + path);
  const Grid& g = field.grid();

  out << "# OOMMF OVF 2.0\n"
      << "# Segment count: 1\n"
      << "# Begin: Segment\n"
      << "# Begin: Header\n"
      << "# Title: " << title << '\n'
      << "# meshtype: rectangular\n"
      << "# meshunit: m\n"
      << "# valueunit: 1\n"
      << "# valuedim: 3\n"
      << "# xmin: 0\n# ymin: 0\n# zmin: 0\n"
      << "# xmax: " << g.size_x() << '\n'
      << "# ymax: " << g.size_y() << '\n'
      << "# zmax: " << g.size_z() << '\n'
      << "# xnodes: " << g.nx() << '\n'
      << "# ynodes: " << g.ny() << '\n'
      << "# znodes: " << g.nz() << '\n'
      << "# xstepsize: " << g.dx() << '\n'
      << "# ystepsize: " << g.dy() << '\n'
      << "# zstepsize: " << g.dz() << '\n'
      << "# End: Header\n"
      << "# Begin: Data Text\n";
  out.precision(9);
  for (std::size_t z = 0; z < g.nz(); ++z) {
    for (std::size_t y = 0; y < g.ny(); ++y) {
      for (std::size_t x = 0; x < g.nx(); ++x) {
        const Vec3& v = field.at(x, y, z);
        out << v.x << ' ' << v.y << ' ' << v.z << '\n';
      }
    }
  }
  out << "# End: Data Text\n"
      << "# End: Segment\n";
  if (!out) throw std::runtime_error("write_ovf: write failed for " + path);
}

VectorField read_ovf(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_ovf: cannot open " + path);

  std::size_t nx = 0, ny = 0, nz = 0;
  double dx = 0.0, dy = 0.0, dz = 0.0;
  std::string line;
  bool in_data = false;

  auto header_value = [](const std::string& l) {
    const auto colon = l.find(':');
    return colon == std::string::npos ? std::string{}
                                      : l.substr(colon + 1);
  };

  std::vector<Vec3> values;
  while (std::getline(in, line)) {
    if (line.rfind("# Begin: Data Text", 0) == 0) {
      in_data = true;
      continue;
    }
    if (line.rfind("# End: Data", 0) == 0) {
      in_data = false;
      continue;
    }
    if (!line.empty() && line[0] == '#') {
      if (line.find("xnodes:") != std::string::npos) {
        nx = std::stoul(header_value(line));
      } else if (line.find("ynodes:") != std::string::npos) {
        ny = std::stoul(header_value(line));
      } else if (line.find("znodes:") != std::string::npos) {
        nz = std::stoul(header_value(line));
      } else if (line.find("xstepsize:") != std::string::npos) {
        dx = std::stod(header_value(line));
      } else if (line.find("ystepsize:") != std::string::npos) {
        dy = std::stod(header_value(line));
      } else if (line.find("zstepsize:") != std::string::npos) {
        dz = std::stod(header_value(line));
      }
      continue;
    }
    if (in_data) {
      std::istringstream ls(line);
      Vec3 v;
      if (ls >> v.x >> v.y >> v.z) values.push_back(v);
    }
  }

  if (nx == 0 || ny == 0 || nz == 0 || !(dx > 0.0) || !(dy > 0.0) ||
      !(dz > 0.0)) {
    throw std::runtime_error("read_ovf: missing or invalid mesh header in " +
                             path);
  }
  if (values.size() != nx * ny * nz) {
    throw std::runtime_error("read_ovf: data count mismatch in " + path);
  }

  const Grid g(nx, ny, nz, dx, dy, dz);
  VectorField field(g);
  // OVF data order: x fastest, then y, then z — same as our linear index.
  for (std::size_t i = 0; i < values.size(); ++i) field[i] = values[i];
  return field;
}

}  // namespace swsim::io
