// Rendering of scalar fields (m_z maps) as ASCII art and binary PGM images.
//
// This is how we reproduce the paper's Fig. 5 panels: MuMax3 renders m_z as a
// blue-to-red color map; we render the same quantity as a symmetric-range
// grayscale PGM plus a terminal-friendly ASCII map (blue = '-', red = '+').
#pragma once

#include <string>

#include "math/field.h"

namespace swsim::io {

// Renders layer iz of a scalar field as ASCII. Values are mapped over
// [-scale, +scale] to the ramp " .:-=+*#%@" for positive and mirrored
// characters for negative; cells outside `mask` (if given) render as ' '.
// Rows are emitted top (max y) to bottom so the picture matches the usual
// plot orientation.
std::string ascii_map(const swsim::math::ScalarField& f, double scale,
                      const swsim::math::Mask* mask = nullptr,
                      std::size_t iz = 0, std::size_t max_width = 160);

// Signed three-symbol map: '+' for value > +threshold, '-' for < -threshold,
// '0' otherwise, ' ' outside the mask. Good for phase snapshots.
std::string sign_map(const swsim::math::ScalarField& f, double threshold,
                     const swsim::math::Mask* mask = nullptr,
                     std::size_t iz = 0, std::size_t max_width = 160);

// Writes layer iz as an 8-bit binary PGM with value v mapped linearly from
// [-scale, +scale] to [0, 255] (clamped); masked-out cells map to 0.
// Throws std::runtime_error when the file cannot be written.
void write_pgm(const std::string& path, const swsim::math::ScalarField& f,
               double scale, const swsim::math::Mask* mask = nullptr,
               std::size_t iz = 0);

}  // namespace swsim::io
