// Minimal CSV I/O with RFC-4180-style quoting.
//
// Bench binaries dump their sweep data as CSV next to the console tables so
// the figures can be re-plotted externally; the reader round-trips those
// files (and batch job results) back in. Malformed input — an unterminated
// quote, a stray quote in the middle of a bare cell — is a positioned
// error (line and column), never a silently-misparsed row.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace swsim::io {

class CsvWriter {
 public:
  // Opens (truncates) the file; throws std::runtime_error if it cannot.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  // Quotes a cell if it contains a comma, quote, or newline.
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

// Parses RFC-4180-style CSV text into rows of cells. Quoted cells may
// contain commas, doubled quotes (""), embedded newlines and carriage
// returns. Rows end at LF or CRLF. Throws std::runtime_error naming the
// 1-based line and column on malformed input: a quote opening mid-cell,
// content after a closing quote, an unterminated quoted cell at end of
// input, or a bare CR outside quotes (lone-CR line endings are not
// supported). Blank lines are skipped.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

// parse_csv over a file's contents; errors carry the path. Throws
// std::runtime_error when the file cannot be opened.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace swsim::io
