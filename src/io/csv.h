// Minimal CSV writer with RFC-4180-style quoting.
//
// Bench binaries dump their sweep data as CSV next to the console tables so
// the figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace swsim::io {

class CsvWriter {
 public:
  // Opens (truncates) the file; throws std::runtime_error if it cannot.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  // Quotes a cell if it contains a comma, quote, or newline.
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace swsim::io
