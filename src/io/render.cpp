#include "io/render.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace swsim::io {

namespace {

using swsim::math::Mask;
using swsim::math::ScalarField;

// Downsampling step so wide fields still fit a terminal.
std::size_t stride_for(std::size_t nx, std::size_t max_width) {
  std::size_t stride = 1;
  while (nx / stride > max_width) ++stride;
  return stride;
}

bool cell_active(const Mask* mask, std::size_t ix, std::size_t iy,
                 std::size_t iz) {
  return mask == nullptr || mask->at(ix, iy, iz);
}

}  // namespace

std::string ascii_map(const ScalarField& f, double scale, const Mask* mask,
                      std::size_t iz, std::size_t max_width) {
  static const char kPos[] = {'.', ':', '-', '=', '+', '*', '#', '%', '@'};
  static const char kNeg[] = {',', ';', '~', 'o', 'x', 'w', 'W', '&', 'M'};
  const auto& g = f.grid();
  const std::size_t stride = stride_for(g.nx(), max_width);
  std::ostringstream os;
  for (std::size_t yy = g.ny(); yy-- > 0;) {
    if (yy % stride != 0) continue;
    for (std::size_t xx = 0; xx < g.nx(); xx += stride) {
      if (!cell_active(mask, xx, yy, iz)) {
        os << ' ';
        continue;
      }
      const double v = f.at(xx, yy, iz);
      const double a = scale > 0.0 ? std::clamp(std::fabs(v) / scale, 0.0, 1.0)
                                   : 0.0;
      if (a < 1.0 / 9.0) {
        os << ' ';
      } else {
        const auto idx = std::min<std::size_t>(
            static_cast<std::size_t>(a * 9.0), 8);
        os << (v >= 0.0 ? kPos[idx] : kNeg[idx]);
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string sign_map(const ScalarField& f, double threshold, const Mask* mask,
                     std::size_t iz, std::size_t max_width) {
  const auto& g = f.grid();
  const std::size_t stride = stride_for(g.nx(), max_width);
  std::ostringstream os;
  for (std::size_t yy = g.ny(); yy-- > 0;) {
    if (yy % stride != 0) continue;
    for (std::size_t xx = 0; xx < g.nx(); xx += stride) {
      if (!cell_active(mask, xx, yy, iz)) {
        os << ' ';
        continue;
      }
      const double v = f.at(xx, yy, iz);
      os << (v > threshold ? '+' : (v < -threshold ? '-' : '0'));
    }
    os << '\n';
  }
  return os.str();
}

void write_pgm(const std::string& path, const ScalarField& f, double scale,
               const Mask* mask, std::size_t iz) {
  const auto& g = f.grid();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << g.nx() << ' ' << g.ny() << "\n255\n";
  for (std::size_t yy = g.ny(); yy-- > 0;) {
    for (std::size_t xx = 0; xx < g.nx(); ++xx) {
      unsigned char px = 0;
      if (cell_active(mask, xx, yy, iz) && scale > 0.0) {
        const double t =
            std::clamp((f.at(xx, yy, iz) / scale + 1.0) * 0.5, 0.0, 1.0);
        px = static_cast<unsigned char>(std::lround(t * 255.0));
      }
      out.put(static_cast<char>(px));
    }
  }
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

}  // namespace swsim::io
