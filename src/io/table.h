// Aligned console table rendering.
//
// Every bench binary regenerates one of the paper's tables; this printer
// produces the fixed-width layout those binaries share, so "paper vs ours"
// rows line up and are easy to diff.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace swsim::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; throws std::invalid_argument if the cell count does not
  // match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience for mixed string/double rows via pre-formatting.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  // Renders with a header underline and 2-space column padding.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swsim::io
