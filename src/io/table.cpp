#include "io/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace swsim::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width does not match headers");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace swsim::io
