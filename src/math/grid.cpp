#include "math/grid.h"

#include <algorithm>
#include <cmath>

namespace swsim::math {

Grid::Grid(std::size_t nx, std::size_t ny, std::size_t nz, double dx,
           double dy, double dz)
    : nx_(nx), ny_(ny), nz_(nz), dx_(dx), dy_(dy), dz_(dz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("Grid: all axis counts must be >= 1");
  }
  if (!(dx > 0.0) || !(dy > 0.0) || !(dz > 0.0)) {
    throw std::invalid_argument("Grid: cell dimensions must be positive");
  }
}

Grid Grid::film(std::size_t nx, std::size_t ny, double dx, double dy,
                double thickness) {
  return Grid(nx, ny, 1, dx, dy, thickness);
}

Index3 Grid::locate(const Vec3& p) const {
  auto clamp_axis = [](double coord, double d, std::size_t n) {
    const double raw = std::floor(coord / d);
    const double max_i = static_cast<double>(n - 1);
    return static_cast<std::size_t>(std::clamp(raw, 0.0, max_i));
  };
  return {clamp_axis(p.x, dx_, nx_), clamp_axis(p.y, dy_, ny_),
          clamp_axis(p.z, dz_, nz_)};
}

}  // namespace swsim::math
