// Power-spectrum estimation for probe time series.
//
// Used to characterize simulations in the frequency domain: finding the
// FMR line, checking that a driven waveguide responds at the drive
// frequency, and measuring the thermal magnon background in the
// finite-temperature runs.
#pragma once

#include <cstddef>
#include <vector>

namespace swsim::math {

struct Spectrum {
  std::vector<double> frequency;  // [Hz], DC .. Nyquist
  std::vector<double> power;      // |X(f)|^2, one-sided, arbitrary units

  // Frequency of the strongest non-DC bin; 0 for empty spectra.
  double peak_frequency() const;
  // Total power in [f_lo, f_hi].
  double band_power(double f_lo, double f_hi) const;
};

// One-sided periodogram of uniformly sampled data (spacing dt). A Hann
// window suppresses leakage; the signal is zero-padded to the next power
// of two. Throws std::invalid_argument for fewer than 4 samples or
// non-positive dt.
Spectrum power_spectrum(const std::vector<double>& samples, double dt);

}  // namespace swsim::math
