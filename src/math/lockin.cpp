#include "math/lockin.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::math {

LockinResult lockin(const std::vector<double>& samples, double dt, double f0,
                    double t0) {
  if (!(dt > 0.0) || !(f0 > 0.0)) {
    throw std::invalid_argument("lockin: dt and f0 must be positive");
  }
  const double period = 1.0 / f0;
  const double total = static_cast<double>(samples.size()) * dt;
  const auto whole_periods = static_cast<std::size_t>(total / period);
  if (whole_periods == 0) {
    throw std::invalid_argument(
        "lockin: need at least one full period of samples");
  }
  const auto n = static_cast<std::size_t>(
      std::floor(static_cast<double>(whole_periods) * period / dt));

  // Single-bin DFT against cos/sin references:
  //   x(t) = A cos(w t + p)  =>  sum x cos = (n/2) A cos p,
  //                              sum x sin = -(n/2) A sin p.
  double c = 0.0;
  double s = 0.0;
  const double w = kTwoPi * f0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) * dt;
    c += samples[i] * std::cos(w * t);
    s += samples[i] * std::sin(w * t);
  }
  const double scale = 2.0 / static_cast<double>(n);
  const double re = c * scale;   // A cos p
  const double im = -s * scale;  // A sin p

  LockinResult r;
  r.amplitude = std::hypot(re, im);
  r.phase = (r.amplitude > 0.0) ? std::atan2(im, re) : 0.0;
  r.phasor = {re, im};
  return r;
}

double rms(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (double v : samples) acc += v * v;
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

double peak(const std::vector<double>& samples) {
  double p = 0.0;
  for (double v : samples) p = std::max(p, std::fabs(v));
  return p;
}

double wrap_phase(double radians) {
  double w = std::fmod(radians + kPi, kTwoPi);
  if (w <= 0.0) w += kTwoPi;
  return w - kPi;
}

double phase_distance(double a, double b) {
  return std::fabs(wrap_phase(a - b));
}

}  // namespace swsim::math
