// Small statistics helpers used by probes, benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace swsim::math {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

// Computes count/mean/stddev/min/max in one pass. Empty input -> all zeros.
Summary summarize(const std::vector<double>& values);

// Linear least-squares fit y = a + b x. Returns {a, b}.
// Throws std::invalid_argument if sizes differ or fewer than 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

// Relative error |a - b| / max(|b|, floor); floor avoids division blowup
// near zero references.
double rel_err(double a, double b, double floor = 1e-300);

}  // namespace swsim::math
