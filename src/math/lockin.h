// Lock-in (single-bin DFT) amplitude and phase estimation.
//
// The gate detectors work exactly like the paper's readout: a probe records
// the out-of-plane magnetization m_z(t) in the detection cell, and the
// complex amplitude at the excitation frequency f0 is extracted. The phase
// of that complex amplitude implements phase detection (Majority gate); its
// magnitude implements threshold detection (XOR gate).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace swsim::math {

struct LockinResult {
  double amplitude = 0.0;  // |X(f0)| scaled so a pure sine of amplitude A -> A
  double phase = 0.0;      // radians in (-pi, pi]; phase of cos convention
  std::complex<double> phasor;  // amplitude * e^{i phase}
};

// Estimates the complex amplitude of `samples` (uniformly spaced by dt,
// starting at t = t0) at frequency f0, i.e. fits  x(t) ~ A cos(2 pi f0 t + p).
//
// The estimate uses the samples over the longest whole number of periods that
// fits (discarding the ragged tail), which suppresses spectral leakage
// without windowing. Throws std::invalid_argument if fewer than one full
// period of samples is supplied or dt/f0 are non-positive.
LockinResult lockin(const std::vector<double>& samples, double dt, double f0,
                    double t0 = 0.0);

// Root-mean-square of a sample vector (0 for empty input).
double rms(const std::vector<double>& samples);

// Peak absolute value (0 for empty input).
double peak(const std::vector<double>& samples);

// Wraps an angle to (-pi, pi].
double wrap_phase(double radians);

// Absolute phase distance |a - b| after wrapping, in [0, pi].
double phase_distance(double a, double b);

}  // namespace swsim::math
