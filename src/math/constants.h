// Physical constants and unit helpers used across the spin-wave simulator.
//
// All quantities are SI unless a suffix says otherwise. The simulator works
// in SI throughout; helpers below exist so that device descriptions can be
// written in the units the paper uses (nm, GHz, aJ, ...) without sprinkling
// magic powers of ten through the code.
#pragma once

namespace swsim::math {

// Vacuum permeability [T m / A].
inline constexpr double kMu0 = 1.25663706212e-6;

// Electron gyromagnetic ratio magnitude [rad / (s T)].
// gamma = g * e / (2 m_e) with g ~= 2.002; this is the value micromagnetic
// packages (OOMMF, MuMax3) use by default via gamma_LL = 1.7595e11 rad/(s T).
inline constexpr double kGamma = 1.7595e11;

// Boltzmann constant [J / K].
inline constexpr double kBoltzmann = 1.380649e-23;

// Reduced Planck constant [J s].
inline constexpr double kHbar = 1.054571817e-34;

// Bohr magneton [J / T].
inline constexpr double kMuB = 9.2740100783e-24;

// pi, to double precision.
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

// --- Unit helpers -----------------------------------------------------------

inline constexpr double nm(double v) { return v * 1e-9; }
inline constexpr double um(double v) { return v * 1e-6; }
inline constexpr double ps(double v) { return v * 1e-12; }
inline constexpr double ns(double v) { return v * 1e-9; }
inline constexpr double ghz(double v) { return v * 1e9; }
inline constexpr double mhz(double v) { return v * 1e6; }
inline constexpr double aj(double v) { return v * 1e-18; }   // attojoule
inline constexpr double nw(double v) { return v * 1e-9; }    // nanowatt
inline constexpr double ka_per_m(double v) { return v * 1e3; }
inline constexpr double pj_per_m(double v) { return v * 1e-12; }
inline constexpr double mj_per_m3(double v) { return v * 1e6; }

// Inverse helpers for reporting.
inline constexpr double to_nm(double v) { return v * 1e9; }
inline constexpr double to_ns(double v) { return v * 1e9; }
inline constexpr double to_ghz(double v) { return v * 1e-9; }
inline constexpr double to_aj(double v) { return v * 1e18; }

}  // namespace swsim::math
