// Minimal-but-complete FFT machinery for the demagnetizing-field convolution.
//
// The demag field is a discrete convolution of the magnetization with the
// Newell demag tensor; with zero padding to 2N (rounded to a power of two)
// this becomes a set of element-wise products in Fourier space. Only
// power-of-two sizes are supported, which the demag module guarantees by
// padding. The transforms are unnormalized forward; the inverse divides by N.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace swsim::math {

using Complex = std::complex<double>;

// Returns the smallest power of two >= n (n >= 1). Throws on n == 0.
std::size_t next_pow2(std::size_t n);

// True iff n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

// In-place iterative radix-2 Cooley-Tukey FFT.
// data.size() must be a power of two; throws std::invalid_argument otherwise.
// inverse=true applies the conjugate transform and divides by size, so
// fft(fft(x), inverse) == x to rounding error.
void fft(std::vector<Complex>& data, bool inverse = false);

// 3D FFT over data stored in x-fastest order with dimensions (nx, ny, nz),
// each a power of two. Transforms along all three axes in place.
void fft3d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
           std::size_t nz, bool inverse = false);

// Circular convolution c = a (*) b of two complex sequences of equal
// power-of-two length, via FFT. Provided mainly for testing the 1D path.
std::vector<Complex> circular_convolve(const std::vector<Complex>& a,
                                       const std::vector<Complex>& b);

}  // namespace swsim::math
