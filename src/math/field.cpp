#include "math/field.h"

#include <algorithm>
#include <numeric>

namespace swsim::math {

std::size_t Mask::count() const {
  return static_cast<std::size_t>(
      std::count(data_.begin(), data_.end(), static_cast<unsigned char>(1)));
}

namespace {
void check_grids(const Grid& a, const Grid& b) {
  if (!(a == b)) throw std::invalid_argument("Mask: grid mismatch");
}
}  // namespace

Mask& Mask::operator|=(const Mask& o) {
  check_grids(grid_, o.grid_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] |= o.data_[i];
  return *this;
}

Mask& Mask::operator&=(const Mask& o) {
  check_grids(grid_, o.grid_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] &= o.data_[i];
  return *this;
}

Mask& Mask::subtract(const Mask& o) {
  check_grids(grid_, o.grid_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (o.data_[i]) data_[i] = 0;
  }
  return *this;
}

}  // namespace swsim::math
