#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace swsim::math {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    acc += d * d;
  }
  s.stddev = std::sqrt(acc / static_cast<double>(s.count));
  return s;
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  if (x.size() < 2) {
    throw std::invalid_argument("fit_line: need at least 2 points");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("fit_line: degenerate x values");
  }
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

double rel_err(double a, double b, double floor) {
  return std::fabs(a - b) / std::max(std::fabs(b), floor);
}

}  // namespace swsim::math
