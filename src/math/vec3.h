// A small 3-component vector of doubles.
//
// This is the workhorse value type of the micromagnetic solver: magnetization
// directions, effective fields, and torques are all Vec3. It is a plain
// aggregate (no invariant) with value semantics, so the compiler can keep it
// in registers inside the LLG inner loops.
#pragma once

#include <cmath>
#include <ostream>

namespace swsim::math {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) {
    x /= s;
    y /= s;
    z /= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

constexpr double norm2(const Vec3& v) { return dot(v, v); }

inline double norm(const Vec3& v) { return std::sqrt(norm2(v)); }

// Returns v scaled to unit length; the zero vector is returned unchanged
// (a masked/vacuum cell has m = 0 and must stay 0 through normalization).
inline Vec3 normalized(const Vec3& v) {
  const double n = norm(v);
  return n > 0.0 ? v / n : v;
}

// Distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

// Component-wise linear interpolation: a + t * (b - a).
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

}  // namespace swsim::math
