#include "math/fft.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::math {

std::size_t next_pow2(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 1.0 : -1.0) * kTwoPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : data) c *= inv_n;
  }
}

void fft3d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
           std::size_t nz, bool inverse) {
  if (data.size() != nx * ny * nz) {
    throw std::invalid_argument("fft3d: data size does not match dimensions");
  }
  if (!is_pow2(nx) || !is_pow2(ny) || !is_pow2(nz)) {
    throw std::invalid_argument("fft3d: all dimensions must be powers of two");
  }

  std::vector<Complex> line;

  // Along x (contiguous).
  line.resize(nx);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      const std::size_t base = nx * (y + ny * z);
      for (std::size_t x = 0; x < nx; ++x) line[x] = data[base + x];
      fft(line, inverse);
      for (std::size_t x = 0; x < nx; ++x) data[base + x] = line[x];
    }
  }

  // Along y.
  line.resize(ny);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) line[y] = data[x + nx * (y + ny * z)];
      fft(line, inverse);
      for (std::size_t y = 0; y < ny; ++y) data[x + nx * (y + ny * z)] = line[y];
    }
  }

  // Along z.
  if (nz > 1) {
    line.resize(nz);
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        for (std::size_t z = 0; z < nz; ++z) {
          line[z] = data[x + nx * (y + ny * z)];
        }
        fft(line, inverse);
        for (std::size_t z = 0; z < nz; ++z) {
          data[x + nx * (y + ny * z)] = line[z];
        }
      }
    }
  }
}

std::vector<Complex> circular_convolve(const std::vector<Complex>& a,
                                       const std::vector<Complex>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("circular_convolve: size mismatch");
  }
  std::vector<Complex> fa = a;
  std::vector<Complex> fb = b;
  fft(fa);
  fft(fb);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= fb[i];
  fft(fa, /*inverse=*/true);
  return fa;
}

}  // namespace swsim::math
