// Finite-difference grid description.
//
// A Grid is the discretization of a rectangular simulation box into
// nx x ny x nz cuboid cells of size (dx, dy, dz). It carries no data, only
// geometry and indexing; fields (see field.h) attach data to a Grid.
//
// Index convention: linear index i = x + nx * (y + ny * z), i.e. x is the
// fastest-varying axis. Cell (ix, iy, iz) has its center at
// ((ix + 0.5) dx, (iy + 0.5) dy, (iz + 0.5) dz).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "math/vec3.h"

namespace swsim::math {

struct Index3 {
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t z = 0;
  friend constexpr bool operator==(const Index3&, const Index3&) = default;
};

class Grid {
 public:
  Grid() = default;

  // Throws std::invalid_argument on a zero-sized axis or non-positive cell
  // dimensions: a degenerate grid would make every later stencil ill-formed.
  Grid(std::size_t nx, std::size_t ny, std::size_t nz, double dx, double dy,
       double dz);

  // Convenience for a single-layer (2D) film, the geometry the paper uses.
  static Grid film(std::size_t nx, std::size_t ny, double dx, double dy,
                   double thickness);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  double dz() const { return dz_; }

  std::size_t cell_count() const { return nx_ * ny_ * nz_; }
  double cell_volume() const { return dx_ * dy_ * dz_; }

  // Physical extents of the whole box.
  double size_x() const { return static_cast<double>(nx_) * dx_; }
  double size_y() const { return static_cast<double>(ny_) * dy_; }
  double size_z() const { return static_cast<double>(nz_) * dz_; }

  std::size_t index(std::size_t ix, std::size_t iy, std::size_t iz = 0) const {
    return ix + nx_ * (iy + ny_ * iz);
  }
  Index3 unindex(std::size_t i) const {
    const std::size_t ix = i % nx_;
    const std::size_t iy = (i / nx_) % ny_;
    const std::size_t iz = i / (nx_ * ny_);
    return {ix, iy, iz};
  }

  // Center position of cell (ix, iy, iz).
  Vec3 cell_center(std::size_t ix, std::size_t iy, std::size_t iz = 0) const {
    return {(static_cast<double>(ix) + 0.5) * dx_,
            (static_cast<double>(iy) + 0.5) * dy_,
            (static_cast<double>(iz) + 0.5) * dz_};
  }

  // Cell containing physical point p, clamped to the grid.
  Index3 locate(const Vec3& p) const;

  bool contains(std::size_t ix, std::size_t iy, std::size_t iz = 0) const {
    return ix < nx_ && iy < ny_ && iz < nz_;
  }

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  double dx_ = 0.0, dy_ = 0.0, dz_ = 0.0;
};

}  // namespace swsim::math
