// Scalar and vector fields attached to a finite-difference Grid.
//
// Data is stored as flat std::vector in grid linear-index order (x fastest).
// These are plain value types: copying a field copies its data, which is the
// behaviour the steppers (Heun/RK4 stage buffers) rely on.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "math/grid.h"
#include "math/vec3.h"

namespace swsim::math {

template <typename T>
class Field {
 public:
  Field() = default;
  explicit Field(const Grid& grid, T init = T{})
      : grid_(grid), data_(grid.cell_count(), init) {}

  const Grid& grid() const { return grid_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T& at(std::size_t ix, std::size_t iy, std::size_t iz = 0) {
    return data_[grid_.index(ix, iy, iz)];
  }
  const T& at(std::size_t ix, std::size_t iy, std::size_t iz = 0) const {
    return data_[grid_.index(ix, iy, iz)];
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  // Throws std::invalid_argument when grids differ: element-wise combination
  // of fields on different grids is always a bug at the call site.
  void check_same_grid(const Field& other) const {
    if (!(grid_ == other.grid_)) {
      throw std::invalid_argument("Field: grid mismatch");
    }
  }

  Field& operator+=(const Field& o) {
    check_same_grid(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Field& operator-=(const Field& o) {
    check_same_grid(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Field& operator*=(double s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

 private:
  Grid grid_;
  std::vector<T> data_;
};

using ScalarField = Field<double>;
using VectorField = Field<Vec3>;

// A boolean occupancy mask over a grid: true = magnetic material present.
// Stored as uint8_t to avoid std::vector<bool> proxy-reference pitfalls.
class Mask {
 public:
  Mask() = default;
  explicit Mask(const Grid& grid, bool init = false)
      : grid_(grid), data_(grid.cell_count(), init ? 1 : 0) {}

  const Grid& grid() const { return grid_; }
  std::size_t size() const { return data_.size(); }

  bool operator[](std::size_t i) const { return data_[i] != 0; }
  void set(std::size_t i, bool v) { data_[i] = v ? 1 : 0; }
  bool at(std::size_t ix, std::size_t iy, std::size_t iz = 0) const {
    return data_[grid_.index(ix, iy, iz)] != 0;
  }
  void set_at(std::size_t ix, std::size_t iy, bool v) {
    data_[grid_.index(ix, iy, 0)] = v ? 1 : 0;
  }

  // Number of occupied cells.
  std::size_t count() const;

  // Set union / intersection / difference with another mask (same grid).
  Mask& operator|=(const Mask& o);
  Mask& operator&=(const Mask& o);
  Mask& subtract(const Mask& o);

  friend bool operator==(const Mask&, const Mask&) = default;

 private:
  Grid grid_;
  std::vector<unsigned char> data_;
};

}  // namespace swsim::math
