// Deterministic random number generation for the stochastic thermal field
// and for variability (edge roughness) injection.
//
// PCG32 (O'Neill, pcg-random.org, PCG-XSH-RR 64/32) — small, fast, and with
// far better statistical quality than LCGs of the same size. A fixed seed
// gives bit-identical runs across platforms, which the regression tests rely
// on.
#pragma once

#include <cstdint>

namespace swsim::math {

class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  // Uniform 32-bit value.
  std::uint32_t next_u32();

  // Uniform double in [0, 1).
  double next_double();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second deviate).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Uniform integer in [0, bound) without modulo bias.
  std::uint32_t bounded(std::uint32_t bound);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace swsim::math
