#include "math/spectrum.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"
#include "math/fft.h"

namespace swsim::math {

double Spectrum::peak_frequency() const {
  double best_f = 0.0;
  double best_p = -1.0;
  for (std::size_t i = 1; i < power.size(); ++i) {  // skip DC
    if (power[i] > best_p) {
      best_p = power[i];
      best_f = frequency[i];
    }
  }
  return best_f;
}

double Spectrum::band_power(double f_lo, double f_hi) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    if (frequency[i] >= f_lo && frequency[i] <= f_hi) acc += power[i];
  }
  return acc;
}

Spectrum power_spectrum(const std::vector<double>& samples, double dt) {
  if (samples.size() < 4) {
    throw std::invalid_argument("power_spectrum: need at least 4 samples");
  }
  if (!(dt > 0.0)) {
    throw std::invalid_argument("power_spectrum: dt must be positive");
  }
  const std::size_t n = samples.size();
  const std::size_t padded = next_pow2(n);

  // Remove the mean (the DC value would otherwise leak through the window)
  // and apply a Hann window.
  double mean = 0.0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(n);

  std::vector<Complex> data(padded, Complex{});
  for (std::size_t i = 0; i < n; ++i) {
    const double w =
        0.5 * (1.0 - std::cos(kTwoPi * static_cast<double>(i) /
                              static_cast<double>(n - 1)));
    data[i] = (samples[i] - mean) * w;
  }
  fft(data);

  Spectrum s;
  const std::size_t bins = padded / 2 + 1;
  s.frequency.resize(bins);
  s.power.resize(bins);
  const double df = 1.0 / (static_cast<double>(padded) * dt);
  for (std::size_t i = 0; i < bins; ++i) {
    s.frequency[i] = static_cast<double>(i) * df;
    s.power[i] = std::norm(data[i]);
    if (i != 0 && i != bins - 1) s.power[i] *= 2.0;  // one-sided fold
  }
  return s;
}

}  // namespace swsim::math
