#include "math/rng.h"

#include <cmath>

#include "math/constants.h"

namespace swsim::math {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Pcg32::next_double() {
  // 32 random bits into [0, 1); resolution 2^-32 is ample for noise fields.
  return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

double Pcg32::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Pcg32::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = kTwoPi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

std::uint32_t Pcg32::bounded(std::uint32_t bound) {
  if (bound == 0) return 0;
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace swsim::math
