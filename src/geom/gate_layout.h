// Parametric layout of the paper's triangle-shape fan-out-of-2 gates.
//
// Reconstruction of Fig. 3 / Fig. 4. The paper gives dimension labels and
// values but no coordinates; the layout below is the one consistent with
// (a) the operation description of Sec. III (two interference stages, two
// identical outputs, no input replication, equal-level excitation), (b) the
// multiplicity of the dimension labels in the figures (d1 x4, d2 x2, d3 x2,
// d4 x2), and (c) micromagnetically sound wave routing (the combined wave
// never has to turn a sharp corner):
//
//   I2 .                                . O1     <- detector, d4 past the tap
//        \ d1                      d3 /
//         \            I3            /           <- J1/J2 taps at d3 from S
//          V-----------C------------S
//         /   d2/2          d2/2     \.
//        / d1                      d3 \.
//   I1 .                                . O2
//
// * I1 and I2 excite spin waves on the two input arms (length d1 = n1
//   lambda each) that merge and interfere at the triangle vertex V — the
//   first interference stage.
// * The combined wave runs along the axis V -> S (total length d2, an
//   integer number of wavelengths). The I3 antenna sits transparently at
//   the axis midpoint C, adding its wave — the second interference stage.
// * At the splitter vertex S the total splits symmetrically into the two
//   output branches: the fan-out of 2. The branch taps J1/J2 sit d3 from S
//   and the detectors d4 further. d4 = n lambda gives the non-inverted
//   gate, d4 = (n + 1/2) lambda the inverting one.
//
// The two halves (I1-V-I2 wedge and O1-S-O2 fork) are the "triangle
// shapes" of the title. The XOR gate (Fig. 4) is the same structure with
// I3 removed; its detectors sit `xor_out_distance` (paper: 40 nm, "as
// close as possible") beyond S because threshold detection wants maximum
// amplitude, not a particular phase.
//
// Every propagation path is a sum of the nominal multiples of lambda, so
// the paper's design rules (n lambda for like-phase constructive
// interference, (n+1/2) lambda for the inverted behaviour) apply verbatim.
// All dimensions are expressed in multiples of the design wavelength so
// the same builder produces the paper-scale device and the reduced-scale
// micromagnetic test articles.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "geom/shape.h"
#include "math/constants.h"

namespace swsim::geom {

// Which port of a gate a region belongs to.
enum class Port { kIn1, kIn2, kIn3, kOut1, kOut2 };

std::string to_string(Port p);

struct PortSite {
  Port port;
  Vec3 center;        // antenna / detector center position
  Vec3 direction;     // unit vector: wave launch direction (inputs) or
                      // arrival direction (outputs)
};

struct TriangleGateParams {
  double wavelength = swsim::math::nm(55);
  double width = swsim::math::nm(50);  // must be <= wavelength (Sec. III-A)
  // Arm length |Ii -> V| in wavelengths (paper: 6 -> d1 = 330 nm).
  double n_arm = 6;
  // Half-axis |V -> C| = |C -> S| in wavelengths; the paper's d2 = 880 nm
  // is the full axis, so 8 per half.
  double n_axis_half = 8;
  // Branch tap distance |S -> Jk| in wavelengths (paper: 4 -> d3 = 220 nm).
  double n_feed = 4;
  // Tap-to-detector distance |Jk -> Ok| in wavelengths (paper MAJ: 1 ->
  // d4 = 55 nm). Integer -> non-inverted output; integer + 0.5 -> inverted.
  double n_out = 1;
  // Half-opening angle of the input wedge at V and the output fork at S,
  // in degrees. Shallow angles keep the merge/split adiabatic.
  double arm_half_angle_deg = 35;
  bool has_third_input = true;  // false -> XOR structure (Fig. 4)
  // XOR-only: absolute splitter->detector distance (paper: 40 nm). Ignored
  // when has_third_input is true.
  double xor_out_distance = swsim::math::nm(40);

  // Throws std::invalid_argument when the parameter set violates a design
  // rule (width > lambda, non-positive dimensions, non-(half-)integer
  // multiples where one is required, ...).
  void validate() const;

  double lambda() const { return wavelength; }
  double d1() const { return n_arm * wavelength; }
  double d2() const { return 2.0 * n_axis_half * wavelength; }  // full axis
  double d3() const { return n_feed * wavelength; }
  double d4() const { return n_out * wavelength; }
  // Splitter-to-detector distance along a branch.
  double branch_out() const {
    return has_third_input ? d3() + d4() : xor_out_distance;
  }

  // Paper-scale parameter sets.
  static TriangleGateParams paper_maj3();
  static TriangleGateParams paper_xor();
  // Reduced-scale sets used for CPU-feasible micromagnetic validation; the
  // n-lambda / (n+1/2)-lambda design rules are identical, only the
  // multiples shrink.
  static TriangleGateParams reduced_maj3(double wavelength, double width);
  static TriangleGateParams reduced_xor(double wavelength, double width);
};

// Fully resolved layout: coordinates, shapes, port sites and path lengths.
class TriangleGateLayout {
 public:
  explicit TriangleGateLayout(const TriangleGateParams& params);

  const TriangleGateParams& params() const { return params_; }

  // Key coordinates (see diagram above).
  const Vec3& merge_point() const { return v_; }    // V: arm merge
  const Vec3& tap_point() const { return c_; }      // C: I3 antenna site
  const Vec3& split_point() const { return s_; }    // S: branch splitter

  const std::vector<PortSite>& ports() const { return ports_; }
  const PortSite& port(Port p) const;
  bool has_port(Port p) const;

  // The waveguide body as a shape (union of segments).
  const Shape& body() const { return *body_; }

  // Physical path length from an input port to an output port following the
  // waveguide (I1/I2 -> V -> S -> O; I3 -> C -> S -> O). Throws on a
  // (port, port) pair that is not an (input, output) combination.
  double path_length(Port input, Port output) const;

  // Bounding box of the body with a margin (used to size simulation grids).
  Rect bounding_box(double margin) const;

  // Rasterizes the body onto `grid`.
  Mask body_mask(const Grid& grid) const;

  // Rasterizes an antenna/detector region: a patch of waveguide centered on
  // the port site, `extent` long along the local propagation direction.
  Mask port_mask(const Grid& grid, Port p, double extent) const;

 private:
  TriangleGateParams params_;
  Vec3 v_, c_, s_;
  std::vector<PortSite> ports_;
  std::unique_ptr<Union> body_;
};

// Ladder-shape fan-out-of-2 gate of refs. [22]/[23] — the baseline the paper
// compares against. Its defining costs: one input must be *replicated*
// (an extra excitation transducer), and the rungs force unequal excitation
// levels. We model the topology for the wave-network backend plus the
// transducer count for the energy model.
struct LadderGateParams {
  double wavelength = swsim::math::nm(55);
  double width = swsim::math::nm(50);
  double n_rail = 6;   // input -> rung junction distance, in wavelengths
  double n_rung = 4;   // rung length between the two rails, in wavelengths
  double n_out = 1;    // junction -> output distance, in wavelengths
  bool is_xor = false;
  void validate() const;
};

// The ladder's transducer sites (note the replicated input I3r — the extra
// excitation cell the triangle design eliminates).
enum class LadderPort { kIn1, kIn2, kIn3, kIn3Replica, kOut1, kOut2 };

std::string to_string(LadderPort p);

struct LadderPortSite {
  LadderPort port;
  Vec3 center;
  Vec3 direction;
};

class LadderGateLayout {
 public:
  explicit LadderGateLayout(const LadderGateParams& params);

  const LadderGateParams& params() const { return params_; }
  // Number of excitation transducers (MAJ: 4 — one input replicated;
  // XOR: 4 — both inputs replicated, per [23]).
  int excitation_cells() const;
  // Number of detection transducers (always 2: fan-out of 2).
  int detection_cells() const { return 2; }
  // Whether the design requires inputs excited at different energy levels
  // (true for the ladder per Sec. IV-D; a cost the triangle avoids).
  bool requires_unequal_excitation() const { return true; }

  // Path length from logical input (0..2; replicated copies share the
  // logical index) to output (0..1) along the rails/rungs.
  double path_length(int logical_input, int output) const;

  // Full 2D reconstruction (two rails at +-n_rung/2 lambda, a vertical
  // rung carrying the merged wave between them, input stubs on top):
  // body shape, port sites and bounding box — enough to rasterize the
  // device and to compute its area for the comparisons.
  const Shape& body() const { return *body_; }
  const std::vector<LadderPortSite>& ports() const { return ports_; }
  const LadderPortSite& port(LadderPort p) const;
  Rect bounding_box(double margin) const;
  Mask body_mask(const Grid& grid) const;

 private:
  LadderGateParams params_;
  std::vector<LadderPortSite> ports_;
  std::unique_ptr<Union> body_;
};

}  // namespace swsim::geom
