#include "geom/roughness.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace swsim::geom {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::Pcg32;

namespace {

// Correlated unit-variance noise sequence: first-order autoregressive
// process with correlation rho per step.
std::vector<double> ar1_noise(std::size_t n, double rho, Pcg32& rng) {
  std::vector<double> out(n);
  const double innov = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  double v = rng.normal();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = v;
    v = rho * v + innov * rng.normal();
  }
  return out;
}

}  // namespace

Mask apply_edge_roughness(const Mask& mask, const RoughnessParams& params) {
  if (params.amplitude <= 0.0) return mask;
  const Grid& g = mask.grid();
  Pcg32 rng(params.seed);

  // Boundary displacement is applied along both grid axes so diagonal
  // waveguides roughen as well: a cell flips if its distance to the
  // material boundary is within the local noise displacement.
  const double rho_x =
      params.correlation_length > 0.0
          ? std::exp(-g.dx() / params.correlation_length)
          : 0.0;
  const double rho_y =
      params.correlation_length > 0.0
          ? std::exp(-g.dy() / params.correlation_length)
          : 0.0;
  // Two independent correlated profiles, indexed by column and row.
  const auto noise_x = ar1_noise(g.nx(), rho_x, rng);
  const auto noise_y = ar1_noise(g.ny(), rho_y, rng);

  auto boundary = [&](std::size_t ix, std::size_t iy, std::size_t iz) {
    const bool inside = mask.at(ix, iy, iz);
    auto differs = [&](long dx, long dy) {
      const long jx = static_cast<long>(ix) + dx;
      const long jy = static_cast<long>(iy) + dy;
      if (jx < 0 || jy < 0 || jx >= static_cast<long>(g.nx()) ||
          jy >= static_cast<long>(g.ny())) {
        return inside;  // material touching the box edge counts as boundary
      }
      return mask.at(static_cast<std::size_t>(jx), static_cast<std::size_t>(jy),
                     iz) != inside;
    };
    return differs(1, 0) || differs(-1, 0) || differs(0, 1) || differs(0, -1);
  };

  Mask out = mask;
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        if (!boundary(ix, iy, iz)) continue;
        // Local displacement in meters; positive pushes the edge outward.
        const double disp =
            0.5 * params.amplitude * (noise_x[ix] + noise_y[iy]);
        const bool inside = mask.at(ix, iy, iz);
        const double cell = 0.5 * std::min(g.dx(), g.dy());
        if (inside && disp < -cell) {
          out.set(g.index(ix, iy, iz), false);  // edge recedes: cell removed
        } else if (!inside && disp > cell) {
          out.set(g.index(ix, iy, iz), true);  // edge advances: cell added
        }
      }
    }
  }
  return out;
}

double trapezoid_effective_width(double top_width, double thickness,
                                 double sidewall_angle) {
  if (!(top_width > 0.0) || !(thickness > 0.0)) {
    throw std::invalid_argument(
        "trapezoid_effective_width: dimensions must be positive");
  }
  const double loss = thickness * std::tan(std::fabs(sidewall_angle));
  const double eff = top_width - loss;
  if (!(eff > 0.0)) {
    throw std::invalid_argument(
        "trapezoid_effective_width: sidewall angle consumes entire width");
  }
  return eff;
}

}  // namespace swsim::geom
