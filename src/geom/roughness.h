// Fabrication-variability models: waveguide edge roughness and trapezoidal
// cross-section (Sec. IV-D of the paper; effects studied in refs. [36][43]).
//
// Edge roughness perturbs the rasterized mask: each boundary column/row of
// the waveguide gains or loses cells following a correlated random walk,
// emulating line-edge roughness with a given amplitude and correlation
// length. The trapezoid model maps a sidewall angle to an effective width
// reduction used by the analytical backend.
#pragma once

#include "math/field.h"
#include "math/rng.h"

namespace swsim::geom {

struct RoughnessParams {
  double amplitude = 0.0;           // peak edge displacement [m]
  double correlation_length = 0.0;  // along-edge correlation [m]
  std::uint64_t seed = 1;
};

// Returns a copy of `mask` with rough edges. Cells are only ever
// added/removed within `amplitude` of the original boundary, so the
// structure's topology (connectivity of the waveguide network) is preserved
// for amplitudes below half the waveguide width.
swsim::math::Mask apply_edge_roughness(const swsim::math::Mask& mask,
                                       const RoughnessParams& params);

// Effective magnetic width of a trapezoidal-cross-section waveguide: a
// sidewall angle theta (radians from vertical) on a film of thickness t
// loses t*tan(theta) of full-thickness material on each side.
// Throws std::invalid_argument if the resulting width would be <= 0.
double trapezoid_effective_width(double top_width, double thickness,
                                 double sidewall_angle);

}  // namespace swsim::geom
