#include "geom/gate_layout.h"

#include <cmath>
#include <stdexcept>

namespace swsim::geom {

namespace {

// True iff v is within tol of a non-negative multiple of 0.5.
bool is_half_integer(double v, double tol = 1e-9) {
  const double scaled = v * 2.0;
  return std::fabs(scaled - std::round(scaled)) <= tol;
}

}  // namespace

std::string to_string(Port p) {
  switch (p) {
    case Port::kIn1: return "I1";
    case Port::kIn2: return "I2";
    case Port::kIn3: return "I3";
    case Port::kOut1: return "O1";
    case Port::kOut2: return "O2";
  }
  return "?";
}

void TriangleGateParams::validate() const {
  if (!(wavelength > 0.0)) {
    throw std::invalid_argument("TriangleGateParams: wavelength must be > 0");
  }
  if (!(width > 0.0)) {
    throw std::invalid_argument("TriangleGateParams: width must be > 0");
  }
  // Design rule (Sec. III-A): waveguide width <= lambda so the interference
  // pattern stays single-moded and clear.
  if (width > wavelength * (1.0 + 1e-12)) {
    throw std::invalid_argument(
        "TriangleGateParams: width must be <= wavelength");
  }
  if (!(n_arm > 0.0) || !(n_feed > 0.0) || !(n_axis_half > 0.0)) {
    throw std::invalid_argument(
        "TriangleGateParams: arm/feed/axis multiples must be positive");
  }
  if (!is_half_integer(n_arm) || !is_half_integer(n_feed) ||
      !is_half_integer(n_axis_half)) {
    throw std::invalid_argument(
        "TriangleGateParams: n_arm, n_feed and n_axis_half must be "
        "multiples of 1/2 (n*lambda or (n+1/2)*lambda per the design rules)");
  }
  if (!(arm_half_angle_deg > 5.0) || !(arm_half_angle_deg < 85.0)) {
    throw std::invalid_argument(
        "TriangleGateParams: arm_half_angle_deg must be in (5, 85)");
  }
  if (has_third_input) {
    if (!(n_out >= 0.0) || !is_half_integer(n_out)) {
      throw std::invalid_argument(
          "TriangleGateParams: n_out must be a non-negative multiple of 1/2");
    }
  } else {
    if (!(xor_out_distance > 0.0)) {
      throw std::invalid_argument(
          "TriangleGateParams: xor_out_distance must be > 0");
    }
  }
}

TriangleGateParams TriangleGateParams::paper_maj3() {
  TriangleGateParams p;
  p.wavelength = swsim::math::nm(55);
  p.width = swsim::math::nm(50);
  p.n_arm = 6;        // d1 = 330 nm
  p.n_axis_half = 8;  // d2 = 880 nm total, I3 at the midpoint
  p.n_feed = 4;       // d3 = 220 nm
  p.n_out = 1;        // d4 = 55 nm
  p.has_third_input = true;
  return p;
}

TriangleGateParams TriangleGateParams::paper_xor() {
  TriangleGateParams p = paper_maj3();
  p.has_third_input = false;
  p.n_axis_half = 1;  // XOR: minimal axis (no I3 to host)
  p.xor_out_distance = swsim::math::nm(40);  // d2 of Fig. 4
  return p;
}

TriangleGateParams TriangleGateParams::reduced_maj3(double wavelength,
                                                    double width) {
  TriangleGateParams p;
  p.wavelength = wavelength;
  p.width = width;
  p.n_arm = 2;
  p.n_axis_half = 1;
  p.n_feed = 1;
  p.n_out = 1;
  p.has_third_input = true;
  return p;
}

TriangleGateParams TriangleGateParams::reduced_xor(double wavelength,
                                                   double width) {
  TriangleGateParams p = reduced_maj3(wavelength, width);
  p.has_third_input = false;
  p.xor_out_distance = wavelength;
  return p;
}

TriangleGateLayout::TriangleGateLayout(const TriangleGateParams& params)
    : params_(params) {
  params_.validate();

  const double d1 = params_.d1();
  const double w = params_.width;
  const double half_axis = params_.n_axis_half * params_.wavelength;
  const double out_len = params_.branch_out();
  const double angle = params_.arm_half_angle_deg * swsim::math::kPi / 180.0;

  v_ = {0, 0, 0};
  c_ = {half_axis, 0, 0};
  s_ = {2.0 * half_axis, 0, 0};

  // Input arms approach V from the left at +-angle; output branches leave S
  // to the right at the mirrored angles.
  const Vec3 u1{std::cos(angle), std::sin(angle), 0};   // I1 launch (lower)
  const Vec3 u2{std::cos(angle), -std::sin(angle), 0};  // I2 launch (upper)
  const Vec3 b1{std::cos(angle), std::sin(angle), 0};   // branch to O1
  const Vec3 b2{std::cos(angle), -std::sin(angle), 0};  // branch to O2

  const Vec3 i1 = v_ - d1 * u1;
  const Vec3 i2 = v_ - d1 * u2;
  const Vec3 o1 = s_ + out_len * b1;
  const Vec3 o2 = s_ + out_len * b2;

  ports_.push_back({Port::kIn1, i1, u1});
  ports_.push_back({Port::kIn2, i2, u2});
  if (params_.has_third_input) {
    ports_.push_back({Port::kIn3, c_, Vec3{1, 0, 0}});
  }
  ports_.push_back({Port::kOut1, o1, b1});
  ports_.push_back({Port::kOut2, o2, b2});

  body_ = std::make_unique<Union>();
  // Arms, extended slightly past V so the wedge closes cleanly.
  body_->add(std::make_unique<Segment>(i1, v_ + (w / 2) * u1, w));
  body_->add(std::make_unique<Segment>(i2, v_ + (w / 2) * u2, w));
  // Axis V -> S.
  body_->add(std::make_unique<Segment>(v_, s_, w));
  // Output branches, extended half a width beyond the detectors so the
  // detection regions sit in bulk material.
  body_->add(std::make_unique<Segment>(s_ - (w / 2) * b1,
                                       o1 + (w / 2) * b1, w));
  body_->add(std::make_unique<Segment>(s_ - (w / 2) * b2,
                                       o2 + (w / 2) * b2, w));
}

bool TriangleGateLayout::has_port(Port p) const {
  for (const auto& site : ports_) {
    if (site.port == p) return true;
  }
  return false;
}

const PortSite& TriangleGateLayout::port(Port p) const {
  for (const auto& site : ports_) {
    if (site.port == p) return site;
  }
  throw std::invalid_argument("TriangleGateLayout: gate has no port " +
                              to_string(p));
}

double TriangleGateLayout::path_length(Port input, Port output) const {
  if (output != Port::kOut1 && output != Port::kOut2) {
    throw std::invalid_argument("path_length: second argument must be O1/O2");
  }
  const double tail = params_.branch_out();  // S -> detector
  switch (input) {
    case Port::kIn1:
    case Port::kIn2:
      return params_.d1() + params_.d2() + tail;
    case Port::kIn3:
      if (!params_.has_third_input) {
        throw std::invalid_argument("path_length: XOR layout has no I3");
      }
      return params_.d2() / 2.0 + tail;
    default:
      throw std::invalid_argument(
          "path_length: first argument must be an input port");
  }
}

Rect TriangleGateLayout::bounding_box(double margin) const {
  double x0 = v_.x, x1 = s_.x, y0 = v_.y, y1 = v_.y;
  for (const auto& site : ports_) {
    x0 = std::min(x0, site.center.x);
    x1 = std::max(x1, site.center.x);
    y0 = std::min(y0, site.center.y);
    y1 = std::max(y1, site.center.y);
  }
  const double pad = margin + params_.width;
  return Rect(x0 - pad, y0 - pad, x1 + pad, y1 + pad);
}

Mask TriangleGateLayout::body_mask(const Grid& grid) const {
  return rasterize(grid, *body_);
}

Mask TriangleGateLayout::port_mask(const Grid& grid, Port p,
                                   double extent) const {
  const PortSite& site = port(p);
  const Vec3 half = site.direction * (extent / 2.0);
  const Segment patch(site.center - half, site.center + half, params_.width);
  Mask m = rasterize(grid, patch);
  m &= body_mask(grid);
  return m;
}

// --- Ladder baseline ---------------------------------------------------------

void LadderGateParams::validate() const {
  if (!(wavelength > 0.0) || !(width > 0.0)) {
    throw std::invalid_argument("LadderGateParams: dimensions must be > 0");
  }
  if (width > wavelength * (1.0 + 1e-12)) {
    throw std::invalid_argument("LadderGateParams: width must be <= lambda");
  }
  if (!(n_rail > 0.0) || !(n_rung > 0.0) || !(n_out >= 0.0)) {
    throw std::invalid_argument("LadderGateParams: multiples must be >= 0");
  }
}

std::string to_string(LadderPort p) {
  switch (p) {
    case LadderPort::kIn1: return "I1";
    case LadderPort::kIn2: return "I2";
    case LadderPort::kIn3: return "I3";
    case LadderPort::kIn3Replica: return "I3r";
    case LadderPort::kOut1: return "O1";
    case LadderPort::kOut2: return "O2";
  }
  return "?";
}

LadderGateLayout::LadderGateLayout(const LadderGateParams& params)
    : params_(params) {
  params_.validate();

  const double lam = params_.wavelength;
  const double w = params_.width;
  const double h = 0.5 * params_.n_rung * lam;     // rail offset from center
  const double half_rail = 0.5 * params_.n_rail * lam;
  const double out = std::max(params_.n_out, 0.5) * lam;

  // Rail A (top, y = +h): I1 -> P -> Q1 -> O1; rail B (bottom, y = -h):
  // I3r -> Q2 -> O2. The rung P--Q2 is vertical at x = 0; stub inputs I2
  // (at P) and I3 (at Q1) hang above rail A.
  const Vec3 p{0, h, 0};
  const Vec3 q1{half_rail, h, 0};
  const Vec3 q2{0, -h, 0};
  const Vec3 i1{-half_rail, h, 0};
  const Vec3 i2{0, h + half_rail, 0};
  const Vec3 i3{half_rail, h + half_rail, 0};
  const Vec3 i3r{-half_rail, -h, 0};
  const Vec3 o1{half_rail + out, h, 0};
  const Vec3 o2{half_rail + out, -h, 0};

  ports_.push_back({LadderPort::kIn1, i1, Vec3{1, 0, 0}});
  ports_.push_back({LadderPort::kIn2, i2, Vec3{0, -1, 0}});
  ports_.push_back({LadderPort::kIn3, i3, Vec3{0, -1, 0}});
  ports_.push_back({LadderPort::kIn3Replica, i3r, Vec3{1, 0, 0}});
  ports_.push_back({LadderPort::kOut1, o1, Vec3{1, 0, 0}});
  ports_.push_back({LadderPort::kOut2, o2, Vec3{1, 0, 0}});

  body_ = std::make_unique<Union>();
  body_->add(std::make_unique<Segment>(i1, o1 + Vec3{w / 2, 0, 0}, w));
  body_->add(std::make_unique<Segment>(i3r, o2 + Vec3{w / 2, 0, 0}, w));
  body_->add(std::make_unique<Segment>(p, q2, w));      // rung
  body_->add(std::make_unique<Segment>(i2, p, w));      // I2 stub
  body_->add(std::make_unique<Segment>(i3, q1, w));     // I3 stub
}

const LadderPortSite& LadderGateLayout::port(LadderPort p) const {
  for (const auto& site : ports_) {
    if (site.port == p) return site;
  }
  throw std::invalid_argument("LadderGateLayout: no port " + to_string(p));
}

Rect LadderGateLayout::bounding_box(double margin) const {
  double x0 = ports_.front().center.x, x1 = x0;
  double y0 = ports_.front().center.y, y1 = y0;
  for (const auto& site : ports_) {
    x0 = std::min(x0, site.center.x);
    x1 = std::max(x1, site.center.x);
    y0 = std::min(y0, site.center.y);
    y1 = std::max(y1, site.center.y);
  }
  const double pad = margin + params_.width;
  return Rect(x0 - pad, y0 - pad, x1 + pad, y1 + pad);
}

Mask LadderGateLayout::body_mask(const Grid& grid) const {
  return rasterize(grid, *body_);
}

int LadderGateLayout::excitation_cells() const {
  // Refs. [22]/[23]: fan-out in the ladder needs one extra excitation
  // transducer: the MAJ replicates one of its 3 inputs (-> 4), the
  // programmable XOR replicates both of its 2 inputs (-> 4).
  return 4;
}

double LadderGateLayout::path_length(int logical_input, int output) const {
  const int max_input = params_.is_xor ? 1 : 2;
  if (logical_input < 0 || logical_input > max_input) {
    throw std::invalid_argument("LadderGateLayout: bad logical input index");
  }
  if (output < 0 || output > 1) {
    throw std::invalid_argument("LadderGateLayout: bad output index");
  }
  // Thanks to replication every logical input has a same-rail route to each
  // output: rail transit plus the output stub. The replicated copy on the
  // far rail covers the other output, so no rung transit appears in the
  // first-order path; the rung only carries the synchronization wave.
  return (params_.n_rail + params_.n_out) * params_.wavelength;
}

}  // namespace swsim::geom
