// 2D shape primitives and boolean combinations, rasterizable to cell masks.
//
// Device geometries (the triangle gate of Fig. 3/4, the ladder baseline) are
// described as unions of oriented rectangular waveguide segments; the
// micromagnetic solver consumes the rasterized Mask. Shapes operate in the
// xy-plane (the film plane); z is ignored.
#pragma once

#include <memory>
#include <vector>

#include "math/field.h"
#include "math/grid.h"
#include "math/vec3.h"

namespace swsim::geom {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::Vec3;

class Shape {
 public:
  virtual ~Shape() = default;
  // True iff point p (z ignored) is inside the shape.
  virtual bool contains(const Vec3& p) const = 0;
};

// Axis-aligned rectangle [x0, x1] x [y0, y1].
class Rect final : public Shape {
 public:
  Rect(double x0, double y0, double x1, double y1);
  bool contains(const Vec3& p) const override;

  double x0() const { return x0_; }
  double y0() const { return y0_; }
  double x1() const { return x1_; }
  double y1() const { return y1_; }
  Vec3 center() const { return {(x0_ + x1_) / 2, (y0_ + y1_) / 2, 0}; }

 private:
  double x0_, y0_, x1_, y1_;
};

// A waveguide segment: rectangle of width `width` whose axis runs from a to b
// (inclusive of the end caps, so consecutive segments overlap cleanly).
class Segment final : public Shape {
 public:
  Segment(const Vec3& a, const Vec3& b, double width);
  bool contains(const Vec3& p) const override;

  const Vec3& a() const { return a_; }
  const Vec3& b() const { return b_; }
  double width() const { return width_; }
  double length() const { return length_; }

 private:
  Vec3 a_, b_;
  double width_;
  double length_;
  Vec3 axis_;  // unit vector a -> b
};

// Circle (disk) of given center and radius.
class Circle final : public Shape {
 public:
  Circle(const Vec3& center, double radius);
  bool contains(const Vec3& p) const override;

 private:
  Vec3 center_;
  double radius_;
};

// Simple polygon (even-odd rule). Vertices in order; closed implicitly.
class Polygon final : public Shape {
 public:
  explicit Polygon(std::vector<Vec3> vertices);
  bool contains(const Vec3& p) const override;

 private:
  std::vector<Vec3> vertices_;
};

// Union of owned sub-shapes.
class Union final : public Shape {
 public:
  Union() = default;
  void add(std::unique_ptr<Shape> s) { parts_.push_back(std::move(s)); }
  bool contains(const Vec3& p) const override;
  std::size_t size() const { return parts_.size(); }

 private:
  std::vector<std::unique_ptr<Shape>> parts_;
};

// base minus subtracted.
class Difference final : public Shape {
 public:
  Difference(std::unique_ptr<Shape> base, std::unique_ptr<Shape> subtracted);
  bool contains(const Vec3& p) const override;

 private:
  std::unique_ptr<Shape> base_;
  std::unique_ptr<Shape> sub_;
};

// Rasterizes a shape onto a grid by cell-center sampling: a cell is occupied
// iff its center lies inside the shape. All z-layers get the same footprint.
Mask rasterize(const Grid& grid, const Shape& shape);

}  // namespace swsim::geom
