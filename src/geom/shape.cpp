#include "geom/shape.h"

#include <cmath>
#include <stdexcept>

namespace swsim::geom {

Rect::Rect(double x0, double y0, double x1, double y1)
    : x0_(x0), y0_(y0), x1_(x1), y1_(y1) {
  if (!(x1 > x0) || !(y1 > y0)) {
    throw std::invalid_argument("Rect: requires x1 > x0 and y1 > y0");
  }
}

bool Rect::contains(const Vec3& p) const {
  return p.x >= x0_ && p.x <= x1_ && p.y >= y0_ && p.y <= y1_;
}

Segment::Segment(const Vec3& a, const Vec3& b, double width)
    : a_{a.x, a.y, 0}, b_{b.x, b.y, 0}, width_(width) {
  if (!(width > 0.0)) {
    throw std::invalid_argument("Segment: width must be positive");
  }
  length_ = swsim::math::distance(a_, b_);
  if (length_ == 0.0) {
    throw std::invalid_argument("Segment: endpoints coincide");
  }
  axis_ = (b_ - a_) / length_;
}

bool Segment::contains(const Vec3& p) const {
  const Vec3 q{p.x - a_.x, p.y - a_.y, 0};
  const double along = q.x * axis_.x + q.y * axis_.y;
  if (along < 0.0 || along > length_) return false;
  const double across = std::fabs(q.x * (-axis_.y) + q.y * axis_.x);
  return across <= width_ / 2.0;
}

Circle::Circle(const Vec3& center, double radius)
    : center_{center.x, center.y, 0}, radius_(radius) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("Circle: radius must be positive");
  }
}

bool Circle::contains(const Vec3& p) const {
  const double dx = p.x - center_.x;
  const double dy = p.y - center_.y;
  return dx * dx + dy * dy <= radius_ * radius_;
}

Polygon::Polygon(std::vector<Vec3> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Polygon: need at least 3 vertices");
  }
}

bool Polygon::contains(const Vec3& p) const {
  // Even-odd ray casting along +x.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec3& vi = vertices_[i];
    const Vec3& vj = vertices_[j];
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      const double x_at =
          vj.x + (p.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

bool Union::contains(const Vec3& p) const {
  for (const auto& s : parts_) {
    if (s->contains(p)) return true;
  }
  return false;
}

Difference::Difference(std::unique_ptr<Shape> base,
                       std::unique_ptr<Shape> subtracted)
    : base_(std::move(base)), sub_(std::move(subtracted)) {
  if (!base_ || !sub_) {
    throw std::invalid_argument("Difference: null operand");
  }
}

bool Difference::contains(const Vec3& p) const {
  return base_->contains(p) && !sub_->contains(p);
}

Mask rasterize(const Grid& grid, const Shape& shape) {
  Mask mask(grid);
  for (std::size_t iy = 0; iy < grid.ny(); ++iy) {
    for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
      const Vec3 c = grid.cell_center(ix, iy, 0);
      if (!shape.contains(c)) continue;
      for (std::size_t iz = 0; iz < grid.nz(); ++iz) {
        mask.set(grid.index(ix, iy, iz), true);
      }
    }
  }
  return mask;
}

}  // namespace swsim::geom
