// Flight recorder: a bounded in-memory ring of the most recent serve
// events, kept so a postmortem has the last seconds of traffic even when
// the request log was disabled, rotated, or lost with the process.
//
// Two dump paths with very different contracts:
//   * dump(ostream) — normal-context dump, mutex-taken, used by the
//     SIGQUIT handler's *main-loop* side (the signal handler only bumps a
//     counter; Server::run_until_shutdown notices and dumps here).
//   * dump_to_fd(fd) — async-signal-safe best effort for the crash path
//     (SIGSEGV/SIGABRT...): no locks, no allocation, raw ::write() of the
//     fixed-size slots. A slot being concurrently rewritten may come out
//     torn; a torn line in a crash dump beats no dump.
//
// Entries are preformatted JSON lines truncated to kSlotBytes so the
// crash path never touches the heap.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace swsim::serve {

class FlightRecorder {
 public:
  static constexpr std::size_t kSlotBytes = 384;

  explicit FlightRecorder(std::size_t capacity = 256);
  // Unbinds this recorder from the crash handlers if it was the armed one
  // (the handlers stay installed but become no-ops), so a crash after an
  // in-process Server is destroyed cannot touch freed memory.
  ~FlightRecorder();

  // Records one event line (a JSON object, no trailing newline); lines
  // longer than kSlotBytes - 1 are truncated.
  void record(const std::string& line);

  std::uint64_t total_recorded() const;
  std::size_t size() const;  // entries currently held (<= capacity)
  std::size_t capacity() const { return slots_.size(); }

  // Writes the ring oldest-first between marker lines:
  //   {"flight_recorder":"begin","dropped":N}
  //   ... entries ...
  //   {"flight_recorder":"end","entries":M}
  void dump(std::ostream& out) const;

  // Async-signal-safe: raw write(2) of the ring to `fd`, oldest-first.
  // No locking — only call from a crash handler (or a test that accepts
  // the race). Returns bytes written (best effort).
  std::size_t dump_to_fd(int fd) const;

  // Registers this recorder as the process crash recorder and installs
  // SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump_to_fd(stderr) and
  // re-raise with the default disposition. At most one recorder per
  // process can be armed; later calls rebind the pointer.
  void arm_crash_dump(int fd = 2);

 private:
  struct Slot {
    char text[kSlotBytes];
    // Bytes valid in `text`; 0 = never written. Written last so the
    // lock-free crash reader sees len==0 or a fully copied prefix.
    std::uint16_t len = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::uint64_t next_ = 0;  // total records; next slot is next_ % capacity
};

}  // namespace swsim::serve
