// The swsim serve daemon: a long-lived, multi-tenant front-end over one
// shared engine::BatchRunner.
//
// Thread architecture:
//
//   accept thread ──► session thread per connection ──► AdmissionQueue
//                                                            │
//                         N dispatcher threads ◄─────────────┘
//                         (shared BatchRunner: one thread pool,
//                          one content-addressed ResultCache)
//
// A session reads one frame at a time, answers built-ins (hello, healthz,
// metrics) inline, and funnels workload requests through the admission
// queue; the dispatcher fulfils the session's promise and the session
// writes the response frame. Because every client shares the runner's
// cache, a truth table one client already paid for is answered for the
// next client without re-solving — healthz exposes the cache and
// jobs_executed counters that prove it.
//
// Shutdown contract (docs/SERVING.md):
//   * begin_drain(): stop accepting connections, close the queue. Admitted
//     requests complete normally; new workload requests are answered with
//     retryable kDraining (+ retry_after_s). Built-ins keep working so
//     orchestrators can watch the drain.
//   * shutdown(): begin_drain, join dispatchers (backlog fully served),
//     then half-close session sockets and join sessions.
//   * run_until_shutdown(): drives the above from robust::ShutdownSignal —
//     first SIGTERM/SIGINT drains, a second force-cancels in-flight solves
//     via the process-wide cancel flag, SIGHUP reopens the request log.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/batch_runner.h"
#include "robust/status.h"
#include "serve/admission.h"
#include "serve/flight_recorder.h"
#include "serve/protocol.h"
#include "serve/slo.h"

namespace swsim::serve {

struct ServerConfig {
  // Exactly one endpoint: a Unix socket path, or a loopback TCP port.
  std::string socket_path;
  int tcp_port = 0;

  std::size_t dispatchers = 2;      // concurrent engine batches
  std::size_t queue_capacity = 64;  // admission bound (backpressure)
  std::size_t max_sessions = 64;    // concurrent connections
  double retry_after_s = 0.5;       // hint on kOverloaded / kDraining
  // Per-session read deadlines (serve/codec.h IoDeadlines): idle bounds
  // the wait for a new frame, frame bounds finishing a started one — the
  // slow-loris defence. 0 disables either.
  double idle_timeout_s = 300.0;
  double frame_timeout_s = 30.0;
  // Deadline policy: a request without deadline_s gets the default (0 =
  // none); a client-supplied deadline is capped at max (0 = uncapped).
  double default_deadline_s = 0.0;
  double max_deadline_s = 0.0;
  // Optional JSON overlay of the runtime tunables above (plus
  // queue_capacity), re-read on SIGHUP — see ServeTunables.
  std::string tunables_file;
  std::string request_log;          // JSONL request log path (optional)
  // Flight-recorder ring size (recent request lines kept in memory for
  // SIGQUIT / crash postmortems); 0 keeps the default.
  std::size_t flight_recorder_capacity = 256;
  // true: install SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump the
  // flight recorder to stderr before re-raising. The daemon turns this
  // on; in-process tests leave it off.
  bool arm_crash_dump = false;
  engine::EngineConfig engine;      // shared runner configuration
};

// The knobs that may change while the daemon runs (SIGHUP hot-reload from
// ServerConfig::tunables_file). Everything else — endpoint, thread counts,
// engine shape — is fixed at start().
struct ServeTunables {
  std::size_t queue_capacity = 64;
  double retry_after_s = 0.5;
  double idle_timeout_s = 300.0;
  double frame_timeout_s = 30.0;
  double default_deadline_s = 0.0;
  double max_deadline_s = 0.0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the endpoint and starts the accept + dispatcher threads.
  robust::Status start();

  // See the shutdown contract above. All idempotent.
  void begin_drain();
  void shutdown();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // SIGHUP semantics: reopens the request log (rotation) and re-reads the
  // tunables file, if one was configured. A malformed file is reported and
  // ignored — the daemon keeps the last good tunables.
  void reload();

  // Snapshot of the current runtime tunables (hot-reloadable knobs).
  ServeTunables tunables() const;

  // The crash-recovery scan start() ran over the spill directory (all
  // zeros when the engine has no spill_dir).
  engine::ResultCache::RecoveryReport recovery_report() const {
    return recovery_;
  }

  // Signal-driven service loop; returns the process exit code.
  int run_until_shutdown();

  // "unix:/path" or "tcp:PORT" once start() succeeded.
  std::string endpoint() const;

  const engine::BatchRunner& runner() const { return *runner_; }
  const SloTracker& slo() const { return slo_; }
  const FlightRecorder& flight_recorder() const { return flight_; }

  // Appends the flight-recorder ring to the request log (stderr when no
  // log is configured). run_until_shutdown() calls this on SIGQUIT.
  void dump_flight_recorder();

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void dispatch_loop();
  void session_loop(std::size_t slot, int fd);
  // deadline_seconds > 0 is the remaining request budget, plumbed into the
  // engine as an absolute JobOptions::not_after. *engine_seconds (when
  // non-null) accumulates the wall time spent inside the BatchRunner so
  // the dispatcher can split engine from render time.
  Response handle_workload(const Request& request, double deadline_seconds,
                           double* engine_seconds);
  Response make_builtin_response(const Request& request);
  // probe.subscribe: acks the request, then pushes probe frames from
  // obs::ProbeHub until the request's bounds are hit, the hub drains dry
  // past the bounds, or the server drains. Returns false when the socket
  // died (the session loop then closes the connection).
  bool stream_probes(int fd, const Request& request);
  std::string healthz_payload() const;
  void log_request(const Request& request, const Response& response,
                   double wall_s);
  void observe_request(const Request& request, const Response& response,
                       double wall_s);
  // Overlays config_.tunables_file onto the current tunables (no-op when
  // unset). kInvalidConfig on parse/validation failure; tunables keep
  // their previous values in that case.
  robust::Status apply_tunables_file();

  ServerConfig config_;
  std::unique_ptr<engine::BatchRunner> runner_;
  AdmissionQueue queue_;

  mutable std::mutex tunables_mutex_;
  ServeTunables tunables_;
  engine::ResultCache::RecoveryReport recovery_;

  int listen_fd_ = -1;
  int wake_read_ = -1;   // accept-loop wake pipe (begin_drain writes)
  int wake_write_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  bool stopped_ = false;  // shutdown() ran (main-thread only)
  double start_t_us_ = 0.0;

  std::thread accept_thread_;
  std::vector<std::thread> dispatcher_threads_;

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::size_t> free_slots_;  // finished sessions, reusable
  std::size_t active_sessions_ = 0;

  std::mutex log_mutex_;
  std::ofstream log_out_;

  // Authoritative request counters (metrics mirror them; healthz reads
  // these so it works in SWSIM_OBS_OFF builds too).
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> requests_failed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> sessions_timed_out_{0};

  // Probe-stream accounting (healthz "probe" section; OBS_OFF-safe).
  std::atomic<std::uint64_t> probe_streams_{0};
  std::atomic<std::uint64_t> probe_frames_{0};
  std::atomic<std::uint64_t> probe_dropped_{0};
  std::atomic<std::uint64_t> probe_active_{0};

  // Per-tenant SLO accounting (healthz "slo" section) and the bounded
  // ring of recent request lines for postmortems.
  SloTracker slo_;
  FlightRecorder flight_;
};

}  // namespace swsim::serve
