#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"

namespace swsim::serve {

namespace {

// Shortest round-trip-exact rendering for wire doubles: scalars crossing
// the protocol must parse back to the identical value.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer a shorter form when it round-trips (keeps documents readable
  // for the common "55" / "0.05" cases).
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string quoted(const std::string& s) {
  return "\"" + obs::escape_json(s) + "\"";
}

robust::Status invalid(const std::string& message) {
  return robust::Status::error(robust::StatusCode::kInvalidConfig, message,
                               "serve request");
}

// Field accessors that fold "absent" and "wrong type" into one check.
const obs::JsonValue* member(const obs::JsonValue& doc,
                             const std::string& key) {
  return doc.find(key);
}

robust::Status read_number(const obs::JsonValue& doc, const std::string& key,
                           double* out, bool* present) {
  *present = false;
  const auto* v = member(doc, key);
  if (!v) return robust::Status::ok();
  if (!v->is_number()) return invalid("'" + key + "' must be a number");
  if (!std::isfinite(v->number())) {
    return invalid("'" + key + "' must be finite");
  }
  *out = v->number();
  *present = true;
  return robust::Status::ok();
}

robust::Status read_string(const obs::JsonValue& doc, const std::string& key,
                           std::string* out, bool* present) {
  *present = false;
  const auto* v = member(doc, key);
  if (!v) return robust::Status::ok();
  if (!v->is_string()) return invalid("'" + key + "' must be a string");
  *out = v->str();
  *present = true;
  return robust::Status::ok();
}

}  // namespace

std::string to_string(RequestType type) {
  switch (type) {
    case RequestType::kHello:
      return "hello";
    case RequestType::kHealthz:
      return "healthz";
    case RequestType::kMetrics:
      return "metrics";
    case RequestType::kTruthTable:
      return "truthtable";
    case RequestType::kYield:
      return "yield";
    case RequestType::kMicromag:
      return "micromag";
    case RequestType::kProbeSubscribe:
      return "probe.subscribe";
  }
  return "unknown";
}

std::uint64_t Request::flow_id() const {
  if (parent_span != 0) return parent_span;
  if (trace_id.empty()) return 0;
  return obs::flow_hash(trace_id + "#" + std::to_string(id));
}

robust::Status parse_request(const obs::JsonValue& doc, Request* out) {
  *out = Request{};
  if (!doc.is_object()) return invalid("request must be a JSON object");

  bool present = false;
  std::string proto;
  if (auto s = read_string(doc, "proto", &proto, &present); !s.is_ok()) {
    return s;
  }
  if (present && proto != kProtocol) {
    return invalid("protocol mismatch: server speaks " +
                   std::string(kProtocol) + ", request says '" + proto + "'");
  }

  std::string type;
  if (auto s = read_string(doc, "type", &type, &present); !s.is_ok()) {
    return s;
  }
  if (!present) return invalid("missing 'type'");
  if (type == "hello") {
    out->type = RequestType::kHello;
  } else if (type == "healthz") {
    out->type = RequestType::kHealthz;
  } else if (type == "metrics") {
    out->type = RequestType::kMetrics;
  } else if (type == "truthtable") {
    out->type = RequestType::kTruthTable;
  } else if (type == "yield") {
    out->type = RequestType::kYield;
  } else if (type == "micromag") {
    out->type = RequestType::kMicromag;
  } else if (type == "probe.subscribe") {
    out->type = RequestType::kProbeSubscribe;
  } else {
    return invalid(
        "unknown type '" + type +
        "' (want hello|healthz|metrics|truthtable|yield|micromag|"
        "probe.subscribe)");
  }

  double num = 0.0;
  if (auto s = read_number(doc, "id", &num, &present); !s.is_ok()) return s;
  if (present) {
    if (num < 0.0) return invalid("'id' must be >= 0");
    out->id = static_cast<std::uint64_t>(num);
  }
  if (auto s = read_string(doc, "client", &out->client, &present);
      !s.is_ok()) {
    return s;
  }
  if (present && out->client.empty()) {
    return invalid("'client' must be non-empty");
  }
  if (!present) out->client = "anon";
  if (auto s = read_number(doc, "priority", &num, &present); !s.is_ok()) {
    return s;
  }
  if (present) out->priority = static_cast<int>(num);
  if (auto s = read_number(doc, "deadline_s", &num, &present); !s.is_ok()) {
    return s;
  }
  if (present) {
    if (num <= 0.0) return invalid("'deadline_s' must be > 0");
    out->deadline_s = num;
  }
  if (auto s = read_string(doc, "trace_id", &out->trace_id, &present);
      !s.is_ok()) {
    return s;
  }
  // parent_span travels as a hex string: 64-bit ids do not survive the
  // double-backed JSON number representation above 2^53.
  std::string span_hex;
  if (auto s = read_string(doc, "parent_span", &span_hex, &present);
      !s.is_ok()) {
    return s;
  }
  if (present) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(span_hex.c_str(), &end, 16);
    if (span_hex.empty() || end == nullptr || *end != '\0') {
      return invalid("'parent_span' must be a hex string");
    }
    out->parent_span = static_cast<std::uint64_t>(v);
  }

  if (out->type == RequestType::kProbeSubscribe) {
    if (auto s = read_number(doc, "max_frames", &num, &present); !s.is_ok()) {
      return s;
    }
    if (present) {
      if (num < 0.0 || num != std::floor(num)) {
        return invalid("'max_frames' must be a non-negative integer");
      }
      out->probe_max_frames = static_cast<std::uint64_t>(num);
    }
    if (auto s = read_number(doc, "duration_s", &num, &present); !s.is_ok()) {
      return s;
    }
    if (present) {
      if (num <= 0.0) return invalid("'duration_s' must be > 0");
      out->probe_duration_s = num;
    }
    if (auto s = read_string(doc, "probe", &out->probe_filter, &present);
        !s.is_ok()) {
      return s;
    }
    return robust::Status::ok();
  }

  if (out->type == RequestType::kMicromag) {
    // Own defaults (maj / 50 / 20 / 4) — deliberately NOT the shared
    // geometry block below, whose lambda default is the analytic gates' 55.
    if (auto s = read_string(doc, "gate", &out->micromag.kind, &present);
        !s.is_ok()) {
      return s;
    }
    if (auto s = read_number(doc, "lambda_nm", &num, &present); !s.is_ok()) {
      return s;
    }
    if (present) {
      if (num <= 0.0) return invalid("'lambda_nm' must be > 0");
      out->micromag.lambda_nm = num;
    }
    if (auto s = read_number(doc, "width_nm", &num, &present); !s.is_ok()) {
      return s;
    }
    if (present) {
      if (num <= 0.0) return invalid("'width_nm' must be > 0");
      out->micromag.width_nm = num;
    }
    if (auto s = read_number(doc, "cell_nm", &num, &present); !s.is_ok()) {
      return s;
    }
    if (present) {
      if (num <= 0.0) return invalid("'cell_nm' must be > 0");
      out->micromag.cell_nm = num;
    }
    if (const auto* v = member(doc, "early_stop")) {
      if (!v->is_bool()) return invalid("'early_stop' must be a boolean");
      out->micromag.early_stop = v->boolean();
    }
    return robust::Status::ok();
  }

  if (out->type != RequestType::kTruthTable &&
      out->type != RequestType::kYield) {
    return robust::Status::ok();
  }

  // Shared gate geometry (CLI-identical defaults).
  std::string gate;
  bool gate_present = false;
  if (auto s = read_string(doc, "gate", &gate, &gate_present); !s.is_ok()) {
    return s;
  }
  double lambda_nm = 55.0;
  if (auto s = read_number(doc, "lambda_nm", &num, &present); !s.is_ok()) {
    return s;
  }
  if (present) {
    if (num <= 0.0) return invalid("'lambda_nm' must be > 0");
    lambda_nm = num;
  }
  std::optional<double> width_nm;
  if (auto s = read_number(doc, "width_nm", &num, &present); !s.is_ok()) {
    return s;
  }
  if (present) {
    if (num <= 0.0) return invalid("'width_nm' must be > 0");
    width_nm = num;
  }

  if (out->type == RequestType::kTruthTable) {
    if (!gate_present) return invalid("truthtable: missing 'gate'");
    out->gate.kind = gate;
    out->gate.lambda_nm = lambda_nm;
    out->gate.width_nm = width_nm;
    return robust::Status::ok();
  }

  out->yield.kind = gate_present ? gate : "maj";
  out->yield.lambda_nm = lambda_nm;
  out->yield.width_nm = width_nm;
  if (auto s = read_number(doc, "sigma_length_nm", &num, &present);
      !s.is_ok()) {
    return s;
  }
  if (present) {
    if (num < 0.0) return invalid("'sigma_length_nm' must be >= 0");
    out->yield.sigma_length_nm = num;
  }
  if (auto s = read_number(doc, "sigma_amp", &num, &present); !s.is_ok()) {
    return s;
  }
  if (present) {
    if (num < 0.0) return invalid("'sigma_amp' must be >= 0");
    out->yield.sigma_amp = num;
  }
  if (auto s = read_number(doc, "trials", &num, &present); !s.is_ok()) {
    return s;
  }
  if (present) {
    if (num < 1.0 || num != std::floor(num)) {
      return invalid("'trials' must be a positive integer");
    }
    out->yield.trials = static_cast<std::size_t>(num);
  }
  return robust::Status::ok();
}

robust::Status parse_request_text(const std::string& text, Request* out) {
  try {
    return parse_request(obs::parse_json(text), out);
  } catch (const std::exception& e) {
    return invalid(std::string("malformed JSON: ") + e.what());
  }
}

std::string serialize_request(const Request& r) {
  std::string out = "{\"proto\":" + quoted(kProtocol) +
                    ",\"type\":" + quoted(to_string(r.type)) +
                    ",\"id\":" + std::to_string(r.id) +
                    ",\"client\":" + quoted(r.client) +
                    ",\"priority\":" + std::to_string(r.priority);
  if (r.deadline_s > 0.0) {
    out += ",\"deadline_s\":" + fmt_double(r.deadline_s);
  }
  if (!r.trace_id.empty()) out += ",\"trace_id\":" + quoted(r.trace_id);
  if (r.parent_span != 0) {
    char hex[20];
    std::snprintf(hex, sizeof hex, "%llx",
                  static_cast<unsigned long long>(r.parent_span));
    out += ",\"parent_span\":\"" + std::string(hex) + "\"";
  }
  if (r.type == RequestType::kTruthTable) {
    out += ",\"gate\":" + quoted(r.gate.kind) +
           ",\"lambda_nm\":" + fmt_double(r.gate.lambda_nm);
    if (r.gate.width_nm) {
      out += ",\"width_nm\":" + fmt_double(*r.gate.width_nm);
    }
  } else if (r.type == RequestType::kYield) {
    out += ",\"gate\":" + quoted(r.yield.kind) +
           ",\"lambda_nm\":" + fmt_double(r.yield.lambda_nm);
    if (r.yield.width_nm) {
      out += ",\"width_nm\":" + fmt_double(*r.yield.width_nm);
    }
    out += ",\"sigma_length_nm\":" + fmt_double(r.yield.sigma_length_nm) +
           ",\"sigma_amp\":" + fmt_double(r.yield.sigma_amp) +
           ",\"trials\":" + std::to_string(r.yield.trials);
  } else if (r.type == RequestType::kMicromag) {
    out += ",\"gate\":" + quoted(r.micromag.kind) +
           ",\"lambda_nm\":" + fmt_double(r.micromag.lambda_nm) +
           ",\"width_nm\":" + fmt_double(r.micromag.width_nm) +
           ",\"cell_nm\":" + fmt_double(r.micromag.cell_nm);
    if (r.micromag.early_stop) out += ",\"early_stop\":true";
  } else if (r.type == RequestType::kProbeSubscribe) {
    if (r.probe_max_frames > 0) {
      out += ",\"max_frames\":" + std::to_string(r.probe_max_frames);
    }
    if (r.probe_duration_s > 0.0) {
      out += ",\"duration_s\":" + fmt_double(r.probe_duration_s);
    }
    if (!r.probe_filter.empty()) out += ",\"probe\":" + quoted(r.probe_filter);
  }
  out += "}";
  return out;
}

std::string serialize_response(const Response& r) {
  std::string out =
      "{\"proto\":" + quoted(kProtocol) + ",\"id\":" + std::to_string(r.id) +
      ",\"status\":{\"code\":" + quoted(robust::to_string(r.status.code())) +
      ",\"message\":" + quoted(r.status.message()) +
      ",\"context\":" + quoted(r.status.context()) + "}";
  if (r.retry_after_s > 0.0) {
    out += ",\"retry_after_s\":" + fmt_double(r.retry_after_s);
  }
  if (!r.text.empty()) out += ",\"text\":" + quoted(r.text);
  std::string scalars;
  const auto add_scalar = [&scalars](const char* name, double v) {
    if (!Response::set(v)) return;
    if (!scalars.empty()) scalars += ",";
    scalars += "\"" + std::string(name) + "\":" + fmt_double(v);
  };
  add_scalar("all_pass", r.all_pass);
  add_scalar("yield", r.yield_value);
  add_scalar("mean_worst_margin", r.mean_worst_margin);
  add_scalar("max_asymmetry", r.max_asymmetry);
  add_scalar("min_margin", r.min_margin);
  if (!scalars.empty()) out += ",\"scalars\":{" + scalars + "}";
  if (r.timing.any()) {
    std::string timing;
    const auto add_phase = [&timing](const char* name, double v) {
      if (v < 0.0) return;
      if (!timing.empty()) timing += ",";
      timing += "\"" + std::string(name) + "\":" + fmt_double(v);
    };
    add_phase("queue_s", r.timing.queue_s);
    add_phase("engine_s", r.timing.engine_s);
    add_phase("render_s", r.timing.render_s);
    add_phase("total_s", r.timing.total_s);
    add_phase("budget_consumed", r.timing.budget_consumed);
    out += ",\"timing\":{" + timing + "}";
  }
  if (!r.payload_json.empty()) out += ",\"payload\":" + r.payload_json;
  out += "}";
  return out;
}

robust::Status parse_response_text(const std::string& text, Response* out) {
  *out = Response{};
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(text);
  } catch (const std::exception& e) {
    return invalid(std::string("malformed response JSON: ") + e.what());
  }
  if (!doc.is_object()) return invalid("response must be a JSON object");
  if (const auto* id = doc.find("id"); id && id->is_number()) {
    out->id = static_cast<std::uint64_t>(id->number());
  }
  const auto* status = doc.find("status");
  if (!status || !status->is_object()) {
    return invalid("response is missing 'status'");
  }
  const auto* code = status->find("code");
  if (!code || !code->is_string()) {
    return invalid("response status is missing 'code'");
  }
  const auto* message = status->find("message");
  const auto* context = status->find("context");
  const robust::StatusCode parsed_code = status_code_from_string(code->str());
  if (parsed_code == robust::StatusCode::kOk) {
    out->status = robust::Status::ok();
  } else {
    out->status = robust::Status::error(
        parsed_code, message && message->is_string() ? message->str() : "",
        context && context->is_string() ? context->str() : "");
  }
  if (const auto* retry = doc.find("retry_after_s");
      retry && retry->is_number()) {
    out->retry_after_s = retry->number();
  }
  if (const auto* t = doc.find("text"); t && t->is_string()) {
    out->text = t->str();
  }
  if (const auto* scalars = doc.find("scalars");
      scalars && scalars->is_object()) {
    const auto get = [scalars](const char* name, double* dst) {
      if (const auto* v = scalars->find(name); v && v->is_number()) {
        *dst = v->number();
      }
    };
    get("all_pass", &out->all_pass);
    get("yield", &out->yield_value);
    get("mean_worst_margin", &out->mean_worst_margin);
    get("max_asymmetry", &out->max_asymmetry);
    get("min_margin", &out->min_margin);
  }
  if (const auto* timing = doc.find("timing"); timing && timing->is_object()) {
    const auto get = [timing](const char* name, double* dst) {
      if (const auto* v = timing->find(name); v && v->is_number()) {
        *dst = v->number();
      }
    };
    get("queue_s", &out->timing.queue_s);
    get("engine_s", &out->timing.engine_s);
    get("render_s", &out->timing.render_s);
    get("total_s", &out->timing.total_s);
    get("budget_consumed", &out->timing.budget_consumed);
  }
  if (const auto* payload = doc.find("payload")) {
    out->payload_json = dump_json(*payload);
  }
  return robust::Status::ok();
}

robust::StatusCode status_code_from_string(const std::string& name) {
  using robust::StatusCode;
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidConfig,
        StatusCode::kNumericalDivergence, StatusCode::kTimeout,
        StatusCode::kCancelled, StatusCode::kCacheCorrupt,
        StatusCode::kIoError, StatusCode::kQuarantined, StatusCode::kInternal,
        StatusCode::kOverloaded, StatusCode::kDraining,
        StatusCode::kDeadlineExceeded}) {
    if (robust::to_string(code) == name) return code;
  }
  return StatusCode::kInternal;
}

std::string dump_json(const obs::JsonValue& v) {
  switch (v.kind()) {
    case obs::JsonValue::Kind::kNull:
      return "null";
    case obs::JsonValue::Kind::kBool:
      return v.boolean() ? "true" : "false";
    case obs::JsonValue::Kind::kNumber:
      return fmt_double(v.number());
    case obs::JsonValue::Kind::kString:
      return quoted(v.str());
    case obs::JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array().size(); ++i) {
        if (i > 0) out += ",";
        out += dump_json(v.array()[i]);
      }
      return out + "]";
    }
    case obs::JsonValue::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : v.object()) {
        if (!first) out += ",";
        first = false;
        out += quoted(key) + ":" + dump_json(value);
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace swsim::serve
