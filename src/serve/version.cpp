#include "serve/version.h"

#include <sstream>

#include "bench/harness.h"
#include "serve/protocol.h"

#ifndef SWSIM_VERSION
#define SWSIM_VERSION "unknown"
#endif

namespace swsim::serve {

BuildInfo build_info() {
  const bench::EnvInfo env = bench::current_env();
  BuildInfo info;
  info.protocol = kProtocol;
  info.version = SWSIM_VERSION;
  info.git_sha = env.git_sha;
  info.compiler = env.compiler;
  info.flags = env.flags;
  info.build_type = env.build_type;
  info.cores = env.cores;
  return info;
}

std::string describe(const BuildInfo& info) {
  std::ostringstream os;
  os << "swsim " << info.version << " (" << info.protocol << ")\n"
     << "  git sha     " << info.git_sha << '\n'
     << "  compiler    " << info.compiler << '\n'
     << "  flags       " << (info.flags.empty() ? "(none)" : info.flags)
     << '\n'
     << "  build type  " << info.build_type << '\n'
     << "  cores       " << info.cores << '\n';
  return os.str();
}

}  // namespace swsim::serve
