// Workload descriptions shared by the CLI and the serve daemon.
//
// The wire-level determinism contract of `swsim serve` — a served request
// answers with the exact bytes the equivalent CLI invocation prints — only
// holds if both front-ends build their gate factories, cache keys, and
// report renderings from ONE implementation. This header is that
// implementation: plain parameter structs (no cli::Args, no JSON) that
// both `swsim truthtable`/`yield`/`batch` and the serve dispatcher map
// their inputs onto.
//
// Cache-key compatibility is part of the contract: make_truth_table_spec
// derives the same content key the CLI always has (gate kind hashed into
// the configuration hash), so a daemon pointed at a CLI run's --cache-dir
// reuses its spill files and vice versa.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/micromag_gate.h"
#include "core/variability.h"
#include "engine/batch_runner.h"

namespace swsim::serve {

// A truth-table request: gate kind plus the two geometry knobs the CLI
// exposes. width_nm defaults to the paper's 0.4 * lambda when unset.
struct GateParams {
  std::string kind;
  double lambda_nm = 55.0;
  std::optional<double> width_nm;
};

struct TruthTableSpec {
  engine::BatchRunner::GateFactory factory;
  std::uint64_t key = 0;  // content hash: cache address + quarantine key
};

// nullopt for an unknown gate kind (maj, xor, xnor, and, or, nand, nor,
// maj5, maj7 are known).
std::optional<TruthTableSpec> make_truth_table_spec(const GateParams& p);

// A Monte-Carlo yield request; defaults mirror `swsim yield`.
struct YieldParams {
  std::string kind = "maj";
  double lambda_nm = 55.0;
  std::optional<double> width_nm;
  double sigma_length_nm = 2.0;  // maps to sigma_phase via the model
  double sigma_amp = 0.05;
  std::size_t trials = 500;
};

struct YieldSpec {
  std::string kind;
  engine::BatchRunner::TriangleFactory factory;
  core::VariabilityModel model;
  std::size_t trials = 0;
};

// nullopt for an unknown gate kind (yield supports maj and xor).
std::optional<YieldSpec> make_yield_spec(const YieldParams& p);

// A micromagnetic (LLG-backend) truth-table request: the reduced-scale
// triangle gate `swsim micromag` runs, served over the same engine.
// Defaults mirror the CLI flags.
struct MicromagParams {
  std::string kind = "maj";  // maj | xor
  double lambda_nm = 50.0;
  double width_nm = 20.0;
  double cell_nm = 4.0;
  // Stop each LLG solve once the live port envelopes have settled
  // (core::MicromagGateConfig::early_stop). Detected logic is unchanged;
  // raw amplitudes (and output bytes) may differ from a full-length run.
  bool early_stop = false;
};

struct MicromagSpec {
  engine::BatchRunner::GateFactory factory;
  // One-shot shared calibration (the all-zero reference solve); pass as
  // the engine's `prepare` hook so it runs once rather than once per row.
  std::function<void()> prepare;
  std::uint64_t key = 0;  // content hash of the gate configuration
  core::MicromagGateConfig config;
};

// nullopt for an unknown gate kind (micromag supports maj and xor).
std::optional<MicromagSpec> make_micromag_spec(const MicromagParams& p);

// The exact bytes `swsim yield` prints for a report (the truth-table
// counterpart is core::format_report).
std::string render_yield(const std::string& kind, const core::YieldReport& r);

}  // namespace swsim::serve
