// Multi-tenant load generator for a live swsim.serve daemon.
//
// Drives N worker connections ("tenants") against an endpoint with a
// seeded mix of truthtable / yield / hello requests, in either mode:
//
//   * closed loop (target_rps == 0) — every worker issues its next
//     request the moment the previous response lands: measures the
//     daemon's saturated throughput at a fixed concurrency.
//   * open loop (target_rps > 0) — arrivals are paced on a global
//     schedule (slot k fires at start + k/target_rps, workers race for
//     slots); queueing delay then shows up in the latency tail instead
//     of silently slowing the arrival rate — the coordinated-omission-
//     free way to measure tail latency at a target rate.
//
// Both `swsim loadgen` (live daemon over a socket) and
// bench_serve_throughput (in-process daemon) are built on run_loadgen();
// the report carries everything BENCH_serve_throughput.json gates on:
// requests/s, p50/p95/p99/p99.9, shed and timeout rates, and the hung
// count that must stay zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robust/status.h"

namespace swsim::serve {

struct LoadgenConfig {
  // Exactly one endpoint, like ServerConfig.
  std::string socket_path;
  int tcp_port = 0;

  double duration_s = 5.0;        // stop issuing new requests after this
  std::uint64_t max_requests = 0; // additional cap (0 = duration only)
  double target_rps = 0.0;        // > 0: open loop; 0: closed loop
  std::size_t concurrency = 4;    // worker connections, one tenant each
  std::uint64_t seed = 1;         // request-mix + chaos randomness

  // Request mix weights (any non-negative scale; all zero = hello only).
  double weight_truthtable = 0.6;
  double weight_yield = 0.2;
  double weight_hello = 0.2;
  std::size_t yield_trials = 40;
  std::vector<std::string> gates = {"maj", "xor"};

  double deadline_s = 0.0;       // per-request server budget (0 = none)
  // Client-side cap on one exchange; a call still unanswered past it
  // counts as hung — the invariant the bench gates at zero.
  double call_timeout_s = 30.0;
  // Optional chaos: probability a worker drops its connection between
  // exchanges (session-churn stress; reconnect cost lands in latency).
  double chaos_close_prob = 0.0;
  std::string tenant_prefix = "loadgen";
  // Stamped into every request when non-empty, so a loadgen run can be
  // traced end to end like any other client traffic.
  std::string trace_id;
};

struct LoadgenReport {
  std::uint64_t sent = 0;        // requests issued
  std::uint64_t completed = 0;   // responses received (any status)
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;        // kOverloaded + kDraining
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;      // other non-ok responses
  std::uint64_t transport_errors = 0;
  std::uint64_t hung = 0;        // exchanges that outlived call_timeout_s
  std::uint64_t truthtable = 0, yield = 0, hello = 0;  // sent per kind

  double wall_s = 0.0;
  double rps = 0.0;              // completed / wall_s
  double mean_s = 0.0, p50_s = 0.0, p95_s = 0.0, p99_s = 0.0, p999_s = 0.0,
         max_s = 0.0;
  std::vector<double> latencies_s;  // one per completed exchange, unsorted

  double shed_rate() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(shed + deadline_exceeded) /
                                static_cast<double>(completed);
  }
};

// Runs the configured load against the endpoint. kInvalidConfig for a
// nonsensical config, kIoError when no worker ever connected; otherwise
// kOk with *out filled (individual transport errors are counted, not
// fatal).
robust::Status run_loadgen(const LoadgenConfig& config, LoadgenReport* out);

}  // namespace swsim::serve
