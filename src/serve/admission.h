// Bounded, fair admission queue between serve sessions and dispatchers.
//
// Session threads push parsed requests; dispatcher threads pop them and
// run the engine. Three properties the daemon needs that a plain
// mutex+deque does not give:
//
//   * Bounded backpressure — capacity is a hard limit. A push over it
//     returns kOverloaded immediately (the session answers with the
//     retryable status and a retry_after hint) instead of queueing
//     unbounded work behind a slow engine.
//   * Priority bands — higher `priority` drains strictly first. Within a
//     band, clients are served round-robin, so one chatty client cannot
//     starve its peers at the same priority: fairness is per-client, not
//     per-request.
//   * Orderly close — close() wakes every popper; pop() returns the
//     admitted backlog first and nullptr only once the queue is both
//     closed and empty, which is exactly the drain contract ("admitted
//     requests complete, new ones are rejected").
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace swsim::serve {

// One admitted request: the parsed document plus the promise its session
// thread is blocked on.
struct PendingRequest {
  Request request;
  std::promise<Response> promise;
  std::uint64_t enqueued_us = 0;  // wall clock, for request-log latency
  // Steady-clock stamps the serve layer works in: when the request entered
  // the queue (healthz oldest-wait age) and when its budget expires
  // (max() = no deadline; the dispatcher sheds expired requests at pop).
  std::chrono::steady_clock::time_point enqueued_at{};
  std::chrono::steady_clock::time_point deadline_at =
      std::chrono::steady_clock::time_point::max();
  // The deadline granted at admission in seconds (0 = none) — kept beside
  // the absolute deadline_at so the dispatcher can report what fraction
  // of the budget a request consumed.
  double granted_deadline_s = 0.0;

  bool has_deadline() const {
    return deadline_at != std::chrono::steady_clock::time_point::max();
  }
};

enum class Admit { kAdmitted, kOverloaded, kClosed };

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  // Non-blocking; ownership transfers only on kAdmitted.
  Admit push(std::unique_ptr<PendingRequest> req);

  // Blocks until a request is available or the queue is closed AND empty
  // (then nullptr, permanently). Highest priority band first; round-robin
  // over clients inside a band.
  std::unique_ptr<PendingRequest> pop();

  // Rejects future pushes with kClosed and lets pop() drain what was
  // already admitted. Idempotent.
  void close();

  std::size_t depth() const;
  std::size_t capacity() const;
  // Hot-reload hook (SIGHUP tunables): applies to future pushes only —
  // shrinking below the current depth rejects new work until the backlog
  // drains, it never evicts admitted requests.
  void set_capacity(std::size_t capacity);
  // Queue age of the oldest waiting request in seconds; 0 when empty. The
  // saturation signal healthz exposes: depth says how much is queued,
  // this says how *stale* the head of the line is.
  double oldest_wait_seconds() const;

 private:
  // One priority band: per-client FIFOs plus a rotation order. A client
  // appears in `order` iff it has queued work; the cursor walks the order
  // so consecutive pops hit different clients.
  struct Band {
    std::map<std::string, std::deque<std::unique_ptr<PendingRequest>>>
        per_client;
    std::vector<std::string> order;
    std::size_t cursor = 0;
    std::size_t size = 0;
  };

  std::unique_ptr<PendingRequest> pop_locked();

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<int, Band, std::greater<int>> bands_;  // highest priority first
  std::size_t depth_ = 0;
  bool closed_ = false;
};

}  // namespace swsim::serve
