#include "serve/workload.h"

#include <memory>
#include <sstream>

#include "core/derived_gates.h"
#include "core/multi_input_gate.h"
#include "core/triangle_gate.h"
#include "engine/hash.h"
#include "io/table.h"
#include "math/constants.h"

namespace swsim::serve {

namespace {

geom::TriangleGateParams triangle_params(const GateParams& p, bool maj) {
  auto params = maj ? geom::TriangleGateParams::paper_maj3()
                    : geom::TriangleGateParams::paper_xor();
  params.wavelength = math::nm(p.lambda_nm);
  params.width = math::nm(p.width_nm.value_or(0.4 * p.lambda_nm));
  return params;
}

}  // namespace

std::optional<TruthTableSpec> make_truth_table_spec(const GateParams& p) {
  TruthTableSpec spec;
  core::TriangleGateConfig cfg;
  cfg.params = triangle_params(p, /*maj=*/true);
  if (p.kind == "maj") {
    spec.factory = [cfg] {
      return std::make_unique<core::TriangleMajGate>(cfg);
    };
  } else if (p.kind == "xor" || p.kind == "xnor") {
    cfg.params = triangle_params(p, /*maj=*/false);
    cfg.inverted = p.kind == "xnor";
    spec.factory = [cfg] {
      return std::make_unique<core::TriangleXorGate>(cfg);
    };
  } else if (p.kind == "and" || p.kind == "or" || p.kind == "nand" ||
             p.kind == "nor") {
    const core::TwoInputFunction fn =
        p.kind == "and"    ? core::TwoInputFunction::kAnd
        : p.kind == "or"   ? core::TwoInputFunction::kOr
        : p.kind == "nand" ? core::TwoInputFunction::kNand
                           : core::TwoInputFunction::kNor;
    spec.factory = [cfg, fn] {
      return std::make_unique<core::ControlledMajGate>(cfg, fn);
    };
  } else if (p.kind == "maj5" || p.kind == "maj7") {
    core::MultiInputMajConfig mcfg;
    mcfg.num_inputs = p.kind == "maj5" ? 5 : 7;
    mcfg.params = cfg.params;
    spec.factory = [mcfg] {
      return std::make_unique<core::MultiInputMajGate>(mcfg);
    };
  } else {
    return std::nullopt;
  }
  // The gate kind is part of the key: "and" and "or" share a
  // TriangleGateConfig but differ in control constant / inversion.
  spec.key = engine::combine(engine::Fnv1a().str(p.kind).digest(),
                             engine::hash_of(cfg));
  return spec;
}

std::optional<YieldSpec> make_yield_spec(const YieldParams& p) {
  YieldSpec spec;
  spec.kind = p.kind;
  spec.model.sigma_phase = core::VariabilityModel::phase_sigma_for_length(
      math::nm(p.sigma_length_nm), math::nm(p.lambda_nm));
  spec.model.sigma_amplitude = p.sigma_amp;
  spec.trials = p.trials;

  GateParams gp;
  gp.kind = p.kind;
  gp.lambda_nm = p.lambda_nm;
  gp.width_nm = p.width_nm;
  core::TriangleGateConfig cfg;
  if (p.kind == "maj") {
    cfg.params = triangle_params(gp, /*maj=*/true);
    spec.factory = [cfg] {
      return std::make_unique<core::TriangleMajGate>(cfg);
    };
  } else if (p.kind == "xor") {
    cfg.params = triangle_params(gp, /*maj=*/false);
    spec.factory = [cfg] {
      return std::make_unique<core::TriangleXorGate>(cfg);
    };
  } else {
    return std::nullopt;
  }
  return spec;
}

std::optional<MicromagSpec> make_micromag_spec(const MicromagParams& p) {
  if (p.kind != "maj" && p.kind != "xor") return std::nullopt;
  core::MicromagGateConfig cfg;
  const double lambda = math::nm(p.lambda_nm);
  const double width = math::nm(p.width_nm);
  cfg.params = p.kind == "xor"
                   ? geom::TriangleGateParams::reduced_xor(lambda, width)
                   : geom::TriangleGateParams::reduced_maj3(lambda, width);
  cfg.cell_size = math::nm(p.cell_nm);
  cfg.early_stop = p.early_stop;

  MicromagSpec spec;
  spec.config = cfg;
  // One calibration job (the all-zero reference LLG run) feeds every
  // per-row job through a dependency edge, so the reference solve happens
  // once instead of once per row.
  auto calib = std::make_shared<std::optional<core::MicromagCalibration>>();
  spec.factory = [cfg, calib] {
    auto gate = std::make_unique<core::MicromagTriangleGate>(cfg);
    if (calib->has_value()) gate->set_calibration(**calib);
    return gate;
  };
  spec.prepare = [cfg, calib] {
    core::MicromagTriangleGate gate(cfg);
    *calib = gate.calibrate();
  };
  spec.key = engine::hash_of(cfg);
  return spec;
}

std::string render_yield(const std::string& kind,
                         const core::YieldReport& r) {
  using swsim::io::Table;
  std::ostringstream os;
  os << "gate " << kind << ", " << r.trials << " virtual devices:\n"
     << "  yield               " << Table::num(r.yield * 100, 1) << "%\n"
     << "  row failures        " << r.worst_row_failures << '\n'
     << "  mean worst margin   " << Table::num(r.mean_worst_margin, 3)
     << '\n';
  return os.str();
}

}  // namespace swsim::serve
