// Wire framing for the swsim.serve protocol.
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by that many bytes of UTF-8 JSON. Length-prefixing (rather than
// newline-delimiting) keeps the payload format unconstrained and makes
// truncation detectable: a reader either gets a whole frame or a clean
// EOF/error, never half a document.
//
// The functions below are the only place raw fds are read or written;
// both loop over partial transfers and EINTR, so SA_RESTART-less signals
// and small socket buffers are invisible to callers.
//
// The IoDeadlines overloads bound how long a peer can stall the calling
// thread — the server's defence against slow-loris clients, and the
// client's guarantee that a call returns by its deadline. `idle_s` caps
// the wait for the *first byte* of a new frame (a quiet-but-healthy
// connection); `frame_s` caps the rest of the frame once started (a peer
// trickling one byte per poll interval gets cut off at the frame budget,
// not never). Either 0 waits forever, reproducing the untimed overloads.
#pragma once

#include <cstddef>
#include <string>

namespace swsim::serve {

// Upper bound on a frame payload. Far above any real request/response
// (the largest is a metrics dump, a few tens of KiB) but low enough that
// a garbage length prefix — a client speaking the wrong protocol — fails
// fast instead of allocating gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;  // 1 MiB

struct IoDeadlines {
  double idle_s = 0.0;   // max wait for a new frame to begin; 0 = forever
  double frame_s = 0.0;  // max wait to finish a started frame; 0 = forever
};

// Writes one frame. Returns false (with *error set) on any write failure.
bool write_frame(int fd, const std::string& payload, std::string* error);
// Timed variant: fails with a "timed out" error if the peer does not
// accept the frame within deadlines.frame_s.
bool write_frame(int fd, const std::string& payload, std::string* error,
                 const IoDeadlines& deadlines);

enum class ReadResult {
  kFrame,    // *payload holds a complete frame
  kEof,      // orderly close before any byte of a new frame
  kError,    // short read mid-frame, oversize length, or an errno failure
  kTimeout,  // an IoDeadlines budget expired (timed overload only)
};

// Reads one frame. EOF exactly on a frame boundary is kEof; EOF inside a
// frame is kError (a truncated message must not look like a hangup).
ReadResult read_frame(int fd, std::string* payload, std::string* error);
// Timed variant: kTimeout when the idle or frame budget expires.
ReadResult read_frame(int fd, std::string* payload, std::string* error,
                      const IoDeadlines& deadlines);

}  // namespace swsim::serve
