// Client side of the swsim.serve protocol.
//
// A thin, synchronous connection: connect, call (one request frame in,
// one response frame out), destroy. `swsim client` is built on it, and
// the server tests use it to act as real tenants over the real socket.
//
// call_with_retries() layers the retry policy on top: one connection per
// attempt, capped exponential backoff with decorrelated jitter between
// attempts, the server's retry_after_s hint honoured as a floor, and an
// end-to-end deadline that bounds the whole call — each attempt's request
// carries the *remaining* budget as its deadline_s, so the server sheds
// work this client has already given up on.
#pragma once

#include <cstdint>
#include <string>

#include "robust/status.h"
#include "serve/protocol.h"

namespace swsim::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // kIoError on connection failure (daemon not up, wrong path/port).
  robust::Status connect_unix(const std::string& path);
  robust::Status connect_tcp(int port);  // loopback
  bool connected() const { return fd_ != -1; }

  // One request/response exchange. A transport failure (send/recv error,
  // torn frame, unparseable response) is kIoError; a server-side
  // rejection arrives as a successful call with response->status set.
  robust::Status call(const Request& request, Response* response);
  // Timed variant: kDeadlineExceeded if the server does not answer within
  // deadline_s (<= 0 waits forever, same as call()).
  robust::Status call(const Request& request, Response* response,
                      double deadline_s);

  void close();

  // Raw socket, for tests that need to speak below the Request layer
  // (malformed frames, half-closes). -1 when not connected.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// Retry policy for call_with_retries. Defaults are the conservative CLI
// defaults: one attempt, no deadline — exactly the old single-shot call.
struct RetryPolicy {
  int max_attempts = 1;
  double base_backoff_s = 0.05;  // first sleep; also the jitter floor
  double max_backoff_s = 2.0;    // cap on any single sleep
  double deadline_s = 0.0;       // whole-call budget; 0 = none
  std::uint64_t seed = 1;        // jitter stream (deterministic for tests)
};

// Accounting a caller can surface as retry-budget metrics.
struct RetryStats {
  int attempts = 0;
  int retries = 0;            // attempts - 1, when > 0
  double backoff_s = 0.0;     // total time slept between attempts
  robust::Status last_error;  // last transport / retryable status seen
};

// Connects (unix if socket_path is non-empty, else loopback TCP) and calls
// until a terminal outcome:
//   * kOk          — a response arrived. response->status may still be a
//                    server-side failure; a *retryable* one (overloaded /
//                    draining / transient engine fault) is only returned
//                    once the attempt budget is spent.
//   * kDeadlineExceeded — the end-to-end budget expired between or during
//                    attempts (response->status mirrors it).
//   * kIoError     — transport kept failing through the attempt budget.
// Retries fire on transport errors and retryable response codes, sleeping
// min(max_backoff, uniform(base_backoff, 3 * previous)) — decorrelated
// jitter — floored at the server's retry_after_s hint. A response of
// kDeadlineExceeded is terminal: the budget that expired was this call's.
robust::Status call_with_retries(const std::string& socket_path, int tcp_port,
                                 const Request& request,
                                 const RetryPolicy& policy,
                                 Response* response,
                                 RetryStats* stats = nullptr);

}  // namespace swsim::serve
