// Client side of the swsim.serve protocol.
//
// A thin, synchronous connection: connect, call (one request frame in,
// one response frame out), destroy. `swsim client` is built on it, and
// the server tests use it to act as real tenants over the real socket.
#pragma once

#include <string>

#include "robust/status.h"
#include "serve/protocol.h"

namespace swsim::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // kIoError on connection failure (daemon not up, wrong path/port).
  robust::Status connect_unix(const std::string& path);
  robust::Status connect_tcp(int port);  // loopback
  bool connected() const { return fd_ != -1; }

  // One request/response exchange. A transport failure (send/recv error,
  // torn frame, unparseable response) is kIoError; a server-side
  // rejection arrives as a successful call with response->status set.
  robust::Status call(const Request& request, Response* response);

  void close();

  // Raw socket, for tests that need to speak below the Request layer
  // (malformed frames, half-closes). -1 when not connected.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace swsim::serve
