#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "serve/client.h"
#include "serve/protocol.h"

namespace swsim::serve {

namespace {

// xorshift64*: cheap, seedable, good enough for mix/chaos draws. Each
// worker owns one stream (seed + worker index) so runs are deterministic
// in what they *send* regardless of scheduling.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545f4914f6cdd1dull;
  }
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }
};

enum class Kind { kTruthTable, kYield, kHello };

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace

robust::Status run_loadgen(const LoadgenConfig& config, LoadgenReport* out) {
  using robust::Status;
  using robust::StatusCode;
  *out = LoadgenReport{};
  const bool unix_ep = !config.socket_path.empty();
  const bool tcp_ep = config.tcp_port > 0;
  if (unix_ep == tcp_ep) {
    return Status::error(StatusCode::kInvalidConfig,
                         "exactly one endpoint required: a Unix socket path "
                         "or a TCP port",
                         "loadgen");
  }
  if (config.concurrency == 0) {
    return Status::error(StatusCode::kInvalidConfig,
                         "concurrency must be >= 1", "loadgen");
  }
  if (config.duration_s <= 0.0 && config.max_requests == 0) {
    return Status::error(StatusCode::kInvalidConfig,
                         "need a positive duration or a request cap",
                         "loadgen");
  }
  const double wsum = config.weight_truthtable + config.weight_yield +
                      config.weight_hello;
  if (config.weight_truthtable < 0.0 || config.weight_yield < 0.0 ||
      config.weight_hello < 0.0) {
    return Status::error(StatusCode::kInvalidConfig,
                         "mix weights must be >= 0", "loadgen");
  }

  const auto start = std::chrono::steady_clock::now();
  const auto issue_end =
      config.duration_s > 0.0
          ? start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(config.duration_s))
          : std::chrono::steady_clock::time_point::max();

  // Shared issue ledger: a worker claims slot k (open loop: the arrival
  // scheduled at start + k/target_rps) by incrementing, and backs out by
  // never sending if the window closed first.
  std::atomic<std::uint64_t> next_slot{0};
  std::atomic<bool> any_connected{false};

  struct WorkerResult {
    LoadgenReport partial;  // counters + latencies only
  };
  std::vector<WorkerResult> results(config.concurrency);

  const auto worker = [&](std::size_t index) {
    LoadgenReport& r = results[index].partial;
    Rng rng(config.seed * 0x9e3779b97f4a7c15ull + index + 1);
    Client client;
    const auto connect = [&]() -> bool {
      client.close();
      const Status st = unix_ep ? client.connect_unix(config.socket_path)
                                : client.connect_tcp(config.tcp_port);
      if (st.is_ok()) any_connected.store(true, std::memory_order_relaxed);
      return st.is_ok();
    };
    if (!connect()) {
      // One retry after a breath — the daemon may still be binding.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (!connect()) return;
    }
    const std::string tenant =
        config.tenant_prefix + "-" + std::to_string(index);
    std::uint64_t request_seq = 0;

    while (true) {
      const std::uint64_t slot =
          next_slot.fetch_add(1, std::memory_order_relaxed);
      if (config.max_requests != 0 && slot >= config.max_requests) break;
      if (config.target_rps > 0.0) {
        // Open loop: wait for this slot's scheduled arrival, even if the
        // daemon is slow — lateness becomes measured latency, not a
        // silently reduced rate.
        const auto at =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(slot) / config.target_rps));
        if (at >= issue_end) break;
        std::this_thread::sleep_until(at);
      } else if (std::chrono::steady_clock::now() >= issue_end) {
        break;
      }

      Kind kind = Kind::kHello;
      if (wsum > 0.0) {
        const double draw = rng.uniform() * wsum;
        kind = draw < config.weight_truthtable ? Kind::kTruthTable
               : draw < config.weight_truthtable + config.weight_yield
                   ? Kind::kYield
                   : Kind::kHello;
      }

      Request request;
      request.client = tenant;
      request.id = ++request_seq;
      request.deadline_s = config.deadline_s;
      request.trace_id = config.trace_id;
      switch (kind) {
        case Kind::kTruthTable:
          request.type = RequestType::kTruthTable;
          request.gate.kind =
              config.gates.empty()
                  ? "maj"
                  : config.gates[static_cast<std::size_t>(rng.next() %
                                                          config.gates.size())];
          ++r.truthtable;
          break;
        case Kind::kYield:
          request.type = RequestType::kYield;
          request.yield.kind = "maj";
          request.yield.trials =
              config.yield_trials == 0 ? 1 : config.yield_trials;
          ++r.yield;
          break;
        case Kind::kHello:
          request.type = RequestType::kHello;
          ++r.hello;
          break;
      }

      ++r.sent;
      Response response;
      const auto t0 = std::chrono::steady_clock::now();
      const Status st = config.call_timeout_s > 0.0
                            ? client.call(request, &response,
                                          config.call_timeout_s)
                            : client.call(request, &response);
      const double latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (!st.is_ok()) {
        if (st.code() == StatusCode::kDeadlineExceeded ||
            (config.call_timeout_s > 0.0 &&
             latency >= config.call_timeout_s)) {
          // The daemon never answered inside the cap: the one failure
          // mode the throughput bench treats as disqualifying.
          ++r.hung;
        } else {
          ++r.transport_errors;
        }
        if (!connect()) break;
        continue;
      }
      ++r.completed;
      r.latencies_s.push_back(latency);
      switch (response.status.code()) {
        case StatusCode::kOk:
          ++r.ok;
          break;
        case StatusCode::kOverloaded:
        case StatusCode::kDraining:
          ++r.shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++r.deadline_exceeded;
          break;
        default:
          ++r.failed;
          break;
      }
      if (config.chaos_close_prob > 0.0 &&
          rng.uniform() < config.chaos_close_prob) {
        if (!connect()) break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(config.concurrency);
  for (std::size_t i = 0; i < config.concurrency; ++i) {
    threads.emplace_back(worker, i);
  }
  for (auto& t : threads) t.join();

  out->wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const auto& w : results) {
    const LoadgenReport& r = w.partial;
    out->sent += r.sent;
    out->completed += r.completed;
    out->ok += r.ok;
    out->shed += r.shed;
    out->deadline_exceeded += r.deadline_exceeded;
    out->failed += r.failed;
    out->transport_errors += r.transport_errors;
    out->hung += r.hung;
    out->truthtable += r.truthtable;
    out->yield += r.yield;
    out->hello += r.hello;
    out->latencies_s.insert(out->latencies_s.end(), r.latencies_s.begin(),
                            r.latencies_s.end());
  }
  if (!any_connected.load(std::memory_order_relaxed)) {
    return Status::error(StatusCode::kIoError,
                         "no worker could connect to " +
                             (unix_ep ? "unix:" + config.socket_path
                                      : "tcp:" + std::to_string(
                                            config.tcp_port)),
                         "loadgen");
  }
  if (out->wall_s > 0.0) {
    out->rps = static_cast<double>(out->completed) / out->wall_s;
  }
  if (!out->latencies_s.empty()) {
    std::vector<double> sorted = out->latencies_s;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (const double v : sorted) sum += v;
    out->mean_s = sum / static_cast<double>(sorted.size());
    out->p50_s = quantile_sorted(sorted, 0.50);
    out->p95_s = quantile_sorted(sorted, 0.95);
    out->p99_s = quantile_sorted(sorted, 0.99);
    out->p999_s = quantile_sorted(sorted, 0.999);
    out->max_s = sorted.back();
  }
  return Status::ok();
}

}  // namespace swsim::serve
