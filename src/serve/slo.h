// Per-tenant SLO accounting for the serve plane.
//
// Every completed exchange (workload result, shed rejection, parse error)
// is folded into one SloTracker owned by the Server: per tenant (client
// name) and per request kind, fixed-bucket latency histograms split into
// the three phases the daemon can attribute —
//
//   queue_s   time between admission and a dispatcher picking it up
//   engine_s  time inside BatchRunner (the solver bill)
//   render_s  dispatcher time outside the engine (spec building, text
//             rendering, response assembly)
//   total_s   parse-to-serialize wall time the session thread observed
//
// — plus deadline-budget consumption (total_s / granted deadline) and
// shed counters (overloaded / draining / deadline-exceeded, and the
// retryable rollup clients key their backoff on).
//
// Deliberately NOT built on obs::MetricsRegistry: healthz must report SLO
// state even under SWSIM_OBS_OFF or when metrics are disarmed, and the
// fixed std::map layout makes the JSON snapshot byte-deterministic for a
// given multiset of samples regardless of session interleaving (tenants
// and kinds sort lexicographically; histogram counts are plain sums).
//
// Tenant cardinality is bounded: after max_tenants distinct client names,
// new names aggregate under "~other" so a client-name flood cannot grow
// the tracker without bound.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "robust/status.h"

namespace swsim::serve {

class SloTracker {
 public:
  // Upper bounds (seconds) of the phase-latency buckets; one overflow
  // bucket past the last bound. Shared by all phases so snapshots are
  // comparable across phases and tenants.
  static const std::vector<double>& latency_bounds();

  // One finished exchange. Phase fields < 0 mean "not measured" (e.g. a
  // request shed before dispatch has no engine phase); budget_consumed
  // < 0 means the request carried no deadline.
  struct Sample {
    std::string tenant;
    std::string kind;  // "truthtable", "yield", "hello", ...
    robust::StatusCode code = robust::StatusCode::kOk;
    double queue_s = -1.0;
    double engine_s = -1.0;
    double render_s = -1.0;
    double total_s = -1.0;
    double budget_consumed = -1.0;
  };

  explicit SloTracker(std::size_t max_tenants = 64);

  void record(const Sample& sample);

  // Fixed-bucket histogram; counts[i] counts samples <=
  // latency_bounds()[i], the last slot is the overflow bucket. Sums are
  // integer microseconds: integer addition commutes, so the snapshot is
  // byte-identical for a given multiset of samples no matter how
  // concurrent sessions interleaved (a double sum would not be).
  struct Hist {
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;
    // Conservative bucket-upper-bound quantile (the same convention
    // `swsim stats` applies to obs histograms).
    double quantile(double q) const;
  };

  struct KindStats {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t shed_overload = 0;
    std::uint64_t shed_draining = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t retryable = 0;  // rollup: responses a client may retry
    std::uint64_t failed = 0;     // non-ok, non-retryable
    Hist queue, engine, render, total;
    std::uint64_t budget_count = 0;     // samples that carried a deadline
    std::uint64_t budget_sum_ppm = 0;   // sum of budget_consumed, ppm units
    std::uint64_t over_budget = 0;      // budget_consumed > 1
  };

  // tenant -> kind -> stats; deterministic (sorted) iteration order.
  using Snapshot = std::map<std::string, std::map<std::string, KindStats>>;
  Snapshot snapshot() const;

  // The healthz "slo" section: one JSON object, byte-deterministic for a
  // given multiset of recorded samples.
  std::string json() const;

  std::uint64_t total_requests() const;

 private:
  KindStats& stats_locked(const std::string& tenant, const std::string& kind);

  mutable std::mutex mutex_;
  std::size_t max_tenants_;
  std::map<std::string, std::map<std::string, KindStats>> tenants_;
  std::uint64_t total_ = 0;
};

}  // namespace swsim::serve
