// Request/response document model for the swsim.serve/1 protocol.
//
// One frame (serve/codec.h) carries one JSON document. Requests name a
// type — the two workload types mirror the CLI commands, the three
// built-ins are answered by the server itself:
//
//   {"proto": "swsim.serve/1", "type": "truthtable", "id": 7,
//    "client": "sweeper", "priority": 1,
//    "gate": "maj", "lambda_nm": 55, "width_nm": 22}
//   {"type": "yield", "gate": "xor", "trials": 200,
//    "sigma_length_nm": 2.0, "sigma_amp": 0.05}
//   {"type": "hello"}  {"type": "healthz"}  {"type": "metrics"}
//
// Responses always carry the request id and a robust::Status — the serve
// error contract is the same taxonomy the engine uses, extended with the
// two client-retryable admission codes (kOverloaded, kDraining):
//
//   {"proto": "swsim.serve/1", "id": 7,
//    "status": {"code": "ok", "message": "", "context": ""},
//    "text": "<the exact bytes the CLI prints>",
//    "scalars": {"all_pass": 1, ...}}
//
// Rejections add "retry_after_s"; built-ins put their result under
// "payload". Parsing is strict where it guards the server (unknown type,
// wrong proto, non-positive trials are kInvalidConfig before any work
// runs) and lenient where defaults are meaningful (id, client, priority,
// gate geometry all have CLI-identical defaults).
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "robust/status.h"
#include "serve/workload.h"

namespace swsim::serve {

inline constexpr const char* kProtocol = "swsim.serve/1";

enum class RequestType { kHello, kHealthz, kMetrics, kTruthTable, kYield };

std::string to_string(RequestType type);

struct Request {
  RequestType type = RequestType::kHello;
  std::uint64_t id = 0;
  std::string client = "anon";
  int priority = 0;        // higher drains first; same band is round-robin
  // End-to-end budget in seconds, measured by the server from the moment
  // the request is parsed. 0 = no deadline. A request whose budget runs
  // out — in the queue or mid-solve — answers kDeadlineExceeded
  // (retryable) instead of its result, and the engine stops computing it.
  double deadline_s = 0.0;
  GateParams gate;         // truthtable payload
  YieldParams yield;       // yield payload
};

// Validates and extracts a request. Returns kInvalidConfig (with a
// pointed message) on anything malformed; the caller turns that into a
// response rather than dropping the connection.
robust::Status parse_request(const obs::JsonValue& doc, Request* out);
robust::Status parse_request_text(const std::string& text, Request* out);
std::string serialize_request(const Request& r);

struct Response {
  std::uint64_t id = 0;
  robust::Status status;
  double retry_after_s = 0.0;  // > 0 only on kOverloaded / kDraining
  std::string text;            // CLI-identical rendering (workload types)
  std::string payload_json;    // built-in result, one JSON object ("" = none)
  // Scalar results, so scripted clients need not parse `text`. NaN = unset.
  double all_pass = kUnsetScalar;  // 1.0 / 0.0 when set
  double yield_value = kUnsetScalar;
  double mean_worst_margin = kUnsetScalar;
  double max_asymmetry = kUnsetScalar;
  double min_margin = kUnsetScalar;

  static constexpr double kUnsetScalar = -1.0e308;
  static bool set(double v) { return v != kUnsetScalar; }
};

std::string serialize_response(const Response& r);
robust::Status parse_response_text(const std::string& text, Response* out);

// Reverse of robust::to_string(StatusCode); kInternal for unknown names
// (a newer server's code still fails closed on an older client).
robust::StatusCode status_code_from_string(const std::string& name);

// Deterministic JSON rendering of a parsed value (object keys are already
// sorted by JsonValue's map). Used to re-emit "payload" subtrees and by
// tests that round-trip documents.
std::string dump_json(const obs::JsonValue& v);

}  // namespace swsim::serve
