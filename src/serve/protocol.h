// Request/response document model for the swsim.serve/1 protocol.
//
// One frame (serve/codec.h) carries one JSON document. Requests name a
// type — the workload types (truthtable, yield, micromag) mirror the CLI
// commands, the three built-ins are answered by the server itself, and
// probe.subscribe turns the session into a live telemetry stream:
//
//   {"proto": "swsim.serve/1", "type": "truthtable", "id": 7,
//    "client": "sweeper", "priority": 1,
//    "gate": "maj", "lambda_nm": 55, "width_nm": 22}
//   {"type": "yield", "gate": "xor", "trials": 200,
//    "sigma_length_nm": 2.0, "sigma_amp": 0.05}
//   {"type": "micromag", "gate": "maj", "lambda_nm": 50, "cell_nm": 4,
//    "early_stop": true}
//   {"type": "probe.subscribe", "max_frames": 64, "duration_s": 30}
//   {"type": "hello"}  {"type": "healthz"}  {"type": "metrics"}
//
// probe.subscribe answers with a normal ack response, then pushes raw
// length-prefixed JSON frames ({"type":"probe.frame",...}) as the live
// lock-in windows complete, ending with {"type":"probe.end",...} — see
// docs/OBSERVABILITY.md §8 for the frame schema.
//
// Responses always carry the request id and a robust::Status — the serve
// error contract is the same taxonomy the engine uses, extended with the
// two client-retryable admission codes (kOverloaded, kDraining):
//
//   {"proto": "swsim.serve/1", "id": 7,
//    "status": {"code": "ok", "message": "", "context": ""},
//    "text": "<the exact bytes the CLI prints>",
//    "scalars": {"all_pass": 1, ...}}
//
// Rejections add "retry_after_s"; built-ins put their result under
// "payload". Parsing is strict where it guards the server (unknown type,
// wrong proto, non-positive trials are kInvalidConfig before any work
// runs) and lenient where defaults are meaningful (id, client, priority,
// gate geometry all have CLI-identical defaults).
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "robust/status.h"
#include "serve/workload.h"

namespace swsim::serve {

inline constexpr const char* kProtocol = "swsim.serve/1";

enum class RequestType {
  kHello,
  kHealthz,
  kMetrics,
  kTruthTable,
  kYield,
  kMicromag,
  kProbeSubscribe,
};

std::string to_string(RequestType type);

struct Request {
  RequestType type = RequestType::kHello;
  std::uint64_t id = 0;
  std::string client = "anon";
  int priority = 0;        // higher drains first; same band is round-robin
  // End-to-end budget in seconds, measured by the server from the moment
  // the request is parsed. 0 = no deadline. A request whose budget runs
  // out — in the queue or mid-solve — answers kDeadlineExceeded
  // (retryable) instead of its result, and the engine stops computing it.
  double deadline_s = 0.0;
  // Cross-process trace correlation ("" = not traced). A traced client
  // stamps an opaque id here; the server continues the trace under it —
  // flow events on both sides share obs::flow_hash(trace_id + "#" + id)
  // so `swsim trace merge` can join the two trace files — and copies it
  // into the request-log line.
  std::string trace_id;
  // The client-side flow/span id the server should bind its spans to;
  // 0 = derive it from trace_id (the flow_hash above). Lets a client that
  // runs several traced requests under one trace_id keep them distinct.
  std::uint64_t parent_span = 0;
  GateParams gate;         // truthtable payload
  YieldParams yield;       // yield payload
  MicromagParams micromag; // micromag payload (LLG truth table)
  // probe.subscribe payload: the stream ends after max_frames frames or
  // duration_s seconds, whichever comes first (0 = unbounded — the stream
  // then runs until the client disconnects or the server drains). probe
  // narrows the stream to one port name ("" = all probes).
  std::uint64_t probe_max_frames = 0;
  double probe_duration_s = 0.0;
  std::string probe_filter;

  // The flow id tying this request's spans together across processes.
  std::uint64_t flow_id() const;
};

// Validates and extracts a request. Returns kInvalidConfig (with a
// pointed message) on anything malformed; the caller turns that into a
// response rather than dropping the connection.
robust::Status parse_request(const obs::JsonValue& doc, Request* out);
robust::Status parse_request_text(const std::string& text, Request* out);
std::string serialize_request(const Request& r);

struct Response {
  std::uint64_t id = 0;
  robust::Status status;
  double retry_after_s = 0.0;  // > 0 only on kOverloaded / kDraining
  std::string text;            // CLI-identical rendering (workload types)
  std::string payload_json;    // built-in result, one JSON object ("" = none)
  // Scalar results, so scripted clients need not parse `text`. NaN = unset.
  double all_pass = kUnsetScalar;  // 1.0 / 0.0 when set
  double yield_value = kUnsetScalar;
  double mean_worst_margin = kUnsetScalar;
  double max_asymmetry = kUnsetScalar;
  double min_margin = kUnsetScalar;

  static constexpr double kUnsetScalar = -1.0e308;
  static bool set(double v) { return v != kUnsetScalar; }

  // Server-side phase breakdown, echoed as a "timing" object so every
  // client can attribute latency without server logs: seconds spent
  // waiting in the admission queue, inside the engine, rendering the
  // reply, and end-to-end inside the server; budget_consumed is
  // total_s / granted deadline (only when the request carried one).
  // Negative = unset (built-ins report total_s only).
  struct Timing {
    double queue_s = -1.0;
    double engine_s = -1.0;
    double render_s = -1.0;
    double total_s = -1.0;
    double budget_consumed = -1.0;
    bool any() const {
      return queue_s >= 0.0 || engine_s >= 0.0 || render_s >= 0.0 ||
             total_s >= 0.0 || budget_consumed >= 0.0;
    }
  };
  Timing timing;
};

std::string serialize_response(const Response& r);
robust::Status parse_response_text(const std::string& text, Response* out);

// Reverse of robust::to_string(StatusCode); kInternal for unknown names
// (a newer server's code still fails closed on an older client).
robust::StatusCode status_code_from_string(const std::string& name);

// Deterministic JSON rendering of a parsed value (object keys are already
// sorted by JsonValue's map). Used to re-emit "payload" subtrees and by
// tests that round-trip documents.
std::string dump_json(const obs::JsonValue& v);

}  // namespace swsim::serve
