// Build fingerprint for the CLI and the serve handshake.
//
// `swsim version` prints it; the serve `hello` response echoes the
// server's copy so a client can detect version skew (a daemon built from
// a different commit than the client invoking it) before trusting
// byte-identity with its local CLI. The values come from the same
// configure-time environment capture the bench harness bakes in
// (bench::current_env()), so a BENCH_*.json, a `swsim version` line and a
// serve handshake all agree about what binary produced them.
#pragma once

#include <string>

namespace swsim::serve {

struct BuildInfo {
  std::string protocol;    // wire protocol revision, "swsim.serve/1"
  std::string version;     // project version, "1.0.0"
  std::string git_sha;     // "abc1234" or "abc1234-dirty" or "unknown"
  std::string compiler;    // "GNU 13.2.0"
  std::string flags;       // CMAKE_CXX_FLAGS_<BUILDTYPE>
  std::string build_type;  // "Release", ...
  unsigned cores = 0;      // hardware concurrency at run time
};

BuildInfo build_info();

// Multi-line human rendering for `swsim version`.
std::string describe(const BuildInfo& info);

}  // namespace swsim::serve
