#include "serve/admission.h"

namespace swsim::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Admit AdmissionQueue::push(std::unique_ptr<PendingRequest> req) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Admit::kClosed;
    if (depth_ >= capacity_) return Admit::kOverloaded;
    req->enqueued_at = std::chrono::steady_clock::now();
    Band& band = bands_[req->request.priority];
    auto& fifo = band.per_client[req->request.client];
    if (fifo.empty()) band.order.push_back(req->request.client);
    fifo.push_back(std::move(req));
    ++band.size;
    ++depth_;
  }
  cv_.notify_one();
  return Admit::kAdmitted;
}

std::unique_ptr<PendingRequest> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return depth_ > 0 || closed_; });
  if (depth_ == 0) return nullptr;  // closed and drained
  return pop_locked();
}

std::unique_ptr<PendingRequest> AdmissionQueue::pop_locked() {
  for (auto it = bands_.begin(); it != bands_.end();) {
    Band& band = it->second;
    if (band.size == 0) {
      it = bands_.erase(it);
      continue;
    }
    // `order` only holds clients with queued work (push adds a client on
    // its first request, the code below removes it when its FIFO drains),
    // so the client under the cursor always has something to give.
    if (band.cursor >= band.order.size()) band.cursor = 0;
    const std::string client = band.order[band.cursor];
    auto fifo_it = band.per_client.find(client);
    auto req = std::move(fifo_it->second.front());
    fifo_it->second.pop_front();
    --band.size;
    --depth_;
    if (fifo_it->second.empty()) {
      band.per_client.erase(fifo_it);
      band.order.erase(band.order.begin() +
                       static_cast<std::ptrdiff_t>(band.cursor));
      // cursor now indexes the next client already.
    } else {
      ++band.cursor;
    }
    return req;
  }
  return nullptr;  // unreachable while depth_ > 0
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

std::size_t AdmissionQueue::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void AdmissionQueue::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
}

double AdmissionQueue::oldest_wait_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The oldest request overall is the oldest among the FIFO fronts: each
  // per-client FIFO is push-ordered, so its front is its oldest.
  std::chrono::steady_clock::time_point oldest =
      std::chrono::steady_clock::time_point::max();
  bool any = false;
  for (const auto& [priority, band] : bands_) {
    for (const auto& [client, fifo] : band.per_client) {
      if (fifo.empty()) continue;
      if (fifo.front()->enqueued_at < oldest) oldest = fifo.front()->enqueued_at;
      any = true;
    }
  }
  if (!any) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       oldest)
      .count();
}

}  // namespace swsim::serve
