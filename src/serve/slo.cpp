#include "serve/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace swsim::serve {

namespace {

// Microsecond-integer conversion used by every accumulator: llround keeps
// the mapping exact for the magnitudes serve latencies reach.
std::uint64_t to_us(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

const std::vector<double>& SloTracker::latency_bounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
      0.1,    0.25,    0.5,    1.0,   2.5,    5.0,   10.0, 30.0, 60.0};
  return bounds;
}

double SloTracker::Hist::quantile(double q) const {
  if (count == 0) return 0.0;
  const auto& bounds = latency_bounds();
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank && seen > 0) {
      if (i < bounds.size()) return bounds[i];
      // Overflow bucket: the max is the only honest upper bound left.
      return static_cast<double>(max_us) * 1e-6;
    }
  }
  return static_cast<double>(max_us) * 1e-6;
}

SloTracker::SloTracker(std::size_t max_tenants) : max_tenants_(max_tenants) {}

SloTracker::KindStats& SloTracker::stats_locked(const std::string& tenant,
                                                const std::string& kind) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    if (tenants_.size() >= max_tenants_) {
      it = tenants_.try_emplace("~other").first;
    } else {
      it = tenants_.try_emplace(tenant).first;
    }
  }
  return it->second[kind];
}

void SloTracker::record(const Sample& sample) {
  const auto& bounds = latency_bounds();
  const auto observe = [&bounds](Hist& h, double seconds) {
    if (seconds < 0.0) return;
    if (h.counts.empty()) h.counts.assign(bounds.size() + 1, 0);
    const auto bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), seconds) -
        bounds.begin());
    ++h.counts[bucket];
    ++h.count;
    const std::uint64_t us = to_us(seconds);
    h.sum_us += us;
    h.max_us = std::max(h.max_us, us);
  };

  std::lock_guard<std::mutex> lock(mutex_);
  KindStats& ks = stats_locked(sample.tenant, sample.kind);
  ++ks.requests;
  ++total_;
  using robust::StatusCode;
  switch (sample.code) {
    case StatusCode::kOk:
      ++ks.ok;
      break;
    case StatusCode::kOverloaded:
      ++ks.shed_overload;
      ++ks.retryable;
      break;
    case StatusCode::kDraining:
      ++ks.shed_draining;
      ++ks.retryable;
      break;
    case StatusCode::kDeadlineExceeded:
      ++ks.shed_deadline;
      ++ks.retryable;
      break;
    default:
      if (robust::is_retryable(sample.code)) {
        ++ks.retryable;
      } else {
        ++ks.failed;
      }
      break;
  }
  observe(ks.queue, sample.queue_s);
  observe(ks.engine, sample.engine_s);
  observe(ks.render, sample.render_s);
  observe(ks.total, sample.total_s);
  if (sample.budget_consumed >= 0.0) {
    ++ks.budget_count;
    ks.budget_sum_ppm += static_cast<std::uint64_t>(
        std::llround(sample.budget_consumed * 1e6));
    if (sample.budget_consumed > 1.0) ++ks.over_budget;
  }
}

SloTracker::Snapshot SloTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_;
}

std::uint64_t SloTracker::total_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::string SloTracker::json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"requests\":" + std::to_string(total_requests()) +
                    ",\"tenants\":{";
  bool first_tenant = true;
  for (const auto& [tenant, kinds] : snap) {
    if (!first_tenant) out += ",";
    first_tenant = false;
    out += "\"" + obs::escape_json(tenant) + "\":{";
    bool first_kind = true;
    for (const auto& [kind, ks] : kinds) {
      if (!first_kind) out += ",";
      first_kind = false;
      out += "\"" + obs::escape_json(kind) + "\":{";
      out += "\"requests\":" + std::to_string(ks.requests) +
             ",\"ok\":" + std::to_string(ks.ok) +
             ",\"shed_overload\":" + std::to_string(ks.shed_overload) +
             ",\"shed_draining\":" + std::to_string(ks.shed_draining) +
             ",\"shed_deadline\":" + std::to_string(ks.shed_deadline) +
             ",\"retryable\":" + std::to_string(ks.retryable) +
             ",\"failed\":" + std::to_string(ks.failed);
      const auto phase = [&out](const char* name, const Hist& h) {
        out += ",\"" + std::string(name) +
               "\":{\"count\":" + std::to_string(h.count) +
               ",\"sum_s\":" + fmt(static_cast<double>(h.sum_us) * 1e-6) +
               ",\"p50_s\":" + fmt(h.quantile(0.50)) +
               ",\"p95_s\":" + fmt(h.quantile(0.95)) +
               ",\"p99_s\":" + fmt(h.quantile(0.99)) +
               ",\"max_s\":" + fmt(static_cast<double>(h.max_us) * 1e-6) +
               "}";
      };
      phase("queue", ks.queue);
      phase("engine", ks.engine);
      phase("render", ks.render);
      phase("total", ks.total);
      out += ",\"budget\":{\"count\":" + std::to_string(ks.budget_count) +
             ",\"mean_consumed\":" +
             fmt(ks.budget_count == 0
                     ? 0.0
                     : static_cast<double>(ks.budget_sum_ppm) * 1e-6 /
                           static_cast<double>(ks.budget_count)) +
             ",\"over\":" + std::to_string(ks.over_budget) + "}";
      out += "}";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace swsim::serve
