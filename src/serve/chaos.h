// Deterministic chaos harness for the serve transport.
//
// FaultyTransport is a hostile client: each exchange connects to a real
// daemon and misbehaves in one seeded, reproducible way — tearing a frame
// mid-payload, hanging up after the request, trickling bytes slow-loris
// style, sending garbage or an oversized length prefix — or behaves
// cleanly, so a chaos run interleaves hostile and honest traffic exactly
// the way a sick fleet does. The action sequence is drawn from an
// xorshift stream of the profile seed, and robust::FaultPlan can override
// it (inject_transport) so a test can script an exact fault order.
//
// The invariant a chaos run checks is *terminality*: every exchange must
// end in one of (a) a parsed response, (b) a closed/refused transport, or
// (c) nothing-owed (the client itself tore the request). What must never
// happen is (d): a full request sent, no response, no close — a hung
// session. ChaosSummary counts each bucket; hung == 0 is the pass
// condition, and the daemon must afterwards still drain clean.
#pragma once

#include <cstdint>
#include <string>

#include "robust/status.h"
#include "serve/protocol.h"

namespace swsim::serve {

enum class ChaosAction {
  kClean,       // honest request/response exchange
  kDelay,       // honest, after a fixed pre-send delay
  kTorn,        // header + half the payload, then close (mid-frame tear)
  kGarbage,     // well-framed payload that is not JSON
  kOversize,    // length prefix past kMaxFrameBytes
  kSlowLoris,   // the request trickles out one byte per slow_byte_s
  kDisconnect,  // full request sent, then immediate close (no read)
};

const char* to_string(ChaosAction action);

struct ChaosProfile {
  std::uint64_t seed = 1;
  int exchanges = 16;
  // Relative weights of the action draw (0 disables an action).
  int clean = 2;
  int delay = 1;
  int torn = 1;
  int garbage = 1;
  int oversize = 1;
  int slowloris = 1;
  int disconnect = 1;
  double delay_s = 0.02;       // kDelay pre-send sleep
  double slow_byte_s = 0.002;  // kSlowLoris inter-byte gap
  // Client-side budget for any read a chaos exchange performs; an
  // exchange can therefore never hang the harness, only report `hung`.
  double exchange_deadline_s = 30.0;
};

// "seed=7,count=24,clean=2,torn=1,delay-s=0.01,..." — keys are the field
// names above (count = exchanges; '-' or '_' both accepted). Unknown keys
// and malformed values are kInvalidConfig.
robust::Status parse_chaos_spec(const std::string& spec, ChaosProfile* out);

struct ChaosOutcome {
  ChaosAction action = ChaosAction::kClean;
  bool sent_full_request = false;  // true = the server owes a response
  bool got_response = false;
  Response response;         // valid when got_response
  robust::Status transport;  // non-ok when the pipe died / was refused
  bool hung = false;         // response owed, none arrived in the budget
};

struct ChaosSummary {
  int exchanges = 0;
  int answered_ok = 0;       // response with status ok
  int answered_error = 0;    // response with a structured non-ok status
  int retryable = 0;         // subset of answered_error that is retryable
  int transport_closed = 0;  // no response; connection closed or refused
  int hung = 0;              // the failure bucket — must be 0
  bool clean() const { return hung == 0; }
  std::string str() const;  // one-line human summary
};

// One chaotic client. Not thread-safe; run one per thread for storms.
class FaultyTransport {
 public:
  // Exactly one of socket_path (non-empty) / tcp_port (> 0), matching the
  // daemon's endpoint.
  FaultyTransport(std::string socket_path, int tcp_port,
                  const ChaosProfile& profile);

  // Draws the next action (FaultPlan override first, then the seeded
  // stream), performs one connect + exchange, and classifies the result.
  ChaosOutcome exchange(const Request& request);

 private:
  ChaosAction next_action();

  std::string socket_path_;
  int tcp_port_ = 0;
  ChaosProfile profile_;
  std::uint64_t rng_state_ = 0;
};

// Runs profile.exchanges exchanges of `base` (ids rebased per exchange)
// against the endpoint and folds the outcomes.
ChaosSummary run_chaos(const ChaosProfile& profile,
                       const std::string& socket_path, int tcp_port,
                       const Request& base);

}  // namespace swsim::serve
