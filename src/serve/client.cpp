#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/codec.h"

namespace swsim::serve {

namespace {

robust::Status io_error(const std::string& message,
                        const std::string& context) {
  return robust::Status::error(robust::StatusCode::kIoError, message,
                               context);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ != -1) {
    ::close(fd_);
    fd_ = -1;
  }
}

robust::Status Client::connect_unix(const std::string& path) {
  close();
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    return io_error("socket path too long", "client " + path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return io_error(std::string("socket: ") + std::strerror(errno),
                    "client " + path);
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = std::strerror(errno);
    close();
    return io_error("connect: " + msg + " (is the daemon running?)",
                    "client unix:" + path);
  }
  return robust::Status::ok();
}

robust::Status Client::connect_tcp(int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return io_error(std::string("socket: ") + std::strerror(errno),
                    "client tcp:" + std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = std::strerror(errno);
    close();
    return io_error("connect: " + msg + " (is the daemon running?)",
                    "client tcp:" + std::to_string(port));
  }
  return robust::Status::ok();
}

robust::Status Client::call(const Request& request, Response* response) {
  if (fd_ == -1) return io_error("not connected", "client");
  std::string error;
  if (!write_frame(fd_, serialize_request(request), &error)) {
    return io_error(error, "client send");
  }
  std::string payload;
  switch (read_frame(fd_, &payload, &error)) {
    case ReadResult::kFrame:
      break;
    case ReadResult::kEof:
      return io_error("server closed the connection", "client recv");
    case ReadResult::kError:
      return io_error(error, "client recv");
  }
  if (const auto parsed = parse_response_text(payload, response);
      !parsed.is_ok()) {
    return io_error(parsed.message(), "client recv");
  }
  return robust::Status::ok();
}

}  // namespace swsim::serve
