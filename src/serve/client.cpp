#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "serve/codec.h"

namespace swsim::serve {

namespace {

robust::Status io_error(const std::string& message,
                        const std::string& context) {
  return robust::Status::error(robust::StatusCode::kIoError, message,
                               context);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ != -1) {
    ::close(fd_);
    fd_ = -1;
  }
}

robust::Status Client::connect_unix(const std::string& path) {
  close();
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    return io_error("socket path too long", "client " + path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return io_error(std::string("socket: ") + std::strerror(errno),
                    "client " + path);
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = std::strerror(errno);
    close();
    return io_error("connect: " + msg + " (is the daemon running?)",
                    "client unix:" + path);
  }
  return robust::Status::ok();
}

robust::Status Client::connect_tcp(int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return io_error(std::string("socket: ") + std::strerror(errno),
                    "client tcp:" + std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = std::strerror(errno);
    close();
    return io_error("connect: " + msg + " (is the daemon running?)",
                    "client tcp:" + std::to_string(port));
  }
  return robust::Status::ok();
}

robust::Status Client::call(const Request& request, Response* response) {
  return call(request, response, 0.0);
}

robust::Status Client::call(const Request& request, Response* response,
                            double deadline_s) {
  if (fd_ == -1) return io_error("not connected", "client");
  std::string error;
  const IoDeadlines deadlines{deadline_s, deadline_s};
  if (!write_frame(fd_, serialize_request(request), &error, deadlines)) {
    return io_error(error, "client send");
  }
  std::string payload;
  switch (read_frame(fd_, &payload, &error, deadlines)) {
    case ReadResult::kFrame:
      break;
    case ReadResult::kEof:
      return io_error("server closed the connection", "client recv");
    case ReadResult::kError:
      return io_error(error, "client recv");
    case ReadResult::kTimeout:
      return robust::Status::error(robust::StatusCode::kDeadlineExceeded,
                                   "no response within the deadline",
                                   "client recv");
  }
  if (const auto parsed = parse_response_text(payload, response);
      !parsed.is_ok()) {
    return io_error(parsed.message(), "client recv");
  }
  return robust::Status::ok();
}

namespace {

struct Jitter {
  std::uint64_t state;
  explicit Jitter(std::uint64_t seed)
      : state(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  double uniform01() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

}  // namespace

robust::Status call_with_retries(const std::string& socket_path, int tcp_port,
                                 const Request& request,
                                 const RetryPolicy& policy,
                                 Response* response, RetryStats* stats) {
  using Clock = std::chrono::steady_clock;
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  const auto started = Clock::now();
  const auto remaining = [&]() -> double {
    if (policy.deadline_s <= 0.0) return 0.0;  // 0 = unbounded
    return policy.deadline_s -
           std::chrono::duration<double>(Clock::now() - started).count();
  };
  const auto deadline_status = [](const char* where) {
    return robust::Status::error(robust::StatusCode::kDeadlineExceeded,
                                 "call deadline exhausted", where);
  };
  Jitter jitter(policy.seed);
  RetryStats local;
  RetryStats& acct = stats ? *stats : local;
  acct = RetryStats{};
  double previous_sleep = policy.base_backoff_s;

  for (int attempt = 1;; ++attempt) {
    double budget = 0.0;
    if (policy.deadline_s > 0.0) {
      budget = remaining();
      if (budget <= 0.0) {
        response->status = deadline_status("client retry loop");
        return response->status;
      }
    }
    ++acct.attempts;
    Request attempt_request = request;
    if (budget > 0.0 &&
        (attempt_request.deadline_s <= 0.0 ||
         attempt_request.deadline_s > budget)) {
      // Ship the remaining budget so the server sheds work this client
      // has already stopped waiting for.
      attempt_request.deadline_s = budget;
    }

    Client client;
    robust::Status status = socket_path.empty()
                                ? client.connect_tcp(tcp_port)
                                : client.connect_unix(socket_path);
    if (status.is_ok()) {
      status = client.call(attempt_request, response, budget);
    }
    bool retryable = false;
    if (status.is_ok()) {
      const robust::StatusCode code = response->status.code();
      if (response->status.is_ok() ||
          code == robust::StatusCode::kDeadlineExceeded ||
          !robust::is_retryable(code)) {
        // Terminal: success, a non-retryable failure, or the server
        // reporting that *our* budget expired (retrying cannot help).
        return robust::Status::ok();
      }
      retryable = true;
      acct.last_error = response->status;
    } else if (status.code() == robust::StatusCode::kDeadlineExceeded) {
      response->status = status;
      return status;
    } else {
      retryable = true;  // transport error: connect refused, torn reply
      acct.last_error = status;
    }

    if (!retryable || attempt >= max_attempts) {
      if (status.is_ok()) return robust::Status::ok();  // retryable response
      return status;  // transport error with no budget left
    }
    ++acct.retries;

    // Decorrelated jitter, floored at the server's retry_after_s hint.
    double sleep_s = policy.base_backoff_s +
                     jitter.uniform01() *
                         (previous_sleep * 3.0 - policy.base_backoff_s);
    if (sleep_s > policy.max_backoff_s) sleep_s = policy.max_backoff_s;
    if (sleep_s < 0.0) sleep_s = 0.0;
    if (status.is_ok() && response->retry_after_s > sleep_s) {
      sleep_s = response->retry_after_s;
    }
    previous_sleep = sleep_s > policy.base_backoff_s ? sleep_s
                                                     : policy.base_backoff_s;
    if (policy.deadline_s > 0.0 && sleep_s >= remaining()) {
      // The backoff alone would blow the budget: report the deadline now
      // instead of sleeping into it.
      response->status = deadline_status("client backoff");
      return response->status;
    }
    acct.backoff_s += sleep_s;
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
  }
}

}  // namespace swsim::serve
