#include "serve/codec.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace swsim::serve {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Writes exactly n bytes, looping over partial writes and EINTR. send()
// with MSG_NOSIGNAL, not write(): a peer that hung up must surface as an
// EPIPE return the session loop can handle, not a SIGPIPE that kills the
// whole daemon.
bool write_all(int fd, const char* data, std::size_t n, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t rc = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error) *error = errno_message("write");
      return false;
    }
    off += static_cast<std::size_t>(rc);
  }
  return true;
}

// Reads exactly n bytes. Returns 1 on success, 0 on EOF before the first
// byte, -1 on error (including EOF mid-read when allow_eof is false).
int read_all(int fd, char* data, std::size_t n, bool eof_ok_at_start,
             std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t rc = ::read(fd, data + off, n - off);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error) *error = errno_message("read");
      return -1;
    }
    if (rc == 0) {
      if (off == 0 && eof_ok_at_start) return 0;
      if (error) *error = "unexpected EOF inside a frame";
      return -1;
    }
    off += static_cast<std::size_t>(rc);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, const std::string& payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    if (error) *error = "frame payload exceeds the 1 MiB limit";
    return false;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {
      static_cast<char>((n >> 24) & 0xff), static_cast<char>((n >> 16) & 0xff),
      static_cast<char>((n >> 8) & 0xff), static_cast<char>(n & 0xff)};
  return write_all(fd, header, sizeof header, error) &&
         write_all(fd, payload.data(), payload.size(), error);
}

ReadResult read_frame(int fd, std::string* payload, std::string* error) {
  char header[4];
  const int h = read_all(fd, header, sizeof header,
                         /*eof_ok_at_start=*/true, error);
  if (h == 0) return ReadResult::kEof;
  if (h < 0) return ReadResult::kError;
  const std::uint32_t n =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > kMaxFrameBytes) {
    if (error) {
      *error = "frame length " + std::to_string(n) +
               " exceeds the 1 MiB limit (wrong protocol?)";
    }
    return ReadResult::kError;
  }
  payload->resize(n);
  if (n > 0 &&
      read_all(fd, payload->data(), n, /*eof_ok_at_start=*/false, error) < 0) {
    return ReadResult::kError;
  }
  return ReadResult::kFrame;
}

}  // namespace swsim::serve
