#include "serve/codec.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace swsim::serve {

namespace {

using Clock = std::chrono::steady_clock;
using Deadline = std::optional<Clock::time_point>;

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Deadline after(double seconds) {
  if (seconds <= 0.0) return std::nullopt;
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

// Waits until fd is ready for `events` or the deadline passes.
// Returns 1 ready, 0 deadline expired, -1 poll error. POLLHUP/POLLERR
// count as ready: the following read/send surfaces the actual condition.
int wait_for(int fd, short events, const Deadline& deadline,
             std::string* error) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - Clock::now());
      if (remaining.count() <= 0) return 0;
      timeout_ms = remaining.count() > 60000
                       ? 60000  // re-check; poll timeouts are int ms
                       : static_cast<int>(remaining.count());
    }
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error) *error = errno_message("poll");
      return -1;
    }
    if (rc > 0) return 1;
    if (deadline) {
      const auto remaining = *deadline - Clock::now();
      if (remaining.count() <= 0) return 0;
    }
  }
}

// Writes exactly n bytes, looping over partial writes and EINTR. send()
// with MSG_NOSIGNAL, not write(): a peer that hung up must surface as an
// EPIPE return the session loop can handle, not a SIGPIPE that kills the
// whole daemon. Under a deadline the send is non-blocking and EAGAIN is
// waited out with poll, so a peer that stops reading cannot park this
// thread past the budget.
bool write_all(int fd, const char* data, std::size_t n,
               const Deadline& deadline, std::string* error) {
  std::size_t off = 0;
  const int flags = MSG_NOSIGNAL | (deadline ? MSG_DONTWAIT : 0);
  while (off < n) {
    const ssize_t rc = ::send(fd, data + off, n - off, flags);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (deadline && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const int w = wait_for(fd, POLLOUT, deadline, error);
        if (w == 0) {
          if (error) *error = "write timed out (peer not reading)";
          return false;
        }
        if (w < 0) return false;
        continue;
      }
      if (error) *error = errno_message("write");
      return false;
    }
    off += static_cast<std::size_t>(rc);
  }
  return true;
}

// Reads exactly n bytes. Returns 1 on success, 0 on EOF before the first
// byte, -1 on error (including EOF mid-read when allow_eof is false),
// -2 when the deadline expires.
int read_all(int fd, char* data, std::size_t n, bool eof_ok_at_start,
             const Deadline& deadline, std::string* error) {
  std::size_t off = 0;
  while (off < n) {
    if (deadline) {
      const int w = wait_for(fd, POLLIN, deadline, error);
      if (w == 0) return -2;
      if (w < 0) return -1;
    }
    const ssize_t rc = ::read(fd, data + off, n - off);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (deadline && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (error) *error = errno_message("read");
      return -1;
    }
    if (rc == 0) {
      if (off == 0 && eof_ok_at_start) return 0;
      if (error) *error = "unexpected EOF inside a frame";
      return -1;
    }
    off += static_cast<std::size_t>(rc);
  }
  return 1;
}

bool write_frame_impl(int fd, const std::string& payload,
                      const Deadline& deadline, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    if (error) *error = "frame payload exceeds the 1 MiB limit";
    return false;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {
      static_cast<char>((n >> 24) & 0xff), static_cast<char>((n >> 16) & 0xff),
      static_cast<char>((n >> 8) & 0xff), static_cast<char>(n & 0xff)};
  return write_all(fd, header, sizeof header, deadline, error) &&
         write_all(fd, payload.data(), payload.size(), deadline, error);
}

ReadResult read_frame_impl(int fd, std::string* payload, std::string* error,
                           const IoDeadlines& deadlines) {
  // The first header byte waits under the *idle* budget (a quiet
  // connection is healthy); once a frame has begun, the rest of the
  // header and the payload share one *frame* budget, so a peer trickling
  // bytes cannot extend its welcome indefinitely (slow-loris).
  char header[4];
  const int first = read_all(fd, header, 1, /*eof_ok_at_start=*/true,
                             after(deadlines.idle_s), error);
  if (first == 0) return ReadResult::kEof;
  if (first == -2) {
    if (error) *error = "idle timeout waiting for a frame";
    return ReadResult::kTimeout;
  }
  if (first < 0) return ReadResult::kError;
  const Deadline frame_deadline = after(deadlines.frame_s);
  const int rest = read_all(fd, header + 1, sizeof header - 1,
                            /*eof_ok_at_start=*/false, frame_deadline, error);
  if (rest == -2) {
    if (error) *error = "timed out mid-frame (slow peer)";
    return ReadResult::kTimeout;
  }
  if (rest < 0) return ReadResult::kError;
  const std::uint32_t n =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > kMaxFrameBytes) {
    if (error) {
      *error = "frame length " + std::to_string(n) +
               " exceeds the 1 MiB limit (wrong protocol?)";
    }
    return ReadResult::kError;
  }
  payload->resize(n);
  if (n > 0) {
    const int body = read_all(fd, payload->data(), n,
                              /*eof_ok_at_start=*/false, frame_deadline,
                              error);
    if (body == -2) {
      if (error) *error = "timed out mid-frame (slow peer)";
      return ReadResult::kTimeout;
    }
    if (body < 0) return ReadResult::kError;
  }
  return ReadResult::kFrame;
}

}  // namespace

bool write_frame(int fd, const std::string& payload, std::string* error) {
  return write_frame_impl(fd, payload, std::nullopt, error);
}

bool write_frame(int fd, const std::string& payload, std::string* error,
                 const IoDeadlines& deadlines) {
  return write_frame_impl(fd, payload, after(deadlines.frame_s), error);
}

ReadResult read_frame(int fd, std::string* payload, std::string* error) {
  return read_frame_impl(fd, payload, error, IoDeadlines{});
}

ReadResult read_frame(int fd, std::string* payload, std::string* error,
                      const IoDeadlines& deadlines) {
  return read_frame_impl(fd, payload, error, deadlines);
}

}  // namespace swsim::serve
