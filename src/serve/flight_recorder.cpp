#include "serve/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace swsim::serve {

namespace {

// Crash-path state: one recorder pointer plus the fd to dump to, both
// plain atomics so the handler's reads are async-signal-safe.
std::atomic<const FlightRecorder*> g_crash_recorder{nullptr};
std::atomic<int> g_crash_fd{2};

void crash_handler(int signum) {
  const FlightRecorder* rec =
      g_crash_recorder.load(std::memory_order_relaxed);
  if (rec != nullptr) {
    const int fd = g_crash_fd.load(std::memory_order_relaxed);
    static const char header[] = "\n--- swsim flight recorder (crash) ---\n";
    [[maybe_unused]] ssize_t rc = ::write(fd, header, sizeof header - 1);
    rec->dump_to_fd(fd);
  }
  // Re-raise with the default disposition so the exit status / core dump
  // behaviour is what the operator expects from the original signal.
  ::signal(signum, SIG_DFL);
  ::raise(signum);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

FlightRecorder::~FlightRecorder() {
  const FlightRecorder* self = this;
  g_crash_recorder.compare_exchange_strong(self, nullptr,
                                           std::memory_order_relaxed);
}

void FlightRecorder::record(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[next_ % slots_.size()];
  const std::size_t n = std::min(line.size(), kSlotBytes - 1);
  slot.len = 0;  // invalidate for the lock-free crash reader
  std::memcpy(slot.text, line.data(), n);
  slot.text[n] = '\0';
  slot.len = static_cast<std::uint16_t>(n);
  ++next_;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      next_ < slots_.size() ? next_ : slots_.size());
}

void FlightRecorder::dump(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cap = slots_.size();
  const std::size_t held =
      static_cast<std::size_t>(next_ < cap ? next_ : cap);
  const std::uint64_t dropped = next_ - held;
  out << "{\"flight_recorder\":\"begin\",\"dropped\":" << dropped << "}\n";
  const std::uint64_t start = next_ - held;
  for (std::uint64_t i = start; i < next_; ++i) {
    const Slot& slot = slots_[i % cap];
    if (slot.len == 0) continue;
    out.write(slot.text, slot.len);
    out << "\n";
  }
  out << "{\"flight_recorder\":\"end\",\"entries\":" << held << "}\n";
}

std::size_t FlightRecorder::dump_to_fd(int fd) const {
  // No locks, no heap: walk the slots in ring order and write whatever is
  // there. next_ is read unsynchronized — a torn ordering or a partially
  // written slot is acceptable on the crash path.
  const std::size_t cap = slots_.size();
  const std::uint64_t next = next_;
  const std::size_t held = static_cast<std::size_t>(next < cap ? next : cap);
  const std::uint64_t start = next - held;
  std::size_t written = 0;
  for (std::uint64_t i = start; i < next; ++i) {
    const Slot& slot = slots_[i % cap];
    const std::uint16_t len = slot.len;
    if (len == 0 || len >= kSlotBytes) continue;
    ssize_t rc = ::write(fd, slot.text, len);
    if (rc > 0) written += static_cast<std::size_t>(rc);
    rc = ::write(fd, "\n", 1);
    if (rc > 0) written += 1;
  }
  return written;
}

void FlightRecorder::arm_crash_dump(int fd) {
  g_crash_fd.store(fd, std::memory_order_relaxed);
  g_crash_recorder.store(this, std::memory_order_relaxed);
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (const int signum : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(signum, &action, nullptr);
  }
}

}  // namespace swsim::serve
