#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/validator.h"
#include "obs/obs.h"
#include "obs/physics.h"
#include "robust/shutdown.h"
#include "serve/codec.h"
#include "serve/version.h"

namespace swsim::serve {

namespace {

// Serve-layer metrics, mirrored from the server's authoritative atomics
// (leaky holder, same pattern as the scheduler's).
struct ServeMetrics {
  obs::Counter& requests =
      obs::MetricsRegistry::global().counter("serve.requests");
  obs::Counter& failed =
      obs::MetricsRegistry::global().counter("serve.requests_failed");
  obs::Counter& rejected_overload =
      obs::MetricsRegistry::global().counter("serve.rejected_overload");
  obs::Counter& rejected_draining =
      obs::MetricsRegistry::global().counter("serve.rejected_draining");
  obs::Counter& rejected_deadline =
      obs::MetricsRegistry::global().counter("serve.rejected_deadline");
  obs::Counter& sessions_timed_out =
      obs::MetricsRegistry::global().counter("serve.sessions_timed_out");
  obs::Histogram& request_seconds =
      obs::MetricsRegistry::global().histogram("serve.request_seconds");
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("serve.queue_depth");
  obs::Gauge& sessions = obs::MetricsRegistry::global().gauge("serve.sessions");
  obs::Counter& probe_streams =
      obs::MetricsRegistry::global().counter("serve.probe_streams");
  obs::Counter& probe_frames =
      obs::MetricsRegistry::global().counter("serve.probe_frames");
  obs::Counter& probe_dropped =
      obs::MetricsRegistry::global().counter("serve.probe_dropped");
  obs::Gauge& probe_active =
      obs::MetricsRegistry::global().gauge("serve.probe_active");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* m = new ServeMetrics();
  return *m;
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string errno_status_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity == 0 ? 1 : config_.queue_capacity),
      flight_(config_.flight_recorder_capacity == 0
                  ? 256
                  : config_.flight_recorder_capacity) {
  if (config_.dispatchers == 0) config_.dispatchers = 1;
  if (config_.max_sessions == 0) config_.max_sessions = 1;
  tunables_.queue_capacity =
      config_.queue_capacity == 0 ? 1 : config_.queue_capacity;
  tunables_.retry_after_s = config_.retry_after_s;
  tunables_.idle_timeout_s = config_.idle_timeout_s;
  tunables_.frame_timeout_s = config_.frame_timeout_s;
  tunables_.default_deadline_s = config_.default_deadline_s;
  tunables_.max_deadline_s = config_.max_deadline_s;
}

ServeTunables Server::tunables() const {
  std::lock_guard<std::mutex> lock(tunables_mutex_);
  return tunables_;
}

robust::Status Server::apply_tunables_file() {
  using robust::Status;
  using robust::StatusCode;
  if (config_.tunables_file.empty()) return Status::ok();
  std::ifstream in(config_.tunables_file);
  if (!in) {
    return Status::error(StatusCode::kIoError,
                         "cannot open tunables file '" + config_.tunables_file +
                             "'",
                         "serve reload");
  }
  // One `key = value` per line, '#' comments — deliberately not JSON so an
  // operator can edit it with sed mid-incident. The whole file must parse
  // before anything is applied: a reload is all-or-nothing.
  ServeTunables next = tunables();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto bad = [&](const std::string& why) {
      return Status::error(StatusCode::kInvalidConfig,
                           config_.tunables_file + ":" +
                               std::to_string(lineno) + ": " + why,
                           "serve reload");
    };
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) return bad("expected key = value");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return bad("'" + key + "' needs a numeric value, got '" + value + "'");
    }
    if (key == "queue_capacity") {
      if (num < 1.0) return bad("queue_capacity must be >= 1");
      next.queue_capacity = static_cast<std::size_t>(num);
    } else if (key == "retry_after_s") {
      if (num < 0.0) return bad("retry_after_s must be >= 0");
      next.retry_after_s = num;
    } else if (key == "idle_timeout_s") {
      if (num < 0.0) return bad("idle_timeout_s must be >= 0");
      next.idle_timeout_s = num;
    } else if (key == "frame_timeout_s") {
      if (num < 0.0) return bad("frame_timeout_s must be >= 0");
      next.frame_timeout_s = num;
    } else if (key == "default_deadline_s") {
      if (num < 0.0) return bad("default_deadline_s must be >= 0");
      next.default_deadline_s = num;
    } else if (key == "max_deadline_s") {
      if (num < 0.0) return bad("max_deadline_s must be >= 0");
      next.max_deadline_s = num;
    } else {
      return bad("unknown tunable '" + key + "'");
    }
  }
  {
    std::lock_guard<std::mutex> lock(tunables_mutex_);
    tunables_ = next;
  }
  queue_.set_capacity(next.queue_capacity);
  auto& elog = obs::EventLog::global();
  if (elog.enabled(obs::LogLevel::kInfo)) {
    elog.event(obs::LogLevel::kInfo, "serve_tunables_applied")
        .uint("queue_capacity", next.queue_capacity)
        .emit();
  }
  return Status::ok();
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) shutdown();
  if (listen_fd_ != -1) ::close(listen_fd_);
  if (wake_read_ != -1) ::close(wake_read_);
  if (wake_write_ != -1) ::close(wake_write_);
}

std::string Server::endpoint() const {
  if (!config_.socket_path.empty()) return "unix:" + config_.socket_path;
  return "tcp:" + std::to_string(config_.tcp_port);
}

robust::Status Server::start() {
  using robust::Status;
  using robust::StatusCode;
  const bool unix_ep = !config_.socket_path.empty();
  const bool tcp_ep = config_.tcp_port > 0;
  if (unix_ep == tcp_ep) {
    return Status::error(StatusCode::kInvalidConfig,
                         "exactly one endpoint required: a Unix socket path "
                         "or a TCP port",
                         "serve");
  }

  if (unix_ep) {
    sockaddr_un addr{};
    if (config_.socket_path.size() >= sizeof addr.sun_path) {
      return Status::error(StatusCode::kInvalidConfig,
                           "socket path too long (max " +
                               std::to_string(sizeof addr.sun_path - 1) +
                               " bytes)",
                           "serve");
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::error(StatusCode::kIoError,
                           errno_status_message("socket"), "serve");
    }
    // A stale socket file from a dead daemon would make bind fail; remove
    // it (a live daemon holding the path keeps its bound inode anyway).
    std::error_code ec;
    std::filesystem::remove(config_.socket_path, ec);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      return Status::error(StatusCode::kIoError, errno_status_message("bind"),
                           "serve " + endpoint());
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::error(StatusCode::kIoError,
                           errno_status_message("socket"), "serve");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Loopback only: the daemon has no authentication; remote access is a
    // deliberate non-goal (front it with a tunnel if needed).
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      return Status::error(StatusCode::kIoError, errno_status_message("bind"),
                           "serve " + endpoint());
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::error(StatusCode::kIoError, errno_status_message("listen"),
                         "serve " + endpoint());
  }

  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    return Status::error(StatusCode::kIoError, errno_status_message("pipe"),
                         "serve");
  }
  wake_read_ = fds[0];
  wake_write_ = fds[1];

  if (!config_.request_log.empty()) {
    std::lock_guard<std::mutex> lock(log_mutex_);
    log_out_.open(config_.request_log, std::ios::app);
    if (!log_out_) {
      return Status::error(StatusCode::kIoError,
                           "cannot open request log '" + config_.request_log +
                               "'",
                           "serve");
    }
  }

  runner_ = std::make_unique<engine::BatchRunner>(config_.engine);
  // Crash-safe startup: a previous daemon killed mid-spill leaves partial
  // tmp files and possibly torn .swc entries behind. Quarantine/remove
  // them now, before any request can load one.
  if (!config_.engine.spill_dir.empty()) {
    recovery_ = runner_->cache().recover_spill_dir();
  }
  // A broken tunables file at startup is a hard error (fail fast); on
  // SIGHUP the same failure keeps the previous values instead.
  if (Status s = apply_tunables_file(); !s.is_ok()) return s;
  if (config_.arm_crash_dump) flight_.arm_crash_dump(2);
  start_t_us_ = obs::now_us();
  started_.store(true, std::memory_order_release);

  dispatcher_threads_.reserve(config_.dispatchers);
  for (std::size_t i = 0; i < config_.dispatchers; ++i) {
    dispatcher_threads_.emplace_back([this] { dispatch_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // begin_drain woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (active_sessions_ >= config_.max_sessions) {
      // Connection-level backpressure: same retryable contract as a full
      // queue, answered before a session thread is spent on it.
      Response resp;
      resp.status = robust::Status::error(
          robust::StatusCode::kOverloaded,
          "session limit reached (" + std::to_string(config_.max_sessions) +
              ")",
          "serve " + endpoint());
      resp.retry_after_s = tunables().retry_after_s;
      std::string err;
      write_frame(fd, serialize_response(resp), &err);
      ::close(fd);
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().rejected_overload.add();
      continue;
    }
    // Reuse a finished session's slot when one is free (joining its dead
    // thread first) so a chaos storm of short connections cannot grow an
    // unbounded vector of joinable-but-finished threads.
    Session* raw = nullptr;
    std::size_t slot = 0;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      raw = sessions_[slot].get();
      if (raw->thread.joinable()) raw->thread.join();
      raw->fd = fd;
    } else {
      auto session = std::make_unique<Session>();
      session->fd = fd;
      raw = session.get();
      slot = sessions_.size();
      sessions_.push_back(std::move(session));
    }
    ++active_sessions_;
    serve_metrics().sessions.set(static_cast<std::int64_t>(active_sessions_));
    raw->thread = std::thread([this, slot, fd] { session_loop(slot, fd); });
  }
}

void Server::session_loop(std::size_t slot, int fd) {
  std::string payload;
  std::string error;
  while (true) {
    const ServeTunables tun = tunables();
    const ReadResult r =
        read_frame(fd, &payload, &error,
                   IoDeadlines{tun.idle_timeout_s, tun.frame_timeout_s});
    if (r == ReadResult::kTimeout) {
      // Idle past the budget, or a slow-loris trickle: reclaim the thread.
      // The peer sees a plain close — the same outcome as a crash, which
      // a robust client must already handle.
      sessions_timed_out_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().sessions_timed_out.add();
      break;
    }
    if (r != ReadResult::kFrame) break;  // EOF / torn frame: drop session

    const double t0 = obs::now_us();
    Request request;
    Response response;
    const robust::Status parsed = parse_request_text(payload, &request);
    if (parsed.is_ok() && request.type == RequestType::kProbeSubscribe) {
      // A subscription turns the session into a push stream; it does its
      // own accounting (observe/log fire when the stream ends) and then
      // hands the socket back for the next request.
      if (!stream_probes(fd, request)) break;
      continue;
    }
    // Deadline granted at admission (after defaulting/capping); > 0 makes
    // the response's timing block report budget consumption.
    double granted_deadline_s = 0.0;
    {
      // The session-side span covers the whole exchange — admission wait
      // included — and continues the client's trace when the request
      // carries a trace_id (the flow step links this span to the client's
      // and, downstream, to the dispatcher's and the solver jobs').
      const std::uint64_t flow = request.flow_id();
      obs::Span span("serve.request " + request.client + " req " +
                         std::to_string(request.id),
                     "serve",
                     request.trace_id.empty()
                         ? std::string()
                         : "{\"trace_id\":\"" +
                               obs::escape_json(request.trace_id) + "\"}");
      if (flow != 0) obs::record_flow("serve.request", "serve", flow, 't');
      if (!parsed.is_ok()) {
        response.id = request.id;
        response.status = parsed;
      } else if (request.type == RequestType::kHello ||
                 request.type == RequestType::kHealthz ||
                 request.type == RequestType::kMetrics) {
        // Built-ins bypass admission (and keep answering while draining):
        // they are cheap, and an orchestrator needs them to watch the drain.
        response = make_builtin_response(request);
      } else if (draining()) {
        response.id = request.id;
        response.status = robust::Status::error(
            robust::StatusCode::kDraining, "server is draining",
            "serve " + endpoint());
        response.retry_after_s = tun.retry_after_s;
      } else {
        auto pending = std::make_unique<PendingRequest>();
        pending->request = request;
        pending->enqueued_us = obs::wall_now_us();
        // Deadline policy: the client's deadline_s, defaulted and capped by
        // the tunables, becomes an absolute steady-clock point stamped at
        // admission — queue wait burns the same budget the engine gets.
        double deadline_s = request.deadline_s;
        if (deadline_s <= 0.0) deadline_s = tun.default_deadline_s;
        if (tun.max_deadline_s > 0.0 &&
            (deadline_s <= 0.0 || deadline_s > tun.max_deadline_s)) {
          deadline_s = tun.max_deadline_s;
        }
        if (deadline_s > 0.0) {
          granted_deadline_s = deadline_s;
          pending->granted_deadline_s = deadline_s;
          pending->deadline_at =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(deadline_s));
        }
        std::future<Response> future = pending->promise.get_future();
        switch (queue_.push(std::move(pending))) {
          case Admit::kAdmitted: {
            obs::Span wait_span("serve.queue_wait", "serve");
            response = future.get();
            break;
          }
          case Admit::kOverloaded:
            response.id = request.id;
            response.status = robust::Status::error(
                robust::StatusCode::kOverloaded,
                "admission queue full (" +
                    std::to_string(queue_.capacity()) + ")",
                "serve " + endpoint());
            response.retry_after_s = tun.retry_after_s;
            break;
          case Admit::kClosed:
            response.id = request.id;
            response.status = robust::Status::error(
                robust::StatusCode::kDraining, "server is draining",
                "serve " + endpoint());
            response.retry_after_s = tun.retry_after_s;
            break;
        }
      }
    }

    const double wall_s = (obs::now_us() - t0) * 1e-6;
    // Every response echoes the server-side view of its latency; workload
    // responses already carry the queue/engine/render split the
    // dispatcher measured.
    response.timing.total_s = wall_s;
    if (granted_deadline_s > 0.0) {
      response.timing.budget_consumed = wall_s / granted_deadline_s;
    }
    observe_request(request, response, wall_s);
    log_request(request, response, wall_s);
    // The write is also bounded: a peer that sent a request and then
    // stopped reading must not pin this thread past the frame budget.
    if (!write_frame(fd, serialize_response(response), &error,
                     IoDeadlines{0.0, tun.frame_timeout_s})) {
      break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_[slot]->fd = -1;
  --active_sessions_;
  free_slots_.push_back(slot);
  serve_metrics().sessions.set(static_cast<std::int64_t>(active_sessions_));
}

void Server::dispatch_loop() {
  while (auto pending = queue_.pop()) {
    serve_metrics().queue_depth.set(
        static_cast<std::int64_t>(queue_.depth()));
    Response response;
    const auto now = std::chrono::steady_clock::now();
    // Queue-wait is attributed at pickup: everything between admission
    // and this point was spent behind other tenants' work.
    const double queue_s =
        std::chrono::duration<double>(now - pending->enqueued_at).count();
    response.timing.queue_s = queue_s < 0.0 ? 0.0 : queue_s;
    if (pending->has_deadline() && now >= pending->deadline_at) {
      // Admission shedding: the client stopped waiting while this sat in
      // the queue — answer kDeadlineExceeded without burning engine work.
      response.id = pending->request.id;
      response.status = robust::Status::error(
          robust::StatusCode::kDeadlineExceeded,
          "deadline expired while queued", "serve " + endpoint());
      response.retry_after_s = tunables().retry_after_s;
    } else {
      double budget_s = 0.0;
      if (pending->has_deadline()) {
        budget_s =
            std::chrono::duration<double>(pending->deadline_at - now).count();
      }
      // Everything the dispatcher (and the engine jobs it schedules) does
      // from here runs under the request's flow id, so solver spans on
      // pool workers link back to this request in the merged trace.
      obs::ScopedFlow flow_scope(pending->request.flow_id());
      const double h0 = obs::now_us();
      double engine_s = 0.0;
      try {
        response = handle_workload(pending->request, budget_s, &engine_s);
      } catch (...) {
        response.id = pending->request.id;
        response.status = robust::status_of_current_exception().with_context(
            "serve dispatch");
      }
      const double handled_s = (obs::now_us() - h0) * 1e-6;
      response.timing.queue_s = queue_s < 0.0 ? 0.0 : queue_s;
      response.timing.engine_s = engine_s;
      response.timing.render_s =
          handled_s > engine_s ? handled_s - engine_s : 0.0;
    }
    pending->promise.set_value(std::move(response));
  }
}

Response Server::handle_workload(const Request& request,
                                 double deadline_seconds,
                                 double* engine_seconds) {
  // Labels carry the tenant so the failure report, the event log, and a
  // fault plan's label matching (--inject "throw:<client>") are per-client.
  const std::string label =
      request.client + " req " + std::to_string(request.id);
  obs::Span span("serve." + to_string(request.type) + " " + label, "serve");
  if (const std::uint64_t flow = obs::current_flow_id(); flow != 0) {
    obs::record_flow("serve.dispatch", "serve", flow, 't');
  }
  const auto engine_timer = [engine_seconds](double t0_us) {
    if (engine_seconds) *engine_seconds += (obs::now_us() - t0_us) * 1e-6;
  };

  Response response;
  response.id = request.id;
  if (request.type == RequestType::kTruthTable) {
    const auto spec = make_truth_table_spec(request.gate);
    if (!spec) {
      response.status = robust::Status::error(
          robust::StatusCode::kInvalidConfig,
          "unknown gate '" + request.gate.kind + "'", "serve " + label);
      return response;
    }
    const double e0 = obs::now_us();
    const auto outcome = runner_->run_truth_table_checked(
        spec->factory, spec->key, {}, label, deadline_seconds);
    engine_timer(e0);
    response.text = core::format_report(outcome.report);
    if (outcome.ok()) {
      response.all_pass = outcome.report.all_pass ? 1.0 : 0.0;
      response.max_asymmetry = outcome.report.max_output_asymmetry;
      response.min_margin = outcome.report.min_margin;
    } else {
      response.status = outcome.failures.failures().front().status;
    }
  } else if (request.type == RequestType::kYield) {
    const auto spec = make_yield_spec(request.yield);
    if (!spec) {
      response.status = robust::Status::error(
          robust::StatusCode::kInvalidConfig,
          "unknown gate '" + request.yield.kind + "' (yield wants maj|xor)",
          "serve " + label);
      return response;
    }
    const double e0 = obs::now_us();
    const auto outcome = runner_->run_yield_checked(
        spec->factory, spec->model, spec->trials, label, deadline_seconds);
    engine_timer(e0);
    response.text = render_yield(spec->kind, outcome.report);
    if (outcome.ok()) {
      response.yield_value = outcome.report.yield;
      response.mean_worst_margin = outcome.report.mean_worst_margin;
    } else {
      response.status = outcome.failures.failures().front().status;
    }
  } else if (request.type == RequestType::kMicromag) {
    const auto spec = make_micromag_spec(request.micromag);
    if (!spec) {
      response.status = robust::Status::error(
          robust::StatusCode::kInvalidConfig,
          "unknown gate '" + request.micromag.kind +
              "' (micromag wants maj|xor)",
          "serve " + label);
      return response;
    }
    const double e0 = obs::now_us();
    const auto outcome = runner_->run_truth_table_checked(
        spec->factory, spec->key, spec->prepare, label, deadline_seconds);
    engine_timer(e0);
    response.text = core::format_report(outcome.report);
    if (outcome.ok()) {
      response.all_pass = outcome.report.all_pass ? 1.0 : 0.0;
      response.max_asymmetry = outcome.report.max_output_asymmetry;
      response.min_margin = outcome.report.min_margin;
    } else {
      response.status = outcome.failures.failures().front().status;
    }
  } else {
    response.status = robust::Status::error(
        robust::StatusCode::kInternal,
        "built-in request reached the dispatcher", "serve " + label);
  }
  if (response.status.code() == robust::StatusCode::kDeadlineExceeded) {
    // The engine shed (or tripped) this request's deadline mid-solve; the
    // rejection is retryable-with-budget, so hint a pause like the other
    // shedding paths do.
    response.retry_after_s = tunables().retry_after_s;
  }
  return response;
}

bool Server::stream_probes(int fd, const Request& request) {
  const double t0 = obs::now_us();
  const ServeTunables tun = tunables();
  std::string error;

  // The ack is a normal response frame, so existing clients can tell a
  // granted subscription from a drain rejection before raw frames start.
  Response ack;
  ack.id = request.id;
  std::shared_ptr<obs::ProbeHub::Subscription> sub;
  if (draining()) {
    ack.status =
        robust::Status::error(robust::StatusCode::kDraining,
                              "server is draining", "serve " + endpoint());
    ack.retry_after_s = tun.retry_after_s;
  } else {
    sub = obs::ProbeHub::global().subscribe();
    ack.payload_json = "{\"subscribed\":true}";
  }
  bool write_ok = write_frame(fd, serialize_response(ack), &error,
                              IoDeadlines{0.0, tun.frame_timeout_s});
  if (!sub || !write_ok) {
    const double wall_s = (obs::now_us() - t0) * 1e-6;
    ack.timing.total_s = wall_s;
    observe_request(request, ack, wall_s);
    log_request(request, ack, wall_s);
    return write_ok;
  }

  probe_streams_.fetch_add(1, std::memory_order_relaxed);
  probe_active_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().probe_streams.add();
  serve_metrics().probe_active.set(static_cast<std::int64_t>(
      probe_active_.load(std::memory_order_relaxed)));

  std::uint64_t frames = 0;
  const char* end_reason = "done";
  while (true) {
    if (draining()) {
      end_reason = "draining";
      break;
    }
    if (request.probe_max_frames > 0 && frames >= request.probe_max_frames) {
      break;
    }
    if (request.probe_duration_s > 0.0 &&
        (obs::now_us() - t0) * 1e-6 >= request.probe_duration_s) {
      break;
    }
    // A readable subscribed socket means EOF, reset, or a pipelined next
    // request — all three end the stream (the session loop re-reads the
    // socket afterwards), so an abandoned stream can never hang a thread.
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 0) > 0 &&
        (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      break;
    }
    obs::ProbeHub::Frame frame;
    // The short wait bounds how stale the draining/deadline checks get;
    // it is not a per-frame latency (frames push as soon as one arrives).
    if (!sub->next(&frame, 0.25)) continue;
    if (!request.probe_filter.empty() &&
        frame.probe != request.probe_filter) {
      continue;
    }
    std::string doc =
        "{\"type\":\"probe.frame\",\"job\":\"" + obs::escape_json(frame.job) +
        "\",\"probe\":\"" + obs::escape_json(frame.probe) +
        "\",\"window\":" + std::to_string(frame.window) +
        ",\"t\":" + fmt(frame.t) + ",\"amplitude\":" + fmt(frame.amplitude) +
        ",\"phase\":" + fmt(frame.phase) +
        ",\"converged\":" + (frame.converged ? "true" : "false");
    if (frame.converged_at >= 0.0) {
      doc += ",\"converged_at\":" + fmt(frame.converged_at);
    }
    doc += ",\"dropped\":" + std::to_string(sub->dropped()) + "}";
    if (!write_frame(fd, doc, &error,
                     IoDeadlines{0.0, tun.frame_timeout_s})) {
      write_ok = false;
      end_reason = "error";
      break;
    }
    ++frames;
    probe_frames_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().probe_frames.add();
  }

  const std::uint64_t dropped = sub->dropped();
  if (dropped > 0) {
    probe_dropped_.fetch_add(dropped, std::memory_order_relaxed);
    serve_metrics().probe_dropped.add(dropped);
  }
  if (write_ok) {
    const std::string fin = "{\"type\":\"probe.end\",\"reason\":\"" +
                            std::string(end_reason) +
                            "\",\"frames\":" + std::to_string(frames) +
                            ",\"dropped\":" + std::to_string(dropped) + "}";
    write_ok =
        write_frame(fd, fin, &error, IoDeadlines{0.0, tun.frame_timeout_s});
  }
  sub.reset();  // unsubscribe: publishers stop paying for this stream
  probe_active_.fetch_sub(1, std::memory_order_relaxed);
  serve_metrics().probe_active.set(static_cast<std::int64_t>(
      probe_active_.load(std::memory_order_relaxed)));

  const double wall_s = (obs::now_us() - t0) * 1e-6;
  Response summary;
  summary.id = request.id;
  if (!write_ok) {
    summary.status = robust::Status::error(robust::StatusCode::kIoError,
                                           "probe stream write failed: " +
                                               error,
                                           "serve " + endpoint());
  }
  summary.timing.total_s = wall_s;
  observe_request(request, summary, wall_s);
  log_request(request, summary, wall_s);
  return write_ok;
}

Response Server::make_builtin_response(const Request& request) {
  Response response;
  response.id = request.id;
  if (request.type == RequestType::kHello) {
    const BuildInfo info = build_info();
    response.payload_json =
        "{\"protocol\":\"" + obs::escape_json(info.protocol) +
        "\",\"version\":\"" + obs::escape_json(info.version) +
        "\",\"git_sha\":\"" + obs::escape_json(info.git_sha) +
        "\",\"compiler\":\"" + obs::escape_json(info.compiler) +
        "\",\"flags\":\"" + obs::escape_json(info.flags) +
        "\",\"build_type\":\"" + obs::escape_json(info.build_type) +
        "\",\"cores\":" + std::to_string(info.cores) + ",\"endpoint\":\"" +
        obs::escape_json(endpoint()) + "\"}";
  } else if (request.type == RequestType::kHealthz) {
    response.payload_json = healthz_payload();
  } else {
    response.payload_json = obs::MetricsRegistry::global().json();
  }
  return response;
}

std::string Server::healthz_payload() const {
  const engine::EngineStats stats = runner_->stats();
  std::size_t sessions = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions = active_sessions_;
  }
  const double uptime_s = (obs::now_us() - start_t_us_) * 1e-6;
  const ServeTunables tun = tunables();
  std::string out = "{\"status\":\"";
  out += draining() ? "draining" : "ok";
  out += "\",\"uptime_s\":" + fmt(uptime_s) +
         ",\"sessions\":" + std::to_string(sessions) +
         ",\"sessions_timed_out\":" +
         std::to_string(sessions_timed_out_.load(std::memory_order_relaxed)) +
         // oldest_wait_s is the head-of-line age: the single best signal
         // that dispatchers are starved relative to the arrival rate.
         ",\"queue\":{\"depth\":" + std::to_string(queue_.depth()) +
         ",\"capacity\":" + std::to_string(queue_.capacity()) +
         ",\"oldest_wait_s\":" + fmt(queue_.oldest_wait_seconds()) + "}" +
         ",\"requests\":{\"total\":" +
         std::to_string(requests_total_.load(std::memory_order_relaxed)) +
         ",\"failed\":" +
         std::to_string(requests_failed_.load(std::memory_order_relaxed)) +
         ",\"rejected_overload\":" +
         std::to_string(rejected_overload_.load(std::memory_order_relaxed)) +
         ",\"rejected_draining\":" +
         std::to_string(rejected_draining_.load(std::memory_order_relaxed)) +
         ",\"rejected_deadline\":" +
         std::to_string(rejected_deadline_.load(std::memory_order_relaxed)) +
         "}" +
         // Tunables are surfaced so a SIGHUP reload is observable without
         // reading the daemon's logs.
         ",\"tunables\":{\"queue_capacity\":" +
         std::to_string(tun.queue_capacity) +
         ",\"retry_after_s\":" + fmt(tun.retry_after_s) +
         ",\"idle_timeout_s\":" + fmt(tun.idle_timeout_s) +
         ",\"frame_timeout_s\":" + fmt(tun.frame_timeout_s) +
         ",\"default_deadline_s\":" + fmt(tun.default_deadline_s) +
         ",\"max_deadline_s\":" + fmt(tun.max_deadline_s) + "}" +
         ",\"recovery\":{\"scanned\":" + std::to_string(recovery_.scanned) +
         ",\"healthy\":" + std::to_string(recovery_.healthy) +
         ",\"quarantined\":" + std::to_string(recovery_.quarantined) +
         ",\"removed_tmp\":" + std::to_string(recovery_.removed_tmp) + "}" +
         // The warm-cache proof surface: a repeated request raises hits
         // while jobs_executed stays put.
         ",\"cache\":{\"hits\":" + std::to_string(stats.cache.hits) +
         ",\"misses\":" + std::to_string(stats.cache.misses) +
         ",\"hit_rate\":" + fmt(stats.cache.hit_rate()) +
         ",\"spill_loads\":" + std::to_string(stats.cache.spill_loads) +
         ",\"spill_corrupt\":" + std::to_string(stats.cache.spill_corrupt) +
         "}" +
         ",\"engine\":{\"threads\":" + std::to_string(stats.threads) +
         ",\"jobs_executed\":" + std::to_string(stats.jobs_executed) +
         ",\"jobs_failed\":" + std::to_string(stats.jobs_failed) + "}" +
         // Probe-stream accounting: lifetime streams/frames/drops plus the
         // number of live subscriptions right now.
         ",\"probe\":{\"streams\":" +
         std::to_string(probe_streams_.load(std::memory_order_relaxed)) +
         ",\"frames\":" +
         std::to_string(probe_frames_.load(std::memory_order_relaxed)) +
         ",\"dropped\":" +
         std::to_string(probe_dropped_.load(std::memory_order_relaxed)) +
         ",\"active\":" +
         std::to_string(probe_active_.load(std::memory_order_relaxed)) + "}" +
         // Per-tenant SLO accounting (serve/slo.h): phase histograms,
         // shed counters and budget consumption per tenant and kind.
         ",\"slo\":" + slo_.json() + "}";
  return out;
}

void Server::observe_request(const Request& request, const Response& response,
                             double wall_s) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests.add();
  switch (response.status.code()) {
    case robust::StatusCode::kOk:
      break;
    case robust::StatusCode::kOverloaded:
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().rejected_overload.add();
      break;
    case robust::StatusCode::kDraining:
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().rejected_draining.add();
      break;
    case robust::StatusCode::kDeadlineExceeded:
      // A shed deadline is the client's budget running out, not a server
      // failure — tracked apart so the failure rate stays meaningful.
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().rejected_deadline.add();
      break;
    default:
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
      serve_metrics().failed.add();
      break;
  }
  serve_metrics().request_seconds.observe(wall_s);
  serve_metrics().queue_depth.set(static_cast<std::int64_t>(queue_.depth()));

  SloTracker::Sample sample;
  sample.tenant = request.client;
  sample.kind = to_string(request.type);
  sample.code = response.status.code();
  sample.queue_s = response.timing.queue_s;
  sample.engine_s = response.timing.engine_s;
  sample.render_s = response.timing.render_s;
  sample.total_s = wall_s;
  sample.budget_consumed = response.timing.budget_consumed;
  slo_.record(sample);
}

void Server::log_request(const Request& request, const Response& response,
                         double wall_s) {
  const std::uint64_t t_us = obs::wall_now_us();
  std::string line =
      "{\"t_us\":" + std::to_string(t_us) + ",\"ts\":\"" +
      obs::format_iso8601_us(t_us) + "\",\"client\":\"" +
      obs::escape_json(request.client) + "\",\"type\":\"" +
      to_string(request.type) + "\",\"id\":" + std::to_string(request.id);
  if (!request.trace_id.empty()) {
    // Correlation key: the same id appears in the client's log and in
    // both trace files, so one grep joins all four views of a request.
    line += ",\"trace_id\":\"" + obs::escape_json(request.trace_id) + "\"";
  }
  line += ",\"code\":\"" + robust::to_string(response.status.code()) +
          "\",\"wall_s\":" + fmt(wall_s) + "}";
  // The flight recorder sees every request, log file or not: the ring is
  // what a SIGQUIT / crash postmortem reads back.
  flight_.record(line);
  std::lock_guard<std::mutex> lock(log_mutex_);
  if (!log_out_.is_open()) return;
  log_out_ << line << "\n";
  log_out_.flush();
}

void Server::dump_flight_recorder() {
  std::lock_guard<std::mutex> lock(log_mutex_);
  if (log_out_.is_open()) {
    flight_.dump(log_out_);
    log_out_.flush();
  } else {
    flight_.dump(std::cerr);
  }
}

void Server::begin_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  // Wake the accept loop so it stops taking connections, then close the
  // queue: the admitted backlog still drains, new pushes get kClosed.
  if (wake_write_ != -1) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
  queue_.close();
}

void Server::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  begin_drain();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ != -1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!config_.socket_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(config_.socket_path, ec);
    }
  }
  // Dispatchers exit once the closed queue is empty — every admitted
  // request has its promise fulfilled before this returns.
  for (auto& t : dispatcher_threads_) {
    if (t.joinable()) t.join();
  }
  // Sessions are now either blocked in read (half-close wakes them with
  // EOF) or writing their final response (which completes normally).
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& s : sessions_) {
      if (s->fd != -1) ::shutdown(s->fd, SHUT_RD);
    }
  }
  for (const auto& s : sessions_) {
    if (s->thread.joinable()) s->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (log_out_.is_open()) log_out_.close();
  }
}

void Server::reload() {
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    if (!config_.request_log.empty()) {
      if (log_out_.is_open()) log_out_.close();
      log_out_.open(config_.request_log, std::ios::app);
    }
  }
  if (!config_.tunables_file.empty()) {
    if (const robust::Status s = apply_tunables_file(); !s.is_ok()) {
      // Keep serving with the previous tunables; a broken reload must
      // never take the daemon down.
      std::fprintf(stderr, "swsim serve: tunables reload failed: %s\n",
                   s.message().c_str());
    }
  }
}

int Server::run_until_shutdown() {
  auto& signal = robust::ShutdownSignal::global();
  robust::ShutdownConfig sc;
  sc.handle_hup = true;
  sc.handle_quit = true;  // SIGQUIT: dump the flight recorder, keep serving
  sc.cancel_on_first = false;  // first signal drains; the second cancels
  signal.install(sc);

  std::uint64_t seen_hups = signal.hups();
  std::uint64_t seen_quits = signal.quits();
  while (signal.interrupts() == 0) {
    pollfd p{signal.poll_fd(), POLLIN, 0};
    if (::poll(&p, 1, -1) < 0 && errno != EINTR) break;
    signal.drain_poll_fd();
    const std::uint64_t hups = signal.hups();
    if (hups != seen_hups) {
      seen_hups = hups;
      reload();
    }
    const std::uint64_t quits = signal.quits();
    if (quits != seen_quits) {
      seen_quits = quits;
      dump_flight_recorder();
    }
  }
  // Graceful drain. A second SIGTERM/SIGINT during the drain trips the
  // process-wide cancel flag (ShutdownSignal policy), so stuck in-flight
  // solves abort at their next poll point and the drain still converges.
  shutdown();
  return 0;
}

}  // namespace swsim::serve
