#include "serve/chaos.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "robust/fault_injection.h"
#include "serve/client.h"
#include "serve/codec.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace swsim::serve {

namespace {

// Best-effort raw send for intentionally broken frames. A false return is
// not an error for the harness: the server may legitimately slam the door
// mid-write (read timeout, oversize rejection) and EPIPE is then the
// *expected* terminal outcome.
bool raw_send(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t rc = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(rc);
  }
  return true;
}

void frame_header(std::uint32_t n, char out[4]) {
  out[0] = static_cast<char>((n >> 24) & 0xff);
  out[1] = static_cast<char>((n >> 16) & 0xff);
  out[2] = static_cast<char>((n >> 8) & 0xff);
  out[3] = static_cast<char>(n & 0xff);
}

ChaosAction action_from_name(const std::string& name, bool* known) {
  *known = true;
  if (name == "clean") return ChaosAction::kClean;
  if (name == "delay") return ChaosAction::kDelay;
  if (name == "torn") return ChaosAction::kTorn;
  if (name == "garbage") return ChaosAction::kGarbage;
  if (name == "oversize") return ChaosAction::kOversize;
  if (name == "slowloris") return ChaosAction::kSlowLoris;
  if (name == "disconnect") return ChaosAction::kDisconnect;
  *known = false;
  return ChaosAction::kClean;
}

robust::Status invalid_spec(const std::string& message) {
  return robust::Status::error(robust::StatusCode::kInvalidConfig, message,
                               "chaos spec");
}

}  // namespace

const char* to_string(ChaosAction action) {
  switch (action) {
    case ChaosAction::kClean:
      return "clean";
    case ChaosAction::kDelay:
      return "delay";
    case ChaosAction::kTorn:
      return "torn";
    case ChaosAction::kGarbage:
      return "garbage";
    case ChaosAction::kOversize:
      return "oversize";
    case ChaosAction::kSlowLoris:
      return "slowloris";
    case ChaosAction::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

robust::Status parse_chaos_spec(const std::string& spec, ChaosProfile* out) {
  *out = ChaosProfile{};
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      return invalid_spec("expected key=value, got '" + item + "'");
    }
    std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return invalid_spec("'" + key + "' needs a numeric value, got '" +
                          value + "'");
    }
    const auto as_weight = [&](int* dst) -> robust::Status {
      if (num < 0.0) return invalid_spec("'" + key + "' must be >= 0");
      *dst = static_cast<int>(num);
      return robust::Status::ok();
    };
    robust::Status s = robust::Status::ok();
    if (key == "seed") {
      out->seed = static_cast<std::uint64_t>(num);
    } else if (key == "count" || key == "exchanges") {
      if (num < 1.0) return invalid_spec("'count' must be >= 1");
      out->exchanges = static_cast<int>(num);
    } else if (key == "clean") {
      s = as_weight(&out->clean);
    } else if (key == "delay") {
      s = as_weight(&out->delay);
    } else if (key == "torn") {
      s = as_weight(&out->torn);
    } else if (key == "garbage") {
      s = as_weight(&out->garbage);
    } else if (key == "oversize") {
      s = as_weight(&out->oversize);
    } else if (key == "slowloris") {
      s = as_weight(&out->slowloris);
    } else if (key == "disconnect") {
      s = as_weight(&out->disconnect);
    } else if (key == "delay_s") {
      out->delay_s = num;
    } else if (key == "slow_byte_s") {
      out->slow_byte_s = num;
    } else if (key == "deadline_s") {
      if (num <= 0.0) return invalid_spec("'deadline_s' must be > 0");
      out->exchange_deadline_s = num;
    } else {
      return invalid_spec("unknown key '" + key + "'");
    }
    if (!s.is_ok()) return s;
  }
  if (out->clean + out->delay + out->torn + out->garbage + out->oversize +
          out->slowloris + out->disconnect <=
      0) {
    return invalid_spec("all action weights are zero");
  }
  return robust::Status::ok();
}

std::string ChaosSummary::str() const {
  std::ostringstream os;
  os << "chaos: " << exchanges << " exchanges, " << answered_ok << " ok, "
     << answered_error << " error (" << retryable << " retryable), "
     << transport_closed << " closed, " << hung << " hung";
  return os.str();
}

FaultyTransport::FaultyTransport(std::string socket_path, int tcp_port,
                                 const ChaosProfile& profile)
    : socket_path_(std::move(socket_path)),
      tcp_port_(tcp_port),
      profile_(profile),
      rng_state_(profile.seed ? profile.seed : 0x9e3779b97f4a7c15ULL) {}

ChaosAction FaultyTransport::next_action() {
  // A scripted FaultPlan action wins over the seeded draw, so tests can
  // force an exact sequence; unknown names fall back to clean.
  const std::string scripted = robust::FaultPlan::global().consume_transport();
  if (!scripted.empty()) {
    bool known = false;
    const ChaosAction a = action_from_name(scripted, &known);
    if (known) return a;
  }
  // xorshift64, same generator family as FaultPlan::flip_bytes: chaos
  // schedules must not shift when the simulation RNG evolves.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const int total = profile_.clean + profile_.delay + profile_.torn +
                    profile_.garbage + profile_.oversize +
                    profile_.slowloris + profile_.disconnect;
  int pick = total > 0 ? static_cast<int>(rng_state_ %
                                          static_cast<std::uint64_t>(total))
                       : 0;
  struct WeightedAction {
    int weight;
    ChaosAction action;
  };
  const WeightedAction table[] = {
      {profile_.clean, ChaosAction::kClean},
      {profile_.delay, ChaosAction::kDelay},
      {profile_.torn, ChaosAction::kTorn},
      {profile_.garbage, ChaosAction::kGarbage},
      {profile_.oversize, ChaosAction::kOversize},
      {profile_.slowloris, ChaosAction::kSlowLoris},
      {profile_.disconnect, ChaosAction::kDisconnect},
  };
  for (const auto& entry : table) {
    if (pick < entry.weight) return entry.action;
    pick -= entry.weight;
  }
  return ChaosAction::kClean;
}

ChaosOutcome FaultyTransport::exchange(const Request& request) {
  ChaosOutcome out;
  out.action = next_action();

  Client client;
  const robust::Status connected =
      socket_path_.empty() ? client.connect_tcp(tcp_port_)
                           : client.connect_unix(socket_path_);
  if (!connected.is_ok()) {
    out.transport = connected;
    return out;
  }
  const int fd = client.fd();
  const std::string payload = serialize_request(request);
  char header[4];
  frame_header(static_cast<std::uint32_t>(payload.size()), header);

  bool expect_response = false;
  switch (out.action) {
    case ChaosAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(profile_.delay_s));
      [[fallthrough]];
    case ChaosAction::kClean:
      expect_response = raw_send(fd, header, sizeof header) &&
                        raw_send(fd, payload.data(), payload.size());
      out.sent_full_request = expect_response;
      break;
    case ChaosAction::kTorn: {
      // Header plus half the payload, then hang up mid-frame: the server
      // must treat it as a torn frame, not a request.
      raw_send(fd, header, sizeof header);
      raw_send(fd, payload.data(), payload.size() / 2);
      break;
    }
    case ChaosAction::kGarbage: {
      // Correctly framed, unparseable payload: the server owes us a
      // structured invalid-config answer, not a dropped session.
      const std::string garbage(payload.size(), '\x01');
      frame_header(static_cast<std::uint32_t>(garbage.size()), header);
      expect_response = raw_send(fd, header, sizeof header) &&
                        raw_send(fd, garbage.data(), garbage.size());
      out.sent_full_request = expect_response;
      break;
    }
    case ChaosAction::kOversize: {
      frame_header(static_cast<std::uint32_t>(kMaxFrameBytes) + 1, header);
      raw_send(fd, header, sizeof header);
      // The server rejects the length prefix and closes; reading the
      // close (below) is how the harness observes no session leaked.
      break;
    }
    case ChaosAction::kSlowLoris: {
      // Trickle the frame a byte at a time. The server's frame deadline is
      // allowed to cut us off (EPIPE/ECONNRESET) — also terminal.
      bool alive = raw_send(fd, header, sizeof header);
      for (std::size_t i = 0; alive && i < payload.size(); ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(profile_.slow_byte_s));
        alive = raw_send(fd, payload.data() + i, 1);
      }
      expect_response = alive;
      out.sent_full_request = alive;
      break;
    }
    case ChaosAction::kDisconnect:
      // Full request, then vanish before the answer. The dispatcher's
      // write fails EPIPE; nothing may leak or hang because of it.
      raw_send(fd, header, sizeof header);
      raw_send(fd, payload.data(), payload.size());
      client.close();
      return out;
  }

  // Read whatever the server does with us, under the harness budget so a
  // chaos run can never hang: a response, a close, or (failure) nothing.
  std::string reply;
  std::string error;
  const IoDeadlines deadlines{profile_.exchange_deadline_s,
                              profile_.exchange_deadline_s};
  switch (read_frame(fd, &reply, &error, deadlines)) {
    case ReadResult::kFrame:
      if (parse_response_text(reply, &out.response).is_ok()) {
        out.got_response = true;
      } else {
        out.transport = robust::Status::error(robust::StatusCode::kIoError,
                                              "unparseable response frame",
                                              "chaos recv");
      }
      break;
    case ReadResult::kEof:
      out.transport = robust::Status::error(robust::StatusCode::kIoError,
                                            "server closed the connection",
                                            "chaos recv");
      break;
    case ReadResult::kError:
      out.transport = robust::Status::error(robust::StatusCode::kIoError,
                                            error, "chaos recv");
      break;
    case ReadResult::kTimeout:
      out.transport = robust::Status::error(robust::StatusCode::kTimeout,
                                            "no response within the budget",
                                            "chaos recv");
      out.hung = expect_response;
      break;
  }
  return out;
}

ChaosSummary run_chaos(const ChaosProfile& profile,
                       const std::string& socket_path, int tcp_port,
                       const Request& base) {
  FaultyTransport transport(socket_path, tcp_port, profile);
  ChaosSummary summary;
  for (int i = 0; i < profile.exchanges; ++i) {
    Request request = base;
    request.id = base.id + static_cast<std::uint64_t>(i);
    const ChaosOutcome out = transport.exchange(request);
    ++summary.exchanges;
    if (out.hung) {
      ++summary.hung;
    } else if (out.got_response) {
      if (out.response.status.is_ok()) {
        ++summary.answered_ok;
      } else {
        ++summary.answered_error;
        if (robust::is_retryable(out.response.status.code())) {
          ++summary.retryable;
        }
      }
    } else {
      ++summary.transport_closed;
    }
  }
  return summary;
}

}  // namespace swsim::serve
