// Area and area-delay-power (ADP) accounting.
//
// The paper argues (Sec. IV-D, citing ref. [42]'s hybrid CMOS/SW divider
// with an 800x ADP advantage) that spin-wave logic trades delay for area
// and power. This module computes device areas from the actual gate
// layouts (not hand-waved constants) and rolls up the ADP figure of merit
// for gates and circuits, so the trade-off can be examined quantitatively.
#pragma once

#include "geom/gate_layout.h"
#include "perf/cmos_ref.h"
#include "perf/gate_cost.h"

namespace swsim::perf {

struct AreaEstimate {
  double device_area = 0.0;      // bounding-box area [m^2]
  double waveguide_area = 0.0;   // actual magnetic material footprint [m^2]
};

// Area of a triangle gate from its layout: bounding box and the summed
// waveguide footprint (segment lengths x width, junction overlaps ignored —
// a few percent for these aspect ratios).
AreaEstimate triangle_gate_area(const geom::TriangleGateLayout& layout);

// Area of the ladder baseline from its reconstructed layout.
AreaEstimate ladder_gate_area(const geom::LadderGateLayout& layout);

// CMOS gate area model: transistor count x a per-device area for the node.
// Per-device pitch areas are coarse literature values for dense logic
// (16 nm: ~0.05 um^2/device incl. routing; 7 nm: ~0.015 um^2/device).
double cmos_gate_area(const CmosGate& gate);

struct AdpRow {
  std::string design;
  double area = 0.0;    // [m^2]
  double delay = 0.0;   // [s]
  double power = 0.0;   // [W] average at back-to-back operation
  double adp = 0.0;     // area * delay * power
};

// ADP for a spin-wave gate (power = energy per op / delay).
AdpRow sw_adp(const SwGateCost& cost, const geom::TriangleGateLayout& layout);

// ADP for a CMOS reference gate.
AdpRow cmos_adp(const CmosGate& gate);

}  // namespace swsim::perf
