#include "perf/cmos_ref.h"

#include <stdexcept>

#include "math/constants.h"

namespace swsim::perf {

using namespace swsim::math;

std::string to_string(CmosNode node) {
  switch (node) {
    case CmosNode::k16nm: return "16nm CMOS";
    case CmosNode::k7nm: return "7nm CMOS";
  }
  return "?";
}

std::string to_string(GateFunction fn) {
  switch (fn) {
    case GateFunction::kMaj3: return "MAJ";
    case GateFunction::kXor2: return "XOR";
  }
  return "?";
}

CmosGate CmosGate::reference(CmosNode node, GateFunction fn) {
  CmosGate g;
  g.node = node;
  g.function = fn;
  if (node == CmosNode::k16nm) {
    if (fn == GateFunction::kMaj3) {
      g.device_count = 16;
      g.delay = ns(0.03);
      g.energy = aj(466);
    } else {
      g.device_count = 8;
      g.delay = ns(0.03);
      g.energy = aj(303);
    }
  } else {  // 7 nm
    if (fn == GateFunction::kMaj3) {
      g.device_count = 16;
      g.delay = ns(0.02);
      g.energy = aj(16.4);
    } else {
      g.device_count = 8;
      g.delay = ns(0.01);
      g.energy = aj(5.4);
    }
  }
  return g;
}

std::vector<CmosGate> CmosGate::all_references() {
  return {reference(CmosNode::k16nm, GateFunction::kMaj3),
          reference(CmosNode::k16nm, GateFunction::kXor2),
          reference(CmosNode::k7nm, GateFunction::kMaj3),
          reference(CmosNode::k7nm, GateFunction::kXor2)};
}

}  // namespace swsim::perf
