// Propagation-delay accounting — a check on the paper's assumption (iii),
// "SWs propagation delay in the waveguide is neglected".
//
// The wave transits the device at the group velocity; for the paper-scale
// MAJ3 the longest input-to-output path is ~1.5 um and v_g ~ 1.4 km/s, so
// the transit takes ~1 ns — larger than the 0.42 ns transducer delay the
// model books. These helpers quantify that, per gate and per pipeline.
#pragma once

#include "geom/gate_layout.h"
#include "wavenet/dispersion.h"

namespace swsim::perf {

struct LatencyBreakdown {
  double transducer_delay = 0.0;   // [s] (the paper's delay model)
  double propagation_delay = 0.0;  // [s] longest path / group velocity
  double total() const { return transducer_delay + propagation_delay; }
  // How much the paper's assumption (iii) underestimates the gate delay.
  double underestimate_factor() const {
    return transducer_delay > 0.0 ? total() / transducer_delay : 0.0;
  }
};

// Longest input->output propagation time for the triangle layout at its
// design wavelength.
double propagation_delay(const geom::TriangleGateLayout& layout,
                         const wavenet::Dispersion& dispersion);

// Full latency breakdown using the given transducer delay.
LatencyBreakdown gate_latency(const geom::TriangleGateLayout& layout,
                              const wavenet::Dispersion& dispersion,
                              double transducer_delay);

}  // namespace swsim::perf
