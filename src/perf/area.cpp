#include "perf/area.h"

#include <cmath>

namespace swsim::perf {

AreaEstimate triangle_gate_area(const geom::TriangleGateLayout& layout) {
  AreaEstimate est;
  const geom::Rect bb = layout.bounding_box(0.0);
  est.device_area = (bb.x1() - bb.x0()) * (bb.y1() - bb.y0());

  const auto& p = layout.params();
  // Arms + axis + two branches, footprint = length x width.
  double length = 2.0 * p.d1() + p.d2() + 2.0 * p.branch_out();
  est.waveguide_area = length * p.width;
  return est;
}

AreaEstimate ladder_gate_area(const geom::LadderGateLayout& layout) {
  AreaEstimate est;
  const geom::Rect bb = layout.bounding_box(0.0);
  est.device_area = (bb.x1() - bb.x0()) * (bb.y1() - bb.y0());
  const auto& p = layout.params();
  // Two rails, the rung, two input stubs.
  const double rail = (p.n_rail + p.n_out) * p.wavelength;
  const double length = 2.0 * rail + p.n_rung * p.wavelength +
                        p.n_rail * p.wavelength;  // 2 stubs of half a rail
  est.waveguide_area = length * p.width;
  return est;
}

double cmos_gate_area(const CmosGate& gate) {
  const double per_device =
      gate.node == CmosNode::k16nm ? 0.05e-12 : 0.015e-12;  // [m^2]
  return gate.device_count * per_device;
}

AdpRow sw_adp(const SwGateCost& cost, const geom::TriangleGateLayout& layout) {
  cost.validate();
  AdpRow row;
  row.design = cost.design;
  row.area = triangle_gate_area(layout).device_area;
  row.delay = cost.delay();
  row.power = cost.energy() / cost.delay();
  row.adp = row.area * row.delay * row.power;
  return row;
}

AdpRow cmos_adp(const CmosGate& gate) {
  AdpRow row;
  row.design = to_string(gate.node) + " " + to_string(gate.function);
  row.area = cmos_gate_area(gate);
  row.delay = gate.delay;
  row.power = gate.energy / gate.delay;
  row.adp = row.area * row.delay * row.power;
  return row;
}

}  // namespace swsim::perf
