// Table III generator: energy/delay comparison of the proposed triangle
// gates against the ladder-shape spin-wave baseline and 16/7 nm CMOS.
#pragma once

#include <string>
#include <vector>

#include "perf/cmos_ref.h"
#include "perf/gate_cost.h"

namespace swsim::perf {

struct ComparisonRow {
  std::string design;
  std::string technology;
  std::string function;   // "MAJ" or "XOR"
  int cells = 0;          // transducers (SW) or transistors (CMOS)
  double delay = 0.0;     // [s]
  double energy = 0.0;    // [J]
};

struct HeadlineNumbers {
  // Energy saving of the triangle gates versus the ladder baseline
  // (paper: 25% for MAJ, 50% for XOR).
  double maj_saving_vs_ladder = 0.0;
  double xor_saving_vs_ladder = 0.0;
  // Energy ratio CMOS / this-work (>1 means the SW gate wins; paper
  // abstract: 43x best case, 0.8x worst case).
  double maj_energy_ratio_16nm = 0.0;
  double maj_energy_ratio_7nm = 0.0;
  double xor_energy_ratio_16nm = 0.0;
  double xor_energy_ratio_7nm = 0.0;
  // Delay overhead this-work / CMOS (paper: 11x-40x range).
  double maj_delay_overhead_16nm = 0.0;
  double maj_delay_overhead_7nm = 0.0;
  double xor_delay_overhead_16nm = 0.0;
  double xor_delay_overhead_7nm = 0.0;
};

class Comparison {
 public:
  // Builds the comparison with the paper's default cost models.
  Comparison();
  // Builds with a custom transducer model (technology-maturity what-ifs).
  explicit Comparison(const TransducerModel& transducer);

  const std::vector<ComparisonRow>& rows() const { return rows_; }
  HeadlineNumbers headlines() const;

  const SwGateCost& triangle_maj() const { return tri_maj_; }
  const SwGateCost& triangle_xor() const { return tri_xor_; }
  const SwGateCost& ladder_maj() const { return lad_maj_; }
  const SwGateCost& ladder_xor() const { return lad_xor_; }

 private:
  void build();

  SwGateCost tri_maj_, tri_xor_, lad_maj_, lad_xor_;
  std::vector<ComparisonRow> rows_;
};

}  // namespace swsim::perf
