#include "perf/latency.h"

#include <algorithm>

namespace swsim::perf {

double propagation_delay(const geom::TriangleGateLayout& layout,
                         const wavenet::Dispersion& dispersion) {
  const double k =
      wavenet::Dispersion::k_of_lambda(layout.params().wavelength);
  const double vg = dispersion.group_velocity(k);
  double longest = 0.0;
  using geom::Port;
  for (Port in : {Port::kIn1, Port::kIn2, Port::kIn3}) {
    if (!layout.has_port(in)) continue;
    for (Port out : {Port::kOut1, Port::kOut2}) {
      longest = std::max(longest, layout.path_length(in, out));
    }
  }
  return longest / vg;
}

LatencyBreakdown gate_latency(const geom::TriangleGateLayout& layout,
                              const wavenet::Dispersion& dispersion,
                              double transducer_delay) {
  LatencyBreakdown l;
  l.transducer_delay = transducer_delay;
  l.propagation_delay = propagation_delay(layout, dispersion);
  return l;
}

}  // namespace swsim::perf
