// CMOS reference gates for the Table III comparison.
//
// Numbers reproduce refs. [40] (16 nm) and [41] (7 nm) as quoted in the
// paper's Table III. The 3-input CMOS Majority gate is built from 4 NAND
// gates (the construction the paper assumes): MAJ(a,b,c) =
// NAND(NAND(a,b), NAND(a,c), NAND(b,c)) — 4 gates x 4 transistors = 16
// devices; the XOR is the standard 8-transistor realization.
#pragma once

#include <string>
#include <vector>

namespace swsim::perf {

enum class CmosNode { k16nm, k7nm };
enum class GateFunction { kMaj3, kXor2 };

std::string to_string(CmosNode node);
std::string to_string(GateFunction fn);

struct CmosGate {
  CmosNode node;
  GateFunction function;
  int device_count = 0;  // transistors
  double delay = 0.0;    // [s]
  double energy = 0.0;   // [J]

  static CmosGate reference(CmosNode node, GateFunction fn);
  static std::vector<CmosGate> all_references();
};

}  // namespace swsim::perf
