// Spin-wave gate energy/delay/cell-count cost model (paper Sec. IV-D).
//
// Per the paper's assumptions: energy = (number of excitation transducers) x
// (one pulse energy); detection cells are passive because the output wave is
// handed directly to the next gate (assumption (v)); delay = one transducer
// delay because propagation is neglected (assumption (iii)).
#pragma once

#include <string>

#include "perf/transducer.h"

namespace swsim::perf {

struct SwGateCost {
  std::string design;        // e.g. "triangle FO2 MAJ3 (this work)"
  int excitation_cells = 0;  // driven transducers per evaluation
  int detection_cells = 0;   // passive output transducers
  bool equal_level_excitation = true;  // triangle: yes; ladder: no
  TransducerModel transducer = TransducerModel::me_cell();

  int total_cells() const { return excitation_cells + detection_cells; }
  double energy() const {
    return excitation_cells * transducer.excitation_energy();
  }
  double delay() const { return transducer.delay; }

  // The four spin-wave designs of Table III.
  static SwGateCost triangle_maj3();  // this work: 3 exc + 2 det = 5 cells
  static SwGateCost triangle_xor();   // this work: 2 exc + 2 det = 4 cells
  static SwGateCost ladder_maj3();    // ref. [22]/[23]: 4 exc + 2 det = 6
  static SwGateCost ladder_xor();     // ref. [23]:      4 exc + 2 det = 6

  // Throws std::invalid_argument on nonsensical cell counts.
  void validate() const;
};

// Fractional energy saving of `ours` relative to `baseline` (0.25 = 25%).
double energy_saving(const SwGateCost& ours, const SwGateCost& baseline);

}  // namespace swsim::perf
