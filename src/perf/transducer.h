// Transducer (excitation/detection cell) models.
//
// The paper's energy/delay estimates (Sec. IV-D) assume magnetoelectric (ME)
// cells with P = 34.4 nW and tau = 0.42 ns (ref. [42]), driven by 100 ps
// excitation pulses, with propagation delay and loss neglected and outputs
// passed directly to the next gate (assumptions (i)-(vi)). Those assumptions
// are encoded here so every comparison uses exactly the paper's cost model —
// and can be re-run with different numbers as the technology matures.
#pragma once

#include "math/constants.h"

namespace swsim::perf {

struct TransducerModel {
  const char* name = "ME cell";
  double power = swsim::math::nw(34.4);     // [W] while driven
  double delay = swsim::math::ns(0.42);     // [s] transduction delay
  double pulse_duration = swsim::math::ps(100);  // [s] excitation pulse

  // Energy of one excitation pulse [J] = P * t_pulse (34.4 nW * 100 ps =
  // 3.44 aJ for the paper's parameters).
  double excitation_energy() const { return power * pulse_duration; }

  // Paper's ME-cell parameter set (ref. [42]).
  static TransducerModel me_cell();

  // Throws std::invalid_argument on non-positive parameters.
  void validate() const;
};

}  // namespace swsim::perf
