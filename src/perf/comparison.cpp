#include "perf/comparison.h"

namespace swsim::perf {

Comparison::Comparison() : Comparison(TransducerModel::me_cell()) {}

Comparison::Comparison(const TransducerModel& transducer)
    : tri_maj_(SwGateCost::triangle_maj3()),
      tri_xor_(SwGateCost::triangle_xor()),
      lad_maj_(SwGateCost::ladder_maj3()),
      lad_xor_(SwGateCost::ladder_xor()) {
  transducer.validate();
  tri_maj_.transducer = transducer;
  tri_xor_.transducer = transducer;
  lad_maj_.transducer = transducer;
  lad_xor_.transducer = transducer;
  build();
}

void Comparison::build() {
  rows_.clear();
  for (const CmosGate& g : CmosGate::all_references()) {
    rows_.push_back(ComparisonRow{to_string(g.node), to_string(g.node),
                                  to_string(g.function), g.device_count,
                                  g.delay, g.energy});
  }
  auto add_sw = [&](const SwGateCost& c, const std::string& fn) {
    rows_.push_back(ComparisonRow{c.design, "SW", fn, c.total_cells(),
                                  c.delay(), c.energy()});
  };
  add_sw(lad_maj_, "MAJ");
  add_sw(lad_xor_, "XOR");
  add_sw(tri_maj_, "MAJ");
  add_sw(tri_xor_, "XOR");
}

HeadlineNumbers Comparison::headlines() const {
  HeadlineNumbers h;
  h.maj_saving_vs_ladder = energy_saving(tri_maj_, lad_maj_);
  h.xor_saving_vs_ladder = energy_saving(tri_xor_, lad_xor_);

  const CmosGate m16 = CmosGate::reference(CmosNode::k16nm, GateFunction::kMaj3);
  const CmosGate m7 = CmosGate::reference(CmosNode::k7nm, GateFunction::kMaj3);
  const CmosGate x16 = CmosGate::reference(CmosNode::k16nm, GateFunction::kXor2);
  const CmosGate x7 = CmosGate::reference(CmosNode::k7nm, GateFunction::kXor2);

  h.maj_energy_ratio_16nm = m16.energy / tri_maj_.energy();
  h.maj_energy_ratio_7nm = m7.energy / tri_maj_.energy();
  h.xor_energy_ratio_16nm = x16.energy / tri_xor_.energy();
  h.xor_energy_ratio_7nm = x7.energy / tri_xor_.energy();

  h.maj_delay_overhead_16nm = tri_maj_.delay() / m16.delay;
  h.maj_delay_overhead_7nm = tri_maj_.delay() / m7.delay;
  h.xor_delay_overhead_16nm = tri_xor_.delay() / x16.delay;
  h.xor_delay_overhead_7nm = tri_xor_.delay() / x7.delay;
  return h;
}

}  // namespace swsim::perf
