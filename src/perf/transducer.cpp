#include "perf/transducer.h"

#include <stdexcept>

namespace swsim::perf {

TransducerModel TransducerModel::me_cell() { return TransducerModel{}; }

void TransducerModel::validate() const {
  if (!(power > 0.0) || !(delay > 0.0) || !(pulse_duration > 0.0)) {
    throw std::invalid_argument(
        "TransducerModel: power, delay and pulse duration must be positive");
  }
}

}  // namespace swsim::perf
