#include "perf/gate_cost.h"

#include <stdexcept>

namespace swsim::perf {

SwGateCost SwGateCost::triangle_maj3() {
  SwGateCost c;
  c.design = "triangle FO2 MAJ3 (this work)";
  c.excitation_cells = 3;
  c.detection_cells = 2;
  c.equal_level_excitation = true;
  return c;
}

SwGateCost SwGateCost::triangle_xor() {
  SwGateCost c;
  c.design = "triangle FO2 XOR (this work)";
  c.excitation_cells = 2;
  c.detection_cells = 2;
  c.equal_level_excitation = true;
  return c;
}

SwGateCost SwGateCost::ladder_maj3() {
  SwGateCost c;
  c.design = "ladder FO2 MAJ3 [22]";
  c.excitation_cells = 4;  // one input replicated to enable the fan-out
  c.detection_cells = 2;
  c.equal_level_excitation = false;
  return c;
}

SwGateCost SwGateCost::ladder_xor() {
  SwGateCost c;
  c.design = "ladder FO2 XOR [23]";
  c.excitation_cells = 4;  // both inputs replicated
  c.detection_cells = 2;
  c.equal_level_excitation = false;
  return c;
}

void SwGateCost::validate() const {
  if (excitation_cells <= 0 || detection_cells <= 0) {
    throw std::invalid_argument("SwGateCost: cell counts must be positive");
  }
  transducer.validate();
}

double energy_saving(const SwGateCost& ours, const SwGateCost& baseline) {
  ours.validate();
  baseline.validate();
  const double base = baseline.energy();
  if (!(base > 0.0)) {
    throw std::invalid_argument("energy_saving: baseline energy must be > 0");
  }
  return (base - ours.energy()) / base;
}

}  // namespace swsim::perf
