#include "robust/watchdog.h"

#include <cmath>
#include <string>

namespace swsim::robust {

namespace {

bool finite3(const swsim::math::Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

}  // namespace

Status scan_magnetization(const swsim::math::VectorField& m,
                          const swsim::math::Mask& mask,
                          double norm_drift_tol) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) continue;
    if (!finite3(m[i])) {
      return Status::error(
          StatusCode::kNumericalDivergence,
          "non-finite magnetization at cell " + std::to_string(i));
    }
    if (norm_drift_tol > 0.0) {
      const double drift = std::fabs(norm(m[i]) - 1.0);
      if (drift > norm_drift_tol) {
        return Status::error(StatusCode::kNumericalDivergence,
                             "|m| drift " + std::to_string(drift) +
                                 " at cell " + std::to_string(i));
      }
    }
  }
  return Status::ok();
}

void EnergyWatchdog::reset() {
  checks_ = 0;
  reference_ = 0.0;
}

Status EnergyWatchdog::check(double energy, double growth_factor,
                             std::size_t warmup_checks) {
  if (!std::isfinite(energy)) {
    return Status::error(StatusCode::kNumericalDivergence,
                         "total energy is non-finite");
  }
  const double magnitude = std::fabs(energy);
  ++checks_;
  // Warmup: ratchet the reference to the running max |E|. Also keep
  // ratcheting past warmup while the reference is physically negligible
  // (a zero-energy start with a late drive ramp): enforcing a growth
  // bound against numerical noise would flag the first healthy energy.
  if (checks_ <= warmup_checks || reference_ < kNegligibleEnergy) {
    reference_ = std::max(reference_, magnitude);
    return Status::ok();
  }
  if (growth_factor > 0.0 && magnitude > growth_factor * reference_) {
    return Status::error(StatusCode::kNumericalDivergence,
                         "total energy grew to " + std::to_string(energy) +
                             " J (reference magnitude " +
                             std::to_string(reference_) + " J)");
  }
  return Status::ok();
}

}  // namespace swsim::robust
