#include "robust/report.h"

#include <cstdio>
#include <sstream>

#include "obs/clock.h"

namespace swsim::robust {

namespace {

std::string hex_key(std::uint64_t key) {
  if (key == 0) return "-";
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

void FailureReport::add(JobFailure failure) {
  failures_.push_back(std::move(failure));
}

void FailureReport::merge(const FailureReport& other) {
  failures_.insert(failures_.end(), other.failures_.begin(),
                   other.failures_.end());
}

std::vector<std::string> FailureReport::csv_header() {
  return {"job",  "status", "cause",   "attempts", "quarantined",
          "time", "t_us",   "job_key", "wall_s"};
}

std::vector<std::vector<std::string>> FailureReport::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(failures_.size());
  for (const JobFailure& f : failures_) {
    std::string cause = f.status.message();
    if (!f.status.context().empty()) {
      cause += " [" + f.status.context() + "]";
    }
    std::string when = obs::format_iso8601_us(f.t_us);
    if (when.empty()) when = "-";
    rows.push_back({f.job, to_string(f.status.code()), cause,
                    std::to_string(f.attempts), f.quarantined ? "1" : "0",
                    std::move(when), std::to_string(f.t_us),
                    hex_key(f.job_key), io::Table::num(f.wall_seconds, 3)});
  }
  return rows;
}

io::Table FailureReport::table() const {
  io::Table t(csv_header());
  for (auto& row : csv_rows()) t.add_row(std::move(row));
  return t;
}

std::string FailureReport::str() const {
  std::ostringstream os;
  os << "failure report (" << failures_.size() << " job"
     << (failures_.size() == 1 ? "" : "s") << ")\n"
     << table().str();
  return os.str();
}

}  // namespace swsim::robust
