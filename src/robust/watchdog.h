// Numerical health watchdogs for the LLG solve path.
//
// The paper's readouts sit close to decision boundaries (MAJ3 phase
// distance, XOR threshold at 0.5), so a solve that has gone numerically
// bad must be *detected*, not read out. Three checks, all cheap relative
// to a field evaluation and run at a configurable step cadence:
//
//   1. NaN/Inf scan over the magnetization (any poisoned component).
//   2. |m| norm drift, checked BEFORE the stepper's renormalization —
//      after renormalize |m| == 1 by construction, so drift is only
//      observable on the raw integrator output. Large drift means the
//      step size is too big for the local dynamics.
//   3. Energy divergence: for the conservative terms, total energy must
//      not grow by orders of magnitude during a drive; if it does the
//      integration has blown up even if no cell is NaN yet.
//
// A violation is reported as StatusCode::kNumericalDivergence; the
// recovery policy (step-halving re-solve with a bounded retry budget)
// lives in mag::Simulation::run_guarded.
#pragma once

#include <cstddef>

#include "math/field.h"
#include "robust/status.h"

namespace swsim::robust {

struct WatchdogConfig {
  // Steps between health scans; 0 disables the in-stepper checks.
  std::size_t cadence = 32;
  // Max tolerated pre-renormalization | |m| - 1 | per cell. RK4 on a sane
  // step drifts by ~1e-6/step; 0.25 only trips on real blowups.
  double norm_drift_tol = 0.25;
  // Total energy may grow this many times over the reference magnitude
  // before the run is declared divergent. The reference is the running
  // max |E| over the first energy_warmup_checks checks, so a run that
  // starts at ~zero energy (uniform state, drive not yet ramped) arms
  // against the first real drive energies, not against numerical noise.
  double energy_growth_factor = 1e3;
  // Checks (at `cadence` steps each) that only ratchet the reference
  // before the growth bound is enforced. Must be >= 1.
  std::size_t energy_warmup_checks = 4;
  // Step-halving re-solves run_guarded may attempt after a divergence.
  std::size_t max_step_halvings = 3;
};

// NaN/Inf + norm-drift scan over masked cells. `norm_drift_tol <= 0`
// skips the drift check (scan a renormalized field for NaN only).
Status scan_magnetization(const swsim::math::VectorField& m,
                          const swsim::math::Mask& mask,
                          double norm_drift_tol);

// Flags runaway growth of the total energy. reset() between solves. The
// first `warmup_checks` calls only ratchet the reference to the running
// max |E|; the growth bound is enforced afterwards — and only once the
// reference is physically meaningful (>= kNegligibleEnergy), so a drive
// that ramps up late keeps ratcheting instead of tripping on the jump
// from numerical noise to its first real energy. Non-finite energies are
// flagged on every call, warmup included.
class EnergyWatchdog {
 public:
  // Energies below this (in J) carry no physical signal for the devices
  // simulated here (drive energies are ~1e-18 J): a reference this small
  // keeps ratcheting rather than serving as a growth baseline.
  static constexpr double kNegligibleEnergy = 1e-24;

  void reset();
  Status check(double energy, double growth_factor,
               std::size_t warmup_checks = 1);

 private:
  std::size_t checks_ = 0;  // calls since reset()
  double reference_ = 0.0;  // running max |E| over the warmup window
};

}  // namespace swsim::robust
