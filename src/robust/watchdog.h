// Numerical health watchdogs for the LLG solve path.
//
// The paper's readouts sit close to decision boundaries (MAJ3 phase
// distance, XOR threshold at 0.5), so a solve that has gone numerically
// bad must be *detected*, not read out. Three checks, all cheap relative
// to a field evaluation and run at a configurable step cadence:
//
//   1. NaN/Inf scan over the magnetization (any poisoned component).
//   2. |m| norm drift, checked BEFORE the stepper's renormalization —
//      after renormalize |m| == 1 by construction, so drift is only
//      observable on the raw integrator output. Large drift means the
//      step size is too big for the local dynamics.
//   3. Energy divergence: for the conservative terms, total energy must
//      not grow by orders of magnitude during a drive; if it does the
//      integration has blown up even if no cell is NaN yet.
//
// A violation is reported as StatusCode::kNumericalDivergence; the
// recovery policy (step-halving re-solve with a bounded retry budget)
// lives in mag::Simulation::run_guarded.
#pragma once

#include <cstddef>

#include "math/field.h"
#include "robust/status.h"

namespace swsim::robust {

struct WatchdogConfig {
  // Steps between health scans; 0 disables the in-stepper checks.
  std::size_t cadence = 32;
  // Max tolerated pre-renormalization | |m| - 1 | per cell. RK4 on a sane
  // step drifts by ~1e-6/step; 0.25 only trips on real blowups.
  double norm_drift_tol = 0.25;
  // Total energy may grow this many times over the reference magnitude
  // seen at the first check before the run is declared divergent.
  double energy_growth_factor = 1e3;
  // Step-halving re-solves run_guarded may attempt after a divergence.
  std::size_t max_step_halvings = 3;
};

// NaN/Inf + norm-drift scan over masked cells. `norm_drift_tol <= 0`
// skips the drift check (scan a renormalized field for NaN only).
Status scan_magnetization(const swsim::math::VectorField& m,
                          const swsim::math::Mask& mask,
                          double norm_drift_tol);

// Flags runaway growth of the total energy. reset() between solves; the
// first check() arms the reference magnitude.
class EnergyWatchdog {
 public:
  void reset();
  Status check(double energy, double growth_factor);

 private:
  bool armed_ = false;
  double reference_ = 0.0;  // max |E| seen at arm time (floored)
};

}  // namespace swsim::robust
