// Structured failure report for partial-batch completion.
//
// When the engine finishes a batch in keep-going mode, healthy jobs
// produce their normal rows and every failed job lands here: which job,
// which StatusCode, the cause message, how many attempts were spent, and
// whether the configuration ended up quarantined. The report renders as a
// console table or CSV rows so `swsim batch` can hand operators the exact
// failure inventory instead of one opaque exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/table.h"
#include "robust/status.h"

namespace swsim::robust {

struct JobFailure {
  std::string job;       // label: batch line / row identifier
  Status status;         // cause + context
  std::size_t attempts = 1;  // times the job ran (1 = no retries)
  bool quarantined = false;  // configuration was poisoned by this failure
  // Wall-clock stamp (epoch microseconds) of the moment the failure was
  // recorded. The engine copies this from the scheduler's Job, which used
  // the same value for the structured event log line — the report row and
  // its JSONL event correlate exactly instead of re-deriving "now" twice.
  std::uint64_t t_us = 0;
  // Content key of the configuration the job belonged to (0 when the job
  // has no config identity, e.g. a yield chunk). Matches the `config_key`
  // field of the event log and the cache/spill file names.
  std::uint64_t job_key = 0;
  double wall_seconds = 0.0;  // wall time spent in the job, summed attempts
};

class FailureReport {
 public:
  void add(JobFailure failure);
  // Folds another report in (batch = many per-line reports).
  void merge(const FailureReport& other);

  bool empty() const { return failures_.empty(); }
  std::size_t size() const { return failures_.size(); }
  const std::vector<JobFailure>& failures() const { return failures_; }

  static std::vector<std::string> csv_header();
  std::vector<std::vector<std::string>> csv_rows() const;
  io::Table table() const;
  std::string str() const;  // "failure report (N jobs)\n<table>"

 private:
  std::vector<JobFailure> failures_;
};

}  // namespace swsim::robust
