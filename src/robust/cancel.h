// Cooperative cancellation handle.
//
// A CancelToken is a cheap copyable view onto a shared flag. The engine
// hands one to each job attempt; long-running solves (the LLG loop) poll
// it at their watchdog cadence and abort with StatusCode::kCancelled when
// it fires. Nothing is preempted: cancellation is a request, honoured at
// the next poll point, which is the only kind of cancellation that cannot
// corrupt a half-written result.
//
// On top of the per-token flag there is one process-wide cancel flag,
// tripped by the signal layer (robust/shutdown.h) when a shutdown is
// requested: cancelled() reports true for EVERY token once it fires, so
// a ^C reaches each in-flight solve at its next poll point without any
// plumbing from the signal handler to individual jobs.
#pragma once

#include <atomic>
#include <memory>

namespace swsim::robust {

namespace detail {
// Process-wide cancellation flag. Written from signal handlers (a relaxed
// store on a lock-free atomic is async-signal-safe), read by every token.
inline std::atomic<bool> g_process_cancel{false};
}  // namespace detail

inline bool process_cancel_requested() {
  return detail::g_process_cancel.load(std::memory_order_relaxed);
}
inline void request_process_cancel() {
  detail::g_process_cancel.store(true, std::memory_order_relaxed);
}
inline void reset_process_cancel() {
  detail::g_process_cancel.store(false, std::memory_order_relaxed);
}

class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  bool cancelled() const {
    return flag_->load(std::memory_order_relaxed) ||
           process_cancel_requested();
  }
  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace swsim::robust
