// Cooperative cancellation handle.
//
// A CancelToken is a cheap copyable view onto a shared flag. The engine
// hands one to each job attempt; long-running solves (the LLG loop) poll
// it at their watchdog cadence and abort with StatusCode::kCancelled when
// it fires. Nothing is preempted: cancellation is a request, honoured at
// the next poll point, which is the only kind of cancellation that cannot
// corrupt a half-written result.
#pragma once

#include <atomic>
#include <memory>

namespace swsim::robust {

class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace swsim::robust
