#include "robust/status.h"

namespace swsim::robust {

std::string to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidConfig:
      return "invalid-config";
    case StatusCode::kNumericalDivergence:
      return "numerical-divergence";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kCacheCorrupt:
      return "cache-corrupt";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kQuarantined:
      return "quarantined";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kDraining:
      return "draining";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

bool is_retryable(StatusCode code) {
  switch (code) {
    case StatusCode::kNumericalDivergence:
    case StatusCode::kCacheCorrupt:
    case StatusCode::kInternal:
    case StatusCode::kOverloaded:
    case StatusCode::kDraining:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

Status Status::error(StatusCode code, std::string message,
                     std::string context) {
  Status s;
  s.code_ = code;
  s.message_ = std::move(message);
  s.context_ = std::move(context);
  return s;
}

Status Status::with_context(const std::string& frame) const {
  Status s = *this;
  s.context_ = context_.empty() ? frame : frame + " <- " + context_;
  return s;
}

std::string Status::str() const {
  if (is_ok()) return "";
  std::string out = to_string(code_);
  if (!message_.empty()) out += ": " + message_;
  if (!context_.empty()) out += " [" + context_ + "]";
  return out;
}

SolveError::SolveError(Status status)
    : std::runtime_error(status.str()), status_(std::move(status)) {}

Status status_of_current_exception() {
  try {
    throw;
  } catch (const SolveError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::error(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status::error(StatusCode::kInternal, "unknown exception");
  }
}

}  // namespace swsim::robust
