#include "robust/fault_injection.h"

#include <chrono>
#include <fstream>
#include <thread>

namespace swsim::robust {

FaultPlan& FaultPlan::global() {
  static FaultPlan plan;
  return plan;
}

void FaultPlan::bump_armed(int delta) {
  armed_count_.fetch_add(delta, std::memory_order_relaxed);
}

bool FaultPlan::armed() const {
  return armed_count_.load(std::memory_order_relaxed) > 0;
}

void FaultPlan::inject_nan_at_step(std::size_t step, int times) {
  if (times <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  nan_faults_.push_back(NanFault{step, times});
  bump_armed(+1);
}

void FaultPlan::inject_throw_in_job(const std::string& label_substr,
                                    int times) {
  if (times <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  job_faults_.push_back(JobFault{JobFaultKind::kThrow, label_substr, 0.0,
                                 times});
  bump_armed(+1);
}

void FaultPlan::inject_divergence_in_job(const std::string& label_substr,
                                         int times) {
  if (times <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  job_faults_.push_back(JobFault{JobFaultKind::kDivergence, label_substr,
                                 0.0, times});
  bump_armed(+1);
}

void FaultPlan::inject_stall_in_job(const std::string& label_substr,
                                    double seconds, int times) {
  if (times <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  job_faults_.push_back(JobFault{JobFaultKind::kStall, label_substr, seconds,
                                 times});
  bump_armed(+1);
}

void FaultPlan::inject_divergence_at_trial(std::size_t trial, int times) {
  if (times <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  trial_faults_.push_back(TrialFault{trial, times});
  bump_armed(+1);
}

void FaultPlan::inject_transport(const std::string& action, int times) {
  if (times <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  transport_faults_.push_back(TransportFault{action, times});
  bump_armed(+1);
}

void FaultPlan::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  nan_faults_.clear();
  job_faults_.clear();
  trial_faults_.clear();
  transport_faults_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultPlan::consume_nan(std::size_t step) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& f : nan_faults_) {
    if (f.budget > 0 && f.step == step) {
      --f.budget;
      if (f.budget == 0) bump_armed(-1);
      return true;
    }
  }
  return false;
}

void FaultPlan::on_job_enter(const std::string& label) {
  if (!armed()) return;
  // Decide under the lock, act (sleep/throw) outside it: a stalled worker
  // must not hold the plan mutex against other hook sites.
  double stall_seconds = 0.0;
  bool do_throw = false;
  bool do_diverge = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& f : job_faults_) {
      if (f.budget <= 0) continue;
      if (label.find(f.label_substr) == std::string::npos) continue;
      --f.budget;
      if (f.budget == 0) bump_armed(-1);
      switch (f.kind) {
        case JobFaultKind::kThrow:
          do_throw = true;
          break;
        case JobFaultKind::kDivergence:
          do_diverge = true;
          break;
        case JobFaultKind::kStall:
          stall_seconds = std::max(stall_seconds, f.seconds);
          break;
      }
      break;  // one fault per entry keeps scenarios predictable
    }
  }
  if (stall_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(stall_seconds));
  }
  if (do_diverge) {
    // No context frame: the scheduler stamps the job label on its way out.
    throw SolveError(Status::error(StatusCode::kNumericalDivergence,
                                   "injected NaN blowup"));
  }
  if (do_throw) {
    // Label-free on purpose: the scheduler stamps the job label as context,
    // exactly as it would for a genuine foreign exception.
    throw std::runtime_error("injected fault");
  }
}

void FaultPlan::on_trial_enter(std::size_t trial) {
  if (!armed()) return;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& f : trial_faults_) {
      if (f.budget > 0 && f.trial == trial) {
        --f.budget;
        if (f.budget == 0) bump_armed(-1);
        fire = true;
        break;
      }
    }
  }
  if (fire) {
    throw SolveError(Status::error(StatusCode::kNumericalDivergence,
                                   "injected divergence at trial " +
                                       std::to_string(trial)));
  }
}

std::string FaultPlan::consume_transport() {
  if (!armed()) return "";
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& f : transport_faults_) {
    if (f.budget <= 0) continue;
    --f.budget;
    if (f.budget == 0) bump_armed(-1);
    return f.action;
  }
  return "";
}

void FaultPlan::flip_bytes(const std::string& path, std::uint64_t seed,
                           int flips) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) {
    throw std::runtime_error("FaultPlan::flip_bytes: cannot open " + path);
  }
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  if (size == 0) {
    throw std::runtime_error("FaultPlan::flip_bytes: empty file " + path);
  }
  // xorshift64: tiny, seeded, and independent of math/rng so corruption
  // patterns never shift when the simulation RNG evolves.
  std::uint64_t x = seed ? seed : 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < flips; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto pos = static_cast<std::streamoff>(x % size);
    f.seekg(pos);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ static_cast<char>(0x5a));
    f.seekp(pos);
    f.write(&byte, 1);
  }
  if (!f) {
    throw std::runtime_error("FaultPlan::flip_bytes: write failed on " +
                             path);
  }
}

}  // namespace swsim::robust
