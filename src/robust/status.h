// Error taxonomy for the fault-tolerant solve pipeline.
//
// Every failure a solve path can hit — a diverging LLG integration, a job
// that outlived its deadline, a corrupted cache file, a nonsensical
// configuration — is classified into a StatusCode and carried as a Status:
// code + cause message + context trail (which gate, which job, which step).
// Layers either return Status directly (mag::Simulation::run_guarded,
// engine::BatchRunner's *_checked entry points) or throw a SolveError,
// which wraps a Status so the classification survives the unwind through
// worker threads and is re-read by engine::Scheduler.
//
// The taxonomy is deliberately small: codes drive *policy* (retry or not,
// quarantine or not), messages carry the detail humans need.
#pragma once

#include <stdexcept>
#include <string>

namespace swsim::robust {

enum class StatusCode {
  kOk,
  kInvalidConfig,         // rejected before any work ran
  kNumericalDivergence,   // NaN/Inf, |m| drift, or energy blowup in a solve
  kTimeout,               // job exceeded its deadline
  kCancelled,             // never ran, or stopped cooperatively
  kCacheCorrupt,          // spilled cache entry failed its checksum
  kIoError,               // malformed or unreadable input/output file
  kQuarantined,           // skipped: this configuration is a known poison
  kInternal,              // unclassified exception (a bug or injected fault)
  kOverloaded,            // serve: admission queue full — retry later
  kDraining,              // serve: shutting down gracefully — retry elsewhere
  kDeadlineExceeded,      // serve: request deadline expired — retry with budget
};

std::string to_string(StatusCode code);

// Retry policy hook: transient failures are worth re-running, deterministic
// ones are not. Timeouts are NOT retryable at the engine level — the timed
// out attempt may still be running (cancellation is cooperative), and a
// concurrent retry would race it on shared result slots. kOverloaded and
// kDraining are retryable from the CLIENT side of the serve protocol (the
// server said "come back later"); no engine job ever produces them.
// kDeadlineExceeded is retryable for the same reason: the *request's* budget
// ran out, not the configuration — a fresh attempt with a fresh deadline is
// expected to succeed, so it must never count as a quarantine strike.
bool is_retryable(StatusCode code);

class Status {
 public:
  Status() = default;  // kOk

  static Status ok() { return Status{}; }
  static Status error(StatusCode code, std::string message,
                      std::string context = "");

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::string& context() const { return context_; }

  // Prepends a context frame ("micromag-triangle-MAJ3 inputs=101"), so the
  // trail reads outermost-first as the status propagates up the stack.
  Status with_context(const std::string& frame) const;

  // "numerical-divergence: NaN at cell 214 [row 3 <- gate maj]" — empty
  // string for kOk.
  std::string str() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string context_;
};

// Exception carrying a Status through layers that unwind (gate evaluate()
// on a worker thread, stepper watchdog aborts). Derives from runtime_error
// so existing catch sites keep working; what() == status().str().
class SolveError : public std::runtime_error {
 public:
  explicit SolveError(Status status);
  const Status& status() const { return status_; }

 private:
  Status status_;
};

// Classifies the in-flight exception (call inside a catch block). A
// SolveError yields its embedded Status; anything else maps to kInternal
// with the exception message as cause.
Status status_of_current_exception();

}  // namespace swsim::robust
