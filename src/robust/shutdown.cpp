#include "robust/shutdown.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>

#include "robust/cancel.h"

namespace swsim::robust {

namespace {

// All handler-visible state is file-scope lock-free atomics (plus the
// pipe fds, written once before the handlers are installed): everything
// the handler touches is async-signal-safe.
std::atomic<std::uint64_t> g_interrupts{0};
std::atomic<std::uint64_t> g_hups{0};
std::atomic<std::uint64_t> g_quits{0};
std::atomic<bool> g_cancel_on_first{true};
int g_pipe_read = -1;
int g_pipe_write = -1;

struct SavedAction {
  int signum = 0;
  bool saved = false;
  struct sigaction action {};
};
SavedAction g_saved[4];

void shutdown_handler(int signum) {
  if (signum == SIGHUP) {
    g_hups.fetch_add(1, std::memory_order_relaxed);
  } else if (signum == SIGQUIT) {
    g_quits.fetch_add(1, std::memory_order_relaxed);
  } else {
    const std::uint64_t n =
        g_interrupts.fetch_add(1, std::memory_order_relaxed) + 1;
    if (g_cancel_on_first.load(std::memory_order_relaxed) || n >= 2) {
      request_process_cancel();  // relaxed atomic store: signal-safe
    }
  }
  if (g_pipe_write != -1) {
    const char byte = static_cast<char>(signum);
    // Nonblocking; a full pipe just means a waiter is already pending.
    [[maybe_unused]] const ssize_t rc = ::write(g_pipe_write, &byte, 1);
  }
}

void ensure_pipe() {
  if (g_pipe_read != -1) return;
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return;  // poll_fd() stays -1; counters still work
  for (const int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  g_pipe_read = fds[0];
  g_pipe_write = fds[1];
}

}  // namespace

ShutdownSignal& ShutdownSignal::global() {
  static ShutdownSignal* instance = new ShutdownSignal();
  return *instance;
}

void ShutdownSignal::install(const ShutdownConfig& config) {
  ensure_pipe();
  g_cancel_on_first.store(config.cancel_on_first, std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = shutdown_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps ordinary blocking I/O unperturbed; waiters that need
  // prompt wakeup watch poll_fd() (the self-pipe wakes poll() regardless).
  action.sa_flags = SA_RESTART;

  const int signums[4] = {config.handle_int ? SIGINT : 0,
                          config.handle_term ? SIGTERM : 0,
                          config.handle_hup ? SIGHUP : 0,
                          config.handle_quit ? SIGQUIT : 0};
  for (int i = 0; i < 4; ++i) {
    if (signums[i] == 0) continue;
    struct sigaction previous;
    if (::sigaction(signums[i], &action, &previous) == 0 &&
        !g_saved[i].saved) {
      g_saved[i] = {signums[i], true, previous};
    }
  }
}

void ShutdownSignal::restore() {
  for (SavedAction& s : g_saved) {
    if (!s.saved) continue;
    ::sigaction(s.signum, &s.action, nullptr);
    s.saved = false;
  }
}

std::uint64_t ShutdownSignal::interrupts() const {
  return g_interrupts.load(std::memory_order_relaxed);
}

std::uint64_t ShutdownSignal::hups() const {
  return g_hups.load(std::memory_order_relaxed);
}

std::uint64_t ShutdownSignal::quits() const {
  return g_quits.load(std::memory_order_relaxed);
}

int ShutdownSignal::poll_fd() const { return g_pipe_read; }

void ShutdownSignal::drain_poll_fd() {
  if (g_pipe_read == -1) return;
  char buf[64];
  while (::read(g_pipe_read, buf, sizeof buf) > 0) {
  }
}

void ShutdownSignal::reset() {
  g_interrupts.store(0, std::memory_order_relaxed);
  g_hups.store(0, std::memory_order_relaxed);
  g_quits.store(0, std::memory_order_relaxed);
  reset_process_cancel();
  drain_poll_fd();
}

}  // namespace swsim::robust
