// Deterministic, seeded fault-injection harness.
//
// Tests (and the CLI's --inject flag) arm faults on the process-global
// FaultPlan; production code polls cheap hooks at well-defined sites and
// the plan decides — deterministically — whether a fault fires there:
//
//   * inject_nan_at_step(k):    the LLG stepper poisons one cell with NaN
//                               when its step counter reaches k.
//   * inject_throw_in_job(s):   Scheduler::execute throws just before a
//                               job whose label contains s runs.
//   * inject_divergence_in_job: same site, but throws a SolveError
//                               classified kNumericalDivergence (a NaN
//                               blowup as the engine would see one).
//   * inject_stall_in_job(s,t): the job sleeps t seconds before running —
//                               long enough to trip a per-job timeout,
//                               short enough that tests terminate.
//   * inject_divergence_at_trial(t): the yield sweep's trial loop throws a
//                               kNumericalDivergence SolveError when it
//                               reaches trial index t — *mid-chunk*, after
//                               earlier trials in the chunk already ran,
//                               which is the case job-entry faults cannot
//                               reach (they fire before the closure runs).
//   * flip_bytes(path, seed):   seeded corruption of a cache spill file.
//
// Every armed fault has a budget (fire `times` times, then disarm), which
// is what makes "fail once, succeed on retry" scenarios reproducible.
// The hooks cost one relaxed atomic load when nothing is armed, so the
// plan can stay compiled into release builds.
//
// Arming is test-scoped, not thread-scoped: use ScopedFaultPlan in tests
// so a failing assertion cannot leak an armed fault into the next test.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "robust/status.h"

namespace swsim::robust {

class FaultPlan {
 public:
  // The process-global plan every hook site polls.
  static FaultPlan& global();

  // --- arming (tests / CLI) -------------------------------------------
  void inject_nan_at_step(std::size_t step, int times = 1);
  void inject_throw_in_job(const std::string& label_substr, int times = 1);
  void inject_divergence_in_job(const std::string& label_substr,
                                int times = 1);
  void inject_stall_in_job(const std::string& label_substr, double seconds,
                           int times = 1);
  void inject_divergence_at_trial(std::size_t trial, int times = 1);
  // Arms a named transport fault for the serve-layer chaos harness
  // (serve/chaos.h): the next `times` consume_transport() calls return
  // `action` instead of letting the chaos RNG draw one. Action names are
  // the ChaosAction spellings ("torn", "disconnect", "slowloris", ...);
  // the plan does not interpret them.
  void inject_transport(const std::string& action, int times = 1);
  void clear();
  bool armed() const;

  // --- hooks (production code) ----------------------------------------
  // Stepper hook: true when a NaN should be injected into the state at
  // this step index (consumes one budget unit).
  bool consume_nan(std::size_t step);
  // Scheduler hook, called with the job label just before the closure
  // runs. May sleep (stall fault) and/or throw (throw/divergence fault).
  void on_job_enter(const std::string& label);
  // Yield-sweep hook, called with the global trial index at the top of
  // each trial. Throws a kNumericalDivergence SolveError when an armed
  // trial fault matches (consumes one budget unit).
  void on_trial_enter(std::size_t trial);
  // Chaos-transport hook: the next armed transport action, or "" when none
  // is armed (consumes one budget unit). FIFO across arming calls, so a
  // test can script an exact fault sequence.
  std::string consume_transport();

  // Seeded byte corruption: flips `flips` bytes of the file at positions
  // drawn from an xorshift stream of `seed`. Deterministic: same file
  // size + seed -> same corruption. Throws std::runtime_error if the
  // file cannot be opened or is empty.
  static void flip_bytes(const std::string& path, std::uint64_t seed,
                         int flips = 8);

 private:
  enum class JobFaultKind { kThrow, kDivergence, kStall };
  struct NanFault {
    std::size_t step = 0;
    int budget = 0;
  };
  struct JobFault {
    JobFaultKind kind = JobFaultKind::kThrow;
    std::string label_substr;
    double seconds = 0.0;
    int budget = 0;
  };
  struct TrialFault {
    std::size_t trial = 0;
    int budget = 0;
  };
  struct TransportFault {
    std::string action;
    int budget = 0;
  };

  void bump_armed(int delta);

  mutable std::mutex mutex_;
  std::vector<NanFault> nan_faults_;
  std::vector<JobFault> job_faults_;
  std::vector<TrialFault> trial_faults_;
  std::vector<TransportFault> transport_faults_;
  std::atomic<int> armed_count_{0};
};

// RAII guard: clears the global plan on construction and destruction, so
// each test starts and ends with a clean slate.
class ScopedFaultPlan {
 public:
  ScopedFaultPlan() { FaultPlan::global().clear(); }
  ~ScopedFaultPlan() { FaultPlan::global().clear(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  FaultPlan& operator*() const { return FaultPlan::global(); }
  FaultPlan* operator->() const { return &FaultPlan::global(); }
};

}  // namespace swsim::robust
