// Signal-driven shutdown plumbing, shared by every long-running command.
//
// One process-global ShutdownSignal installs async-signal-safe handlers
// for SIGINT/SIGTERM (and optionally SIGHUP) and exposes what happened
// through three channels:
//   * atomic counters (interrupts(), hups()) for code that polls;
//   * a self-pipe (poll_fd()) so a poll()/select() loop wakes immediately
//     when a signal lands — the `swsim serve` accept loop watches this;
//   * the process-wide cancellation flag (robust/cancel.h): every
//     CancelToken in the process reports cancelled() once it is tripped,
//     so in-flight LLG solves abort at their next cooperative poll point.
//
// Policy is chosen at install time:
//   * `swsim batch` installs with cancel_on_first = true — the first ^C
//     cancels all work so the run can flush its failure report, metrics
//     and trace sinks and exit with a distinct status (130);
//   * `swsim serve` installs with cancel_on_first = false — the first
//     SIGTERM/SIGINT starts a graceful drain (admitted requests complete,
//     new ones are rejected with a retryable status) and only a SECOND
//     signal force-cancels the in-flight work. SIGHUP requests a reload
//     (the server reopens its request log).
//
// The handler itself only performs async-signal-safe operations: relaxed
// atomic stores and a nonblocking write to the self-pipe.
#pragma once

#include <cstdint>

namespace swsim::robust {

struct ShutdownConfig {
  bool handle_int = true;
  bool handle_term = true;
  bool handle_hup = false;
  // SIGQUIT is a diagnostics request, not a shutdown: `swsim serve` dumps
  // its flight-recorder ring to the request log and keeps serving.
  bool handle_quit = false;
  // true: the first SIGINT/SIGTERM trips the process-wide cancel flag
  // (batch policy). false: only the second one does (serve drains first).
  bool cancel_on_first = true;
};

class ShutdownSignal {
 public:
  // Process-global instance (leaky singleton, like the obs sinks).
  static ShutdownSignal& global();

  // Installs the handlers for the configured signal set, saving the
  // previous dispositions. Calling install() again re-applies the policy.
  void install(const ShutdownConfig& config);
  // Restores the dispositions saved by the last install() (tests).
  void restore();

  // SIGINT + SIGTERM deliveries since install()/reset().
  std::uint64_t interrupts() const;
  std::uint64_t hups() const;
  std::uint64_t quits() const;
  bool requested() const { return interrupts() > 0; }

  // Read end of the self-pipe: becomes readable whenever a handled signal
  // is delivered. -1 before the first install(). Never closed once open.
  int poll_fd() const;
  // Consumes pending bytes so the next poll() blocks again.
  void drain_poll_fd();

  // Clears the counters and the process-wide cancel flag (tests, and a
  // command that handles one shutdown request and keeps going).
  void reset();

 private:
  ShutdownSignal() = default;
};

}  // namespace swsim::robust
