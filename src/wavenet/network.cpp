#include "wavenet/network.h"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::wavenet {

using swsim::math::kPi;

PropagationModel PropagationModel::from_dispersion(const Dispersion& disp,
                                                   double lambda,
                                                   SplitPolicy split) {
  PropagationModel m;
  m.k = Dispersion::k_of_lambda(lambda);
  m.attenuation_length = disp.attenuation_length(m.k);
  m.split = split;
  return m;
}

NodeId WaveNetwork::add_node(NodeKind kind, std::string name) {
  nodes_.push_back(Node{kind, std::move(name), Complex{}, {}});
  return nodes_.size() - 1;
}

void WaveNetwork::check_node(NodeId n) const {
  if (n >= nodes_.size()) {
    throw std::out_of_range("WaveNetwork: invalid node id");
  }
}

void WaveNetwork::connect(NodeId a, NodeId b, double length, double weight) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("WaveNetwork: self-loop edge");
  if (!(length >= 0.0)) {
    throw std::invalid_argument("WaveNetwork: negative edge length");
  }
  if (!(weight > 0.0)) {
    throw std::invalid_argument("WaveNetwork: edge weight must be > 0");
  }
  edges_.push_back(Edge{a, b, length, weight});
  nodes_[a].edges.push_back(edges_.size() - 1);
  nodes_[b].edges.push_back(edges_.size() - 1);
}

void WaveNetwork::excite(NodeId source, double amplitude, double phase) {
  check_node(source);
  if (nodes_[source].kind != NodeKind::kSource &&
      nodes_[source].kind != NodeKind::kTap) {
    throw std::invalid_argument(
        "WaveNetwork: excite() target is not a source or tap");
  }
  if (!(amplitude >= 0.0)) {
    throw std::invalid_argument("WaveNetwork: negative amplitude");
  }
  nodes_[source].excitation =
      amplitude * Complex{std::cos(phase), std::sin(phase)};
}

void WaveNetwork::excite_logic(NodeId source, bool logic_value,
                               double amplitude) {
  excite(source, amplitude, logic_value ? kPi : 0.0);
}

NodeKind WaveNetwork::kind(NodeId n) const {
  check_node(n);
  return nodes_[n].kind;
}

const std::string& WaveNetwork::name(NodeId n) const {
  check_node(n);
  return nodes_[n].name;
}

NodeId WaveNetwork::find(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  throw std::invalid_argument("WaveNetwork: no node named '" + name + "'");
}

WaveNetwork::SolveResult WaveNetwork::solve(
    const PropagationModel& model) const {
  if (!(model.k > 0.0)) {
    throw std::invalid_argument("WaveNetwork::solve: model.k must be > 0");
  }

  struct Ray {
    std::size_t edge;
    NodeId toward;  // node the ray is travelling to
    Complex amp;    // amplitude at launch into the edge
  };

  double max_source = 0.0;
  for (const auto& n : nodes_) {
    max_source = std::max(max_source, std::abs(n.excitation));
  }
  const double cutoff = model.amplitude_cutoff * max_source;

  SolveResult result;
  std::queue<Ray> rays;

  // Each source launches its excitation into every incident waveguide —
  // an antenna in a waveguide radiates in both directions.
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if ((n.kind != NodeKind::kSource && n.kind != NodeKind::kTap) ||
        std::abs(n.excitation) == 0.0) {
      continue;
    }
    for (std::size_t e : n.edges) {
      const Edge& edge = edges_[e];
      rays.push(Ray{e, edge.a == i ? edge.b : edge.a, n.excitation});
    }
  }

  while (!rays.empty()) {
    if (++result.events > model.max_events) {
      throw std::runtime_error(
          "WaveNetwork::solve: event budget exhausted - the network "
          "contains a (nearly) lossless resonant loop");
    }
    const Ray ray = rays.front();
    rays.pop();

    const Edge& edge = edges_[ray.edge];
    // Transit: weight, damping decay, phase accrual.
    Complex amp = ray.amp * edge.weight;
    if (model.attenuation_length > 0.0) {
      amp *= std::exp(-edge.length / model.attenuation_length);
    }
    const double ph = -model.k * edge.length;
    amp *= Complex{std::cos(ph), std::sin(ph)};

    if (std::abs(amp) < cutoff) {
      ++result.truncated;
      continue;
    }

    const Node& node = nodes_[ray.toward];
    switch (node.kind) {
      case NodeKind::kDetector:
        result.detector_phasor[ray.toward] += amp;
        break;
      case NodeKind::kSource:
        break;  // transducers absorb incoming waves
      case NodeKind::kRepeater: {
        // Regenerate: outgoing amplitude restored, phase preserved
        // (non-volatile clocked repeater of ref. [37]).
        const double mag = std::abs(amp);
        if (mag > 0.0) {
          const Complex regen = amp / mag * model.repeater_amplitude;
          for (std::size_t e : node.edges) {
            if (e == ray.edge) continue;
            const Edge& out = edges_[e];
            rays.push(Ray{e, out.a == ray.toward ? out.b : out.a, regen});
          }
        }
        break;
      }
      case NodeKind::kTap:  // transparent: through-traffic behaves as at a
                            // junction of the same degree
      case NodeKind::kJunction: {
        const std::size_t branches = node.edges.size() - 1;
        if (branches == 0) break;  // dead end: wave radiates away
        double split = 1.0;
        if (model.split == SplitPolicy::kUnitary) {
          split = 1.0 / std::sqrt(static_cast<double>(branches));
        }
        for (std::size_t e : node.edges) {
          if (e == ray.edge) continue;
          const Edge& out = edges_[e];
          rays.push(Ray{e, out.a == ray.toward ? out.b : out.a, amp * split});
        }
        break;
      }
    }
  }

  // Ensure every detector has an entry, even if nothing reached it.
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kDetector) {
      result.detector_phasor.try_emplace(i, Complex{});
    }
  }
  return result;
}

}  // namespace swsim::wavenet
