// Output detectors: the two readout schemes of the paper.
//
// PhaseDetector (Majority gate, Sec. III-A): compares the output phasor's
// phase against a reference; phase ~ 0 reads logic 0, phase ~ pi reads
// logic 1. The decision boundary is +-pi/2 around the reference.
//
// ThresholdDetector (XOR gate, Sec. III-B): compares the normalized output
// magnitude against a threshold (paper: 0.5); magnitude above threshold
// reads logic 0 and below reads logic 1 for the XOR, and the flipped
// condition gives the XNOR.
#pragma once

#include <complex>

namespace swsim::wavenet {

struct Detection {
  bool logic = false;
  double amplitude = 0.0;   // |phasor|
  double phase = 0.0;       // radians, wrapped to (-pi, pi]
  double margin = 0.0;      // distance to the decision boundary:
                            // radians for phase detection, normalized
                            // amplitude for threshold detection
};

class PhaseDetector {
 public:
  // reference_phase: the phase that reads as logic 0 (default 0).
  // invert: swap the logic interpretation (an inverting output, obtained in
  // hardware by making d4 = (n + 1/2) lambda).
  explicit PhaseDetector(double reference_phase = 0.0, bool invert = false);

  Detection detect(std::complex<double> phasor) const;

 private:
  double reference_;
  bool invert_;
};

class ThresholdDetector {
 public:
  // threshold is in normalized amplitude units: the caller divides by the
  // reference (all-constructive) amplitude before detecting, or passes the
  // reference via detect()'s second argument.
  // invert=false: amplitude > threshold -> logic 0 (XOR convention);
  // invert=true flips it (XNOR).
  explicit ThresholdDetector(double threshold = 0.5, bool invert = false);

  Detection detect(std::complex<double> phasor,
                   double reference_amplitude = 1.0) const;

  double threshold() const { return threshold_; }

 private:
  double threshold_;
  bool invert_;
};

}  // namespace swsim::wavenet
