#include "wavenet/dispersion.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::wavenet {

using namespace swsim::math;

Dispersion::Dispersion(const swsim::mag::Material& material, double thickness,
                       double applied_field)
    : material_(material), thickness_(thickness) {
  material_.validate();
  if (!(thickness > 0.0)) {
    throw std::invalid_argument("Dispersion: thickness must be > 0");
  }
  h_internal_ = material_.internal_field(applied_field);
  if (!(h_internal_ > 0.0)) {
    throw std::invalid_argument(
        "Dispersion: internal field must be positive for forward-volume "
        "waves (need H_ani + H_applied > Ms)");
  }
}

double Dispersion::frequency(double k) const {
  if (k < 0.0) k = -k;  // isotropic in-plane propagation (FVSW)
  const double kd = k * thickness_;
  // F(kd) with the small-argument limit handled explicitly to avoid 0/0.
  const double f_dip =
      kd < 1e-8 ? kd / 2.0 : 1.0 - (1.0 - std::exp(-kd)) / kd;
  const double lex2 = 2.0 * material_.aex / (kMu0 * material_.ms *
                                             material_.ms);
  const double h_ex = lex2 * material_.ms * k * k;
  const double a = h_internal_ + h_ex;
  const double b = a + material_.ms * f_dip;
  return (kGamma * kMu0 / kTwoPi) * std::sqrt(a * b);
}

double Dispersion::group_velocity(double k) const {
  const double dk = std::max(1.0, std::fabs(k) * 1e-6);
  const double f_plus = frequency(k + dk);
  const double f_minus = frequency(std::max(0.0, k - dk));
  const double span = k - dk < 0.0 ? k + dk : 2.0 * dk;
  return kTwoPi * (f_plus - f_minus) / span;
}

double Dispersion::wavenumber(double frequency_hz) const {
  const double f0 = frequency(0.0);
  if (frequency_hz <= f0) {
    throw std::domain_error(
        "Dispersion::wavenumber: frequency below FMR - no propagating "
        "forward-volume wave");
  }
  // Bracket: f(k) is monotonically increasing in k for FVSW.
  double k_lo = 0.0;
  double k_hi = 1e7;
  while (frequency(k_hi) < frequency_hz) {
    k_hi *= 2.0;
    if (k_hi > 1e12) {
      throw std::domain_error(
          "Dispersion::wavenumber: frequency beyond representable k range");
    }
  }
  for (int it = 0; it < 200; ++it) {
    const double k_mid = 0.5 * (k_lo + k_hi);
    if (frequency(k_mid) < frequency_hz) {
      k_lo = k_mid;
    } else {
      k_hi = k_mid;
    }
  }
  return 0.5 * (k_lo + k_hi);
}

double Dispersion::wavelength_for(double frequency_hz) const {
  return kTwoPi / wavenumber(frequency_hz);
}

double Dispersion::k_of_lambda(double lambda) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("k_of_lambda: lambda must be > 0");
  }
  return kTwoPi / lambda;
}

double Dispersion::lifetime(double k) const {
  const double f = frequency(k);
  return 1.0 / (kTwoPi * material_.alpha * f);
}

double Dispersion::attenuation_length(double k) const {
  return group_velocity(k) * lifetime(k);
}

double Dispersion::amplitude_decay(double k, double distance) const {
  if (distance < 0.0) {
    throw std::invalid_argument("amplitude_decay: negative distance");
  }
  return std::exp(-distance / attenuation_length(k));
}

}  // namespace swsim::wavenet
