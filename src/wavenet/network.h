// Complex-phasor spin-wave propagation over a waveguide network.
//
// The gate structures are graphs of waveguide runs: sources (excitation
// transducers), junctions (crossings / merges), repeaters, and detectors.
// A monochromatic wave is a complex amplitude; propagation over an edge of
// length L multiplies by  w * exp(-L / L_att) * exp(-i k L)  (edge weight,
// Gilbert-damping decay, phase accrual). At a junction of degree d an
// incoming wave re-emits on every edge except the one it arrived on,
// scaled by the split policy; detectors and sources absorb. The solver is a
// breadth-first ray expansion with an amplitude cutoff, so multi-bounce
// paths (e.g. trunk round trips) are included to any desired precision —
// physics the idealized single-path picture of the paper neglects.
//
// All of the paper's "dimensions must be n lambda" design rules show up here
// directly: path lengths that are integer multiples of lambda make
// exp(-i k L) = 1, so equal-phase inputs interfere constructively.
#pragma once

#include <complex>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "wavenet/dispersion.h"

namespace swsim::wavenet {

using Complex = std::complex<double>;

enum class NodeKind {
  kSource,    // excitation transducer at a waveguide end: injects, absorbs
  kTap,       // transparent in-line transducer: injects, passes traffic
              // through like a junction (models an antenna region in the
              // middle of a waveguide)
  kJunction,  // waveguide merge/split/cross
  kRepeater,  // amplitude-regenerating repeater (ref. [37])
  kDetector,  // output transducer: accumulates, absorbs
};

enum class SplitPolicy {
  kLossless,  // each outgoing branch gets the full amplitude (the paper's
              // idealization: "the two SWs reaching O1 and O2 are identical")
  kUnitary,   // 1/sqrt(branches): energy-conserving splitting
};

struct PropagationModel {
  double k = 0.0;                    // wavenumber [rad/m]
  double attenuation_length = 0.0;   // [m]; <= 0 means lossless propagation
  SplitPolicy split = SplitPolicy::kUnitary;
  double amplitude_cutoff = 1e-4;    // rays below cutoff * max source amp die
  std::size_t max_events = 1u << 20; // hard guard against lossless loops
  double repeater_amplitude = 1.0;   // amplitude restored by repeater nodes

  // Convenience: fill k and attenuation_length from a dispersion relation
  // at the given wavelength.
  static PropagationModel from_dispersion(const Dispersion& disp,
                                          double lambda,
                                          SplitPolicy split =
                                              SplitPolicy::kUnitary);
};

using NodeId = std::size_t;

class WaveNetwork {
 public:
  NodeId add_node(NodeKind kind, std::string name);
  NodeId add_source(std::string name) {
    return add_node(NodeKind::kSource, std::move(name));
  }
  NodeId add_tap(std::string name) {
    return add_node(NodeKind::kTap, std::move(name));
  }
  NodeId add_junction(std::string name) {
    return add_node(NodeKind::kJunction, std::move(name));
  }
  NodeId add_detector(std::string name) {
    return add_node(NodeKind::kDetector, std::move(name));
  }
  NodeId add_repeater(std::string name) {
    return add_node(NodeKind::kRepeater, std::move(name));
  }

  // Undirected waveguide run of physical length `length` [m]; weight is an
  // extra amplitude factor (e.g. a directional-coupler tap ratio).
  void connect(NodeId a, NodeId b, double length, double weight = 1.0);

  // Sets the excitation of a source (complex amplitude = A e^{i phase}).
  void excite(NodeId source, double amplitude, double phase);
  // Convenience: phase 0 for logic 0, pi for logic 1 (paper Sec. III-A).
  void excite_logic(NodeId source, bool logic_value, double amplitude = 1.0);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  NodeKind kind(NodeId n) const;
  const std::string& name(NodeId n) const;
  NodeId find(const std::string& name) const;  // throws if absent

  struct SolveResult {
    std::map<NodeId, Complex> detector_phasor;
    std::size_t events = 0;       // rays processed
    std::size_t truncated = 0;    // rays dropped by the amplitude cutoff
  };

  // Propagates all source excitations through the network.
  // Throws std::runtime_error if max_events is exhausted (which indicates a
  // lossless resonant loop — physically a cavity, not a logic gate).
  SolveResult solve(const PropagationModel& model) const;

 private:
  struct Node {
    NodeKind kind;
    std::string name;
    Complex excitation{};          // sources only
    std::vector<std::size_t> edges;
  };
  struct Edge {
    NodeId a, b;
    double length;
    double weight;
  };

  void check_node(NodeId n) const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace swsim::wavenet
