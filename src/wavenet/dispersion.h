// Forward-volume spin-wave (FVSW) dispersion for a perpendicularly
// magnetized thin film, after Kalinikos & Slavin (1986), lowest thickness
// mode, including exchange:
//
//   f(k) = (gamma mu0 / 2 pi) sqrt( (H_i + H_ex(k)) (H_i + H_ex(k) + Ms F(kd)) )
//
// with H_i = H_ani - Ms + H_applied the internal field, H_ex = l_ex^2 Ms k^2
// the exchange field, d the film thickness and
//   F(kd) = 1 - (1 - e^{-kd}) / (kd)
// the FVSW dipolar matrix element (F -> kd/2 for kd -> 0).
//
// This is the design equation of Sec. II-A / IV-A: it fixes the operating
// frequency for the chosen wavelength (lambda = 55 nm in the paper) and
// yields the group velocity and the Gilbert-damping attenuation length used
// by the wave-network backend.
#pragma once

#include "mag/material.h"

namespace swsim::wavenet {

class Dispersion {
 public:
  // thickness: film thickness [m]; applied: out-of-plane applied field
  // [A/m]. Throws std::invalid_argument if the internal field is not
  // positive (no stable out-of-plane state -> no forward-volume waves).
  Dispersion(const swsim::mag::Material& material, double thickness,
             double applied_field = 0.0);

  const swsim::mag::Material& material() const { return material_; }
  double thickness() const { return thickness_; }
  double internal_field() const { return h_internal_; }

  // Frequency [Hz] for wavenumber k [rad/m]; k = 0 gives the FMR frequency.
  double frequency(double k) const;

  // Group velocity d omega / d k [m/s] (central difference).
  double group_velocity(double k) const;

  // Inverts f(k) = f by bisection on [0, k_max]; throws std::domain_error
  // when f is below the FMR frequency (no propagating wave).
  double wavenumber(double frequency_hz) const;

  double wavelength_for(double frequency_hz) const;
  static double k_of_lambda(double lambda);

  // Spin-wave amplitude lifetime tau = 1 / (2 pi alpha f) [s] and the
  // amplitude attenuation length L_att = v_g * tau [m].
  double lifetime(double k) const;
  double attenuation_length(double k) const;

  // Amplitude decay factor exp(-L / L_att) over a propagation distance L
  // at wavenumber k.
  double amplitude_decay(double k, double distance) const;

 private:
  swsim::mag::Material material_;
  double thickness_;
  double h_internal_;
};

}  // namespace swsim::wavenet
