#include "wavenet/detector.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"
#include "math/lockin.h"

namespace swsim::wavenet {

using swsim::math::kPi;
using swsim::math::phase_distance;
using swsim::math::wrap_phase;

PhaseDetector::PhaseDetector(double reference_phase, bool invert)
    : reference_(reference_phase), invert_(invert) {}

Detection PhaseDetector::detect(std::complex<double> phasor) const {
  Detection d;
  d.amplitude = std::abs(phasor);
  d.phase = d.amplitude > 0.0 ? wrap_phase(std::arg(phasor)) : 0.0;
  const double dist0 = phase_distance(d.phase, reference_);
  const double dist1 = phase_distance(d.phase, reference_ + kPi);
  bool is_one = dist1 < dist0;
  if (invert_) is_one = !is_one;
  d.logic = is_one;
  // Margin: how far the phase sits from the pi/2 decision boundary.
  d.margin = std::fabs(dist0 - dist1) / 2.0;
  return d;
}

ThresholdDetector::ThresholdDetector(double threshold, bool invert)
    : threshold_(threshold), invert_(invert) {
  if (!(threshold > 0.0)) {
    throw std::invalid_argument("ThresholdDetector: threshold must be > 0");
  }
}

Detection ThresholdDetector::detect(std::complex<double> phasor,
                                    double reference_amplitude) const {
  if (!(reference_amplitude > 0.0)) {
    throw std::invalid_argument(
        "ThresholdDetector: reference amplitude must be > 0");
  }
  Detection d;
  d.amplitude = std::abs(phasor);
  d.phase = d.amplitude > 0.0 ? wrap_phase(std::arg(phasor)) : 0.0;
  const double normalized = d.amplitude / reference_amplitude;
  bool is_zero = normalized > threshold_;  // strong wave = logic 0 (XOR)
  if (invert_) is_zero = !is_zero;
  d.logic = !is_zero;
  d.margin = std::fabs(normalized - threshold_);
  return d;
}

}  // namespace swsim::wavenet
