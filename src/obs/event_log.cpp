#ifndef SWSIM_OBS_OFF

#include "obs/event_log.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/clock.h"
#include "obs/json.h"

namespace swsim::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  throw std::invalid_argument("--log-level: unknown level '" + s +
                              "' (want debug|info|warn|error)");
}

EventLog& EventLog::global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::open(const std::string& path, LogLevel min_level) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) {
    throw std::runtime_error("event log: cannot open '" + path +
                             "' for writing");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  owned_sink_ = std::move(file);
  sink_ = owned_sink_.get();
  min_level_.store(static_cast<int>(min_level), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void EventLog::open_stream(std::ostream* sink, LogLevel min_level) {
  std::lock_guard<std::mutex> lock(mutex_);
  owned_sink_.reset();
  sink_ = sink;
  min_level_.store(static_cast<int>(min_level), std::memory_order_relaxed);
  armed_.store(sink != nullptr, std::memory_order_relaxed);
}

void EventLog::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  owned_sink_.reset();
  sink_ = nullptr;
}

void EventLog::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!sink_) return;  // closed between enabled() and emit(); drop quietly
  *sink_ << line << '\n';
  sink_->flush();
}

EventLog::Event::Event(EventLog* log, LogLevel level, const char* name,
                       std::uint64_t t_us)
    : log_(log), level_(level) {
  if (t_us == 0) t_us = wall_now_us();
  line_ = "{\"t_us\":" + std::to_string(t_us) + ",\"ts\":\"" +
          format_iso8601_us(t_us) + "\",\"level\":\"" + to_string(level) +
          "\",\"event\":\"" + escape_json(name) + "\"";
}

EventLog::Event& EventLog::Event::str(const char* key,
                                      const std::string& value) {
  line_ += ",\"" + escape_json(key) + "\":\"" + escape_json(value) + "\"";
  return *this;
}

EventLog::Event& EventLog::Event::num(const char* key, double value) {
  char buf[40];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof buf, "%.9g", value);
  } else {
    // JSON has no Inf/NaN literals; stringify so the line stays parseable.
    std::snprintf(buf, sizeof buf, "\"%s\"",
                  std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf"));
  }
  line_ += ",\"" + escape_json(key) + "\":" + buf;
  return *this;
}

EventLog::Event& EventLog::Event::uint(const char* key, std::uint64_t value) {
  line_ += ",\"" + escape_json(key) + "\":" + std::to_string(value);
  return *this;
}

EventLog::Event& EventLog::Event::hex(const char* key, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  line_ += ",\"" + escape_json(key) + "\":\"" + buf + "\"";
  return *this;
}

EventLog::Event& EventLog::Event::boolean(const char* key, bool value) {
  line_ += ",\"" + escape_json(key) + "\":" + (value ? "true" : "false");
  return *this;
}

void EventLog::Event::emit() {
  if (emitted_) return;
  emitted_ = true;
  // Callers guard with enabled() before building fields; re-checking here
  // keeps a below-threshold line from leaking if one doesn't.
  if (!log_->enabled(level_)) return;
  line_ += "}";
  log_->write_line(line_);
}

EventLog::Event EventLog::event(LogLevel level, const char* name,
                                std::uint64_t t_us) {
  return Event(this, level, name, t_us);
}

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
