#ifndef SWSIM_OBS_OFF

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/clock.h"
#include "obs/json.h"

namespace swsim::obs {

namespace detail {
std::atomic<bool> g_metrics_armed{false};
}  // namespace detail

namespace {

std::string num_str(double v) {
  // Compact number rendering for dumps: integers without a trailing ".0",
  // everything else with enough digits to round-trip reasonably.
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = latency_seconds_bounds();
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

std::vector<double> Histogram::latency_seconds_bounds() {
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
          1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,
          1.0,  2.0,  5.0,  10.0, 30.0, 100.0};
}

void Histogram::observe(double v) {
  if (!metrics_armed()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t n = counts[i];
    if (n == 0) continue;
    if (static_cast<double>(cumulative + n) >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket: no upper bound to interpolate toward.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(n);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += n;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters_snapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gauges_snapshot() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::histograms_snapshot() const {
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      out.emplace_back(name, h->snapshot());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string MetricsRegistry::json() const {
  // Dumps iterate name-sorted snapshots (the storage is hash-ordered), so
  // the byte layout is a pure function of the metric state — diffable, and
  // stable across registration orders.
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_snapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << escape_json(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_snapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << escape_json(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, s] : histograms_snapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << escape_json(name)
       << "\": {\"count\": " << s.count << ", \"sum\": " << num_str(s.sum)
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (i) os << ", ";
      if (i < s.bounds.size()) {
        os << "[" << num_str(s.bounds[i]) << ", " << s.counts[i] << "]";
      } else {
        os << "[\"inf\", " << s.counts[i] << "]";
      }
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsRegistry::text() const {
  std::ostringstream os;
  os << "metrics\n";
  for (const auto& [name, value] : counters_snapshot()) {
    os << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges_snapshot()) {
    os << "  " << name << " = " << value << " (gauge)\n";
  }
  for (const auto& [name, s] : histograms_snapshot()) {
    os << "  " << name << ": count " << s.count << ", mean "
       << num_str(s.mean()) << ", p50 " << num_str(s.quantile(0.5))
       << ", p90 " << num_str(s.quantile(0.9)) << ", p99 "
       << num_str(s.quantile(0.99)) << "\n";
  }
  return os.str();
}

bool MetricsRegistry::write_json(const std::string& path,
                                 std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << json();
  if (!out) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

ScopedTimerUs::ScopedTimerUs(Counter& us_counter) {
  if (!metrics_armed()) return;
  c_ = &us_counter;
  t0_us_ = now_us();
}

ScopedTimerUs::~ScopedTimerUs() {
  if (!c_) return;
  c_->add(static_cast<std::uint64_t>(now_us() - t0_us_));
}

ScopedLatency::ScopedLatency(Histogram& h) {
  if (!metrics_armed()) return;
  h_ = &h;
  t0_us_ = now_us();
}

ScopedLatency::~ScopedLatency() {
  if (!h_) return;
  h_->observe((now_us() - t0_us_) * 1e-6);
}

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
