// Lock-cheap tracing: TraceSession + RAII Span, exported as Chrome
// trace_event JSON (load the file in chrome://tracing or Perfetto).
//
// Design:
//   * One process-global TraceSession (leaky singleton). start() arms it;
//     while disarmed a Span construction costs exactly one relaxed atomic
//     load — the same contract as the robust::FaultPlan hooks — so spans
//     can stay compiled into release hot paths.
//   * Each thread records into its own buffer (created on first use,
//     registered with the session, owned by the session for the process
//     lifetime). A buffer has a private mutex that only the owning thread
//     and the exporter ever touch, so recording is one uncontended lock —
//     no global lock on the hot path.
//   * Spans are Chrome "X" (complete) events: name, category, start
//     timestamp, duration, thread id. The viewer nests events on a thread
//     by time containment, so natural C++ scope nesting renders as a
//     flame graph with no explicit parent bookkeeping.
//   * Flow events ("s"/"t"/"f" with a shared id) draw arrows across
//     threads — and, after `swsim trace merge`, across processes: the
//     client stamps a trace_id into each request, both sides derive the
//     same flow id from it (flow_hash), and the viewer connects the
//     client span to the server's admission/dispatch/solver spans.
//   * set_thread_name() labels a thread ("worker-3") via a Chrome "M"
//     metadata event; the engine's pool workers call it at startup.
//   * Trace timestamps are obs::now_us() — monotonic microseconds since
//     process start, NOT comparable across processes. chrome_json()
//     therefore exports otherData.wall_anchor_us (epoch µs at ts 0) so
//     `swsim trace merge` can rebase multiple processes onto one clock.
//
// Compile-out: with SWSIM_OBS_OFF defined every entry point collapses to
// an inert inline stub (see the #else half below).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#ifndef SWSIM_OBS_OFF

#include <memory>
#include <mutex>
#include <vector>

namespace swsim::obs {

namespace detail {
extern std::atomic<bool> g_trace_armed;

// The flow id the current thread is working under (0 = none). Set by
// ScopedFlow; read by lower layers (the scheduler's job spans) to bind
// their events to the request that spawned them.
extern thread_local std::uint64_t g_current_flow;

struct TraceEvent {
  std::string name;
  const char* cat = "swsim";
  double ts_us = 0.0;
  double dur_us = 0.0;
  // Chrome phase: 'X' complete (the default), or a flow phase
  // 's' (start) / 't' (step) / 'f' (finish). Flow phases use flow_id
  // and ignore dur_us.
  char ph = 'X';
  std::uint64_t flow_id = 0;
  // Optional pre-rendered JSON object ("{...}") emitted as "args".
  std::string args;
};

// Per-thread event buffer; owned by the session, referenced by one thread.
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::string thread_name;
  std::vector<TraceEvent> events;
};

ThreadBuffer& this_thread_buffer();
}  // namespace detail

// True while a TraceSession is collecting (one relaxed load).
inline bool tracing() {
  return detail::g_trace_armed.load(std::memory_order_relaxed);
}

class TraceSession {
 public:
  // The process-global session every Span records into.
  static TraceSession& global();

  void start();  // arm; spans opened from now on are recorded
  void stop();   // disarm; already-buffered events are kept until clear()
  bool active() const { return tracing(); }

  // Total buffered events across all thread buffers.
  std::size_t event_count();

  // Chrome trace_event JSON (the {"traceEvents": [...]} wrapper form).
  // Includes otherData.wall_anchor_us: epoch microseconds corresponding
  // to trace timestamp 0, the rebasing key for `swsim trace merge`.
  std::string chrome_json();
  // Writes chrome_json() to `path`; false (with *error set) on I/O failure.
  bool write_chrome_json(const std::string& path, std::string* error = nullptr);

  // Drops all buffered events (thread buffers stay registered).
  void clear();

  // Internal: called by detail::this_thread_buffer() on first use.
  detail::ThreadBuffer& register_thread();

 private:
  TraceSession() = default;
  std::mutex mutex_;  // guards the buffer list, not the hot path
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> next_tid_{0};
};

// RAII span: records one complete event over its lifetime when tracing is
// armed at construction; otherwise a no-op (one relaxed load).
class Span {
 public:
  explicit Span(const char* name, const char* cat = "swsim") {
    if (tracing()) begin(name, cat, nullptr);
  }
  // Dynamic-name overload: the string is only copied when armed.
  Span(const std::string& name, const char* cat = "swsim") {
    if (tracing()) begin(name.c_str(), cat, nullptr);
  }
  // With args: `args_json` must be a JSON object ("{...}"); only copied
  // when armed.
  Span(const std::string& name, const char* cat, const std::string& args_json) {
    if (tracing()) begin(name.c_str(), cat, &args_json);
  }
  ~Span() {
    if (armed_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, const char* cat, const std::string* args_json);
  void end();

  bool armed_ = false;
  double t0_us_ = 0.0;
  const char* cat_ = nullptr;
  std::string name_;
  std::string args_;
};

// Records a complete event [ts_us, now) after the fact — for chunked
// instrumentation (e.g. a block of LLG steps) where an RAII scope per
// event is impractical. No-op when tracing is disarmed.
void record_complete(const std::string& name, const char* cat, double ts_us);

// Records a Chrome flow event at "now" on the calling thread. `phase` is
// 's' (start), 't' (step) or 'f' (finish); events sharing `id` are drawn
// as one arrow chain. The event binds to the enclosing slice, so call it
// inside the Span it should attach to. No-op when tracing is disarmed.
void record_flow(const std::string& name, const char* cat, std::uint64_t id,
                 char phase);

// Names the calling thread in the exported trace. Cheap, call once per
// thread; safe (and remembered) whether or not a session is active yet.
void set_thread_name(const std::string& name);

// The flow id the calling thread currently works under (0 = none).
inline std::uint64_t current_flow_id() { return detail::g_current_flow; }

// Sets the calling thread's flow id for a scope; lower layers (e.g. the
// scheduler) capture it to bind their spans to the originating request.
class ScopedFlow {
 public:
  explicit ScopedFlow(std::uint64_t id) : prev_(detail::g_current_flow) {
    detail::g_current_flow = id;
  }
  ~ScopedFlow() { detail::g_current_flow = prev_; }

  ScopedFlow(const ScopedFlow&) = delete;
  ScopedFlow& operator=(const ScopedFlow&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace swsim::obs

#else  // SWSIM_OBS_OFF: inert stubs, zero codegen at hook sites.

namespace swsim::obs {

inline bool tracing() { return false; }

class TraceSession {
 public:
  static TraceSession& global() {
    static TraceSession s;
    return s;
  }
  void start() {}
  void stop() {}
  bool active() const { return false; }
  std::size_t event_count() { return 0; }
  std::string chrome_json() { return "{\"traceEvents\": []}\n"; }
  bool write_chrome_json(const std::string&, std::string* error = nullptr) {
    if (error) *error = "observability compiled out (SWSIM_OBS_OFF)";
    return false;
  }
  void clear() {}
};

class Span {
 public:
  explicit Span(const char*, const char* = "swsim") {}
  Span(const std::string&, const char* = "swsim") {}
  Span(const std::string&, const char*, const std::string&) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

inline void record_complete(const std::string&, const char*, double) {}
inline void record_flow(const std::string&, const char*, std::uint64_t, char) {}
inline void set_thread_name(const std::string&) {}
inline std::uint64_t current_flow_id() { return 0; }

class ScopedFlow {
 public:
  explicit ScopedFlow(std::uint64_t) {}
  ScopedFlow(const ScopedFlow&) = delete;
  ScopedFlow& operator=(const ScopedFlow&) = delete;
};

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF

namespace swsim::obs {

// FNV-1a over `s`: the deterministic trace-id → flow-id mapping both the
// client and the server apply, so their flow events share an id without
// any negotiation. Never returns 0 (0 means "no flow").
inline std::uint64_t flow_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1u : h;
}

}  // namespace swsim::obs
