#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace swsim::obs {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue::make_string(string());
    if (consume_literal("true")) return JsonValue::make_bool(true);
    if (consume_literal("false")) return JsonValue::make_bool(false);
    if (consume_literal("null")) return JsonValue::make_null();
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Our own escaper only emits \u00XX for control characters;
          // encode anything beyond Latin-1 as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || !std::isfinite(d)) {
      pos_ = start;
      fail("malformed number '" + tok + "'");
    }
    return JsonValue::make_number(d);
  }

  JsonValue array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members[std::move(key)] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace swsim::obs
