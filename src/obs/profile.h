// Per-solve performance profile: the machine-readable record of *how fast*
// a run was, collected from the live MetricsRegistry plus the OS (peak RSS)
// and serialized to a versioned JSON schema ("swsim.profile/1").
//
// A RunProfile answers the questions the bench trajectory needs answered
// per data point: throughput (LLG steps/s, and cells·steps/s when the cell
// count is known), where field-assembly time went per term, whether the
// result cache helped, and how busy the thread pool actually was. The bench
// harness embeds one in every BENCH_<name>.json; the CLI writes one via
// `--profile-out <file>` on the engine commands.
//
// Everything here runs at end-of-run (never on a hot path), so it is built
// unconditionally — under SWSIM_OBS_OFF collect() simply reads the stub
// registry and reports zeros, while the JSON round-trip keeps working for
// the reader side.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace swsim::obs {

class JsonValue;

struct RunProfile {
  // Bumped whenever a field changes meaning; readers reject other schemas.
  static constexpr const char* kSchema = "swsim.profile/1";

  double wall_seconds = 0.0;    // caller-measured wall time of the solve
  std::uint64_t cells = 0;      // grid cells (0 = unknown to the caller)
  std::uint64_t llg_steps = 0;  // mag.llg.steps
  std::uint64_t field_evals = 0;

  // Throughput; non-finite values (0-second walls, overflow) serialize as 0.
  double steps_per_second = 0.0;
  double cell_steps_per_second = 0.0;  // cells * steps_per_second, 0 if unknown

  // Fraction of summed per-term field-assembly time, by term name (from the
  // mag.term.<name>.us counters); fractions sum to ~1 when any term ran.
  std::map<std::string, double> term_share;

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;

  std::uint64_t pool_threads = 0;
  std::uint64_t pool_busy_us = 0;
  // busy_us / (threads * wall_us): 1.0 = every worker busy the whole run.
  double pool_utilization = 0.0;

  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_retried = 0;

  // Physics telemetry (PhysicsRegistry snapshot): what the live lock-in
  // probes saw during the solve. Empty/zero when no probe was armed — and
  // always zero under SWSIM_OBS_OFF or with metrics disarmed. The block is
  // *optional* on the reader side so documents from older builds parse.
  struct ProbePhysics {
    std::string name;
    std::uint64_t windows = 0;
    double amplitude = 0.0;      // last completed window
    double phase = 0.0;
    double converged_at = -1.0;  // seconds; < 0 = never converged
  };
  std::vector<ProbePhysics> physics_probes;  // sorted by name
  std::uint64_t physics_energy_samples = 0;
  double physics_total_energy_j = 0.0;
  double physics_exchange_energy_j = 0.0;
  std::uint64_t early_stop_saved_steps = 0;

  std::uint64_t peak_rss_bytes = 0;

  // Builds a profile from the global MetricsRegistry (snapshot reads — no
  // metrics are created as a side effect) and the process peak RSS.
  // `wall_seconds` and `cells` come from the caller; derived rates are
  // guarded against division by zero and non-finite results.
  static RunProfile collect(double wall_seconds, std::uint64_t cells = 0);

  // Serializes to the versioned schema (pretty-printed, key-sorted; safe
  // against NaN/inf — they are written as 0, keeping the document valid
  // JSON). Parse the result with obs::parse_json + from_json.
  std::string to_json() const;

  // Inverse of to_json(). Throws std::runtime_error naming the problem on
  // a missing/mismatched "schema" or a structurally wrong document.
  static RunProfile from_json(const JsonValue& root);

  // Writes to_json() to `path`; false (with *error set) on I/O failure.
  bool write_json(const std::string& path, std::string* error = nullptr) const;
};

// Peak resident set size of this process in bytes (0 when unavailable).
std::uint64_t peak_rss_bytes();

}  // namespace swsim::obs
