#include "obs/clock.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace swsim::obs {

namespace {
std::chrono::steady_clock::time_point process_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}
// Touch the epoch during static init of this TU so the first span of a
// run does not pay for it (and timestamps start near zero).
const auto kEpochInit = process_epoch();
}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string format_iso8601_us(std::uint64_t t_us) {
  if (t_us == 0) return "";
  const std::time_t secs = static_cast<std::time_t>(t_us / 1000000ULL);
  const unsigned micros = static_cast<unsigned>(t_us % 1000000ULL);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%06uZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, micros);
  return buf;
}

}  // namespace swsim::obs
