#include "obs/physics.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace swsim::obs {

namespace {

// Local copy of math::phase_distance: obs must not depend on the math
// library (mag sits above both and links them together).
double phase_distance(double a, double b) {
  constexpr double kPi = 3.14159265358979323846;
  constexpr double kTwoPi = 2.0 * kPi;
  double w = std::fmod(a - b + kPi, kTwoPi);
  if (w <= 0.0) w += kTwoPi;
  return std::fabs(w - kPi);
}

}  // namespace

ConvergenceTracker::ConvergenceTracker(const ConvergencePolicy& policy)
    : policy_(policy) {
  if (policy_.windows < 1) {
    throw std::invalid_argument(
        "ConvergenceTracker: policy.windows must be >= 1");
  }
  if (!(policy_.rel_tolerance >= 0.0) || !(policy_.abs_floor >= 0.0) ||
      !(policy_.phase_tolerance >= 0.0)) {
    throw std::invalid_argument(
        "ConvergenceTracker: tolerances must be non-negative");
  }
}

bool ConvergenceTracker::add_window(double t, double amplitude, double phase) {
  ++windows_seen_;
  if (converged_) return false;
  if (have_last_) {
    const double tol = std::max(policy_.abs_floor,
                                policy_.rel_tolerance * std::fabs(amplitude));
    const bool stable =
        std::fabs(amplitude - last_amplitude_) <= tol &&
        phase_distance(phase, last_phase_) <= policy_.phase_tolerance;
    streak_ = stable ? streak_ + 1 : 0;
  }
  have_last_ = true;
  last_amplitude_ = amplitude;
  last_phase_ = phase;
  if (streak_ >= policy_.windows && t >= policy_.min_time) {
    converged_ = true;
    converged_at_ = t;
    return true;
  }
  return false;
}

void ConvergenceTracker::clear() {
  windows_seen_ = 0;
  streak_ = 0;
  have_last_ = false;
  last_amplitude_ = 0.0;
  last_phase_ = 0.0;
  converged_ = false;
  converged_at_ = 0.0;
}

ConvergenceTracker::Checkpoint ConvergenceTracker::checkpoint() const {
  return {windows_seen_, streak_,    have_last_, last_amplitude_,
          last_phase_,   converged_, converged_at_};
}

void ConvergenceTracker::restore(const Checkpoint& cp) {
  windows_seen_ = cp.windows_seen;
  streak_ = cp.streak;
  have_last_ = cp.have_last;
  last_amplitude_ = cp.last_amplitude;
  last_phase_ = cp.last_phase;
  converged_ = cp.converged;
  converged_at_ = cp.converged_at;
}

PhysicsRegistry& PhysicsRegistry::global() {
  // Leaky singleton, like MetricsRegistry: safe to touch during static
  // destruction of other objects.
  static PhysicsRegistry* registry = new PhysicsRegistry();
  return *registry;
}

void PhysicsRegistry::record_window(const std::string& probe, double amplitude,
                                    double phase) {
  if (!metrics_armed()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto& stats = state_.probes[probe];
  ++stats.windows;
  stats.amplitude = amplitude;
  stats.phase = phase;
}

void PhysicsRegistry::record_converged(const std::string& probe, double t) {
  if (!metrics_armed()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  state_.probes[probe].converged_at = t;
}

void PhysicsRegistry::record_energy(double total_j, double exchange_j) {
  if (!metrics_armed()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++state_.energy_samples;
  state_.total_energy_j = total_j;
  state_.exchange_energy_j = exchange_j;
}

void PhysicsRegistry::record_early_stop(std::uint64_t saved_steps) {
  if (!metrics_armed()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  state_.early_stop_saved_steps += saved_steps;
}

PhysicsRegistry::Snapshot PhysicsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void PhysicsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = Snapshot{};
}

ProbeHub::Subscription::Subscription(ProbeHub* hub, std::size_t capacity)
    : hub_(hub), capacity_(capacity == 0 ? 1 : capacity) {}

ProbeHub::Subscription::~Subscription() { hub_->unsubscribe(this); }

void ProbeHub::Subscription::push(const Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.size() >= capacity_) {
      queue_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    queue_.push_back(frame);
  }
  cv_.notify_one();
}

bool ProbeHub::Subscription::next(Frame* out, double wait_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) {
    if (wait_s <= 0.0) return false;
    cv_.wait_for(lock, std::chrono::duration<double>(wait_s),
                 [this] { return !queue_.empty(); });
    if (queue_.empty()) return false;
  }
  *out = queue_.front();
  queue_.pop_front();
  return true;
}

ProbeHub& ProbeHub::global() {
  static ProbeHub* hub = new ProbeHub();
  return *hub;
}

std::shared_ptr<ProbeHub::Subscription> ProbeHub::subscribe(
    std::size_t capacity) {
  std::shared_ptr<Subscription> sub(new Subscription(this, capacity));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subscribers_.push_back(sub.get());
  }
  subscriber_count_.fetch_add(1, std::memory_order_relaxed);
  return sub;
}

void ProbeHub::publish(const Frame& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Subscription* sub : subscribers_) sub->push(frame);
}

void ProbeHub::unsubscribe(Subscription* sub) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (*it == sub) {
      subscribers_.erase(it);
      subscriber_count_.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
  }
}

}  // namespace swsim::obs
