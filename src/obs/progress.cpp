#ifndef SWSIM_OBS_OFF

#include "obs/progress.h"

#include <unistd.h>

#include <cstdio>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace swsim::obs {

namespace {

// Render cadence: fast enough to feel live on a terminal. Without one (or
// when suppressed) nothing is written and renders only refresh the gauges,
// so they can run at a lazier pace.
constexpr std::uint64_t kTtyIntervalUs = 250'000;
constexpr std::uint64_t kMirrorIntervalUs = 2'000'000;

Gauge& jobs_done_gauge() {
  static Gauge& g = MetricsRegistry::global().gauge("progress.jobs_done");
  return g;
}
Gauge& jobs_total_gauge() {
  static Gauge& g = MetricsRegistry::global().gauge("progress.jobs_total");
  return g;
}
Gauge& steps_rate_gauge() {
  static Gauge& g =
      MetricsRegistry::global().gauge("progress.steps_per_second");
  return g;
}

}  // namespace

ProgressReporter& ProgressReporter::global() {
  static ProgressReporter* reporter = new ProgressReporter();
  return *reporter;
}

bool ProgressReporter::stderr_is_tty() { return ::isatty(2) == 1; }

void ProgressReporter::enable() {
  std::lock_guard<std::mutex> lock(render_mutex_);
  jobs_total_.store(0, std::memory_order_relaxed);
  jobs_done_.store(0, std::memory_order_relaxed);
  steps_.store(0, std::memory_order_relaxed);
  next_render_us_.store(0, std::memory_order_relaxed);
  t0_us_ = now_us();
  last_rate_t_us_ = t0_us_;
  last_rate_steps_ = 0;
  steps_per_second_ = 0.0;
  rendered_ = false;
  armed_.store(true, std::memory_order_relaxed);
}

void ProgressReporter::disable() {
  armed_.store(false, std::memory_order_relaxed);
}

void ProgressReporter::add_jobs(std::uint64_t n) {
  if (!enabled()) return;
  jobs_total_.fetch_add(n, std::memory_order_relaxed);
  maybe_render();
}

void ProgressReporter::job_done() {
  if (!enabled()) return;
  jobs_done_.fetch_add(1, std::memory_order_relaxed);
  maybe_render();
}

void ProgressReporter::maybe_render() {
  // CAS on the deadline so exactly one caller per interval pays for the
  // render; everyone else is two relaxed loads and out.
  const std::uint64_t now = static_cast<std::uint64_t>(now_us());
  std::uint64_t deadline = next_render_us_.load(std::memory_order_relaxed);
  if (now < deadline) return;
  const std::uint64_t interval =
      stderr_is_tty() ? kTtyIntervalUs : kMirrorIntervalUs;
  if (!next_render_us_.compare_exchange_strong(deadline, now + interval,
                                               std::memory_order_relaxed)) {
    return;
  }
  render();
}

void ProgressReporter::render() {
  std::lock_guard<std::mutex> lock(render_mutex_);
  const double now = now_us();
  const std::uint64_t steps = steps_.load(std::memory_order_relaxed);
  const std::uint64_t done = jobs_done_.load(std::memory_order_relaxed);
  const std::uint64_t total = jobs_total_.load(std::memory_order_relaxed);

  // Step rate over the window since the previous render; smoother than an
  // all-run average once the run warms up, and exact on the first render.
  const double window_s = (now - last_rate_t_us_) * 1e-6;
  if (window_s > 1e-3 && steps >= last_rate_steps_) {
    steps_per_second_ =
        static_cast<double>(steps - last_rate_steps_) / window_s;
  }
  last_rate_t_us_ = now;
  last_rate_steps_ = steps;

  jobs_done_gauge().set(static_cast<std::int64_t>(done));
  jobs_total_gauge().set(static_cast<std::int64_t>(total));
  steps_rate_gauge().set(static_cast<std::int64_t>(steps_per_second_));

  char line[160];
  int n = std::snprintf(line, sizeof line, "[progress]");
  if (total > 0) {
    n += std::snprintf(line + n, sizeof line - n, " jobs %llu/%llu",
                       static_cast<unsigned long long>(done),
                       static_cast<unsigned long long>(total));
  }
  if (steps > 0) {
    n += std::snprintf(line + n, sizeof line - n, " | %.3g llg steps/s",
                       steps_per_second_);
  }
  // ETA from job completion when a DAG is running, else unknown.
  if (total > 0 && done > 0 && done < total) {
    const double per_job_s = (now - t0_us_) * 1e-6 / static_cast<double>(done);
    const double eta_s = per_job_s * static_cast<double>(total - done);
    n += std::snprintf(line + n, sizeof line - n, " | eta %.0fs", eta_s);
  }
  if (n <= 10) {  // bare "[progress]" — nothing to say yet
    return;
  }

  // Line output only on an interactive terminal and only when nobody muted
  // us; everything else (pipes, logs, daemon workers) sees zero bytes.
  if (suppressed_.load(std::memory_order_relaxed) || !stderr_is_tty()) {
    return;
  }
  // Overwrite in place; pad to clear a previously longer line.
  std::fprintf(stderr, "\r%-78s", line);
  std::fflush(stderr);
  rendered_ = true;
}

void ProgressReporter::finish() {
  // Final render so the last state is visible even for sub-interval runs,
  // then terminate the TTY line.
  if (enabled()) {
    next_render_us_.store(0, std::memory_order_relaxed);
    render();
  }
  std::lock_guard<std::mutex> lock(render_mutex_);
  if (rendered_) {
    std::fputc('\n', stderr);
    std::fflush(stderr);
    rendered_ = false;
  }
  armed_.store(false, std::memory_order_relaxed);
}

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
