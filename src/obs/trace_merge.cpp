#include "obs/trace_merge.h"

#include <cstddef>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace swsim::obs {

namespace {

// Serializes a parsed JsonValue back to text (the merge rewrites events it
// did not produce, so it must round-trip arbitrary args objects).
void write_json_value(std::ostringstream& os, const JsonValue& v) {
  using Kind = JsonValue::Kind;
  switch (v.kind()) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (v.boolean() ? "true" : "false");
      break;
    case Kind::kNumber:
      os << v.number();
      break;
    case Kind::kString:
      os << '"' << escape_json(v.str()) << '"';
      break;
    case Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& e : v.array()) {
        if (!first) os << ", ";
        first = false;
        write_json_value(os, e);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, e] : v.object()) {
        if (!first) os << ", ";
        first = false;
        os << '"' << escape_json(k) << "\": ";
        write_json_value(os, e);
      }
      os << '}';
      break;
    }
  }
}

[[noreturn]] void fail(const std::string& label, const std::string& what) {
  throw std::runtime_error("'" + label + "': " + what);
}

}  // namespace

std::string merge_trace_dumps(
    const std::vector<std::pair<std::string, const JsonValue*>>& inputs,
    TraceMergeStats* stats) {
  if (inputs.empty()) {
    throw std::runtime_error("need at least one trace document");
  }

  // Validate every input and find the earliest anchor before emitting
  // anything, so a bad third file cannot leave a half-written result.
  std::vector<double> anchors;
  anchors.reserve(inputs.size());
  double min_anchor = 0.0;
  for (const auto& [label, doc] : inputs) {
    if (!doc || !doc->is_object()) fail(label, "not a JSON object");
    const auto* events = doc->find("traceEvents");
    if (!events || !events->is_array()) {
      fail(label, "missing \"traceEvents\" array");
    }
    double anchor = 0.0;
    if (const auto* other = doc->find("otherData")) {
      if (const auto* a = other->find("wall_anchor_us")) {
        if (a->is_number()) anchor = a->number();
      }
    }
    if (anchor == 0.0) {
      fail(label,
           "no otherData.wall_anchor_us "
           "(exported by an older build? re-record the trace)");
    }
    if (anchors.empty() || anchor < min_anchor) min_anchor = anchor;
    anchors.push_back(anchor);
  }

  // Offsets are taken relative to the earliest anchor, not the epoch, so
  // rebased timestamps stay small and double-exact.
  std::ostringstream os;
  os.precision(15);
  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  std::size_t total = 0;
  for (std::size_t fi = 0; fi < inputs.size(); ++fi) {
    const auto& [label, doc] = inputs[fi];
    const double offset_us = anchors[fi] - min_anchor;
    const long long pid = static_cast<long long>(fi) + 1;
    const std::string name = std::filesystem::path(label).filename().string();
    comma();
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": \"" << escape_json(name)
       << "\"}}";
    for (const auto& e : doc->find("traceEvents")->array()) {
      if (!e.is_object()) fail(label, "non-object trace event");
      comma();
      os << '{';
      bool first_key = true;
      for (const auto& [k, v] : e.object()) {
        if (!first_key) os << ", ";
        first_key = false;
        os << '"' << escape_json(k) << "\": ";
        if (k == "ts" && v.is_number()) {
          os << v.number() + offset_us;
        } else if (k == "pid") {
          os << pid;
        } else {
          write_json_value(os, v);
        }
      }
      os << '}';
      ++total;
    }
  }
  os << "\n], \"otherData\": {\"wall_anchor_us\": " << min_anchor
     << ", \"merged_from\": " << inputs.size() << "}}\n";

  if (stats) {
    stats->files = inputs.size();
    stats->events = total;
  }
  return os.str();
}

}  // namespace swsim::obs
