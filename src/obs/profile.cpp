#include "obs/profile.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/physics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace swsim::obs {

namespace {

// A rate that divided by zero or overflowed must not poison the JSON
// document (NaN/inf are not valid JSON tokens) — clamp to 0.
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

std::string num_str(double v) {
  v = finite_or_zero(v);
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

double number_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (!v || !v->is_number()) {
    throw std::runtime_error(std::string("RunProfile: missing numeric field \"") +
                             key + "\"");
  }
  return v->number();
}

std::uint64_t uint_field(const JsonValue& obj, const char* key) {
  const double d = number_field(obj, key);
  return d <= 0.0 ? 0 : static_cast<std::uint64_t>(d);
}

}  // namespace

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

RunProfile RunProfile::collect(double wall_seconds, std::uint64_t cells) {
  RunProfile p;
  p.wall_seconds = finite_or_zero(wall_seconds);
  p.cells = cells;

  // One snapshot pass: never calls counter()/gauge() by name, which would
  // register zero-valued metrics as a side effect of profiling.
  std::uint64_t term_total_us = 0;
  std::map<std::string, std::uint64_t> term_us;
  const auto& reg = MetricsRegistry::global();
  for (const auto& [name, value] : reg.counters_snapshot()) {
    if (name == "mag.llg.steps") p.llg_steps = value;
    else if (name == "mag.field_evals") p.field_evals = value;
    else if (name == "cache.hits") p.cache_hits = value;
    else if (name == "cache.misses") p.cache_misses = value;
    else if (name == "pool.busy_us") p.pool_busy_us = value;
    else if (name == "engine.jobs.done") p.jobs_done = value;
    else if (name == "engine.jobs.failed") p.jobs_failed = value;
    else if (name == "engine.jobs.retried") p.jobs_retried = value;
    else if (name.rfind("mag.term.", 0) == 0 && name.size() > 12 &&
             name.compare(name.size() - 3, 3, ".us") == 0) {
      const std::string term = name.substr(9, name.size() - 12);
      term_us[term] = value;
      term_total_us += value;
    }
  }
  for (const auto& [name, value] : reg.gauges_snapshot()) {
    if (name == "pool.threads" && value > 0) {
      p.pool_threads = static_cast<std::uint64_t>(value);
    }
  }

  if (term_total_us > 0) {
    for (const auto& [term, us] : term_us) {
      p.term_share[term] = finite_or_zero(static_cast<double>(us) /
                                          static_cast<double>(term_total_us));
    }
  }

  if (p.wall_seconds > 0.0) {
    p.steps_per_second = finite_or_zero(
        static_cast<double>(p.llg_steps) / p.wall_seconds);
    if (p.cells > 0) {
      p.cell_steps_per_second = finite_or_zero(
          static_cast<double>(p.cells) * p.steps_per_second);
    }
    if (p.pool_threads > 0) {
      p.pool_utilization = finite_or_zero(
          static_cast<double>(p.pool_busy_us) /
          (static_cast<double>(p.pool_threads) * p.wall_seconds * 1e6));
    }
  }
  const std::uint64_t lookups = p.cache_hits + p.cache_misses;
  if (lookups > 0) {
    p.cache_hit_rate = finite_or_zero(static_cast<double>(p.cache_hits) /
                                      static_cast<double>(lookups));
  }
  const PhysicsRegistry::Snapshot phys = PhysicsRegistry::global().snapshot();
  for (const auto& [name, stats] : phys.probes) {
    p.physics_probes.push_back({name, stats.windows, stats.amplitude,
                                stats.phase, stats.converged_at});
  }
  p.physics_energy_samples = phys.energy_samples;
  p.physics_total_energy_j = phys.total_energy_j;
  p.physics_exchange_energy_j = phys.exchange_energy_j;
  p.early_stop_saved_steps = phys.early_stop_saved_steps;

  p.peak_rss_bytes = ::swsim::obs::peak_rss_bytes();
  return p;
}

std::string RunProfile::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"" << kSchema << "\",\n"
     << "  \"wall_seconds\": " << num_str(wall_seconds) << ",\n"
     << "  \"cells\": " << cells << ",\n"
     << "  \"llg_steps\": " << llg_steps << ",\n"
     << "  \"field_evals\": " << field_evals << ",\n"
     << "  \"steps_per_second\": " << num_str(steps_per_second) << ",\n"
     << "  \"cell_steps_per_second\": " << num_str(cell_steps_per_second)
     << ",\n"
     << "  \"term_share\": {";
  bool first = true;
  for (const auto& [term, share] : term_share) {
    os << (first ? "\n" : ",\n") << "    \"" << escape_json(term)
       << "\": " << num_str(share);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n"
     << "  \"cache\": {\"hits\": " << cache_hits
     << ", \"misses\": " << cache_misses
     << ", \"hit_rate\": " << num_str(cache_hit_rate) << "},\n"
     << "  \"pool\": {\"threads\": " << pool_threads
     << ", \"busy_us\": " << pool_busy_us
     << ", \"utilization\": " << num_str(pool_utilization) << "},\n"
     << "  \"jobs\": {\"done\": " << jobs_done << ", \"failed\": " << jobs_failed
     << ", \"retried\": " << jobs_retried << "},\n"
     << "  \"physics\": {\"energy_samples\": " << physics_energy_samples
     << ", \"total_energy_j\": " << num_str(physics_total_energy_j)
     << ", \"exchange_energy_j\": " << num_str(physics_exchange_energy_j)
     << ", \"early_stop_saved_steps\": " << early_stop_saved_steps
     << ", \"probes\": [";
  first = true;
  for (const auto& probe : physics_probes) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \""
       << escape_json(probe.name) << "\", \"windows\": " << probe.windows
       << ", \"amplitude\": " << num_str(probe.amplitude)
       << ", \"phase\": " << num_str(probe.phase)
       << ", \"converged_at\": " << num_str(probe.converged_at) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]},\n"
     << "  \"peak_rss_bytes\": " << peak_rss_bytes << "\n"
     << "}\n";
  return os.str();
}

RunProfile RunProfile::from_json(const JsonValue& root) {
  if (!root.is_object()) {
    throw std::runtime_error("RunProfile: document is not a JSON object");
  }
  const JsonValue* schema = root.find("schema");
  if (!schema || !schema->is_string()) {
    throw std::runtime_error("RunProfile: missing \"schema\"");
  }
  if (schema->str() != kSchema) {
    throw std::runtime_error("RunProfile: unsupported schema \"" +
                             schema->str() + "\" (want " + kSchema + ")");
  }
  RunProfile p;
  p.wall_seconds = number_field(root, "wall_seconds");
  p.cells = uint_field(root, "cells");
  p.llg_steps = uint_field(root, "llg_steps");
  p.field_evals = uint_field(root, "field_evals");
  p.steps_per_second = number_field(root, "steps_per_second");
  p.cell_steps_per_second = number_field(root, "cell_steps_per_second");
  const JsonValue* terms = root.find("term_share");
  if (!terms || !terms->is_object()) {
    throw std::runtime_error("RunProfile: missing \"term_share\" object");
  }
  for (const auto& [term, share] : terms->object()) {
    if (!share.is_number()) {
      throw std::runtime_error("RunProfile: term_share[\"" + term +
                               "\"] is not a number");
    }
    p.term_share[term] = share.number();
  }
  const JsonValue* cache = root.find("cache");
  if (!cache || !cache->is_object()) {
    throw std::runtime_error("RunProfile: missing \"cache\" object");
  }
  p.cache_hits = uint_field(*cache, "hits");
  p.cache_misses = uint_field(*cache, "misses");
  p.cache_hit_rate = number_field(*cache, "hit_rate");
  const JsonValue* pool = root.find("pool");
  if (!pool || !pool->is_object()) {
    throw std::runtime_error("RunProfile: missing \"pool\" object");
  }
  p.pool_threads = uint_field(*pool, "threads");
  p.pool_busy_us = uint_field(*pool, "busy_us");
  p.pool_utilization = number_field(*pool, "utilization");
  const JsonValue* jobs = root.find("jobs");
  if (!jobs || !jobs->is_object()) {
    throw std::runtime_error("RunProfile: missing \"jobs\" object");
  }
  p.jobs_done = uint_field(*jobs, "done");
  p.jobs_failed = uint_field(*jobs, "failed");
  p.jobs_retried = uint_field(*jobs, "retried");
  // Optional: documents written before the physics block existed parse as
  // all-zero physics.
  if (const JsonValue* phys = root.find("physics")) {
    if (!phys->is_object()) {
      throw std::runtime_error("RunProfile: \"physics\" is not an object");
    }
    p.physics_energy_samples = uint_field(*phys, "energy_samples");
    p.physics_total_energy_j = number_field(*phys, "total_energy_j");
    p.physics_exchange_energy_j = number_field(*phys, "exchange_energy_j");
    p.early_stop_saved_steps = uint_field(*phys, "early_stop_saved_steps");
    const JsonValue* probes = phys->find("probes");
    if (!probes || !probes->is_array()) {
      throw std::runtime_error("RunProfile: missing \"physics.probes\" array");
    }
    for (const JsonValue& entry : probes->array()) {
      if (!entry.is_object()) {
        throw std::runtime_error(
            "RunProfile: physics.probes entry is not an object");
      }
      const JsonValue* name = entry.find("name");
      if (!name || !name->is_string()) {
        throw std::runtime_error(
            "RunProfile: physics.probes entry missing \"name\"");
      }
      p.physics_probes.push_back({name->str(), uint_field(entry, "windows"),
                                  number_field(entry, "amplitude"),
                                  number_field(entry, "phase"),
                                  number_field(entry, "converged_at")});
    }
  }
  p.peak_rss_bytes = uint_field(root, "peak_rss_bytes");
  return p;
}

bool RunProfile::write_json(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << to_json();
  if (!out) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace swsim::obs
