// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Hot-path contract (the same as the trace spans and FaultPlan hooks):
//   * disarmed, every record call is one relaxed atomic load and returns;
//   * armed, a counter add / gauge set is a single relaxed atomic RMW and
//     a histogram observe is two (bucket + count) plus a CAS-loop sum —
//     no locks on any record path.
// The registry map itself is mutex-protected, but instrumented code looks
// a metric up once (constructor or function-local static) and then holds
// a stable pointer: Counter/Gauge/Histogram objects are never moved or
// destroyed once created (leaky-singleton registry).
//
// Dumps: text() for humans (`swsim stats` renders the JSON form as a
// table), json() for machines (--metrics-out). Histograms export count,
// sum, and per-bucket cumulative-free counts, so consumers can compute
// rates and quantile estimates offline.
//
// Compile-out: SWSIM_OBS_OFF collapses everything to inert stubs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef SWSIM_OBS_OFF

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace swsim::obs {

namespace detail {
extern std::atomic<bool> g_metrics_armed;

// fetch_add for atomic<double> via CAS (portable across libstdc++ levels).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// True while metrics collection is armed (one relaxed load).
inline bool metrics_armed() {
  return detail::g_metrics_armed.load(std::memory_order_relaxed);
}

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_armed()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) {
    if (!metrics_armed()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; an implicit +inf overflow
  // bucket is appended. A value lands in the first bucket with
  // v <= bound ("le" semantics, boundary values inclusive).
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // finite upper bounds
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;

    double mean() const { return count == 0 ? 0.0 : sum / count; }
    // Quantile estimate (q in [0,1]) by linear interpolation inside the
    // containing bucket; the overflow bucket reports its lower bound.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

  // Default latency buckets: 1 us .. ~100 s, roughly 1-2-5 per decade.
  static std::vector<double> latency_seconds_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  // The process-global registry (leaky singleton; references it hands out
  // stay valid forever).
  static MetricsRegistry& global();

  static void arm() {
    detail::g_metrics_armed.store(true, std::memory_order_relaxed);
  }
  static void disarm() {
    detail::g_metrics_armed.store(false, std::memory_order_relaxed);
  }

  // Get-or-create by name. A histogram created earlier keeps its original
  // bucket bounds; `bounds` only applies on first creation (empty picks
  // latency_seconds_bounds()).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  // Zeroes every metric (registrations and bucket layouts are kept).
  void reset();

  // Point-in-time copies of every registered metric, sorted
  // lexicographically by name — the iteration surface for dumps and for
  // consumers like obs::RunProfile that aggregate families of counters
  // ("mag.term.*.us") without creating entries as a side effect.
  std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() const;
  std::vector<std::pair<std::string, std::int64_t>> gauges_snapshot() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms_snapshot()
      const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {"count":
  // N, "sum": S, "buckets": [[le, n], ...]}}} — `le` of the overflow
  // bucket is the string "inf". Keys are sorted lexicographically, so two
  // dumps of the same state are byte-identical regardless of registration
  // order — `swsim bench diff` and plain `diff` rely on this.
  std::string json() const;
  // Human-readable dump (name-sorted; histograms as count/mean/p50/p90/p99).
  std::string text() const;
  bool write_json(const std::string& path, std::string* error = nullptr) const;

 private:
  MetricsRegistry() = default;
  mutable std::mutex mutex_;
  // Storage is hash-keyed (lookup is the hot-ish path: once per metric per
  // instrumented object); dumps sort at snapshot time.
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII timing helpers. Disarmed cost: one relaxed load in the constructor
// (the destructor then does nothing — not even a clock read).
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Counter& us_counter);
  ~ScopedTimerUs();
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Counter* c_ = nullptr;
  double t0_us_ = 0.0;
};

class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_ = nullptr;
  double t0_us_ = 0.0;
};

}  // namespace swsim::obs

#else  // SWSIM_OBS_OFF

namespace swsim::obs {

inline bool metrics_armed() { return false; }

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) {}
  void observe(double) {}
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean() const { return 0.0; }
    double quantile(double) const { return 0.0; }
  };
  Snapshot snapshot() const { return {}; }
  void reset() {}
  static std::vector<double> latency_seconds_bounds() { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }
  static void arm() {}
  static void disarm() {}
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<double> = {}) {
    return histogram_;
  }
  void reset() {}
  std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot()
      const {
    return {};
  }
  std::vector<std::pair<std::string, std::int64_t>> gauges_snapshot() const {
    return {};
  }
  std::vector<std::pair<std::string, Histogram::Snapshot>>
  histograms_snapshot() const {
    return {};
  }
  std::string json() const {
    return "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n";
  }
  std::string text() const { return "observability compiled out\n"; }
  bool write_json(const std::string&, std::string* error = nullptr) const {
    if (error) *error = "observability compiled out (SWSIM_OBS_OFF)";
    return false;
  }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Counter&) {}
};

class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram&) {}
};

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
