// Minimal JSON support for the observability layer.
//
// Two halves:
//   * escape_json() — string escaping shared by every JSON producer here
//     (trace export, metrics dump, JSONL event log), so quarantined config
//     names with quotes, backslashes, or control characters always yield
//     valid JSON.
//   * JsonValue / parse_json() — a small recursive-descent parser used by
//     the `swsim stats` pretty-printer, the `swsim trace-check` validator,
//     and the tests that round-trip our own dumps. It is a consumer for
//     the formats this repo writes, not a general-purpose library: numbers
//     are doubles, no \uXXXX surrogate-pair pedantry beyond what our own
//     escaper emits, inputs are trusted files produced by swsim itself.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace swsim::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included): ", \, control chars < 0x20 (as \n, \t, ... or \u00XX).
std::string escape_json(const std::string& s);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(std::map<std::string, JsonValue> o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one JSON document. Throws std::runtime_error with a byte offset
// ("json parse error at byte N: ...") on malformed input — the positioned
// style the CSV/OVF readers use.
JsonValue parse_json(const std::string& text);

}  // namespace swsim::obs
