// Structured event log: one JSON object per line (JSONL).
//
// The robust layer publishes its notable occurrences here — watchdog
// trips, step-halving retries, job retries/timeouts/failures, config
// quarantines, cache evictions — instead of ad-hoc stderr prints. Every
// line carries a wall-clock timestamp (epoch microseconds + ISO-8601), a
// level, an event name, and event-specific fields; all strings are
// JSON-escaped, so hostile config keys or exception messages can never
// break the log's parseability.
//
//   {"t_us":1754450000123456,"ts":"2026-08-06T03:13:20.123456Z",
//    "level":"warn","event":"quarantine","gate":"micromag-triangle-MAJ3",
//    "config_key":"0x9e3779b97f4a7c15","strikes":2}
//
// Usage (the armed check keeps disarmed cost at one relaxed load; build
// fields only inside it):
//   auto& log = obs::EventLog::global();
//   if (log.enabled(obs::LogLevel::kWarn)) {
//     log.event(obs::LogLevel::kWarn, "quarantine")
//         .str("gate", name).hex("config_key", key).uint("strikes", n)
//         .emit();
//   }
//
// Writing is serialized by one mutex (a leaf lock — never taken around
// other obs or engine locks' acquisition sites) and flushed per line so a
// crashed run keeps everything emitted before the crash.
#pragma once

#include <cstdint>
#include <string>

#ifndef SWSIM_OBS_OFF

#include <atomic>
#include <memory>
#include <mutex>
#include <ostream>

namespace swsim::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* to_string(LogLevel level);
// "debug" | "info" | "warn" | "error"; throws std::invalid_argument
// otherwise (a CLI usage error).
LogLevel parse_log_level(const std::string& s);

class EventLog {
 public:
  static EventLog& global();

  // Opens (truncating) a JSONL file and arms the log at `min_level`.
  // Throws std::runtime_error when the file cannot be created.
  void open(const std::string& path, LogLevel min_level = LogLevel::kInfo);
  // Arms the log against a caller-owned stream (tests). The stream must
  // outlive the log or be detached with close().
  void open_stream(std::ostream* sink, LogLevel min_level = LogLevel::kInfo);
  void close();

  bool enabled(LogLevel level) const {
    return armed_.load(std::memory_order_relaxed) &&
           static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  // Builder for one log line. Stamped with wall_now_us() at creation
  // unless `t_us` is given (nonzero) — the hook for callers that must
  // share one timestamp between the log and another record (FailureReport).
  class Event {
   public:
    Event& str(const char* key, const std::string& value);
    Event& num(const char* key, double value);
    Event& uint(const char* key, std::uint64_t value);
    Event& hex(const char* key, std::uint64_t value);  // "0x..." string
    Event& boolean(const char* key, bool value);
    // Writes the line (no-op when the log is disarmed or the event's
    // level is below the armed min_level — filtering is enforced here,
    // not just at the enabled() guard).
    void emit();

   private:
    friend class EventLog;
    Event(EventLog* log, LogLevel level, const char* name,
          std::uint64_t t_us);
    EventLog* log_;
    LogLevel level_;
    std::string line_;
    bool emitted_ = false;
  };

  Event event(LogLevel level, const char* name, std::uint64_t t_us = 0);

 private:
  EventLog() = default;
  void write_line(const std::string& line);

  std::atomic<bool> armed_{false};
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_sink_;
  std::ostream* sink_ = nullptr;
};

}  // namespace swsim::obs

#else  // SWSIM_OBS_OFF

#include <stdexcept>

namespace swsim::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

inline const char* to_string(LogLevel) { return "off"; }
inline LogLevel parse_log_level(const std::string&) {
  throw std::invalid_argument("observability compiled out (SWSIM_OBS_OFF)");
}

class EventLog {
 public:
  static EventLog& global() {
    static EventLog log;
    return log;
  }
  void open(const std::string&, LogLevel = LogLevel::kInfo) {
    throw std::runtime_error("observability compiled out (SWSIM_OBS_OFF)");
  }
  void open_stream(void*, LogLevel = LogLevel::kInfo) {}
  void close() {}
  bool enabled(LogLevel) const { return false; }

  class Event {
   public:
    Event& str(const char*, const std::string&) { return *this; }
    Event& num(const char*, double) { return *this; }
    Event& uint(const char*, std::uint64_t) { return *this; }
    Event& hex(const char*, std::uint64_t) { return *this; }
    Event& boolean(const char*, bool) { return *this; }
    void emit() {}
  };
  Event event(LogLevel, const char*, std::uint64_t = 0) { return {}; }
};

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
