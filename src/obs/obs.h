// Umbrella header for the observability layer: tracing spans, metrics,
// and the structured event log. See docs/OBSERVABILITY.md for the span
// naming scheme, the metric catalog, and the disarmed-cost contract.
//
// Build with -DSWSIM_OBS_OFF (CMake: -DSWSIM_OBS_OFF=ON) to compile every
// hook down to an inert stub.
#pragma once

#include "obs/clock.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/physics.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/trace.h"
