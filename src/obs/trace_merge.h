// Merging Chrome trace dumps from different processes onto one timeline.
//
// Each --trace-out file's timestamps are monotonic-since-its-process-start;
// otherData.wall_anchor_us (epoch µs at ts 0) is the bridge. merge rebases
// every event onto the earliest anchor, assigns one pid per input file
// (plus a process_name metadata event naming the source), and emits a
// single trace document — flow events sharing an id then connect across
// the pid boundary in Perfetto. Any number of dumps (>= 1) merges; a
// single dump simply gets rebased and labelled.
//
// The core is a library function (rather than CLI-only code) so the
// N-dump rebase logic is unit-testable without spawning processes; `swsim
// trace merge` is a thin wrapper over it.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace swsim::obs {

class JsonValue;

struct TraceMergeStats {
  std::size_t files = 0;
  std::size_t events = 0;  // trace events copied (metadata lines excluded)
};

// Merges parsed trace documents, each paired with a label (typically the
// source file name) used for its process_name metadata. Inputs must each
// carry a traceEvents array and a nonzero otherData.wall_anchor_us; the
// merged document's anchor is the earliest input anchor and it records
// merged_from = inputs.size(). Throws std::runtime_error naming the
// offending input on a structural problem (missing events array, missing
// anchor, non-object event) or when `inputs` is empty.
std::string merge_trace_dumps(
    const std::vector<std::pair<std::string, const JsonValue*>>& inputs,
    TraceMergeStats* stats = nullptr);

}  // namespace swsim::obs
