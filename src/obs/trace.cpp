#ifndef SWSIM_OBS_OFF

#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/clock.h"
#include "obs/json.h"

namespace swsim::obs {

namespace detail {

std::atomic<bool> g_trace_armed{false};

thread_local std::uint64_t g_current_flow = 0;

ThreadBuffer& this_thread_buffer() {
  // The pointer lives as long as the thread; the buffer itself is owned by
  // the session and outlives the thread, so late events (and the exporter)
  // never touch freed memory.
  thread_local ThreadBuffer* buf = &TraceSession::global().register_thread();
  return *buf;
}

}  // namespace detail

TraceSession& TraceSession::global() {
  // Leaky singleton: pool worker threads may record spans during static
  // destruction of the main thread's objects; never destroy the session.
  static TraceSession* session = new TraceSession();
  return *session;
}

detail::ThreadBuffer& TraceSession::register_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<detail::ThreadBuffer>());
  buffers_.back()->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  return *buffers_.back();
}

void TraceSession::start() {
  detail::g_trace_armed.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() {
  detail::g_trace_armed.store(false, std::memory_order_relaxed);
}

std::size_t TraceSession::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mutex);
    n += b->events.size();
  }
  return n;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mutex);
    b->events.clear();
  }
}

namespace {

void append_hex(std::ostringstream& os, std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  os << buf;
}

}  // namespace

std::string TraceSession::chrome_json() {
  std::ostringstream os;
  // now_us() grows past 1e6 within a second of process start; the default
  // 6-significant-digit precision would quantize timestamps. 15 digits
  // keeps sub-microsecond resolution for runs up to ~28 years.
  os.precision(15);
  // Epoch microseconds at trace timestamp 0: the key `swsim trace merge`
  // uses to rebase traces from different processes onto one timeline.
  const auto anchor = static_cast<long long>(
      static_cast<double>(wall_now_us()) - now_us());
  os << "{\"traceEvents\": [\n";
  std::lock_guard<std::mutex> lock(mutex_);
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mutex);
    if (!b->thread_name.empty()) {
      comma();
      os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
         << b->tid << ", \"args\": {\"name\": \""
         << escape_json(b->thread_name) << "\"}}";
    }
    for (const auto& e : b->events) {
      comma();
      os << "{\"name\": \"" << escape_json(e.name) << "\", \"cat\": \""
         << escape_json(e.cat) << "\", \"ph\": \"" << e.ph
         << "\", \"ts\": " << e.ts_us;
      if (e.ph == 'X') {
        os << ", \"dur\": " << e.dur_us;
      } else {
        // Flow event: the shared arrow id, as a hex string so 64-bit ids
        // survive JSON double precision.
        os << ", \"id\": \"";
        append_hex(os, e.flow_id);
        os << "\"";
        if (e.ph == 'f') os << ", \"bp\": \"e\"";
      }
      os << ", \"pid\": 1, \"tid\": " << b->tid;
      if (!e.args.empty()) os << ", \"args\": " << e.args;
      os << "}";
    }
  }
  os << "\n], \"otherData\": {\"wall_anchor_us\": " << anchor << "}}\n";
  return os.str();
}

bool TraceSession::write_chrome_json(const std::string& path,
                                     std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << chrome_json();
  if (!out) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void Span::begin(const char* name, const char* cat,
                 const std::string* args_json) {
  armed_ = true;
  name_ = name;
  cat_ = cat;
  if (args_json) args_ = *args_json;
  t0_us_ = now_us();
}

void Span::end() {
  const double t1 = now_us();
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({std::move(name_), cat_, t0_us_, t1 - t0_us_, 'X', 0,
                        std::move(args_)});
}

void record_complete(const std::string& name, const char* cat, double ts_us) {
  if (!tracing()) return;
  const double t1 = now_us();
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({name, cat, ts_us, t1 - ts_us, 'X', 0, {}});
}

void record_flow(const std::string& name, const char* cat, std::uint64_t id,
                 char phase) {
  if (!tracing() || id == 0) return;
  const double ts = now_us();
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({name, cat, ts, 0.0, phase, id, {}});
}

void set_thread_name(const std::string& name) {
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.thread_name = name;
}

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
