#ifndef SWSIM_OBS_OFF

#include "obs/trace.h"

#include <fstream>
#include <sstream>

#include "obs/clock.h"
#include "obs/json.h"

namespace swsim::obs {

namespace detail {

std::atomic<bool> g_trace_armed{false};

ThreadBuffer& this_thread_buffer() {
  // The pointer lives as long as the thread; the buffer itself is owned by
  // the session and outlives the thread, so late events (and the exporter)
  // never touch freed memory.
  thread_local ThreadBuffer* buf = &TraceSession::global().register_thread();
  return *buf;
}

}  // namespace detail

TraceSession& TraceSession::global() {
  // Leaky singleton: pool worker threads may record spans during static
  // destruction of the main thread's objects; never destroy the session.
  static TraceSession* session = new TraceSession();
  return *session;
}

detail::ThreadBuffer& TraceSession::register_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<detail::ThreadBuffer>());
  buffers_.back()->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  return *buffers_.back();
}

void TraceSession::start() {
  detail::g_trace_armed.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() {
  detail::g_trace_armed.store(false, std::memory_order_relaxed);
}

std::size_t TraceSession::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mutex);
    n += b->events.size();
  }
  return n;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mutex);
    b->events.clear();
  }
}

std::string TraceSession::chrome_json() {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  std::lock_guard<std::mutex> lock(mutex_);
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mutex);
    if (!b->thread_name.empty()) {
      comma();
      os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
         << b->tid << ", \"args\": {\"name\": \""
         << escape_json(b->thread_name) << "\"}}";
    }
    for (const auto& e : b->events) {
      comma();
      os << "{\"name\": \"" << escape_json(e.name) << "\", \"cat\": \""
         << escape_json(e.cat) << "\", \"ph\": \"X\", \"ts\": " << e.ts_us
         << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << b->tid
         << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool TraceSession::write_chrome_json(const std::string& path,
                                     std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << chrome_json();
  if (!out) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void Span::begin(const char* name, const char* cat) {
  armed_ = true;
  name_ = name;
  cat_ = cat;
  t0_us_ = now_us();
}

void Span::end() {
  const double t1 = now_us();
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({std::move(name_), cat_, t0_us_, t1 - t0_us_});
}

void record_complete(const std::string& name, const char* cat, double ts_us) {
  if (!tracing()) return;
  const double t1 = now_us();
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({name, cat, ts_us, t1 - ts_us});
}

void set_thread_name(const std::string& name) {
  detail::ThreadBuffer& buf = detail::this_thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.thread_name = name;
}

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
