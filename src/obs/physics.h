// Physics health instrumentation: the bridge between the live lock-in
// envelopes the mag layer produces (mag/demod.h) and everything that wants
// to watch them — metrics gauges, the per-job "physics" block of
// swsim.profile/1, the serve-plane probe stream, and early stop.
//
// Three pieces live here:
//
//   * ConvergenceTracker — pure decision logic: has a port's envelope
//     settled within tolerance for N consecutive windows? This is
//     *unconditional* code (like serve's SloTracker): when `--early-stop`
//     is armed its verdict changes how long a solve runs, so it can never
//     be compiled out with the observability stubs.
//   * PhysicsRegistry — a global accumulator of per-probe window stats,
//     the energy series, and early-stop savings, read by
//     RunProfile::collect() into the "physics" block. Updates are gated on
//     obs::metrics_armed() internally, so the disarmed (and SWSIM_OBS_OFF)
//     cost is one relaxed load and the profile reports zeros.
//   * ProbeHub — a bounded fan-out of envelope frames to subscribers (the
//     serve plane's `probe.subscribe`). Publishing with no subscribers is
//     one relaxed load; a slow subscriber loses its *oldest* frames (with
//     a dropped counter) and can never block the solver.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <atomic>

namespace swsim::obs {

// When is an envelope "settled"? After `windows` consecutive window-to-
// window deltas with |dA| <= max(abs_floor, rel_tolerance * |A|) and a
// phase move <= phase_tolerance — but never before t >= min_time, which
// callers set to the wave transit time so a port that simply has not seen
// the wave yet (amplitude flat at zero) cannot count as decided.
struct ConvergencePolicy {
  double rel_tolerance = 0.02;    // relative amplitude tolerance per window
  double abs_floor = 1e-6;        // absolute amplitude tolerance floor
  double phase_tolerance = 0.05;  // radians per window
  int windows = 3;                // consecutive stable windows required
  double min_time = 0.0;          // seconds of simulated time before deciding
};

class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(const ConvergencePolicy& policy);

  // Feeds one completed envelope window. Returns true exactly once: on the
  // window that decides convergence.
  bool add_window(double t, double amplitude, double phase);

  bool converged() const { return converged_; }
  // Simulated time of the deciding window; meaningless before converged().
  double converged_at() const { return converged_at_; }
  std::uint64_t windows_seen() const { return windows_seen_; }

  void clear();

  // Rewind support, mirroring RegionProbe::Checkpoint: the divergence-
  // recovery path restores trackers together with the probes they watch,
  // so a recovered run reports the same converged_at a clean run would.
  struct Checkpoint {
    std::uint64_t windows_seen = 0;
    int streak = 0;
    bool have_last = false;
    double last_amplitude = 0.0;
    double last_phase = 0.0;
    bool converged = false;
    double converged_at = 0.0;
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& cp);

 private:
  ConvergencePolicy policy_;
  std::uint64_t windows_seen_ = 0;
  int streak_ = 0;
  bool have_last_ = false;
  double last_amplitude_ = 0.0;
  double last_phase_ = 0.0;
  bool converged_ = false;
  double converged_at_ = 0.0;
};

// Global accumulator behind the swsim.profile/1 "physics" block.
class PhysicsRegistry {
 public:
  static PhysicsRegistry& global();

  struct ProbeStats {
    std::uint64_t windows = 0;
    double amplitude = 0.0;    // last completed window
    double phase = 0.0;
    double converged_at = -1.0;  // seconds; < 0 = not converged
  };
  struct Snapshot {
    std::map<std::string, ProbeStats> probes;
    std::uint64_t energy_samples = 0;
    double total_energy_j = 0.0;     // last recorded
    double exchange_energy_j = 0.0;  // last recorded (the magnon band carrier)
    std::uint64_t early_stop_saved_steps = 0;
  };

  // All recorders no-op unless obs::metrics_armed().
  void record_window(const std::string& probe, double amplitude, double phase);
  void record_converged(const std::string& probe, double t);
  void record_energy(double total_j, double exchange_j);
  void record_early_stop(std::uint64_t saved_steps);

  Snapshot snapshot() const;
  void reset();

 private:
  PhysicsRegistry() = default;
  mutable std::mutex mutex_;
  Snapshot state_;
};

// Fan-out of live envelope frames to bounded subscribers.
class ProbeHub {
 public:
  struct Frame {
    std::string job;    // solve label, e.g. "micromag MAJ3 101"
    std::string probe;  // port name, e.g. "O1"
    std::uint64_t window = 0;
    double t = 0.0;  // simulated seconds at window end
    double amplitude = 0.0;
    double phase = 0.0;
    bool converged = false;
    double converged_at = -1.0;
  };

  class Subscription {
   public:
    ~Subscription();
    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;

    // Blocks up to wait_s for the next frame. False on timeout.
    bool next(Frame* out, double wait_s);
    // Frames discarded because this subscriber fell behind its capacity.
    std::uint64_t dropped() const { return dropped_.load(); }

   private:
    friend class ProbeHub;
    Subscription(ProbeHub* hub, std::size_t capacity);
    void push(const Frame& frame);

    ProbeHub* hub_;
    const std::size_t capacity_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Frame> queue_;
    std::atomic<std::uint64_t> dropped_{0};
  };

  static ProbeHub& global();

  // One relaxed load: the publisher-side guard.
  bool active() const {
    return subscriber_count_.load(std::memory_order_relaxed) > 0;
  }

  // capacity bounds the per-subscriber queue; overflow drops the oldest
  // frame and bumps the subscriber's dropped counter.
  std::shared_ptr<Subscription> subscribe(std::size_t capacity = 256);

  // Copies the frame to every live subscriber. Callers should guard with
  // active() to keep the no-subscriber cost at one load.
  void publish(const Frame& frame);

 private:
  ProbeHub() = default;
  void unsubscribe(Subscription* sub);

  std::atomic<std::size_t> subscriber_count_{0};
  std::mutex mutex_;
  std::vector<Subscription*> subscribers_;
};

}  // namespace swsim::obs
