// Live run progress: a throttled, TTY-aware status line on stderr.
//
// The reporter is a process-global singleton fed from two places:
//   * Scheduler::run_all() registers how many jobs a DAG releases
//     (add_jobs) and ticks one off as each settles (job_done);
//   * Simulation::run() ticks once per LLG step (on_llg_steps).
// When enabled it renders at most one line every ~250 ms, carriage-return-
// overwritten on a TTY:
//
//   [progress] jobs 3/9 | 1.24e+04 llg steps/s | eta 42s
//
// and mirrors the same numbers into MetricsRegistry gauges
// (progress.jobs_done, progress.jobs_total, progress.steps_per_second) so
// a --metrics-out dump records the final state.
//
// When stderr is NOT a terminal the reporter writes nothing at all — the
// gauges are still mirrored (every ~2 s) but piped stderr stays byte-clean.
// Daemon embedders (swsim serve) call suppress_output() for the same
// guarantee regardless of what fd 2 happens to be: worker threads must
// never interleave status lines with the daemon's structured logs.
//
// Hot-path contract (same as every other obs hook): disabled, each tick is
// one relaxed atomic load. Enabled, a tick is a couple of relaxed RMWs and
// a clock read; rendering itself is throttled behind a CAS so concurrent
// workers never contend on the line.
//
// The CLI enables it for --progress, disables it for --no-progress, and
// defaults to "on iff stderr is a TTY" — piped runs stay byte-clean.
#pragma once

#include <cstdint>

#ifndef SWSIM_OBS_OFF

#include <atomic>
#include <mutex>

namespace swsim::obs {

class ProgressReporter {
 public:
  static ProgressReporter& global();

  // Arms the reporter and resets all counters for a fresh command.
  void enable();
  // Disarms; pending state is kept until the next enable() so a final
  // finish() can still report totals.
  void disable();
  bool enabled() const { return armed_.load(std::memory_order_relaxed); }

  // True when stderr is attached to a terminal (the default-on condition).
  static bool stderr_is_tty();

  // Hard-mutes line output for the rest of the process (gauge mirroring
  // still runs). Irreversible by design: a daemon that suppressed output
  // once must never start writing to stderr from worker threads later.
  void suppress_output() {
    suppressed_.store(true, std::memory_order_relaxed);
  }

  // Engine hooks.
  void add_jobs(std::uint64_t n);
  void job_done();

  // Solver hook: `n` LLG steps were integrated.
  void on_llg_steps(std::uint64_t n) {
    if (!enabled()) return;
    steps_.fetch_add(n, std::memory_order_relaxed);
    maybe_render();
  }

  // Erases/terminates the status line (prints the newline a TTY render
  // withheld). Safe to call when nothing was ever rendered.
  void finish();

 private:
  ProgressReporter() = default;
  void maybe_render();
  void render();

  std::atomic<bool> armed_{false};
  std::atomic<bool> suppressed_{false};
  std::atomic<std::uint64_t> jobs_total_{0};
  std::atomic<std::uint64_t> jobs_done_{0};
  std::atomic<std::uint64_t> steps_{0};

  // Render throttle state (monotonic microseconds; 0 = never rendered).
  std::atomic<std::uint64_t> next_render_us_{0};
  std::mutex render_mutex_;
  double t0_us_ = 0.0;          // enable() time, rate/ETA basis
  double last_rate_t_us_ = 0.0; // previous render, for the step rate window
  std::uint64_t last_rate_steps_ = 0;
  double steps_per_second_ = 0.0;
  bool rendered_ = false;       // a TTY line is pending a terminating \n
};

}  // namespace swsim::obs

#else  // SWSIM_OBS_OFF: inert stub, zero codegen at hook sites.

namespace swsim::obs {

class ProgressReporter {
 public:
  static ProgressReporter& global() {
    static ProgressReporter r;
    return r;
  }
  void enable() {}
  void disable() {}
  bool enabled() const { return false; }
  static bool stderr_is_tty() { return false; }
  void suppress_output() {}
  void add_jobs(std::uint64_t) {}
  void job_done() {}
  void on_llg_steps(std::uint64_t) {}
  void finish() {}
};

}  // namespace swsim::obs

#endif  // SWSIM_OBS_OFF
