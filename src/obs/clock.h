// Clocks for the observability layer.
//
// Two time bases, deliberately distinct:
//   * now_us()      — monotonic microseconds since process start (steady
//                     clock). Trace spans and latency metrics use this; it
//                     never jumps, so durations are trustworthy.
//   * wall_now_us() — wall-clock microseconds since the Unix epoch (system
//                     clock). The structured event log and FailureReport
//                     stamp records with this so runs can be correlated
//                     with external logs and with each other.
//
// format_iso8601_us renders a wall timestamp as
// "2026-08-06T12:34:56.789012Z" (UTC) for human-facing CSV/JSONL fields.
#pragma once

#include <cstdint>
#include <string>

namespace swsim::obs {

// Monotonic microseconds since the first call in this process.
double now_us();

// Wall-clock microseconds since the Unix epoch.
std::uint64_t wall_now_us();

// UTC ISO-8601 rendering of a wall_now_us() timestamp; microsecond
// precision. Returns an empty string for t_us == 0 ("unknown").
std::string format_iso8601_us(std::uint64_t t_us);

}  // namespace swsim::obs
