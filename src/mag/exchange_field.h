// Heisenberg exchange as a six-point finite-difference Laplacian:
//   H_ex = (2 Aex / (mu0 Ms)) * laplace(m)
// with free (Neumann) boundary conditions at mask and box edges — a missing
// neighbour simply does not contribute, equivalent to dm/dn = 0, the standard
// micromagnetic boundary condition for unpinned surfaces.
#pragma once

#include "mag/field_term.h"

namespace swsim::mag {

class ExchangeField final : public FieldTerm {
 public:
  std::string name() const override { return "exchange"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  double energy(const System& sys, const VectorField& m) const override;
  bool compile_kernel(const System& sys, kernels::TermOp& op) const override;
};

}  // namespace swsim::mag
