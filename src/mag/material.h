// Magnetic material parameters.
//
// The paper's device is a 1 nm Fe60Co20B20 film with perpendicular magnetic
// anisotropy (PMA); parameters from Sec. IV-A / ref. [39]. Other common
// magnonic materials are provided for the example programs and tests.
#pragma once

#include <string>

namespace swsim::mag {

struct Material {
  std::string name = "custom";
  double ms = 0.0;     // saturation magnetization [A/m]
  double aex = 0.0;    // exchange stiffness [J/m]
  double alpha = 0.0;  // Gilbert damping [-]
  double ku = 0.0;     // uniaxial anisotropy constant [J/m^3]
  // Anisotropy axis is +z (out of plane) throughout this library, matching
  // the PMA film of the paper.

  // Exchange length sqrt(2 Aex / (mu0 Ms^2)) [m].
  double exchange_length() const;

  // Anisotropy field 2 Ku / (mu0 Ms) [A/m].
  double anisotropy_field() const;

  // Effective out-of-plane internal field for a PMA film magnetized along z:
  // H_ani - Ms (thin-film demag), optionally plus an applied field [A/m].
  // This must be positive for a stable out-of-plane ground state (required
  // for forward-volume spin waves); callers should check.
  double internal_field(double applied = 0.0) const;

  // Throws std::invalid_argument when parameters are unphysical.
  void validate() const;

  // Fe60Co20B20, 1 nm, PMA — the paper's waveguide material (Sec. IV-A):
  // Ms = 1100 kA/m, Aex = 18.5 pJ/m, alpha = 0.004, Ku = 0.832 MJ/m^3.
  static Material fecob();

  // Yttrium iron garnet — the classic low-damping magnonic material.
  static Material yig();

  // Permalloy (Ni80Fe20) — ubiquitous metallic test material.
  static Material permalloy();
};

}  // namespace swsim::mag
