#include "mag/thermal_field.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::mag {

using namespace swsim::math;

ThermalField::ThermalField(double temperature, std::uint64_t seed)
    : temperature_(temperature), rng_(seed) {
  if (temperature < 0.0) {
    throw std::invalid_argument("ThermalField: temperature must be >= 0");
  }
}

double ThermalField::sigma(const System& sys, double dt) const {
  if (!(dt > 0.0)) return 0.0;
  const Material& mat = sys.material();
  const double v = sys.grid().cell_volume();
  return std::sqrt(2.0 * mat.alpha * kBoltzmann * temperature_ /
                   (kMu0 * kGamma * mat.ms * v * dt));
}

void ThermalField::ensure_noise(const System& sys) {
  if (noise_ready_ && noise_.grid() == sys.grid()) return;
  noise_ = VectorField(sys.grid());
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < noise_.size(); ++i) {
    if (!mask[i]) continue;
    noise_[i] = {rng_.normal(), rng_.normal(), rng_.normal()};
  }
  noise_ready_ = true;
}

void ThermalField::accumulate(const System& sys, const VectorField& m,
                              double /*t*/, VectorField& h) {
  if (temperature_ == 0.0 || dt_ == 0.0) return;
  ensure_noise(sys);
  const double s = sigma(sys, dt_);
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) h[i] += s * noise_[i];
  }
}

void ThermalField::advance_step(double dt) {
  dt_ = dt;
  // Force a fresh noise draw at the next accumulate().
  noise_ready_ = false;
}

}  // namespace swsim::mag
