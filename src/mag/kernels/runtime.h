// Process-wide knobs of the kernel layer.
//
//   * cell_jobs — deterministic intra-solve parallelism width. 1 (the
//     default) keeps every sweep on the calling thread; N > 1 chunks the
//     cell range over a thread pool with fixed chunk boundaries, so the
//     output is byte-identical for ANY value. 0 resolves to the hardware
//     concurrency. Seeded from the SWSIM_CELL_JOBS environment variable,
//     overridden by the CLI's --cell-jobs flag.
//   * force-reference — routes every solve through the scalar reference
//     path (SWSIM_KERNEL_REF=1, or set_force_reference for tests). The
//     reference path is the bit-exactness oracle; CI runs the whole suite
//     under it.
//   * the intra-solve pool — either a pool installed by the engine for
//     the scope of a batch (ScopedSharedPool: batch jobs and intra-solve
//     chunks then share workers, with ThreadPool::parallel_for's caller
//     participation keeping that deadlock-free), or a lazily created
//     process pool of cell_jobs - 1 helper threads.
#pragma once

#include <cstddef>

namespace swsim::engine {
class ThreadPool;
}

namespace swsim::mag::kernels {

// Effective intra-solve job count (>= 1; 0 stored resolves to hardware).
std::size_t cell_jobs();
void set_cell_jobs(std::size_t n);

// True when solves must use the scalar reference path.
bool reference_forced();
// mode: 1 force reference, 0 force kernels, -1 consult SWSIM_KERNEL_REF.
void set_force_reference(int mode);

// The pool parallel sweeps should chunk over, or nullptr when the solve
// must stay serial (cell_jobs() == 1 and no pool installed... serial is
// also what nullptr means to SolveContext).
engine::ThreadPool* intra_pool();

// Installs `pool` as the intra-solve pool for this object's lifetime
// (engine batch scope). Does nothing when cell_jobs() <= 1 — intra-solve
// parallelism stays strictly opt-in.
class ScopedSharedPool {
 public:
  explicit ScopedSharedPool(engine::ThreadPool* pool);
  ~ScopedSharedPool();
  ScopedSharedPool(const ScopedSharedPool&) = delete;
  ScopedSharedPool& operator=(const ScopedSharedPool&) = delete;

 private:
  bool installed_ = false;
};

}  // namespace swsim::mag::kernels
