// Structure-of-arrays scratch storage for the LLG hot loops.
//
// math::Field<Vec3> stores xyzxyz... — fine as the public value type, but
// the stride-3 layout defeats auto-vectorization in the stage-combination
// and field-sweep loops. SoaVec keeps three contiguous double arrays;
// conversion happens only at the solve boundary (load at step entry,
// store at step exit), never inside a stage loop.
#pragma once

#include <cstddef>
#include <vector>

#include "math/field.h"

namespace swsim::mag::kernels {

struct SoaVec {
  std::vector<double> x, y, z;

  std::size_t size() const { return x.size(); }

  // Sizes (and zeroes) all three arrays. Zero-initialization matters: the
  // sweeps only ever write magnetic cells, so vacuum entries keep exactly
  // the +0.0 the reference path's freshly-allocated stage buffers hold.
  void assign_zero(std::size_t n) {
    x.assign(n, 0.0);
    y.assign(n, 0.0);
    z.assign(n, 0.0);
  }
};

// AoS <-> SoA conversion over the full grid.
void load(SoaVec& dst, const swsim::math::VectorField& src);
void store(const SoaVec& src, swsim::math::VectorField& dst);

}  // namespace swsim::mag::kernels
