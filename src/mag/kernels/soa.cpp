#include "mag/kernels/soa.h"

namespace swsim::mag::kernels {

void load(SoaVec& dst, const swsim::math::VectorField& src) {
  const std::size_t n = src.size();
  if (dst.size() != n) dst.assign_zero(n);
  const swsim::math::Vec3* s = src.data().data();
  double* px = dst.x.data();
  double* py = dst.y.data();
  double* pz = dst.z.data();
  for (std::size_t i = 0; i < n; ++i) {
    px[i] = s[i].x;
    py[i] = s[i].y;
    pz[i] = s[i].z;
  }
}

void store(const SoaVec& src, swsim::math::VectorField& dst) {
  const std::size_t n = dst.size();
  swsim::math::Vec3* d = dst.data().data();
  const double* px = src.x.data();
  const double* py = src.y.data();
  const double* pz = src.z.data();
  for (std::size_t i = 0; i < n; ++i) {
    d[i].x = px[i];
    d[i].y = py[i];
    d[i].z = pz[i];
  }
}

}  // namespace swsim::mag::kernels
