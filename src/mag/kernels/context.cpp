#include "mag/kernels/context.h"

#include <algorithm>
#include <cmath>

#include "engine/thread_pool.h"
#include "mag/kernels/runtime.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace swsim::mag::kernels {

using swsim::math::kTwoPi;

SolveContext::SolveContext(std::unique_ptr<KernelPlan> plan)
    : plan_(std::move(plan)) {
  const std::size_t n = plan_->n;
  m_.assign_zero(n);
  tmp_.assign_zero(n);
  k1_.assign_zero(n);
  k2_.assign_zero(n);
  k3_.assign_zero(n);
  k4_.assign_zero(n);
  k5_.assign_zero(n);
  k6_.assign_zero(n);
  h_.assign_zero(n);
  eval_ops_.reserve(plan_->ops.size());
}

std::unique_ptr<SolveContext> SolveContext::create(
    const System& sys, const std::vector<std::unique_ptr<FieldTerm>>& terms) {
  auto plan = build_plan(sys, terms);
  if (!plan) return nullptr;
  return std::unique_ptr<SolveContext>(new SolveContext(std::move(plan)));
}

void SolveContext::pfor(std::size_t n, std::size_t grain,
                        const std::function<void(std::size_t, std::size_t)>& fn) {
  if (engine::ThreadPool* pool = intra_pool()) {
    pool->parallel_for(n, grain, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

void SolveContext::resolve_ops(double t) {
  eval_ops_.clear();
  std::uint8_t antenna_bit = 1;
  for (const TermOp& op : plan_->ops) {
    EvalOp e;
    e.kind = op.kind;
    switch (op.kind) {
      case OpKind::kExchange:
        e.pref = op.pref;
        break;
      case OpKind::kAnisotropy:
        e.pref = op.pref;
        e.ax = op.ax;
        e.ay = op.ay;
        e.az = op.az;
        break;
      case OpKind::kThinFilmDemag:
        break;
      case OpKind::kUniformZeeman:
        e.dx = op.hx;
        e.dy = op.hy;
        e.dz = op.hz;
        break;
      case OpKind::kAntenna: {
        e.bit = antenna_bit;
        antenna_bit = static_cast<std::uint8_t>(antenna_bit << 1);
        e.cells = &op.cells;
        e.gate = &op.gate;
        const double env = (*op.envelope)(t);
        if (env == 0.0) {
          // Reference accumulate() returns before touching h.
          e.skip = true;
          break;
        }
        // Exactly the reference drive: direction * (A * env * sin(w t + p)),
        // the scalar factor collapsed first as in the Vec3 * double operator.
        const double s =
            op.amplitude * env * std::sin(kTwoPi * op.frequency * t + op.phase);
        e.dx = op.ax * s;
        e.dy = op.ay * s;
        e.dz = op.az * s;
        break;
      }
    }
    eval_ops_.push_back(e);
  }
}

void SolveContext::eval(const SoaVec& state, double t, SoaVec& dmdt) {
  resolve_ops(t);
  const std::size_t slots = plan_->active.size();
  const bool sampled = obs::metrics_armed() && !plan_->ops.empty() &&
                       (eval_count_ % kSamplePeriod == 0);
  ++eval_count_;

  if (sampled || !plan_->fused_ok) {
    // Per-term sweeps into the field buffer, each op timed for the
    // "mag.term.<name>.us" attribution. Bit-exact with the fused sweep:
    // identical per-cell accumulation order, just staged through memory.
    h_.assign_zero(plan_->n);
    for (std::size_t o = 0; o < eval_ops_.size(); ++o) {
      const double t0 = obs::now_us();
      const EvalOp& op = eval_ops_[o];
      if (op.kind == OpKind::kAntenna) {
        // Region index list; ignores the slot range (pass it once, whole).
        term_sweep(*plan_, state, op, h_, 0, slots);
      } else {
        pfor(slots, kSlotGrain, [&](std::size_t b, std::size_t e) {
          term_sweep(*plan_, state, op, h_, b, e);
        });
      }
      if (sampled) {
        plan_->op_us[o]->add(
            static_cast<std::uint64_t>(obs::now_us() - t0));
      }
    }
    pfor(slots, kSlotGrain, [&](std::size_t b, std::size_t e) {
      rhs_sweep(*plan_, state, h_, dmdt, b, e);
    });
    return;
  }

  // Fused path. The parallel domain is interior cells (run table order)
  // followed by edge slots; chunk boundaries depend only on the plan, so
  // any thread count slices the same work the same way, and every cell is
  // written by exactly one chunk.
  const std::size_t interior = plan_->interior_total;
  const std::size_t domain = interior + plan_->edge_slots.size();
  pfor(domain, kSlotGrain, [&](std::size_t b, std::size_t e) {
    if (b < interior) {
      const std::size_t ie = std::min(e, interior);
      const auto& pre = plan_->run_prefix;
      std::size_t r = static_cast<std::size_t>(
          std::upper_bound(pre.begin(), pre.end(), b) - pre.begin() - 1);
      std::size_t pos = b;
      while (pos < ie) {
        const KernelPlan::Run& run = plan_->runs[r];
        const std::size_t off = pos - pre[r];
        const std::size_t take =
            std::min(ie - pos, (run.e - run.b) - off);
        fused_run(*plan_, state, eval_ops_, dmdt, run.b + off,
                  run.b + off + take, run.antenna);
        pos += take;
        ++r;
      }
    }
    if (e > interior) {
      fused_edge(*plan_, state, eval_ops_, dmdt,
                 b > interior ? b - interior : 0, e - interior);
    }
  });
}

void SolveContext::stage1(SoaVec& out, const SoaVec& base, double s,
                          const SoaVec& k) {
  pfor(plan_->n, kFlatGrain, [&](std::size_t b, std::size_t e) {
    axpy(out, base, s, k, b, e);
  });
}

double SolveContext::err_max(double h, const double (&c)[5],
                             const SoaVec* const (&k)[5]) {
  const std::size_t n = plan_->n;
  if (n == 0) return 0.0;
  const std::size_t chunks = (n + kFlatGrain - 1) / kFlatGrain;
  std::vector<double> partial(chunks, 0.0);
  pfor(n, kFlatGrain, [&](std::size_t b, std::size_t e) {
    partial[b / kFlatGrain] = err_max_range(h, c, k, b, e);
  });
  // Chunk-order fold; max of non-NaN partials is schedule-independent.
  double worst = 0.0;
  for (const double p : partial) worst = std::max(worst, p);
  return worst;
}

}  // namespace swsim::mag::kernels
