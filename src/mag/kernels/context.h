// Per-stepper solve context: a compiled KernelPlan plus every SoA scratch
// buffer a stepper needs (state, stage buffers k1..k6, one field buffer
// for the sampled per-term path). Owning the buffers here is itself a win:
// the reference steppers allocate and zero up to seven grid-sized
// VectorFields per step; the context allocates once per solve.
//
// The context is cached by Stepper and rebuilt when its plan goes stale
// (different System, mutated per-cell fields, changed term set) — see
// KernelPlan::matches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mag/kernels/plan.h"
#include "mag/kernels/soa.h"
#include "mag/kernels/sweep.h"

namespace swsim::mag::kernels {

class SolveContext {
 public:
  // Returns nullptr when any term refuses to lower (the solver then stays
  // on the scalar reference path).
  static std::unique_ptr<SolveContext> create(
      const System& sys, const std::vector<std::unique_ptr<FieldTerm>>& terms);

  bool matches(const System& sys,
               const std::vector<std::unique_ptr<FieldTerm>>& terms) const {
    return plan_->matches(sys, terms);
  }

  const KernelPlan& plan() const { return *plan_; }

  // AoS <-> SoA at the step boundary.
  void load_m(const swsim::math::VectorField& m) { load(m_, m); }
  void store_m(swsim::math::VectorField& m) const { store(m_, m); }

  // One effective-field + rhs evaluation of `state` at time t into dmdt.
  // When metrics are armed, every kSamplePeriod-th evaluation runs the
  // per-term sweeps under "mag.term.<name>.us" timers instead of the fused
  // sweep — both are bit-exact, so sampling never perturbs the physics.
  void eval(const SoaVec& state, double t, SoaVec& dmdt);

  // out = base + k * s over the full grid (chunked when parallel).
  void stage1(SoaVec& out, const SoaVec& base, double s, const SoaVec& k);

  // out = base + (c0*k0 + ...) * h over the full grid.
  template <int N>
  void combine(SoaVec& out, const SoaVec& base, double h, const double (&c)[N],
               const SoaVec* const (&k)[N]) {
    pfor(plan_->n, kFlatGrain,
         [&](std::size_t b, std::size_t e) { combine_range(out, base, h, c, k, b, e); });
  }

  // RKF45 max-norm error of h * (c0*k0 + ... + c4*k4) over the full grid;
  // per-chunk maxima are folded in chunk order.
  double err_max(double h, const double (&c)[5], const SoaVec* const (&k)[5]);

  // State and stage buffers, exposed to the stepper loops in llg.cpp.
  SoaVec m_, tmp_, k1_, k2_, k3_, k4_, k5_, k6_;

  // Fixed chunk sizes — part of the determinism contract: boundaries
  // depend on the grid, never on the job count.
  static constexpr std::size_t kSlotGrain = 1024;  // active-cell chunks
  static constexpr std::size_t kFlatGrain = 4096;  // full-grid chunks
  static constexpr std::uint64_t kSamplePeriod = 16;  // per-term timing

 private:
  explicit SolveContext(std::unique_ptr<KernelPlan> plan);

  // Runs fn over [0, n) — serial, or chunked on the intra-solve pool.
  void pfor(std::size_t n, std::size_t grain,
            const std::function<void(std::size_t, std::size_t)>& fn);

  void resolve_ops(double t);  // TermOps -> EvalOps at time t

  std::unique_ptr<KernelPlan> plan_;
  std::vector<EvalOp> eval_ops_;
  SoaVec h_;                  // per-term path field buffer
  std::uint64_t eval_count_ = 0;
};

}  // namespace swsim::mag::kernels
