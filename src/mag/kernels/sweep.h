// The vectorizable inner loops of the kernel path.
//
// Every function here is written against the bit-exactness contract: for
// each magnetic cell it performs the same floating-point operations, in
// the same order, with the same association, as the scalar reference path
// in llg.cpp / the field terms. SIMD lanes hold different cells, never
// different terms of one cell's accumulation, so vectorization preserves
// the per-cell operation sequence exactly. See docs/PERFORMANCE.md for the
// argument; tests/test_mag_kernels.cpp holds it to byte identity.
//
// All ranges are half-open. "slot" ranges index the plan's active-cell
// list, "edge" ranges index plan.edge_slots, "flat" ranges index the full
// grid. Callers parallelize by chunking these ranges with fixed grain —
// the loops only ever write cells inside their own range, so any chunk
// schedule produces identical bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mag/kernels/plan.h"
#include "mag/kernels/soa.h"

namespace swsim::mag::kernels {

// A TermOp resolved at one evaluation time t: the antenna drive collapses
// to one precomputed vector (or a skip flag while its envelope is zero).
struct EvalOp {
  OpKind kind{};
  double pref = 0.0;              // exchange / anisotropy
  double ax = 0, ay = 0, az = 0;  // anisotropy axis
  double dx = 0, dy = 0, dz = 0;  // zeeman field or antenna drive at t
  bool skip = false;              // antenna with env(t) == 0
  std::uint8_t bit = 0;           // antenna coverage bit in plan.antenna_bits
  const std::vector<std::uint32_t>* cells = nullptr;  // antenna region list
  const std::vector<double>* gate = nullptr;          // antenna 1.0/0.0 mask
};

// out = base + k * s, flat range [b, e). Matches "base[i] + s_expr * k[i]"
// where the reference computed the double s first (s_expr collapses to s).
void axpy(SoaVec& out, const SoaVec& base, double s, const SoaVec& k,
          std::size_t b, std::size_t e);

// out = base + (c0*k0 + c1*k1 + ...) * h, flat range [b, e), inner sum
// left-associated — the shape of every multi-k stage combination in the
// reference steppers (a coefficient of exactly 1.0 reproduces a bare
// "k[i]" operand: x * 1.0 == x bitwise).
template <int N>
void combine_range(SoaVec& out, const SoaVec& base, double h,
                   const double (&c)[N], const SoaVec* const (&k)[N],
                   std::size_t b, std::size_t e) {
  double* ox = out.x.data();
  double* oy = out.y.data();
  double* oz = out.z.data();
  const double* bx = base.x.data();
  const double* by = base.y.data();
  const double* bz = base.z.data();
  for (std::size_t i = b; i < e; ++i) {
    double ax = k[0]->x[i] * c[0];
    double ay = k[0]->y[i] * c[0];
    double az = k[0]->z[i] * c[0];
    for (int j = 1; j < N; ++j) {  // N is a constant: fully unrolled
      ax += k[j]->x[i] * c[j];
      ay += k[j]->y[i] * c[j];
      az += k[j]->z[i] * c[j];
    }
    ox[i] = bx[i] + ax * h;
    oy[i] = by[i] + ay * h;
    oz[i] = bz[i] + az * h;
  }
}

// max over [b, e) of |h * (c0*k0 + c1*k1 + ... + c4*k4)| per cell — the
// RKF45 embedded-error reduction. NaN norms are skipped exactly as the
// reference's std::max does, so the result is chunk-order independent.
double err_max_range(double h, const double (&c)[5],
                     const SoaVec* const (&k)[5], std::size_t b,
                     std::size_t e);

// Fused field + LLG-rhs sweep over one interior-run flat range [fb, fe):
// per cell, accumulate every op's field in term order into registers, then
// apply the LLG right-hand side, writing dmdt at that cell only. Interior
// cells address exchange neighbours at ±axis_stride directly and process
// SIMD-width blocks of cells at once. `run_antenna` is the run's antenna
// coverage bits; ops whose bit is clear are skipped for the whole range
// (identical to the reference never touching those cells).
void fused_run(const KernelPlan& p, const SoaVec& m,
               const std::vector<EvalOp>& ops, SoaVec& dmdt, std::size_t fb,
               std::size_t fe, std::uint8_t run_antenna);

// Scalar companion of fused_run for edge slots [eb, ee) (indices into
// plan.edge_slots): same per-cell op order, exchange via the six-entry
// neighbour table, antenna via the per-slot coverage bits.
void fused_edge(const KernelPlan& p, const SoaVec& m,
                const std::vector<EvalOp>& ops, SoaVec& dmdt, std::size_t eb,
                std::size_t ee);

// Per-term path (sampled timing attribution): one op accumulated into the
// SoA field buffer h over active slots [sb, se) (antenna ops iterate their
// region list instead and ignore the slot range — callers pass the full
// range exactly once).
void term_sweep(const KernelPlan& p, const SoaVec& m, const EvalOp& op,
                SoaVec& h, std::size_t sb, std::size_t se);

// LLG right-hand side from an accumulated field buffer, active slots
// [sb, se) (companion of term_sweep; the fused sweeps fold this in).
void rhs_sweep(const KernelPlan& p, const SoaVec& m, const SoaVec& h,
               SoaVec& dmdt, std::size_t sb, std::size_t se);

}  // namespace swsim::mag::kernels
