// The kernel plan: everything about a (System, term set) pair that can be
// precomputed once and reused every step.
//
//   * the active-cell index list (masked cells, ascending) — sweeps and
//     renormalization stop paying for vacuum cells;
//   * full-grid per-cell alpha, the LLG prefactor -gamma mu0/(1+alpha^2),
//     and the local Ms (for the thin-film demag op), indexed by flat cell
//     so both the contiguous SIMD runs and the slot-indexed edge path can
//     read them directly;
//   * the exchange neighbour table for edge cells: six indices per active
//     slot in the reference path's -x,+x,-y,+y,-z,+z order, with a
//     self-index for absent/vacuum neighbours (the self term contributes
//     an exact +0.0, bit-identical to skipping the neighbour); weights are
//     the three per-axis 1/d^2 constants, not per-neighbour loads;
//   * the interior-run table: maximal stride-1 cell ranges whose every
//     existing-axis neighbour is active. Interior cells take the fused
//     SIMD sweep (direct ±stride addressing, no tables); everything else
//     is an "edge" slot on the scalar table path. Both paths execute the
//     identical per-cell operation sequence, so the split is invisible in
//     the output bytes;
//   * the lowered TermOps in term order, plus per-op metric counters for
//     the sampled "mag.term.<name>.us" attribution;
//   * per-active-cell antenna coverage bitmask (bit a = cell driven by the
//     a-th antenna op) for the edge path, and per-run coverage bits so
//     runs outside every antenna region skip the term entirely.
//
// build_plan returns nullptr when any term refuses to compile; the solver
// then stays on the scalar reference path for this term set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mag/field_term.h"
#include "mag/kernels/term_op.h"
#include "mag/system.h"

namespace swsim::obs {
class Counter;
}

namespace swsim::mag::kernels {

struct KernelPlan {
  // Staleness signature. The System address plus its mutation revision
  // catches set_ms_scale/set_alpha_field between steps; the mask content
  // copy guards the (pathological) case of a different System recreated
  // at the same address.
  const System* sys = nullptr;
  std::uint64_t revision = 0;
  swsim::math::Mask mask;
  std::vector<const FieldTerm*> term_sig;

  std::size_t n = 0;                   // full grid cell count
  std::vector<std::uint32_t> active;   // masked cells, ascending
  std::vector<double> alpha;           // per flat cell (active cells valid)
  std::vector<double> llg_pref;        // per flat cell (active cells valid)
  std::vector<double> ms;              // per flat cell (active cells valid)

  bool has_exchange = false;
  std::vector<std::uint32_t> nb;       // 6 per active slot (edge/term path)
  double inv_d2[3] = {0.0, 0.0, 0.0};  // per-axis 1/dx^2, 1/dy^2, 1/dz^2
  bool axis_used[3] = {false, false, false};    // grid dimension > 1
  std::ptrdiff_t axis_stride[3] = {0, 0, 0};    // flat index step per axis

  // Interior runs: [b, e) flat ranges, stride-1 contiguous, every cell
  // active with all existing-axis neighbours active. `antenna` has bit a
  // set when the a-th antenna op drives at least one cell of the run.
  struct Run {
    std::uint32_t b = 0;
    std::uint32_t e = 0;
    std::uint8_t antenna = 0;
  };
  std::vector<Run> runs;
  std::vector<std::uint64_t> run_prefix;  // runs.size()+1 cumulative lengths
  std::size_t interior_total = 0;         // cells covered by runs
  std::vector<std::uint32_t> edge_slots;  // active slots not in any run

  std::vector<TermOp> ops;             // term order
  std::vector<obs::Counter*> op_us;    // "mag.term.<name>.us", per op

  // Fused-sweep antenna coverage; valid iff fused_ok (at most 8 antennas,
  // one bit each). With more antennas the context falls back to per-term
  // kernel sweeps, which are still bit-exact and index-list driven.
  std::vector<std::uint8_t> antenna_bits;
  bool fused_ok = false;

  bool matches(const System& sys,
               const std::vector<std::unique_ptr<FieldTerm>>& terms) const;
};

std::unique_ptr<KernelPlan> build_plan(
    const System& sys, const std::vector<std::unique_ptr<FieldTerm>>& terms);

}  // namespace swsim::mag::kernels
