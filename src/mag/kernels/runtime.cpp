#include "mag/kernels/runtime.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "engine/thread_pool.h"

namespace swsim::mag::kernels {

namespace {

std::size_t env_cell_jobs() {
  const char* v = std::getenv("SWSIM_CELL_JOBS");
  if (!v || !*v) return 1;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || n < 0) return 1;
  return static_cast<std::size_t>(n);
}

std::atomic<std::size_t>& cell_jobs_raw() {
  static std::atomic<std::size_t> v{env_cell_jobs()};
  return v;
}

// -1: consult SWSIM_KERNEL_REF; 0/1: explicit override (tests).
std::atomic<int> g_force_mode{-1};

bool env_kernel_ref() {
  static const bool forced = [] {
    const char* v = std::getenv("SWSIM_KERNEL_REF");
    return v && *v && !(v[0] == '0' && v[1] == '\0');
  }();
  return forced;
}

// The shared (engine-installed) pool, and the lazily owned fallback pool.
std::atomic<engine::ThreadPool*> g_shared_pool{nullptr};
std::mutex g_owned_mu;
std::unique_ptr<engine::ThreadPool> g_owned_pool;

}  // namespace

std::size_t cell_jobs() {
  const std::size_t n = cell_jobs_raw().load(std::memory_order_relaxed);
  return n == 0 ? engine::ThreadPool::default_threads() : n;
}

void set_cell_jobs(std::size_t n) {
  cell_jobs_raw().store(n, std::memory_order_relaxed);
}

bool reference_forced() {
  const int mode = g_force_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode == 1;
  return env_kernel_ref();
}

void set_force_reference(int mode) {
  g_force_mode.store(mode, std::memory_order_relaxed);
}

engine::ThreadPool* intra_pool() {
  const std::size_t jobs = cell_jobs();
  if (jobs <= 1) return nullptr;
  if (engine::ThreadPool* shared =
          g_shared_pool.load(std::memory_order_acquire)) {
    return shared;
  }
  // Owned pool: jobs - 1 helper threads; parallel_for's caller
  // participation makes the total width `jobs`.
  std::lock_guard<std::mutex> lock(g_owned_mu);
  if (!g_owned_pool || g_owned_pool->thread_count() != jobs - 1) {
    g_owned_pool.reset();  // join the old width before spawning the new
    g_owned_pool = std::make_unique<engine::ThreadPool>(jobs - 1);
  }
  return g_owned_pool.get();
}

ScopedSharedPool::ScopedSharedPool(engine::ThreadPool* pool) {
  if (!pool || cell_jobs() <= 1) return;
  engine::ThreadPool* expected = nullptr;
  installed_ = g_shared_pool.compare_exchange_strong(
      expected, pool, std::memory_order_acq_rel);
}

ScopedSharedPool::~ScopedSharedPool() {
  if (installed_) g_shared_pool.store(nullptr, std::memory_order_release);
}

}  // namespace swsim::mag::kernels
