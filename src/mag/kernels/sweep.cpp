#include "mag/kernels/sweep.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX__)
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace swsim::mag::kernels {

void axpy(SoaVec& out, const SoaVec& base, double s, const SoaVec& k,
          std::size_t b, std::size_t e) {
  double* __restrict ox = out.x.data();
  double* __restrict oy = out.y.data();
  double* __restrict oz = out.z.data();
  const double* __restrict bx = base.x.data();
  const double* __restrict by = base.y.data();
  const double* __restrict bz = base.z.data();
  const double* __restrict kx = k.x.data();
  const double* __restrict ky = k.y.data();
  const double* __restrict kz = k.z.data();
  for (std::size_t i = b; i < e; ++i) {
    ox[i] = bx[i] + kx[i] * s;
    oy[i] = by[i] + ky[i] * s;
    oz[i] = bz[i] + kz[i] * s;
  }
}

double err_max_range(double h, const double (&c)[5],
                     const SoaVec* const (&k)[5], std::size_t b,
                     std::size_t e) {
  double worst = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    double ax = k[0]->x[i] * c[0];
    double ay = k[0]->y[i] * c[0];
    double az = k[0]->z[i] * c[0];
    for (int j = 1; j < 5; ++j) {
      ax += k[j]->x[i] * c[j];
      ay += k[j]->y[i] * c[j];
      az += k[j]->z[i] * c[j];
    }
    const double dx = ax * h, dy = ay * h, dz = az * h;
    const double nrm = std::sqrt(dx * dx + dy * dy + dz * dz);
    worst = std::max(worst, nrm);
  }
  return worst;
}

namespace {

// ---------------------------------------------------------------------------
// Lane abstraction for the fused sweep. One lane = one cell; every
// arithmetic intrinsic below is the IEEE-754 double operation applied per
// lane, so an N-wide block computes exactly what N scalar iterations
// would. No FMA is ever emitted from these (mul and add stay separate
// instructions), keeping results identical across -march levels as long
// as contraction stays off in the scalar reference too (the default
// target has no FMA; SWSIM_NATIVE builds add -ffp-contract=off).

struct ScalarLane {
  static constexpr std::size_t kWidth = 1;
  double v;
  static ScalarLane load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static ScalarLane set1(double s) { return {s}; }
  static ScalarLane zero() { return {0.0}; }
  friend ScalarLane operator+(ScalarLane a, ScalarLane b) {
    return {a.v + b.v};
  }
  friend ScalarLane operator-(ScalarLane a, ScalarLane b) {
    return {a.v - b.v};
  }
  friend ScalarLane operator*(ScalarLane a, ScalarLane b) {
    return {a.v * b.v};
  }
  // h + d where the gate is nonzero; h's bits untouched elsewhere.
  static ScalarLane gated_add(ScalarLane h, ScalarLane gate, ScalarLane d) {
    return gate.v != 0.0 ? ScalarLane{h.v + d.v} : h;
  }
};

#if defined(__AVX__)

struct SimdLane {
  static constexpr std::size_t kWidth = 4;
  __m256d v;
  static SimdLane load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static SimdLane set1(double s) { return {_mm256_set1_pd(s)}; }
  static SimdLane zero() { return {_mm256_setzero_pd()}; }
  friend SimdLane operator+(SimdLane a, SimdLane b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend SimdLane operator-(SimdLane a, SimdLane b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend SimdLane operator*(SimdLane a, SimdLane b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  static SimdLane gated_add(SimdLane h, SimdLane gate, SimdLane d) {
    const __m256d on =
        _mm256_cmp_pd(gate.v, _mm256_setzero_pd(), _CMP_NEQ_OQ);
    return {_mm256_blendv_pd(h.v, _mm256_add_pd(h.v, d.v), on)};
  }
};

#elif defined(__SSE2__) || defined(_M_X64)

struct SimdLane {
  static constexpr std::size_t kWidth = 2;
  __m128d v;
  static SimdLane load(const double* p) { return {_mm_loadu_pd(p)}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  static SimdLane set1(double s) { return {_mm_set1_pd(s)}; }
  static SimdLane zero() { return {_mm_setzero_pd()}; }
  friend SimdLane operator+(SimdLane a, SimdLane b) {
    return {_mm_add_pd(a.v, b.v)};
  }
  friend SimdLane operator-(SimdLane a, SimdLane b) {
    return {_mm_sub_pd(a.v, b.v)};
  }
  friend SimdLane operator*(SimdLane a, SimdLane b) {
    return {_mm_mul_pd(a.v, b.v)};
  }
  static SimdLane gated_add(SimdLane h, SimdLane gate, SimdLane d) {
    const __m128d on = _mm_cmpneq_pd(gate.v, _mm_setzero_pd());
    const __m128d sum = _mm_add_pd(h.v, d.v);
    return {_mm_or_pd(_mm_and_pd(on, sum), _mm_andnot_pd(on, h.v))};
  }
};

#else

using SimdLane = ScalarLane;  // portable fallback: scalar blocks

#endif

// The LLG right-hand side for one lane-block, exactly llg_rhs()'s
// expression: dmdt = pref * (m x h + alpha * m x (m x h)).
template <class V>
inline void llg_lanes(V mx, V my, V mz, V hx, V hy, V hz, V alpha, V pref,
                      V& ox, V& oy, V& oz) {
  const V cx = my * hz - mz * hy;
  const V cy = mz * hx - mx * hz;
  const V cz = mx * hy - my * hx;
  const V tx = my * cz - mz * cy;
  const V ty = mz * cx - mx * cz;
  const V tz = mx * cy - my * cx;
  ox = (cx + tx * alpha) * pref;
  oy = (cy + ty * alpha) * pref;
  oz = (cz + tz * alpha) * pref;
}

// One interior block of V::kWidth cells starting at flat index i:
// accumulate every op in term order, then the rhs. Interior cells have
// every existing-axis neighbour in bounds and active, so exchange reads
// m at i ± axis_stride directly.
template <class V>
inline void fused_block(const KernelPlan& p, const double* __restrict mx,
                        const double* __restrict my,
                        const double* __restrict mz, const EvalOp* ops,
                        std::size_t nops, std::uint8_t run_antenna,
                        double* __restrict ox, double* __restrict oy,
                        double* __restrict oz, std::size_t i) {
  const V mix = V::load(mx + i);
  const V miy = V::load(my + i);
  const V miz = V::load(mz + i);
  V hx = V::zero(), hy = V::zero(), hz = V::zero();
  for (std::size_t o = 0; o < nops; ++o) {
    const EvalOp& op = ops[o];
    switch (op.kind) {
      case OpKind::kExchange: {
        V lx = V::zero(), ly = V::zero(), lz = V::zero();
        for (int a = 0; a < 3; ++a) {
          if (!p.axis_used[a]) continue;
          const std::ptrdiff_t st = p.axis_stride[a];
          const V w = V::set1(p.inv_d2[a]);
          lx = lx + (V::load(mx + i - st) - mix) * w;
          ly = ly + (V::load(my + i - st) - miy) * w;
          lz = lz + (V::load(mz + i - st) - miz) * w;
          lx = lx + (V::load(mx + i + st) - mix) * w;
          ly = ly + (V::load(my + i + st) - miy) * w;
          lz = lz + (V::load(mz + i + st) - miz) * w;
        }
        const V pref = V::set1(op.pref);
        hx = hx + lx * pref;
        hy = hy + ly * pref;
        hz = hz + lz * pref;
        break;
      }
      case OpKind::kAnisotropy: {
        const V vax = V::set1(op.ax), vay = V::set1(op.ay),
                vaz = V::set1(op.az);
        V d = mix * vax + miy * vay;
        d = d + miz * vaz;
        const V sc = V::set1(op.pref) * d;
        hx = hx + vax * sc;
        hy = hy + vay * sc;
        hz = hz + vaz * sc;
        break;
      }
      case OpKind::kThinFilmDemag:
        hz = hz - V::load(p.ms.data() + i) * miz;
        break;
      case OpKind::kUniformZeeman:
        hx = hx + V::set1(op.dx);
        hy = hy + V::set1(op.dy);
        hz = hz + V::set1(op.dz);
        break;
      case OpKind::kAntenna:
        if (!op.skip && (run_antenna & op.bit)) {
          const V g = V::load(op.gate->data() + i);
          hx = V::gated_add(hx, g, V::set1(op.dx));
          hy = V::gated_add(hy, g, V::set1(op.dy));
          hz = V::gated_add(hz, g, V::set1(op.dz));
        }
        break;
    }
  }
  V rx, ry, rz;
  llg_lanes(mix, miy, miz, hx, hy, hz, V::load(p.alpha.data() + i),
            V::load(p.llg_pref.data() + i), rx, ry, rz);
  rx.store(ox + i);
  ry.store(oy + i);
  rz.store(oz + i);
}

}  // namespace

void fused_run(const KernelPlan& p, const SoaVec& m,
               const std::vector<EvalOp>& ops, SoaVec& dmdt, std::size_t fb,
               std::size_t fe, std::uint8_t run_antenna) {
  const double* mx = m.x.data();
  const double* my = m.y.data();
  const double* mz = m.z.data();
  double* ox = dmdt.x.data();
  double* oy = dmdt.y.data();
  double* oz = dmdt.z.data();
  const EvalOp* op0 = ops.data();
  const std::size_t nops = ops.size();
  std::size_t i = fb;
  for (; i + SimdLane::kWidth <= fe; i += SimdLane::kWidth) {
    fused_block<SimdLane>(p, mx, my, mz, op0, nops, run_antenna, ox, oy, oz,
                          i);
  }
  for (; i < fe; ++i) {
    fused_block<ScalarLane>(p, mx, my, mz, op0, nops, run_antenna, ox, oy, oz,
                            i);
  }
}

void fused_edge(const KernelPlan& p, const SoaVec& m,
                const std::vector<EvalOp>& ops, SoaVec& dmdt, std::size_t eb,
                std::size_t ee) {
  const std::uint32_t* act = p.active.data();
  const std::uint32_t* edge = p.edge_slots.data();
  const double* mx = m.x.data();
  const double* my = m.y.data();
  const double* mz = m.z.data();
  const EvalOp* op0 = ops.data();
  const std::size_t nops = ops.size();
  for (std::size_t j = eb; j < ee; ++j) {
    const std::size_t s = edge[j];
    const std::size_t i = act[s];
    const double mix = mx[i], miy = my[i], miz = mz[i];
    double hx = 0.0, hy = 0.0, hz = 0.0;
    for (std::size_t o = 0; o < nops; ++o) {
      const EvalOp& op = op0[o];
      switch (op.kind) {
        case OpKind::kExchange: {
          const std::uint32_t* nbp = &p.nb[6 * s];
          double lx = 0.0, ly = 0.0, lz = 0.0;
          for (int k = 0; k < 6; ++k) {
            const std::size_t j2 = nbp[k];
            const double w = p.inv_d2[k >> 1];
            lx += (mx[j2] - mix) * w;
            ly += (my[j2] - miy) * w;
            lz += (mz[j2] - miz) * w;
          }
          hx += lx * op.pref;
          hy += ly * op.pref;
          hz += lz * op.pref;
          break;
        }
        case OpKind::kAnisotropy: {
          const double d = mix * op.ax + miy * op.ay + miz * op.az;
          const double sc = op.pref * d;
          hx += op.ax * sc;
          hy += op.ay * sc;
          hz += op.az * sc;
          break;
        }
        case OpKind::kThinFilmDemag:
          hz -= p.ms[i] * miz;
          break;
        case OpKind::kUniformZeeman:
          hx += op.dx;
          hy += op.dy;
          hz += op.dz;
          break;
        case OpKind::kAntenna:
          if (!op.skip && (p.antenna_bits[s] & op.bit)) {
            hx += op.dx;
            hy += op.dy;
            hz += op.dz;
          }
          break;
      }
    }
    ScalarLane rx, ry, rz;
    llg_lanes(ScalarLane{mix}, ScalarLane{miy}, ScalarLane{miz},
              ScalarLane{hx}, ScalarLane{hy}, ScalarLane{hz},
              ScalarLane{p.alpha[i]}, ScalarLane{p.llg_pref[i]}, rx, ry, rz);
    dmdt.x[i] = rx.v;
    dmdt.y[i] = ry.v;
    dmdt.z[i] = rz.v;
  }
}

void term_sweep(const KernelPlan& p, const SoaVec& m, const EvalOp& op,
                SoaVec& h, std::size_t sb, std::size_t se) {
  const std::uint32_t* act = p.active.data();
  const double* mx = m.x.data();
  const double* my = m.y.data();
  const double* mz = m.z.data();
  double* hx = h.x.data();
  double* hy = h.y.data();
  double* hz = h.z.data();
  switch (op.kind) {
    case OpKind::kExchange:
      for (std::size_t s = sb; s < se; ++s) {
        const std::size_t i = act[s];
        const double mix = mx[i], miy = my[i], miz = mz[i];
        const std::uint32_t* nbp = &p.nb[6 * s];
        double lx = 0.0, ly = 0.0, lz = 0.0;
        for (int k = 0; k < 6; ++k) {
          const std::size_t j = nbp[k];
          const double w = p.inv_d2[k >> 1];
          lx += (mx[j] - mix) * w;
          ly += (my[j] - miy) * w;
          lz += (mz[j] - miz) * w;
        }
        hx[i] += lx * op.pref;
        hy[i] += ly * op.pref;
        hz[i] += lz * op.pref;
      }
      break;
    case OpKind::kAnisotropy:
      for (std::size_t s = sb; s < se; ++s) {
        const std::size_t i = act[s];
        const double d = mx[i] * op.ax + my[i] * op.ay + mz[i] * op.az;
        const double sc = op.pref * d;
        hx[i] += op.ax * sc;
        hy[i] += op.ay * sc;
        hz[i] += op.az * sc;
      }
      break;
    case OpKind::kThinFilmDemag:
      for (std::size_t s = sb; s < se; ++s) {
        const std::size_t i = act[s];
        hz[i] -= p.ms[i] * mz[i];
      }
      break;
    case OpKind::kUniformZeeman:
      for (std::size_t s = sb; s < se; ++s) {
        const std::size_t i = act[s];
        hx[i] += op.dx;
        hy[i] += op.dy;
        hz[i] += op.dz;
      }
      break;
    case OpKind::kAntenna:
      // Region index list, not the slot range: the drive's whole point is
      // to touch only the cells the antenna powers.
      if (!op.skip) {
        for (const std::uint32_t i : *op.cells) {
          hx[i] += op.dx;
          hy[i] += op.dy;
          hz[i] += op.dz;
        }
      }
      break;
  }
}

void rhs_sweep(const KernelPlan& p, const SoaVec& m, const SoaVec& h,
               SoaVec& dmdt, std::size_t sb, std::size_t se) {
  const std::uint32_t* act = p.active.data();
  for (std::size_t s = sb; s < se; ++s) {
    const std::size_t i = act[s];
    ScalarLane rx, ry, rz;
    llg_lanes(ScalarLane{m.x[i]}, ScalarLane{m.y[i]}, ScalarLane{m.z[i]},
              ScalarLane{h.x[i]}, ScalarLane{h.y[i]}, ScalarLane{h.z[i]},
              ScalarLane{p.alpha[i]}, ScalarLane{p.llg_pref[i]}, rx, ry, rz);
    dmdt.x[i] = rx.v;
    dmdt.y[i] = ry.v;
    dmdt.z[i] = rz.v;
  }
}

}  // namespace swsim::mag::kernels
