#include "mag/kernels/plan.h"

#include <algorithm>
#include <limits>

#include "math/constants.h"
#include "obs/metrics.h"

namespace swsim::mag::kernels {

using swsim::math::kGamma;
using swsim::math::kMu0;

namespace {

// Runs shorter than this go to the edge path instead: a handful of scalar
// cells costs less than another run-table entry and dispatch.
constexpr std::size_t kMinRun = 4;

}  // namespace

bool KernelPlan::matches(
    const System& s,
    const std::vector<std::unique_ptr<FieldTerm>>& terms) const {
  if (sys != &s || revision != s.revision()) return false;
  if (terms.size() != term_sig.size()) return false;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].get() != term_sig[i]) return false;
  }
  // Content check (grid + bytes): cheap memcmp-class work per step,
  // absolute protection against a recycled System address.
  return mask == s.mask();
}

std::unique_ptr<KernelPlan> build_plan(
    const System& sys, const std::vector<std::unique_ptr<FieldTerm>>& terms) {
  const auto& g = sys.grid();
  const std::size_t n = g.cell_count();
  if (n > std::numeric_limits<std::uint32_t>::max()) return nullptr;

  auto plan = std::make_unique<KernelPlan>();

  // Lower the terms first: the common rejection (a thermal or Newell demag
  // term in the set) must cost O(terms), not O(cells).
  plan->ops.reserve(terms.size());
  std::size_t antennas = 0;
  for (const auto& term : terms) {
    TermOp op;
    if (!term->compile_kernel(sys, op)) return nullptr;
    op.name = term->name();
    if (op.kind == OpKind::kExchange) plan->has_exchange = true;
    if (op.kind == OpKind::kAntenna) ++antennas;
    plan->term_sig.push_back(term.get());
    plan->ops.push_back(std::move(op));
  }

  plan->sys = &sys;
  plan->revision = sys.revision();
  plan->mask = sys.mask();
  plan->n = n;

  const auto& mask = sys.mask();
  plan->active.reserve(sys.magnetic_cell_count());
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i]) plan->active.push_back(static_cast<std::uint32_t>(i));
  }
  const std::size_t slots = plan->active.size();

  plan->alpha.resize(n);
  plan->llg_pref.resize(n);
  plan->ms.resize(n);
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t i = plan->active[s];
    const double alpha = sys.alpha_at(i);
    plan->alpha[i] = alpha;
    // Exactly the reference path's expression, precomputed per cell.
    plan->llg_pref[i] = -kGamma * kMu0 / (1.0 + alpha * alpha);
    plan->ms[i] = sys.ms_at(i);
  }

  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  plan->inv_d2[0] = 1.0 / (g.dx() * g.dx());
  plan->inv_d2[1] = 1.0 / (g.dy() * g.dy());
  plan->inv_d2[2] = 1.0 / (g.dz() * g.dz());
  plan->axis_used[0] = nx > 1;
  plan->axis_used[1] = ny > 1;
  plan->axis_used[2] = nz > 1;
  plan->axis_stride[0] =
      nx > 1 ? static_cast<std::ptrdiff_t>(g.index(1, 0, 0) - g.index(0, 0, 0))
             : 0;
  plan->axis_stride[1] =
      ny > 1 ? static_cast<std::ptrdiff_t>(g.index(0, 1, 0) - g.index(0, 0, 0))
             : 0;
  plan->axis_stride[2] =
      nz > 1 ? static_cast<std::ptrdiff_t>(g.index(0, 0, 1) - g.index(0, 0, 0))
             : 0;

  if (plan->has_exchange) {
    // Six neighbour indices per active cell, reference traversal order
    // -x,+x,-y,+y,-z,+z, for the edge/term-sweep paths. Absent or vacuum
    // neighbours get the cell's own index: (m[i] - m[i]) * w is an exact
    // +0.0 contribution, bit-identical to the reference skipping it.
    plan->nb.resize(6 * slots);
    for (std::size_t s = 0; s < slots; ++s) {
      const std::size_t i = plan->active[s];
      const auto xyz = g.unindex(i);
      const std::size_t x = xyz.x, y = xyz.y, z = xyz.z;
      std::uint32_t* nbp = &plan->nb[6 * s];
      for (int k = 0; k < 6; ++k) nbp[k] = static_cast<std::uint32_t>(i);
      auto set = [&](int k, std::size_t j) {
        if (mask[j]) nbp[k] = static_cast<std::uint32_t>(j);
      };
      if (x > 0) set(0, g.index(x - 1, y, z));
      if (x + 1 < nx) set(1, g.index(x + 1, y, z));
      if (y > 0) set(2, g.index(x, y - 1, z));
      if (y + 1 < ny) set(3, g.index(x, y + 1, z));
      if (z > 0) set(4, g.index(x, y, z - 1));
      if (z + 1 < nz) set(5, g.index(x, y, z + 1));
    }
  }

  plan->fused_ok = antennas <= 8;

  // Interior runs: per x-row, maximal stride-1 spans of active cells whose
  // existing-axis neighbours are all active (only the exchange op reaches
  // off-cell, so without one every active cell qualifies). Requires x to
  // be the fastest-varying axis; on any other layout everything stays on
  // the (still exact) edge path.
  std::vector<std::uint8_t> covered(n, 0);
  if (plan->fused_ok && (plan->axis_stride[0] == 1 || nx == 1)) {
    const std::ptrdiff_t sy = plan->axis_stride[1];
    const std::ptrdiff_t sz = plan->axis_stride[2];
    for (std::size_t z = 0; z < nz; ++z) {
      for (std::size_t y = 0; y < ny; ++y) {
        std::size_t run_b = 0, run_len = 0;
        auto close = [&] {
          if (run_len >= kMinRun) {
            KernelPlan::Run run;
            run.b = static_cast<std::uint32_t>(run_b);
            run.e = static_cast<std::uint32_t>(run_b + run_len);
            plan->runs.push_back(run);
            std::fill(covered.begin() + run.b, covered.begin() + run.e, 1);
          }
          run_len = 0;
        };
        for (std::size_t x = 0; x < nx; ++x) {
          const std::size_t i = g.index(x, y, z);
          bool ok = mask[i];
          if (ok && plan->has_exchange) {
            if (nx > 1) {
              ok = x > 0 && x + 1 < nx && mask[i - 1] && mask[i + 1];
            }
            if (ok && ny > 1) {
              ok = y > 0 && y + 1 < ny && mask[i - sy] && mask[i + sy];
            }
            if (ok && nz > 1) {
              ok = z > 0 && z + 1 < nz && mask[i - sz] && mask[i + sz];
            }
          }
          if (ok) {
            if (run_len == 0) run_b = i;
            ++run_len;
          } else {
            close();
          }
        }
        close();
      }
    }
  }
  plan->run_prefix.resize(plan->runs.size() + 1);
  plan->run_prefix[0] = 0;
  for (std::size_t r = 0; r < plan->runs.size(); ++r) {
    plan->run_prefix[r + 1] =
        plan->run_prefix[r] + (plan->runs[r].e - plan->runs[r].b);
  }
  plan->interior_total = plan->run_prefix.back();
  plan->edge_slots.reserve(slots - plan->interior_total);
  for (std::size_t s = 0; s < slots; ++s) {
    if (!covered[plan->active[s]]) {
      plan->edge_slots.push_back(static_cast<std::uint32_t>(s));
    }
  }

  if (plan->fused_ok && antennas > 0) {
    // slot_of[i]: grid index -> active slot, for marking coverage bits.
    std::vector<std::uint32_t> slot_of(n, 0);
    for (std::size_t s = 0; s < slots; ++s) slot_of[plan->active[s]] = s;
    plan->antenna_bits.assign(slots, 0);
    std::uint8_t bit = 1;
    for (TermOp& op : plan->ops) {
      if (op.kind != OpKind::kAntenna) continue;
      op.gate.assign(n, 0.0);
      for (const std::uint32_t i : op.cells) {
        plan->antenna_bits[slot_of[i]] |= bit;
        op.gate[i] = 1.0;
      }
      for (auto& run : plan->runs) {
        for (std::size_t i = run.b; i < run.e; ++i) {
          if (op.gate[i] != 0.0) {
            run.antenna |= bit;
            break;
          }
        }
      }
      bit = static_cast<std::uint8_t>(bit << 1);
    }
  }

  plan->op_us.reserve(plan->ops.size());
  for (const TermOp& op : plan->ops) {
    plan->op_us.push_back(&obs::MetricsRegistry::global().counter(
        "mag.term." + op.name + ".us"));
  }

  return plan;
}

}  // namespace swsim::mag::kernels
