// A field term lowered to plain data.
//
// The fused SoA sweep (sweep.h) cannot call FieldTerm::accumulate — a
// virtual call per term per cell, branching on the mask, is exactly the
// overhead the kernel layer removes. Instead each fusable term *compiles*
// itself into a TermOp: an op kind plus the handful of scalars the sweep
// needs (prefactors, axes, drive parameters, a precomputed region index
// list). Terms that have no kernel form — the stochastic thermal field,
// the non-local FFT demag — refuse to compile and the solver keeps the
// scalar reference path for the whole term set.
//
// The bit-exactness contract (docs/PERFORMANCE.md): executing the ops in
// term order per cell reproduces the reference path's per-cell floating-
// point operation sequence exactly, so kernel and reference output are
// byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swsim::mag {
class Envelope;
}

namespace swsim::mag::kernels {

enum class OpKind : std::uint8_t {
  kExchange,       // six-neighbour Laplacian via the plan's neighbour table
  kAnisotropy,     // h += pref * (m . axis) * axis
  kThinFilmDemag,  // h.z -= ms(i) * m.z  (per-cell Ms)
  kUniformZeeman,  // h += H_applied
  kAntenna,        // h += dir * (A * env(t) * sin(2 pi f t + phase)) on cells
};

struct TermOp {
  OpKind kind{};
  std::string name;  // FieldTerm::name(), keys "mag.term.<name>.us"

  double pref = 0.0;              // exchange / anisotropy prefactor
  double ax = 0, ay = 0, az = 0;  // anisotropy axis or antenna direction
  double hx = 0, hy = 0, hz = 0;  // uniform Zeeman field [A/m]

  double amplitude = 0.0;  // antenna drive [A/m]
  double frequency = 0.0;  // [Hz]
  double phase = 0.0;      // [rad]
  const Envelope* envelope = nullptr;  // owned by the term, outlives the plan

  // Antenna only: region ∧ system mask as ascending grid indices, so the
  // drive touches exactly the cells it powers instead of scanning the grid.
  std::vector<std::uint32_t> cells;

  // Antenna only, filled by build_plan when the fused sweep is usable: a
  // full-grid 1.0/0.0 coverage vector. The SIMD fused sweep turns the
  // per-cell region branch into a lane select against this array, which
  // keeps whole-vector blocks branchless while leaving undriven lanes'
  // field bits untouched.
  std::vector<double> gate;
};

}  // namespace swsim::mag::kernels
