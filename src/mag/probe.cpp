#include "mag/probe.h"

#include <stdexcept>

namespace swsim::mag {

RegionProbe::RegionProbe(std::string name, const swsim::math::Mask& region,
                         double sample_dt, std::size_t max_samples)
    : name_(std::move(name)),
      region_(region),
      sample_dt_(sample_dt),
      base_sample_dt_(sample_dt),
      max_samples_(max_samples) {
  if (!(sample_dt > 0.0)) {
    throw std::invalid_argument("RegionProbe: sample_dt must be > 0");
  }
  if (region_.count() == 0) {
    throw std::invalid_argument("RegionProbe '" + name_ + "': empty region");
  }
  if (max_samples_ != 0 && (max_samples_ < 8 || max_samples_ % 2 != 0)) {
    throw std::invalid_argument("RegionProbe '" + name_ +
                                "': max_samples must be 0 or an even "
                                "count >= 8");
  }
}

void RegionProbe::arm_demodulator(double f0, std::size_t window_samples) {
  demod_.emplace(f0, window_samples);
}

void RegionProbe::decimate() {
  // Keep every other sample. The survivors stay uniformly spaced at twice
  // the old interval, and — because the stored count is even — the next
  // due sample already lies on the coarsened grid.
  const std::size_t half = t_.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    t_[i] = t_[2 * i];
    mx_[i] = mx_[2 * i];
    my_[i] = my_[2 * i];
    mz_[i] = mz_[2 * i];
  }
  t_.resize(half);
  mx_.resize(half);
  my_.resize(half);
  mz_.resize(half);
  sample_dt_ *= 2.0;
}

bool RegionProbe::maybe_record(const System& sys, const VectorField& m,
                               double t) {
  if (t + 1e-18 < next_sample_) return false;
  if (!(region_.grid() == sys.grid())) {
    throw std::invalid_argument("RegionProbe '" + name_ +
                                "': grid mismatch with system");
  }
  Vec3 acc{};
  std::size_t n = 0;
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (region_[i] && mask[i]) {
      acc += m[i];
      ++n;
    }
  }
  if (n == 0) {
    throw std::runtime_error("RegionProbe '" + name_ +
                             "': region contains no magnetic cells");
  }
  acc /= static_cast<double>(n);
  if (max_samples_ != 0 && t_.size() == max_samples_) decimate();
  t_.push_back(t);
  mx_.push_back(acc.x);
  my_.push_back(acc.y);
  mz_.push_back(acc.z);
  next_sample_ += sample_dt_;
  // The demodulator consumes the live stream at the recording cadence;
  // decimation only compacts the *stored* series.
  return demod_ ? demod_->add_sample(t, acc.x) : false;
}

RegionProbe::Checkpoint RegionProbe::checkpoint() const {
  Checkpoint cp;
  cp.samples = t_.size();
  cp.next_sample = next_sample_;
  cp.sample_dt = sample_dt_;
  if (max_samples_ != 0) {
    cp.full = true;
    cp.t = t_;
    cp.mx = mx_;
    cp.my = my_;
    cp.mz = mz_;
  }
  if (demod_) cp.demod = demod_->checkpoint();
  return cp;
}

void RegionProbe::restore(const Checkpoint& cp) {
  if (cp.full) {
    t_ = cp.t;
    mx_ = cp.mx;
    my_ = cp.my;
    mz_ = cp.mz;
  } else {
    if (cp.samples > t_.size()) {
      throw std::invalid_argument("RegionProbe '" + name_ +
                                  "': checkpoint is ahead of the record");
    }
    t_.resize(cp.samples);
    mx_.resize(cp.samples);
    my_.resize(cp.samples);
    mz_.resize(cp.samples);
  }
  next_sample_ = cp.next_sample;
  sample_dt_ = cp.sample_dt > 0.0 ? cp.sample_dt : sample_dt_;
  if (demod_) demod_->restore(cp.demod);
}

void RegionProbe::clear() {
  t_.clear();
  mx_.clear();
  my_.clear();
  mz_.clear();
  next_sample_ = 0.0;
  sample_dt_ = base_sample_dt_;
  if (demod_) demod_->clear();
}

}  // namespace swsim::mag
