#include "mag/probe.h"

#include <stdexcept>

namespace swsim::mag {

RegionProbe::RegionProbe(std::string name, const swsim::math::Mask& region,
                         double sample_dt)
    : name_(std::move(name)), region_(region), sample_dt_(sample_dt) {
  if (!(sample_dt > 0.0)) {
    throw std::invalid_argument("RegionProbe: sample_dt must be > 0");
  }
  if (region_.count() == 0) {
    throw std::invalid_argument("RegionProbe '" + name_ + "': empty region");
  }
}

void RegionProbe::maybe_record(const System& sys, const VectorField& m,
                               double t) {
  if (t + 1e-18 < next_sample_) return;
  if (!(region_.grid() == sys.grid())) {
    throw std::invalid_argument("RegionProbe '" + name_ +
                                "': grid mismatch with system");
  }
  Vec3 acc{};
  std::size_t n = 0;
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (region_[i] && mask[i]) {
      acc += m[i];
      ++n;
    }
  }
  if (n == 0) {
    throw std::runtime_error("RegionProbe '" + name_ +
                             "': region contains no magnetic cells");
  }
  acc /= static_cast<double>(n);
  t_.push_back(t);
  mx_.push_back(acc.x);
  my_.push_back(acc.y);
  mz_.push_back(acc.z);
  next_sample_ += sample_dt_;
}

void RegionProbe::restore(const Checkpoint& cp) {
  if (cp.samples > t_.size()) {
    throw std::invalid_argument("RegionProbe '" + name_ +
                                "': checkpoint is ahead of the record");
  }
  t_.resize(cp.samples);
  mx_.resize(cp.samples);
  my_.resize(cp.samples);
  mz_.resize(cp.samples);
  next_sample_ = cp.next_sample;
}

void RegionProbe::clear() {
  t_.clear();
  mx_.clear();
  my_.clear();
  mz_.clear();
  next_sample_ = 0.0;
}

}  // namespace swsim::mag
