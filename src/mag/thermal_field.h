// Stochastic thermal field (Brown 1963), the finite-temperature extension of
// LLG used for the robustness study of Sec. IV-D.
//
// Each magnetic cell receives an independent Gaussian field with
//   sigma_H = sqrt( 2 alpha k_B T / (mu0 gamma Ms V_cell dt) )   [A/m]
// per component, held constant across the stages of one integrator step and
// redrawn via advance_step(). This is the standard Heun-compatible
// discretization of the thermal torque (MuMax3 uses the same expression).
#pragma once

#include "mag/field_term.h"
#include "math/rng.h"

namespace swsim::mag {

class ThermalField final : public FieldTerm {
 public:
  // temperature in kelvin; seed fixes the noise realization.
  ThermalField(double temperature, std::uint64_t seed = 42);

  std::string name() const override { return "thermal"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  void advance_step(double dt) override;

  double temperature() const { return temperature_; }

  // Standard deviation of each field component [A/m] for the given system
  // and step size. Exposed for tests (fluctuation magnitude scaling).
  double sigma(const System& sys, double dt) const;

 private:
  void ensure_noise(const System& sys);

  double temperature_;
  swsim::math::Pcg32 rng_;
  double dt_ = 0.0;  // set by advance_step; 0 means "no step taken yet"
  VectorField noise_;  // unit-variance Gaussian triples, rescaled on use
  bool noise_ready_ = false;
};

}  // namespace swsim::mag
