#include "mag/system.h"

#include <stdexcept>

namespace swsim::mag {

System::System(const Grid& grid, const Material& material)
    : System(grid, material, Mask(grid, /*init=*/true)) {}

System::System(const Grid& grid, const Material& material, const Mask& mask)
    : grid_(grid),
      material_(material),
      mask_(mask),
      ms_scale_(grid, 0.0),
      alpha_(grid, material.alpha) {
  material_.validate();
  if (!(mask.grid() == grid)) {
    throw std::invalid_argument("System: mask grid differs from system grid");
  }
  magnetic_cells_ = mask_.count();
  if (magnetic_cells_ == 0) {
    throw std::invalid_argument("System: mask selects no magnetic cells");
  }
  for (std::size_t i = 0; i < ms_scale_.size(); ++i) {
    ms_scale_[i] = mask_[i] ? 1.0 : 0.0;
  }
}

void System::set_ms_scale(const ScalarField& scale) {
  if (!(scale.grid() == grid_)) {
    throw std::invalid_argument("System: ms_scale grid mismatch");
  }
  for (std::size_t i = 0; i < scale.size(); ++i) {
    if (!mask_[i] && scale[i] != 0.0) {
      throw std::invalid_argument(
          "System: ms_scale must be zero outside the mask");
    }
    if (scale[i] < 0.0) {
      throw std::invalid_argument("System: ms_scale must be non-negative");
    }
  }
  ms_scale_ = scale;
  ++revision_;
}

void System::set_alpha_field(const ScalarField& alpha) {
  if (!(alpha.grid() == grid_)) {
    throw std::invalid_argument("System: alpha field grid mismatch");
  }
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    if (!mask_[i]) continue;
    if (alpha[i] < material_.alpha - 1e-15 || alpha[i] > 1.0) {
      throw std::invalid_argument(
          "System: per-cell alpha must lie in [material alpha, 1]");
    }
  }
  alpha_ = alpha;
  ++revision_;
}

VectorField System::uniform_magnetization(const Vec3& direction) const {
  const Vec3 u = swsim::math::normalized(direction);
  VectorField m(grid_);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = mask_[i] ? u : Vec3{};
  }
  return m;
}

}  // namespace swsim::mag
