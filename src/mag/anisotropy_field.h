// Uniaxial magnetocrystalline anisotropy along a fixed axis:
//   H_ani = (2 Ku / (mu0 Ms)) (m . u) u
// The paper's film has perpendicular anisotropy, u = z.
#pragma once

#include "mag/field_term.h"

namespace swsim::mag {

class UniaxialAnisotropyField final : public FieldTerm {
 public:
  // Axis is normalized on construction; throws on a zero axis.
  explicit UniaxialAnisotropyField(const Vec3& axis = {0, 0, 1});

  std::string name() const override { return "anisotropy"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  double energy(const System& sys, const VectorField& m) const override;
  bool compile_kernel(const System& sys, kernels::TermOp& op) const override;

  const Vec3& axis() const { return axis_; }

 private:
  Vec3 axis_;
};

}  // namespace swsim::mag
