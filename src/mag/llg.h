// Landau-Lifshitz-Gilbert right-hand side and time steppers.
//
// The LLG equation in the (numerically convenient) Landau-Lifshitz form:
//   dm/dt = -gamma mu0 / (1 + alpha^2) * [ m x H + alpha m x (m x H) ]
// where m is the unit magnetization and H the effective field in A/m. This
// is algebraically identical to the Gilbert form quoted as Eq. (1) of the
// paper.
//
// Steppers:
//   Heun  — 2nd order, 2 field evaluations/step; the standard choice for
//           stochastic (finite-temperature) runs.
//   RK4   — 4th order, 4 evaluations/step; the workhorse for deterministic
//           wave-propagation runs.
//   RKF45 — Runge-Kutta-Fehlberg embedded 4(5) pair with adaptive step-size
//           control on the max-norm of dm.
//
// After every accepted step the magnetization is renormalized cell-wise
// (masked cells stay zero), which keeps |m| = 1 against integration drift.
#pragma once

#include <memory>
#include <vector>

#include "mag/field_term.h"
#include "mag/system.h"
#include "robust/watchdog.h"

namespace swsim::mag {

namespace kernels {
class SolveContext;
struct SoaVec;
}

// Computes H_eff (sum of all terms) for state m at time t into h (h is
// zeroed first).
void effective_field(const System& sys,
                     const std::vector<std::unique_ptr<FieldTerm>>& terms,
                     const VectorField& m, double t, VectorField& h);

// Computes the LLG right-hand side dm/dt into dmdt given m and H_eff.
void llg_rhs(const System& sys, const VectorField& m, const VectorField& h,
             VectorField& dmdt);

// Renormalizes every masked cell of m to unit length.
void renormalize(const System& sys, VectorField& m);

enum class StepperKind { kHeun, kRk4, kRkf45 };

struct StepperStats {
  std::size_t steps_taken = 0;
  std::size_t steps_rejected = 0;  // RKF45 only
  std::size_t field_evaluations = 0;
  double last_dt = 0.0;
};

// Owns the integration state machinery; the Simulation driver calls step().
class Stepper {
 public:
  // dt is the fixed step for Heun/RK4 and the initial step for RKF45.
  // tolerance is the RKF45 per-step max-norm error target (ignored by the
  // fixed-step methods).
  Stepper(StepperKind kind, double dt, double tolerance = 1e-5);
  ~Stepper();
  Stepper(Stepper&&) noexcept;
  Stepper& operator=(Stepper&&) noexcept;

  // Advances m from time t by one step; returns the step size actually taken
  // (RKF45 may shrink it). Notifies the terms via advance_step() so
  // stochastic terms redraw their noise.
  //
  // At the watchdog cadence the raw (pre-renormalization) state is scanned
  // for NaN/Inf and |m| norm drift; a violation throws robust::SolveError
  // with StatusCode::kNumericalDivergence instead of letting the poisoned
  // state propagate. Recovery policy lives in Simulation::run_guarded.
  double step(const System& sys,
              const std::vector<std::unique_ptr<FieldTerm>>& terms,
              VectorField& m, double t);

  const StepperStats& stats() const { return stats_; }
  StepperKind kind() const { return kind_; }
  double dt() const { return dt_; }
  double tolerance() const { return tolerance_; }

  // Replaces the (initial) step size; throws std::invalid_argument unless
  // dt > 0. Used by the step-halving divergence recovery.
  void set_dt(double dt);
  // Configures the numerical health checks (cadence 0 disables them).
  void set_watchdog(const robust::WatchdogConfig& config) {
    watchdog_ = config;
  }
  const robust::WatchdogConfig& watchdog() const { return watchdog_; }

 private:
  double step_heun(const System& sys,
                   const std::vector<std::unique_ptr<FieldTerm>>& terms,
                   VectorField& m, double t);
  double step_rk4(const System& sys,
                  const std::vector<std::unique_ptr<FieldTerm>>& terms,
                  VectorField& m, double t);
  double step_rkf45(const System& sys,
                    const std::vector<std::unique_ptr<FieldTerm>>& terms,
                    VectorField& m, double t);

  void eval(const System& sys,
            const std::vector<std::unique_ptr<FieldTerm>>& terms,
            const VectorField& m, double t, VectorField& dmdt);

  // Fused SoA kernel path (see src/mag/kernels/): bit-identical to the
  // reference steppers above, entered whenever every term lowers to a
  // kernel op. Returns nullptr — reference path — otherwise, or when
  // SWSIM_KERNEL_REF forces the scalar oracle.
  kernels::SolveContext* kernel_context(
      const System& sys, const std::vector<std::unique_ptr<FieldTerm>>& terms);
  void keval(kernels::SolveContext& c, const kernels::SoaVec& state, double t,
             kernels::SoaVec& dmdt);
  double kstep_heun(kernels::SolveContext& c, double t);
  double kstep_rk4(kernels::SolveContext& c, double t);
  double kstep_rkf45(kernels::SolveContext& c, double t);

  StepperKind kind_;
  double dt_;
  double tolerance_;
  StepperStats stats_;
  robust::WatchdogConfig watchdog_;
  VectorField h_;  // scratch field buffer reused across steps
  std::unique_ptr<kernels::SolveContext> kctx_;  // cached solve plan+buffers
};

}  // namespace swsim::mag
