#include "mag/anisotropy_field.h"

#include <stdexcept>

#include "mag/kernels/term_op.h"
#include "math/constants.h"

namespace swsim::mag {

using swsim::math::kMu0;

UniaxialAnisotropyField::UniaxialAnisotropyField(const Vec3& axis)
    : axis_(swsim::math::normalized(axis)) {
  if (norm2(axis_) == 0.0) {
    throw std::invalid_argument("UniaxialAnisotropyField: zero axis");
  }
}

void UniaxialAnisotropyField::accumulate(const System& sys,
                                         const VectorField& m, double /*t*/,
                                         VectorField& h) {
  const double pref =
      2.0 * sys.material().ku / (kMu0 * sys.material().ms);
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) continue;
    h[i] += pref * dot(m[i], axis_) * axis_;
  }
}

bool UniaxialAnisotropyField::compile_kernel(const System& sys,
                                             kernels::TermOp& op) const {
  op.kind = kernels::OpKind::kAnisotropy;
  op.pref = 2.0 * sys.material().ku / (kMu0 * sys.material().ms);
  op.ax = axis_.x;
  op.ay = axis_.y;
  op.az = axis_.z;
  return true;
}

double UniaxialAnisotropyField::energy(const System& sys,
                                       const VectorField& m) const {
  // E = Ku * integral (1 - (m.u)^2); the constant offset makes the aligned
  // state zero-energy, the usual convention.
  const auto& mask = sys.mask();
  double e = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) continue;
    const double proj = dot(m[i], axis_);
    e += 1.0 - proj * proj;
  }
  return sys.material().ku * e * sys.grid().cell_volume();
}

}  // namespace swsim::mag
