// Probes: time-series recorders attached to regions of the simulation.
//
// A RegionProbe mirrors the paper's detection cells: it records the
// region-averaged magnetization components every sample interval; detectors
// then run lock-in analysis on the m_x / m_z series (the precessing
// components carry the spin-wave signal).
//
// Two optional extensions turn a probe from a passive recorder into a live
// instrument:
//   * a memory bound (`max_samples`): on overflow the stored series is
//     decimated by 2 and the sampling interval doubled, so an arbitrarily
//     long solve keeps a uniformly spaced, bounded record;
//   * an armed LockinDemodulator: every recorded m_x sample is streamed
//     into an incremental quadrature demodulator at the drive frequency,
//     producing an amplitude/phase envelope *during* the run.
// Both keep the checkpoint/restore rewind path exact (see Checkpoint).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mag/demod.h"
#include "mag/system.h"

namespace swsim::mag {

class RegionProbe {
 public:
  // region must be on the system grid; sample_dt > 0 is the recording
  // interval. max_samples bounds the stored series: 0 keeps every sample;
  // otherwise it must be an even count >= 8 (decimate-by-2 only preserves
  // uniform spacing when it fires on an even sample count). Throws
  // std::invalid_argument on an empty region or a bad bound.
  RegionProbe(std::string name, const swsim::math::Mask& region,
              double sample_dt, std::size_t max_samples = 0);

  const std::string& name() const { return name_; }
  // Current recording interval — doubles on every decimation.
  double sample_dt() const { return sample_dt_; }
  std::size_t max_samples() const { return max_samples_; }

  // Arms live demodulation at drive frequency f0: each recorded m_x sample
  // feeds a tumbling window of `window_samples`. Replaces any previous
  // demodulator and drops its envelope.
  void arm_demodulator(double f0, std::size_t window_samples);
  const LockinDemodulator* demodulator() const {
    return demod_ ? &*demod_ : nullptr;
  }

  // Called by the simulation after each step; records when a sample is
  // due. Returns true when the recorded sample completed a demodulator
  // window (always false while no demodulator is armed).
  bool maybe_record(const System& sys, const VectorField& m, double t);

  const std::vector<double>& times() const { return t_; }
  const std::vector<double>& mx() const { return mx_; }
  const std::vector<double>& my() const { return my_; }
  const std::vector<double>& mz() const { return mz_; }

  std::size_t sample_count() const { return t_.size(); }
  void clear();

  // Rewind support for divergence recovery: checkpoint() captures the
  // recording position, restore() drops every sample taken since, so a
  // re-solve from the matching magnetization snapshot records the exact
  // same series a clean run would have. An unbounded probe only needs the
  // sample count; a bounded probe snapshots the stored series wholesale,
  // because a decimation after the checkpoint rewrites earlier samples
  // in place. The demodulator checkpoint rides along when armed.
  struct Checkpoint {
    std::size_t samples = 0;
    double next_sample = 0.0;
    double sample_dt = 0.0;
    bool full = false;  // true: t/mx/my/mz below hold a complete snapshot
    std::vector<double> t, mx, my, mz;
    LockinDemodulator::Checkpoint demod;
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& cp);

 private:
  void decimate();

  std::string name_;
  swsim::math::Mask region_;
  double sample_dt_;
  double base_sample_dt_;
  std::size_t max_samples_;
  double next_sample_ = 0.0;
  std::vector<double> t_, mx_, my_, mz_;
  std::optional<LockinDemodulator> demod_;
};

}  // namespace swsim::mag
