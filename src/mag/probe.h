// Probes: time-series recorders attached to regions of the simulation.
//
// A RegionProbe mirrors the paper's detection cells: it records the
// region-averaged magnetization components every sample interval; detectors
// then run lock-in analysis on the m_x / m_z series (the precessing
// components carry the spin-wave signal).
#pragma once

#include <string>
#include <vector>

#include "mag/system.h"

namespace swsim::mag {

class RegionProbe {
 public:
  // region must be on the system grid; sample_dt > 0 is the recording
  // interval. Throws std::invalid_argument on an empty region.
  RegionProbe(std::string name, const swsim::math::Mask& region,
              double sample_dt);

  const std::string& name() const { return name_; }
  double sample_dt() const { return sample_dt_; }

  // Called by the simulation after each step; records when a sample is due.
  void maybe_record(const System& sys, const VectorField& m, double t);

  const std::vector<double>& times() const { return t_; }
  const std::vector<double>& mx() const { return mx_; }
  const std::vector<double>& my() const { return my_; }
  const std::vector<double>& mz() const { return mz_; }

  std::size_t sample_count() const { return t_.size(); }
  void clear();

  // Rewind support for divergence recovery: checkpoint() captures the
  // recording position, restore() drops every sample taken since, so a
  // re-solve from the matching magnetization snapshot records the exact
  // same series a clean run would have.
  struct Checkpoint {
    std::size_t samples = 0;
    double next_sample = 0.0;
  };
  Checkpoint checkpoint() const { return {t_.size(), next_sample_}; }
  void restore(const Checkpoint& cp);

 private:
  std::string name_;
  swsim::math::Mask region_;
  double sample_dt_;
  double next_sample_ = 0.0;
  std::vector<double> t_, mx_, my_, mz_;
};

}  // namespace swsim::mag
