// Demagnetizing (dipolar) field.
//
// Two implementations, trading accuracy for speed:
//
// ThinFilmDemagField — the local ultrathin-film limit N = diag(0, 0, 1):
//   H_d = -Ms * m_z * z_hat  (per cell, using the local Ms).
// For a 1 nm film with cells much wider than thick this captures the
// dominant shape anisotropy and is what makes device-scale spin-wave runs
// CPU-feasible. The non-local dipolar correction it drops scales like the
// F(kd) ~ kd/2 term of the dispersion (a few percent at kd ~ 0.1).
//
// NewellDemagField — the exact finite-difference convolution:
//   H_i = - sum_j N(r_i - r_j) M_j
// with the cell-averaged Newell tensor (Newell, Williams & Dunlop 1993) and
// zero-padded FFT convolution, the same formulation OOMMF/MuMax3 use. The
// tensor is computed once per (grid geometry); each evaluation costs six
// FFTs. Used at small scale to validate the thin-film approximation and for
// accuracy-critical tests.
#pragma once

#include <complex>
#include <vector>

#include "mag/field_term.h"

namespace swsim::mag {

class ThinFilmDemagField final : public FieldTerm {
 public:
  std::string name() const override { return "demag(thin-film)"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  double energy(const System& sys, const VectorField& m) const override;
  bool compile_kernel(const System& sys, kernels::TermOp& op) const override;
};

// Cell-averaged Newell demag tensor entry N_ab for source-to-target offset
// (x, y, z) in meters and cell size (dx, dy, dz). Exposed for testing.
double newell_nxx(double x, double y, double z, double dx, double dy,
                  double dz);
double newell_nxy(double x, double y, double z, double dx, double dy,
                  double dz);

class NewellDemagField final : public FieldTerm {
 public:
  // Precomputes the tensor spectra for the system's grid (O(N log N) setup,
  // noticeable for large grids).
  explicit NewellDemagField(const System& sys);

  std::string name() const override { return "demag(newell)"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  double energy(const System& sys, const VectorField& m) const override;

  // Computes H_demag into a fresh field (helper shared by accumulate/energy).
  VectorField compute(const System& sys, const VectorField& m) const;

 private:
  std::size_t px_ = 0, py_ = 0, pz_ = 0;  // padded (power-of-two) dims
  // FFT of the six independent tensor components on the padded grid.
  std::vector<std::complex<double>> kxx_, kyy_, kzz_, kxy_, kxz_, kyz_;
};

}  // namespace swsim::mag
