// Incremental quadrature (lock-in) demodulation of a probe signal.
//
// The offline detectors (math/lockin.h) answer "what was the amplitude and
// phase at f0?" once, after a solve finishes. LockinDemodulator answers it
// *during* the run: samples are accumulated against cos/sin references into
// I/Q sums over tumbling windows of a fixed sample count, and each completed
// window appends one (t, amplitude, phase) point to the envelope — the live
// port signal that convergence tracking, streaming, and early stop consume.
//
// The per-window math matches math/lockin.cpp exactly (re = 2c/n,
// im = -2s/n, amplitude = hypot, phase = atan2(im, re), cos convention), so
// a window spanning whole periods of a pure tone reproduces the offline
// estimate.
//
// Rewind contract: the divergence-recovery path (Simulation::run_guarded)
// checkpoints probes and re-solves from a magnetization snapshot. A
// checkpoint captures the completed-window count *and* the partial I/Q
// accumulators; replaying the identical sample stream re-accumulates the
// identical doubles in the identical order, so a recovered run's envelope is
// bit-exact against a clean run's.
#pragma once

#include <cstddef>
#include <vector>

namespace swsim::mag {

class LockinDemodulator {
 public:
  // f0 > 0 is the reference (drive) frequency; window_samples >= 2 is the
  // tumbling-window length in samples. Throws std::invalid_argument.
  LockinDemodulator(double f0, std::size_t window_samples);

  double frequency() const { return f0_; }
  std::size_t window_samples() const { return window_samples_; }

  // Feeds one sample x(t). Returns true when this sample completed a
  // window (one envelope point was appended).
  bool add_sample(double t, double x);

  // Envelope series, one entry per completed window. times() holds the
  // timestamp of each window's last sample.
  const std::vector<double>& times() const { return t_; }
  const std::vector<double>& amplitude() const { return amplitude_; }
  const std::vector<double>& phase() const { return phase_; }
  std::size_t window_count() const { return t_.size(); }

  void clear();

  struct Checkpoint {
    std::size_t windows = 0;   // completed windows at checkpoint time
    std::size_t in_window = 0; // samples accumulated into the open window
    double c = 0.0;            // partial sum x cos(w t)
    double s = 0.0;            // partial sum x sin(w t)
  };
  Checkpoint checkpoint() const { return {t_.size(), in_window_, c_, s_}; }
  // Drops every window completed since the checkpoint and restores the
  // open window's partial accumulators. Throws std::invalid_argument when
  // the checkpoint is ahead of the record.
  void restore(const Checkpoint& cp);

 private:
  double f0_;
  std::size_t window_samples_;
  std::size_t in_window_ = 0;
  double c_ = 0.0;
  double s_ = 0.0;
  std::vector<double> t_, amplitude_, phase_;
};

}  // namespace swsim::mag
