#include "mag/material.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::mag {

using namespace swsim::math;

double Material::exchange_length() const {
  return std::sqrt(2.0 * aex / (kMu0 * ms * ms));
}

double Material::anisotropy_field() const {
  return 2.0 * ku / (kMu0 * ms);
}

double Material::internal_field(double applied) const {
  return anisotropy_field() - ms + applied;
}

void Material::validate() const {
  if (!(ms > 0.0)) throw std::invalid_argument("Material: Ms must be > 0");
  if (!(aex > 0.0)) throw std::invalid_argument("Material: Aex must be > 0");
  if (!(alpha >= 0.0) || alpha > 1.0) {
    throw std::invalid_argument("Material: alpha must be in [0, 1]");
  }
  if (ku < 0.0) throw std::invalid_argument("Material: Ku must be >= 0");
}

Material Material::fecob() {
  Material m;
  m.name = "Fe60Co20B20";
  m.ms = ka_per_m(1100);
  m.aex = pj_per_m(18.5);
  m.alpha = 0.004;
  m.ku = mj_per_m3(0.832);
  return m;
}

Material Material::yig() {
  Material m;
  m.name = "YIG";
  m.ms = ka_per_m(140);
  m.aex = pj_per_m(3.5);
  m.alpha = 2e-4;
  m.ku = 0.0;
  return m;
}

Material Material::permalloy() {
  Material m;
  m.name = "Permalloy";
  m.ms = ka_per_m(800);
  m.aex = pj_per_m(13);
  m.alpha = 0.01;
  m.ku = 0.0;
  return m;
}

}  // namespace swsim::mag
