#include "mag/field_term.h"

#include <limits>

namespace swsim::mag {

double FieldTerm::energy(const System&, const VectorField&) const {
  return std::numeric_limits<double>::quiet_NaN();
}

void FieldTerm::advance_step(double) {}

bool FieldTerm::compile_kernel(const System&, kernels::TermOp&) const {
  return false;
}

}  // namespace swsim::mag
