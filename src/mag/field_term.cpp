#include "mag/field_term.h"

#include <limits>

namespace swsim::mag {

double FieldTerm::energy(const System&, const VectorField&) const {
  return std::numeric_limits<double>::quiet_NaN();
}

void FieldTerm::advance_step(double) {}

}  // namespace swsim::mag
