#include "mag/exchange_field.h"

#include "mag/kernels/term_op.h"
#include "math/constants.h"

namespace swsim::mag {

using swsim::math::kMu0;

void ExchangeField::accumulate(const System& sys, const VectorField& m,
                               double /*t*/, VectorField& h) {
  const auto& g = sys.grid();
  const auto& mask = sys.mask();
  const double inv_dx2 = 1.0 / (g.dx() * g.dx());
  const double inv_dy2 = 1.0 / (g.dy() * g.dy());
  const double inv_dz2 = 1.0 / (g.dz() * g.dz());
  const double pref = 2.0 * sys.material().aex / (kMu0 * sys.material().ms);

  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = g.index(x, y, z);
        if (!mask[i]) continue;
        const Vec3& mi = m[i];
        Vec3 lap{};
        auto add_neighbor = [&](std::size_t j, double inv_d2) {
          // Free BC: absent or non-magnetic neighbours contribute nothing.
          if (mask[j]) lap += (m[j] - mi) * inv_d2;
        };
        if (x > 0) add_neighbor(g.index(x - 1, y, z), inv_dx2);
        if (x + 1 < nx) add_neighbor(g.index(x + 1, y, z), inv_dx2);
        if (y > 0) add_neighbor(g.index(x, y - 1, z), inv_dy2);
        if (y + 1 < ny) add_neighbor(g.index(x, y + 1, z), inv_dy2);
        if (z > 0) add_neighbor(g.index(x, y, z - 1), inv_dz2);
        if (z + 1 < nz) add_neighbor(g.index(x, y, z + 1), inv_dz2);
        h[i] += pref * lap;
      }
    }
  }
}

bool ExchangeField::compile_kernel(const System& sys,
                                   kernels::TermOp& op) const {
  op.kind = kernels::OpKind::kExchange;
  // Same expression as accumulate(); the plan supplies the neighbour table.
  op.pref = 2.0 * sys.material().aex / (kMu0 * sys.material().ms);
  return true;
}

double ExchangeField::energy(const System& sys, const VectorField& m) const {
  // E = -mu0/2 * integral Ms m . H_ex  (valid for the linear exchange field).
  VectorField h(sys.grid());
  const_cast<ExchangeField*>(this)->accumulate(sys, m, 0.0, h);
  double e = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    e += sys.ms_at(i) * dot(m[i], h[i]);
  }
  return -0.5 * kMu0 * e * sys.grid().cell_volume();
}

}  // namespace swsim::mag
