// External (Zeeman) field terms.
//
// UniformZeemanField: a constant applied field.
// AntennaField: the excitation transducer model — a spatially localized,
// time-dependent in-plane field h(t) = A * env(t) * sin(2 pi f t + phase)
// applied in an antenna region. Phase pi vs 0 encodes logic 1 vs 0 exactly
// as in the paper (Sec. III-A step (i)).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mag/field_term.h"

namespace swsim::mag {

class UniformZeemanField final : public FieldTerm {
 public:
  explicit UniformZeemanField(const Vec3& h_applied);

  std::string name() const override { return "zeeman"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  double energy(const System& sys, const VectorField& m) const override;
  bool compile_kernel(const System& sys, kernels::TermOp& op) const override;

 private:
  Vec3 h_;
};

// Temporal envelope of an antenna drive. `continuous()` runs forever;
// `pulse(t_on, t_off, ramp)` switches on/off with optional cosine ramps to
// avoid exciting a broadband transient.
class Envelope {
 public:
  using Fn = std::function<double(double)>;

  static Envelope continuous();
  static Envelope pulse(double t_on, double t_off, double ramp = 0.0);

  double operator()(double t) const { return fn_(t); }

 private:
  explicit Envelope(Fn fn) : fn_(std::move(fn)) {}
  Fn fn_;
};

class AntennaField final : public FieldTerm {
 public:
  // region: cells the antenna drives (must live on the system grid).
  // amplitude: field amplitude [A/m]; direction: field direction (normalized
  // internally, typically in-plane x for an out-of-plane-magnetized film).
  // frequency [Hz], phase [rad].
  AntennaField(swsim::math::Mask region, double amplitude,
               const Vec3& direction, double frequency, double phase,
               Envelope envelope = Envelope::continuous());

  std::string name() const override { return "antenna"; }
  void accumulate(const System& sys, const VectorField& m, double t,
                  VectorField& h) override;
  bool compile_kernel(const System& sys, kernels::TermOp& op) const override;

  double phase() const { return phase_; }
  double frequency() const { return frequency_; }

 private:
  // Driven cells (region ∧ system mask) as ascending grid indices. Cached
  // per mask content (two entries: relax and run Systems alternate), so the
  // per-step cost is proportional to the antenna footprint, not the grid.
  const std::vector<std::uint32_t>& driven_cells(const System& sys) const;

  swsim::math::Mask region_;
  double amplitude_;
  Vec3 direction_;
  double frequency_;
  double phase_;
  Envelope envelope_;
  mutable std::vector<
      std::pair<swsim::math::Mask, std::vector<std::uint32_t>>>
      cell_cache_;
};

}  // namespace swsim::mag
