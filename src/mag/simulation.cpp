#include "mag/simulation.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "math/constants.h"

namespace swsim::mag {

Simulation::Simulation(System system)
    : system_(std::move(system)),
      m_(system_.uniform_magnetization({0, 0, 1})),
      stepper_(std::make_unique<Stepper>(StepperKind::kRk4,
                                         swsim::math::ps(0.05))) {}

void Simulation::set_magnetization(const VectorField& m) {
  if (!(m.grid() == system_.grid())) {
    throw std::invalid_argument("Simulation: magnetization grid mismatch");
  }
  m_ = m;
  renormalize(system_, m_);
}

FieldTerm& Simulation::add_term(std::unique_ptr<FieldTerm> term) {
  if (!term) throw std::invalid_argument("Simulation: null field term");
  terms_.push_back(std::move(term));
  return *terms_.back();
}

void Simulation::add_standard_terms() {
  add_term(std::make_unique<ExchangeField>());
  add_term(std::make_unique<UniaxialAnisotropyField>(Vec3{0, 0, 1}));
  add_term(std::make_unique<ThinFilmDemagField>());
}

RegionProbe& Simulation::add_probe(const std::string& name,
                                   const swsim::math::Mask& region,
                                   double sample_dt) {
  probes_.push_back(std::make_unique<RegionProbe>(name, region, sample_dt));
  return *probes_.back();
}

RegionProbe& Simulation::probe(const std::string& name) {
  for (auto& p : probes_) {
    if (p->name() == name) return *p;
  }
  throw std::invalid_argument("Simulation: no probe named '" + name + "'");
}

void Simulation::set_stepper(StepperKind kind, double dt, double tolerance) {
  stepper_ = std::make_unique<Stepper>(kind, dt, tolerance);
  stepper_->set_watchdog(watchdog_);
}

void Simulation::set_watchdog(const robust::WatchdogConfig& config) {
  watchdog_ = config;
  stepper_->set_watchdog(config);
}

void Simulation::set_cancel_token(const robust::CancelToken& token) {
  cancel_token_ = token;
}

const StepperStats& Simulation::stepper_stats() const {
  return stepper_->stats();
}

void Simulation::run(double duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("Simulation::run: negative duration");
  }
  const double t_end = time_ + duration;
  energy_watchdog_.reset();
  std::size_t steps = 0;
  obs::Span span("sim.run", "mag");
  // Per-step spans would swamp the trace (tens of thousands of RK4 steps);
  // instead buffer blocks of steps and emit one complete event per block.
  constexpr std::size_t kTraceBlock = 256;
  double block_t0_us = 0.0;
  std::size_t block_steps = 0;
  // Record the initial state so probes always hold the t = start sample.
  for (auto& p : probes_) p->maybe_record(system_, m_, time_);
  while (time_ < t_end - 1e-18) {
    if (cancel_token_ && cancel_token_->cancelled()) {
      throw robust::SolveError(robust::Status::error(
          robust::StatusCode::kCancelled,
          "cancelled at t = " + std::to_string(time_) + " s"));
    }
    if (obs::tracing()) {
      if (block_steps == 0) block_t0_us = obs::now_us();
      if (++block_steps == kTraceBlock) {
        obs::record_complete("llg.steps x" + std::to_string(block_steps),
                             "mag", block_t0_us);
        block_steps = 0;
      }
    }
    const double taken = stepper_->step(system_, terms_, m_, time_);
    time_ += taken;
    obs::ProgressReporter::global().on_llg_steps(1);
    for (auto& p : probes_) p->maybe_record(system_, m_, time_);
    if (watchdog_.cadence > 0 && ++steps % watchdog_.cadence == 0) {
      obs::Span check_span("watchdog.energy", "robust");
      const robust::Status health =
          energy_watchdog_.check(total_energy(),
                                 watchdog_.energy_growth_factor,
                                 watchdog_.energy_warmup_checks);
      if (!health.is_ok()) {
        obs::MetricsRegistry::global()
            .counter("robust.watchdog_trips")
            .add();
        auto& elog = obs::EventLog::global();
        if (elog.enabled(obs::LogLevel::kWarn)) {
          elog.event(obs::LogLevel::kWarn, "watchdog_trip")
              .str("kind", "energy")
              .num("t_sim_s", time_)
              .uint("step", steps)
              .str("message", health.message())
              .emit();
        }
        throw robust::SolveError(health.with_context(
            "t = " + std::to_string(time_) + " s"));
      }
    }
  }
  if (block_steps > 0 && obs::tracing()) {
    obs::record_complete("llg.steps x" + std::to_string(block_steps), "mag",
                         block_t0_us);
  }
}

robust::Status Simulation::run_guarded(double duration) {
  // Checkpoint everything a failed attempt mutates: the magnetization, the
  // clock, and the probe records. Field terms are stateless across steps
  // for the conservative physics; stochastic terms redraw per step anyway.
  const VectorField m0 = m_;
  const double t0 = time_;
  std::vector<RegionProbe::Checkpoint> probe_cps;
  probe_cps.reserve(probes_.size());
  for (const auto& p : probes_) probe_cps.push_back(p->checkpoint());

  double dt = stepper_->dt();
  for (std::size_t halvings = 0;; ++halvings) {
    try {
      run(duration);
      return robust::Status::ok();
    } catch (const robust::SolveError& e) {
      const robust::Status& failure = e.status();
      const bool divergence = failure.code() ==
                              robust::StatusCode::kNumericalDivergence;
      if (!divergence || halvings >= watchdog_.max_step_halvings) {
        return failure;
      }
      obs::MetricsRegistry::global().counter("robust.step_halvings").add();
      {
        auto& elog = obs::EventLog::global();
        if (elog.enabled(obs::LogLevel::kWarn)) {
          elog.event(obs::LogLevel::kWarn, "step_halving")
              .uint("halvings", halvings + 1)
              .num("dt_new_s", dt * 0.5)
              .str("message", failure.message())
              .emit();
        }
      }
      // Rewind and re-solve the interval at half the step size.
      m_ = m0;
      time_ = t0;
      for (std::size_t i = 0; i < probes_.size(); ++i) {
        probes_[i]->restore(probe_cps[i]);
      }
      dt *= 0.5;
      set_stepper(stepper_->kind(), dt, stepper_->tolerance());
    }
  }
}

double Simulation::relax(double max_time, double torque_tol,
                         double relax_alpha) {
  obs::Span span("sim.relax", "mag");
  // Integrate a high-damping copy of the system; probes are not advanced
  // (relaxation is preparation, not physics being measured).
  Material relax_mat = system_.material();
  relax_mat.alpha = relax_alpha;
  System relax_sys(system_.grid(), relax_mat, system_.mask());
  relax_sys.set_ms_scale(system_.ms_scale());

  Stepper stepper(StepperKind::kRk4, swsim::math::ps(0.1));
  double t = 0.0;
  double torque = max_torque();
  while (t < max_time && torque > torque_tol) {
    t += stepper.step(relax_sys, terms_, m_, time_);
    torque = max_torque();
  }
  return torque;
}

double Simulation::total_energy() const {
  double e = 0.0;
  for (const auto& term : terms_) {
    const double te = term->energy(system_, m_);
    if (!std::isnan(te)) e += te;
  }
  return e;
}

double Simulation::max_torque() {
  VectorField h(system_.grid());
  effective_field(system_, terms_, m_, time_, h);
  double worst = 0.0;
  const auto& mask = system_.mask();
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (!mask[i]) continue;
    worst = std::max(worst, norm(cross(m_[i], h[i])));
  }
  return worst;
}

}  // namespace swsim::mag
