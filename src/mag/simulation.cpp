#include "mag/simulation.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "math/constants.h"

namespace swsim::mag {

Simulation::Simulation(System system)
    : system_(std::move(system)),
      m_(system_.uniform_magnetization({0, 0, 1})),
      stepper_(std::make_unique<Stepper>(StepperKind::kRk4,
                                         swsim::math::ps(0.05))) {}

void Simulation::set_magnetization(const VectorField& m) {
  if (!(m.grid() == system_.grid())) {
    throw std::invalid_argument("Simulation: magnetization grid mismatch");
  }
  m_ = m;
  renormalize(system_, m_);
}

FieldTerm& Simulation::add_term(std::unique_ptr<FieldTerm> term) {
  if (!term) throw std::invalid_argument("Simulation: null field term");
  terms_.push_back(std::move(term));
  return *terms_.back();
}

void Simulation::add_standard_terms() {
  add_term(std::make_unique<ExchangeField>());
  add_term(std::make_unique<UniaxialAnisotropyField>(Vec3{0, 0, 1}));
  add_term(std::make_unique<ThinFilmDemagField>());
}

RegionProbe& Simulation::add_probe(const std::string& name,
                                   const swsim::math::Mask& region,
                                   double sample_dt) {
  probes_.push_back(std::make_unique<RegionProbe>(name, region, sample_dt));
  return *probes_.back();
}

RegionProbe& Simulation::probe(const std::string& name) {
  for (auto& p : probes_) {
    if (p->name() == name) return *p;
  }
  throw std::invalid_argument("Simulation: no probe named '" + name + "'");
}

void Simulation::set_stepper(StepperKind kind, double dt, double tolerance) {
  stepper_ = std::make_unique<Stepper>(kind, dt, tolerance);
  stepper_->set_watchdog(watchdog_);
}

void Simulation::set_watchdog(const robust::WatchdogConfig& config) {
  watchdog_ = config;
  stepper_->set_watchdog(config);
}

void Simulation::set_cancel_token(const robust::CancelToken& token) {
  cancel_token_ = token;
}

void Simulation::set_convergence(const obs::ConvergencePolicy& policy,
                                 bool early_stop) {
  convergence_ = policy;
  early_stop_ = early_stop;
  trackers_.assign(probes_.size(), obs::ConvergenceTracker(policy));
}

void Simulation::set_telemetry_label(std::string label) {
  telemetry_label_ = std::move(label);
}

bool Simulation::all_converged() const {
  if (!convergence_ || trackers_.empty() ||
      trackers_.size() != probes_.size()) {
    return false;
  }
  for (const auto& tracker : trackers_) {
    if (!tracker.converged()) return false;
  }
  return true;
}

void Simulation::ensure_trackers() {
  if (!convergence_) {
    trackers_.clear();
    return;
  }
  if (trackers_.size() != probes_.size()) {
    trackers_.assign(probes_.size(), obs::ConvergenceTracker(*convergence_));
  }
}

void Simulation::on_window_completed(std::size_t i) {
  RegionProbe& p = *probes_[i];
  const LockinDemodulator* demod = p.demodulator();
  if (!demod || demod->window_count() == 0) return;
  const std::uint64_t window = demod->window_count();
  const double wt = demod->times().back();
  const double amplitude = demod->amplitude().back();
  const double phase = demod->phase().back();

  obs::PhysicsRegistry::global().record_window(p.name(), amplitude, phase);
  if (obs::metrics_armed()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("mag.probe.windows").add();
    // Gauges are integral; export the tiny normalized amplitudes in nano
    // units and phases in milliradians.
    reg.gauge("mag.probe." + p.name() + ".amplitude_nano")
        .set(static_cast<std::int64_t>(std::llround(amplitude * 1e9)));
    reg.gauge("mag.probe." + p.name() + ".phase_mrad")
        .set(static_cast<std::int64_t>(std::llround(phase * 1e3)));
  }

  if (convergence_ && i < trackers_.size()) {
    if (trackers_[i].add_window(wt, amplitude, phase)) {
      obs::PhysicsRegistry::global().record_converged(p.name(), wt);
      obs::MetricsRegistry::global().counter("mag.probe.converged").add();
      auto& elog = obs::EventLog::global();
      if (elog.enabled(obs::LogLevel::kInfo)) {
        elog.event(obs::LogLevel::kInfo, "probe.converged_at")
            .str("probe", p.name())
            .num("t_sim_s", wt)
            .uint("window", window)
            .emit();
      }
    }
  }

  auto& hub = obs::ProbeHub::global();
  if (hub.active()) {
    obs::ProbeHub::Frame frame;
    frame.job = telemetry_label_;
    frame.probe = p.name();
    frame.window = window;
    frame.t = wt;
    frame.amplitude = amplitude;
    frame.phase = phase;
    if (convergence_ && i < trackers_.size() && trackers_[i].converged()) {
      frame.converged = true;
      frame.converged_at = trackers_[i].converged_at();
    }
    hub.publish(frame);
  }
}

const StepperStats& Simulation::stepper_stats() const {
  return stepper_->stats();
}

void Simulation::run(double duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("Simulation::run: negative duration");
  }
  const double t_end = time_ + duration;
  energy_watchdog_.reset();
  ensure_trackers();
  std::size_t steps = 0;
  obs::Span span("sim.run", "mag");
  // Per-step spans would swamp the trace (tens of thousands of RK4 steps);
  // instead buffer blocks of steps and emit one complete event per block.
  constexpr std::size_t kTraceBlock = 256;
  double block_t0_us = 0.0;
  std::size_t block_steps = 0;
  // Record the initial state so probes always hold the t = start sample.
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i]->maybe_record(system_, m_, time_)) on_window_completed(i);
  }
  while (time_ < t_end - 1e-18) {
    if (cancel_token_ && cancel_token_->cancelled()) {
      throw robust::SolveError(robust::Status::error(
          robust::StatusCode::kCancelled,
          "cancelled at t = " + std::to_string(time_) + " s"));
    }
    if (obs::tracing()) {
      if (block_steps == 0) block_t0_us = obs::now_us();
      if (++block_steps == kTraceBlock) {
        obs::record_complete("llg.steps x" + std::to_string(block_steps),
                             "mag", block_t0_us);
        block_steps = 0;
      }
    }
    const double taken = stepper_->step(system_, terms_, m_, time_);
    time_ += taken;
    obs::ProgressReporter::global().on_llg_steps(1);
    bool window_done = false;
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      if (probes_[i]->maybe_record(system_, m_, time_)) {
        on_window_completed(i);
        window_done = true;
      }
    }
    if (window_done && early_stop_ && time_ < t_end - 1e-18 &&
        all_converged()) {
      // Every port's envelope has settled: the remainder of the solve
      // cannot change the detector verdicts, so stop integrating and
      // report the steps the decision saved.
      const auto saved = static_cast<std::uint64_t>(
          (t_end - time_) / stepper_->dt());
      early_stop_saved_steps_ += saved;
      obs::PhysicsRegistry::global().record_early_stop(saved);
      obs::MetricsRegistry::global()
          .counter("mag.early_stop.saved_steps")
          .add(saved);
      auto& elog = obs::EventLog::global();
      if (elog.enabled(obs::LogLevel::kInfo)) {
        elog.event(obs::LogLevel::kInfo, "early_stop")
            .num("t_sim_s", time_)
            .num("t_end_s", t_end)
            .uint("saved_steps", saved)
            .emit();
      }
      break;
    }
    if (watchdog_.cadence > 0 && ++steps % watchdog_.cadence == 0) {
      obs::Span check_span("watchdog.energy", "robust");
      double exchange_j = 0.0;
      const double energy_j = total_energy(&exchange_j);
      obs::PhysicsRegistry::global().record_energy(energy_j, exchange_j);
      const robust::Status health =
          energy_watchdog_.check(energy_j,
                                 watchdog_.energy_growth_factor,
                                 watchdog_.energy_warmup_checks);
      if (!health.is_ok()) {
        obs::MetricsRegistry::global()
            .counter("robust.watchdog_trips")
            .add();
        auto& elog = obs::EventLog::global();
        if (elog.enabled(obs::LogLevel::kWarn)) {
          elog.event(obs::LogLevel::kWarn, "watchdog_trip")
              .str("kind", "energy")
              .num("t_sim_s", time_)
              .uint("step", steps)
              .str("message", health.message())
              .emit();
        }
        throw robust::SolveError(health.with_context(
            "t = " + std::to_string(time_) + " s"));
      }
    }
  }
  if (block_steps > 0 && obs::tracing()) {
    obs::record_complete("llg.steps x" + std::to_string(block_steps), "mag",
                         block_t0_us);
  }
}

robust::Status Simulation::run_guarded(double duration) {
  // Checkpoint everything a failed attempt mutates: the magnetization, the
  // clock, the probe records, and the convergence trackers riding on them.
  // Field terms are stateless across steps for the conservative physics;
  // stochastic terms redraw per step anyway.
  const VectorField m0 = m_;
  const double t0 = time_;
  std::vector<RegionProbe::Checkpoint> probe_cps;
  probe_cps.reserve(probes_.size());
  for (const auto& p : probes_) probe_cps.push_back(p->checkpoint());
  ensure_trackers();
  std::vector<obs::ConvergenceTracker::Checkpoint> tracker_cps;
  tracker_cps.reserve(trackers_.size());
  for (const auto& tracker : trackers_) tracker_cps.push_back(tracker.checkpoint());
  const std::uint64_t saved_steps0 = early_stop_saved_steps_;

  double dt = stepper_->dt();
  for (std::size_t halvings = 0;; ++halvings) {
    try {
      run(duration);
      return robust::Status::ok();
    } catch (const robust::SolveError& e) {
      const robust::Status& failure = e.status();
      const bool divergence = failure.code() ==
                              robust::StatusCode::kNumericalDivergence;
      if (!divergence || halvings >= watchdog_.max_step_halvings) {
        return failure;
      }
      obs::MetricsRegistry::global().counter("robust.step_halvings").add();
      {
        auto& elog = obs::EventLog::global();
        if (elog.enabled(obs::LogLevel::kWarn)) {
          elog.event(obs::LogLevel::kWarn, "step_halving")
              .uint("halvings", halvings + 1)
              .num("dt_new_s", dt * 0.5)
              .str("message", failure.message())
              .emit();
        }
      }
      // Rewind and re-solve the interval at half the step size.
      m_ = m0;
      time_ = t0;
      for (std::size_t i = 0; i < probes_.size(); ++i) {
        probes_[i]->restore(probe_cps[i]);
      }
      for (std::size_t i = 0; i < trackers_.size(); ++i) {
        trackers_[i].restore(tracker_cps[i]);
      }
      early_stop_saved_steps_ = saved_steps0;
      dt *= 0.5;
      set_stepper(stepper_->kind(), dt, stepper_->tolerance());
    }
  }
}

double Simulation::relax(double max_time, double torque_tol,
                         double relax_alpha) {
  obs::Span span("sim.relax", "mag");
  // Integrate a high-damping copy of the system; probes are not advanced
  // (relaxation is preparation, not physics being measured).
  Material relax_mat = system_.material();
  relax_mat.alpha = relax_alpha;
  System relax_sys(system_.grid(), relax_mat, system_.mask());
  relax_sys.set_ms_scale(system_.ms_scale());

  Stepper stepper(StepperKind::kRk4, swsim::math::ps(0.1));
  double t = 0.0;
  double torque = max_torque();
  while (t < max_time && torque > torque_tol) {
    t += stepper.step(relax_sys, terms_, m_, time_);
    torque = max_torque();
  }
  return torque;
}

double Simulation::total_energy(double* exchange_j) const {
  double e = 0.0;
  double exchange = 0.0;
  for (const auto& term : terms_) {
    const double te = term->energy(system_, m_);
    if (!std::isnan(te)) {
      e += te;
      if (exchange_j && term->name() == "exchange") exchange += te;
    }
  }
  if (exchange_j) *exchange_j = exchange;
  return e;
}

double Simulation::max_torque() {
  VectorField h(system_.grid());
  effective_field(system_, terms_, m_, time_, h);
  double worst = 0.0;
  const auto& mask = system_.mask();
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (!mask[i]) continue;
    worst = std::max(worst, norm(cross(m_[i], h[i])));
  }
  return worst;
}

}  // namespace swsim::mag
