#include "mag/demag_field.h"

#include <cmath>

#include "mag/kernels/term_op.h"
#include "math/constants.h"
#include "math/fft.h"

namespace swsim::mag {

using swsim::math::Complex;
using swsim::math::fft3d;
using swsim::math::kMu0;
using swsim::math::kPi;
using swsim::math::next_pow2;

// --- Thin-film local approximation -----------------------------------------

void ThinFilmDemagField::accumulate(const System& sys, const VectorField& m,
                                    double /*t*/, VectorField& h) {
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) continue;
    h[i].z -= sys.ms_at(i) * m[i].z;
  }
}

bool ThinFilmDemagField::compile_kernel(const System&,
                                        kernels::TermOp& op) const {
  op.kind = kernels::OpKind::kThinFilmDemag;  // h.z -= ms(i) * m.z
  return true;
}

double ThinFilmDemagField::energy(const System& sys,
                                  const VectorField& m) const {
  // E = + mu0/2 * integral Ms^2 m_z^2 (self-consistent with the local field).
  const auto& mask = sys.mask();
  double e = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) continue;
    const double mz = m[i].z * sys.ms_at(i);
    e += mz * mz;
  }
  return 0.5 * kMu0 * e * sys.grid().cell_volume();
}

// --- Newell tensor -----------------------------------------------------------

namespace {

// Newell's auxiliary functions f (diagonal components) and g (off-diagonal),
// Newell, Williams & Dunlop, JGR 98 (1993). Guarded against the removable
// singularities on the coordinate planes.
double newell_f(double x, double y, double z) {
  const double x2 = x * x, y2 = y * y, z2 = z * z;
  const double r = std::sqrt(x2 + y2 + z2);
  double result = (1.0 / 6.0) * (2.0 * x2 - y2 - z2) * r;
  if (x2 + z2 > 0.0) {
    result += 0.5 * y * (z2 - x2) * std::asinh(y / std::sqrt(x2 + z2));
  }
  if (x2 + y2 > 0.0) {
    result += 0.5 * z * (y2 - x2) * std::asinh(z / std::sqrt(x2 + y2));
  }
  if (x != 0.0 && r > 0.0) {
    result -= x * y * z * std::atan((y * z) / (x * r));
  }
  return result;
}

double newell_g(double x, double y, double z) {
  const double x2 = x * x, y2 = y * y, z2 = z * z;
  const double r = std::sqrt(x2 + y2 + z2);
  double result = -(x * y * r) / 3.0;
  if (x2 + y2 > 0.0) {
    result += x * y * z * std::asinh(z / std::sqrt(x2 + y2));
  }
  if (y2 + z2 > 0.0) {
    result += (y / 6.0) * (3.0 * z2 - y2) * std::asinh(x / std::sqrt(y2 + z2));
  }
  if (x2 + z2 > 0.0) {
    result += (x / 6.0) * (3.0 * z2 - x2) * std::asinh(y / std::sqrt(x2 + z2));
  }
  if (z != 0.0 && r > 0.0) {
    result -= (z2 * z / 6.0) * std::atan((x * y) / (z * r));
  }
  if (y != 0.0 && r > 0.0) {
    result -= (z * y2 / 2.0) * std::atan((x * z) / (y * r));
  }
  if (x != 0.0 && r > 0.0) {
    result -= (z * x2 / 2.0) * std::atan((y * z) / (x * r));
  }
  return result;
}

// Second-difference weights over {-1, 0, +1}: the 64-corner alternating sum
// of the Newell formulation collapses to (-1, 2, -1) per axis.
constexpr double kW[3] = {-1.0, 2.0, -1.0};

double triple_difference(double (*fn)(double, double, double), double x,
                         double y, double z, double dx, double dy, double dz) {
  double acc = 0.0;
  for (int p = -1; p <= 1; ++p) {
    for (int q = -1; q <= 1; ++q) {
      for (int s = -1; s <= 1; ++s) {
        acc += kW[p + 1] * kW[q + 1] * kW[s + 1] *
               fn(x + p * dx, y + q * dy, z + s * dz);
      }
    }
  }
  return acc;
}

}  // namespace

double newell_nxx(double x, double y, double z, double dx, double dy,
                  double dz) {
  return triple_difference(newell_f, x, y, z, dx, dy, dz) /
         (4.0 * kPi * dx * dy * dz);
}

double newell_nxy(double x, double y, double z, double dx, double dy,
                  double dz) {
  return triple_difference(newell_g, x, y, z, dx, dy, dz) /
         (4.0 * kPi * dx * dy * dz);
}

// --- FFT-convolution demag ----------------------------------------------------

NewellDemagField::NewellDemagField(const System& sys) {
  const auto& g = sys.grid();
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  // Zero padding to >= 2n-1 per axis (rounded to a power of two) turns the
  // aperiodic convolution into a circular one without wrap-around.
  px_ = next_pow2(nx > 1 ? 2 * nx : 1);
  py_ = next_pow2(ny > 1 ? 2 * ny : 1);
  pz_ = next_pow2(nz > 1 ? 2 * nz : 1);
  const std::size_t pn = px_ * py_ * pz_;

  kxx_.assign(pn, Complex{});
  kyy_.assign(pn, Complex{});
  kzz_.assign(pn, Complex{});
  kxy_.assign(pn, Complex{});
  kxz_.assign(pn, Complex{});
  kyz_.assign(pn, Complex{});

  const double dx = g.dx(), dy = g.dy(), dz = g.dz();
  const auto lx = static_cast<long>(nx);
  const auto ly = static_cast<long>(ny);
  const auto lz = static_cast<long>(nz);
  for (long oz = -(lz - 1); oz <= lz - 1; ++oz) {
    for (long oy = -(ly - 1); oy <= ly - 1; ++oy) {
      for (long ox = -(lx - 1); ox <= lx - 1; ++ox) {
        const double x = static_cast<double>(ox) * dx;
        const double y = static_cast<double>(oy) * dy;
        const double z = static_cast<double>(oz) * dz;
        // Circulant embedding: negative offsets wrap to the top of the
        // padded array.
        const std::size_t ix =
            static_cast<std::size_t>((ox + static_cast<long>(px_)) %
                                     static_cast<long>(px_));
        const std::size_t iy =
            static_cast<std::size_t>((oy + static_cast<long>(py_)) %
                                     static_cast<long>(py_));
        const std::size_t iz =
            static_cast<std::size_t>((oz + static_cast<long>(pz_)) %
                                     static_cast<long>(pz_));
        const std::size_t idx = ix + px_ * (iy + py_ * iz);
        kxx_[idx] = newell_nxx(x, y, z, dx, dy, dz);
        kyy_[idx] = newell_nxx(y, x, z, dy, dx, dz);  // axis permutation
        kzz_[idx] = newell_nxx(z, y, x, dz, dy, dx);
        kxy_[idx] = newell_nxy(x, y, z, dx, dy, dz);
        kxz_[idx] = newell_nxy(x, z, y, dx, dz, dy);
        kyz_[idx] = newell_nxy(y, z, x, dy, dz, dx);
      }
    }
  }

  fft3d(kxx_, px_, py_, pz_);
  fft3d(kyy_, px_, py_, pz_);
  fft3d(kzz_, px_, py_, pz_);
  fft3d(kxy_, px_, py_, pz_);
  fft3d(kxz_, px_, py_, pz_);
  fft3d(kyz_, px_, py_, pz_);
}

VectorField NewellDemagField::compute(const System& sys,
                                      const VectorField& m) const {
  const auto& g = sys.grid();
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  const std::size_t pn = px_ * py_ * pz_;

  std::vector<Complex> mx(pn), my(pn), mz(pn);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = g.index(x, y, z);
        const std::size_t p = x + px_ * (y + py_ * z);
        const double ms = sys.ms_at(i);
        mx[p] = m[i].x * ms;
        my[p] = m[i].y * ms;
        mz[p] = m[i].z * ms;
      }
    }
  }

  fft3d(mx, px_, py_, pz_);
  fft3d(my, px_, py_, pz_);
  fft3d(mz, px_, py_, pz_);

  std::vector<Complex> hx(pn), hy(pn), hz(pn);
  for (std::size_t p = 0; p < pn; ++p) {
    hx[p] = -(kxx_[p] * mx[p] + kxy_[p] * my[p] + kxz_[p] * mz[p]);
    hy[p] = -(kxy_[p] * mx[p] + kyy_[p] * my[p] + kyz_[p] * mz[p]);
    hz[p] = -(kxz_[p] * mx[p] + kyz_[p] * my[p] + kzz_[p] * mz[p]);
  }

  fft3d(hx, px_, py_, pz_, /*inverse=*/true);
  fft3d(hy, px_, py_, pz_, /*inverse=*/true);
  fft3d(hz, px_, py_, pz_, /*inverse=*/true);

  VectorField h(g);
  const auto& mask = sys.mask();
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = g.index(x, y, z);
        if (!mask[i]) continue;
        const std::size_t p = x + px_ * (y + py_ * z);
        h[i] = {hx[p].real(), hy[p].real(), hz[p].real()};
      }
    }
  }
  return h;
}

void NewellDemagField::accumulate(const System& sys, const VectorField& m,
                                  double /*t*/, VectorField& h) {
  const VectorField hd = compute(sys, m);
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) h[i] += hd[i];
  }
}

double NewellDemagField::energy(const System& sys,
                                const VectorField& m) const {
  const VectorField hd = compute(sys, m);
  double e = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    e += sys.ms_at(i) * dot(m[i], hd[i]);
  }
  return -0.5 * kMu0 * e * sys.grid().cell_volume();
}

}  // namespace swsim::mag
