// Effective-field term interface.
//
// The LLG effective field H_eff is the sum of independent contributions
// (exchange, anisotropy, demag, Zeeman, antennas, thermal noise). Each term
// accumulates its contribution in A/m into a shared field buffer; the solver
// owns the loop. Terms may be time-dependent (antennas, thermal).
#pragma once

#include <string>

#include "mag/system.h"

namespace swsim::mag {

namespace kernels {
struct TermOp;
}

class FieldTerm {
 public:
  virtual ~FieldTerm() = default;

  virtual std::string name() const = 0;

  // Adds this term's field (A/m) for magnetization state m at time t into h.
  // Implementations must only touch cells inside the system mask.
  virtual void accumulate(const System& sys, const VectorField& m, double t,
                          VectorField& h) = 0;

  // Total energy of this term [J] for state m, or NaN when the term has no
  // meaningful energy (e.g. the stochastic thermal field).
  virtual double energy(const System& sys, const VectorField& m) const;

  // Called once per accepted solver step; stochastic terms use it to draw
  // the next noise realization (noise must be held fixed within one step's
  // stages for the integrator to converge).
  virtual void advance_step(double dt);

  // Lowers this term into a kernel TermOp for the fused SoA solve path.
  // Returns false (the default) when the term cannot be expressed as one —
  // the solver then runs the whole term set through the scalar reference
  // path, so refusing is always safe. Implementations must produce a field
  // bit-identical to accumulate() (see docs/PERFORMANCE.md).
  virtual bool compile_kernel(const System& sys, kernels::TermOp& op) const;
};

}  // namespace swsim::mag
