#include "mag/demod.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::mag {

LockinDemodulator::LockinDemodulator(double f0, std::size_t window_samples)
    : f0_(f0), window_samples_(window_samples) {
  if (!(f0 > 0.0)) {
    throw std::invalid_argument("LockinDemodulator: f0 must be > 0");
  }
  if (window_samples < 2) {
    throw std::invalid_argument(
        "LockinDemodulator: window must span at least 2 samples");
  }
}

bool LockinDemodulator::add_sample(double t, double x) {
  const double w = swsim::math::kTwoPi * f0_;
  c_ += x * std::cos(w * t);
  s_ += x * std::sin(w * t);
  ++in_window_;
  if (in_window_ < window_samples_) return false;

  // Same single-bin DFT scaling and conventions as math::lockin.
  const double scale = 2.0 / static_cast<double>(window_samples_);
  const double re = c_ * scale;   // A cos p
  const double im = -s_ * scale;  // A sin p
  const double amplitude = std::hypot(re, im);
  t_.push_back(t);
  amplitude_.push_back(amplitude);
  phase_.push_back(amplitude > 0.0 ? std::atan2(im, re) : 0.0);
  in_window_ = 0;
  c_ = 0.0;
  s_ = 0.0;
  return true;
}

void LockinDemodulator::restore(const Checkpoint& cp) {
  if (cp.windows > t_.size() || cp.in_window >= window_samples_) {
    throw std::invalid_argument(
        "LockinDemodulator: checkpoint is ahead of the record");
  }
  t_.resize(cp.windows);
  amplitude_.resize(cp.windows);
  phase_.resize(cp.windows);
  in_window_ = cp.in_window;
  c_ = cp.c;
  s_ = cp.s;
}

void LockinDemodulator::clear() {
  t_.clear();
  amplitude_.clear();
  phase_.clear();
  in_window_ = 0;
  c_ = 0.0;
  s_ = 0.0;
}

}  // namespace swsim::mag
