#include "mag/zeeman_field.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mag/kernels/term_op.h"
#include "math/constants.h"

namespace swsim::mag {

using swsim::math::kMu0;
using swsim::math::kPi;
using swsim::math::kTwoPi;

UniformZeemanField::UniformZeemanField(const Vec3& h_applied) : h_(h_applied) {}

void UniformZeemanField::accumulate(const System& sys, const VectorField& m,
                                    double /*t*/, VectorField& h) {
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) h[i] += h_;
  }
}

double UniformZeemanField::energy(const System& sys,
                                  const VectorField& m) const {
  const auto& mask = sys.mask();
  double e = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) e += sys.ms_at(i) * dot(m[i], h_);
  }
  return -kMu0 * e * sys.grid().cell_volume();
}

bool UniformZeemanField::compile_kernel(const System&,
                                        kernels::TermOp& op) const {
  op.kind = kernels::OpKind::kUniformZeeman;
  op.hx = h_.x;
  op.hy = h_.y;
  op.hz = h_.z;
  return true;
}

Envelope Envelope::continuous() {
  return Envelope([](double) { return 1.0; });
}

Envelope Envelope::pulse(double t_on, double t_off, double ramp) {
  if (!(t_off > t_on)) {
    throw std::invalid_argument("Envelope::pulse: t_off must exceed t_on");
  }
  if (ramp < 0.0 || 2.0 * ramp > (t_off - t_on)) {
    throw std::invalid_argument("Envelope::pulse: invalid ramp");
  }
  return Envelope([=](double t) {
    if (t < t_on || t > t_off) return 0.0;
    if (ramp > 0.0 && t < t_on + ramp) {
      return 0.5 * (1.0 - std::cos(kPi * (t - t_on) / ramp));
    }
    if (ramp > 0.0 && t > t_off - ramp) {
      return 0.5 * (1.0 - std::cos(kPi * (t_off - t) / ramp));
    }
    return 1.0;
  });
}

AntennaField::AntennaField(swsim::math::Mask region, double amplitude,
                           const Vec3& direction, double frequency,
                           double phase, Envelope envelope)
    : region_(std::move(region)),
      amplitude_(amplitude),
      direction_(swsim::math::normalized(direction)),
      frequency_(frequency),
      phase_(phase),
      envelope_(std::move(envelope)) {
  if (!(amplitude > 0.0)) {
    throw std::invalid_argument("AntennaField: amplitude must be > 0");
  }
  if (!(frequency > 0.0)) {
    throw std::invalid_argument("AntennaField: frequency must be > 0");
  }
  if (norm2(direction_) == 0.0) {
    throw std::invalid_argument("AntennaField: zero direction");
  }
}

const std::vector<std::uint32_t>& AntennaField::driven_cells(
    const System& sys) const {
  const auto& mask = sys.mask();
  for (auto& entry : cell_cache_) {
    if (entry.first == mask) return entry.second;
  }
  std::vector<std::uint32_t> cells;
  for (std::size_t i = 0; i < region_.size(); ++i) {
    if (region_[i] && mask[i]) cells.push_back(static_cast<std::uint32_t>(i));
  }
  if (cell_cache_.size() >= 2) cell_cache_.erase(cell_cache_.begin());
  cell_cache_.emplace_back(mask, std::move(cells));
  return cell_cache_.back().second;
}

void AntennaField::accumulate(const System& sys, const VectorField& m,
                              double t, VectorField& h) {
  if (!(region_.grid() == sys.grid())) {
    throw std::invalid_argument("AntennaField: region grid mismatch");
  }
  const double env = envelope_(t);
  if (env == 0.0) return;
  const Vec3 drive =
      direction_ * (amplitude_ * env * std::sin(kTwoPi * frequency_ * t + phase_));
  if (m.size() <= std::numeric_limits<std::uint32_t>::max()) {
    // Fast path: region ∧ mask precomputed as an ascending index list —
    // per step the antenna costs its footprint, not a grid scan. Identical
    // writes in identical order to the full sweep below.
    for (const std::uint32_t i : driven_cells(sys)) h[i] += drive;
    return;
  }
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (region_[i] && mask[i]) h[i] += drive;
  }
}

bool AntennaField::compile_kernel(const System& sys,
                                  kernels::TermOp& op) const {
  if (!(region_.grid() == sys.grid())) return false;  // reference path throws
  op.kind = kernels::OpKind::kAntenna;
  op.ax = direction_.x;
  op.ay = direction_.y;
  op.az = direction_.z;
  op.amplitude = amplitude_;
  op.frequency = frequency_;
  op.phase = phase_;
  op.envelope = &envelope_;
  op.cells = driven_cells(sys);
  return true;
}

}  // namespace swsim::mag
