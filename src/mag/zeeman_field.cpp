#include "mag/zeeman_field.h"

#include <cmath>
#include <stdexcept>

#include "math/constants.h"

namespace swsim::mag {

using swsim::math::kMu0;
using swsim::math::kPi;
using swsim::math::kTwoPi;

UniformZeemanField::UniformZeemanField(const Vec3& h_applied) : h_(h_applied) {}

void UniformZeemanField::accumulate(const System& sys, const VectorField& m,
                                    double /*t*/, VectorField& h) {
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) h[i] += h_;
  }
}

double UniformZeemanField::energy(const System& sys,
                                  const VectorField& m) const {
  const auto& mask = sys.mask();
  double e = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) e += sys.ms_at(i) * dot(m[i], h_);
  }
  return -kMu0 * e * sys.grid().cell_volume();
}

Envelope Envelope::continuous() {
  return Envelope([](double) { return 1.0; });
}

Envelope Envelope::pulse(double t_on, double t_off, double ramp) {
  if (!(t_off > t_on)) {
    throw std::invalid_argument("Envelope::pulse: t_off must exceed t_on");
  }
  if (ramp < 0.0 || 2.0 * ramp > (t_off - t_on)) {
    throw std::invalid_argument("Envelope::pulse: invalid ramp");
  }
  return Envelope([=](double t) {
    if (t < t_on || t > t_off) return 0.0;
    if (ramp > 0.0 && t < t_on + ramp) {
      return 0.5 * (1.0 - std::cos(kPi * (t - t_on) / ramp));
    }
    if (ramp > 0.0 && t > t_off - ramp) {
      return 0.5 * (1.0 - std::cos(kPi * (t_off - t) / ramp));
    }
    return 1.0;
  });
}

AntennaField::AntennaField(swsim::math::Mask region, double amplitude,
                           const Vec3& direction, double frequency,
                           double phase, Envelope envelope)
    : region_(std::move(region)),
      amplitude_(amplitude),
      direction_(swsim::math::normalized(direction)),
      frequency_(frequency),
      phase_(phase),
      envelope_(std::move(envelope)) {
  if (!(amplitude > 0.0)) {
    throw std::invalid_argument("AntennaField: amplitude must be > 0");
  }
  if (!(frequency > 0.0)) {
    throw std::invalid_argument("AntennaField: frequency must be > 0");
  }
  if (norm2(direction_) == 0.0) {
    throw std::invalid_argument("AntennaField: zero direction");
  }
}

void AntennaField::accumulate(const System& sys, const VectorField& m,
                              double t, VectorField& h) {
  if (!(region_.grid() == sys.grid())) {
    throw std::invalid_argument("AntennaField: region grid mismatch");
  }
  const double env = envelope_(t);
  if (env == 0.0) return;
  const Vec3 drive =
      direction_ * (amplitude_ * env * std::sin(kTwoPi * frequency_ * t + phase_));
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (region_[i] && mask[i]) h[i] += drive;
  }
}

}  // namespace swsim::mag
