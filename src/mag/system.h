// The magnetic system: grid + geometry mask + material.
//
// Cells outside the mask are vacuum: their magnetization stays exactly zero
// and every field term skips them. A per-cell Ms scale field supports
// variability studies (thickness/density fluctuations) without a separate
// multi-material machinery.
#pragma once

#include <cstdint>

#include "mag/material.h"
#include "math/field.h"
#include "math/grid.h"

namespace swsim::mag {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::ScalarField;
using swsim::math::Vec3;
using swsim::math::VectorField;

class System {
 public:
  // A full-box system (all cells magnetic).
  System(const Grid& grid, const Material& material);
  // A masked system (waveguide geometry). Throws if the mask grid differs
  // or the mask is empty.
  System(const Grid& grid, const Material& material, const Mask& mask);

  const Grid& grid() const { return grid_; }
  const Material& material() const { return material_; }
  const Mask& mask() const { return mask_; }

  // Per-cell saturation-magnetization scale (default 1 inside the mask,
  // 0 outside). Used for variability injection.
  const ScalarField& ms_scale() const { return ms_scale_; }
  void set_ms_scale(const ScalarField& scale);

  // Local saturation magnetization of cell i [A/m].
  double ms_at(std::size_t i) const { return material_.ms * ms_scale_[i]; }

  // Per-cell Gilbert damping (default: the material value everywhere).
  // Spatially graded damping implements absorbing boundary layers — the
  // standard micromagnetic trick for suppressing end reflections in
  // waveguide simulations. Values must be in [material alpha, 1].
  const ScalarField& alpha() const { return alpha_; }
  void set_alpha_field(const ScalarField& alpha);
  double alpha_at(std::size_t i) const { return alpha_[i]; }

  // Mutation counter, bumped by every setter that changes per-cell data.
  // The kernel layer uses (address, revision) as a staleness signature for
  // its precomputed solve plans.
  std::uint64_t revision() const { return revision_; }

  std::size_t magnetic_cell_count() const { return magnetic_cells_; }

  // Uniform initial magnetization along `direction` inside the mask.
  VectorField uniform_magnetization(const Vec3& direction) const;

 private:
  Grid grid_;
  Material material_;
  Mask mask_;
  ScalarField ms_scale_;
  ScalarField alpha_;
  std::size_t magnetic_cells_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace swsim::mag
