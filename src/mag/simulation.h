// The micromagnetic simulation driver: owns the system, the effective-field
// terms, the stepper, and the probes, and exposes the run/relax loop.
//
// Typical use (mirrors a MuMax3 script):
//   System sys(grid, Material::fecob(), mask);
//   Simulation sim(sys);
//   sim.add_term(std::make_unique<ExchangeField>());
//   sim.add_term(std::make_unique<UniaxialAnisotropyField>());
//   sim.add_term(std::make_unique<ThinFilmDemagField>());
//   sim.add_term(std::make_unique<AntennaField>(...));
//   auto& probe = sim.add_probe("O1", detector_mask, sample_dt);
//   sim.set_magnetization(sys.uniform_magnetization({0, 0, 1}));
//   sim.run(duration);
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mag/llg.h"
#include "mag/probe.h"
#include "obs/physics.h"
#include "robust/cancel.h"
#include "robust/status.h"
#include "robust/watchdog.h"

namespace swsim::mag {

class Simulation {
 public:
  explicit Simulation(System system);

  const System& system() const { return system_; }
  double time() const { return time_; }
  const VectorField& magnetization() const { return m_; }
  void set_magnetization(const VectorField& m);

  // Adds an effective-field term (order is irrelevant: terms sum linearly).
  FieldTerm& add_term(std::unique_ptr<FieldTerm> term);
  const std::vector<std::unique_ptr<FieldTerm>>& terms() const {
    return terms_;
  }

  // Installs the standard conservative terms for the paper's PMA film:
  // exchange + uniaxial(z) anisotropy + thin-film demag.
  void add_standard_terms();

  RegionProbe& add_probe(const std::string& name,
                         const swsim::math::Mask& region, double sample_dt);
  RegionProbe& probe(const std::string& name);

  // Configures the time stepper (default: RK4 with dt = 50 fs).
  void set_stepper(StepperKind kind, double dt, double tolerance = 1e-5);
  const StepperStats& stepper_stats() const;

  // Numerical health policy shared by run() / run_guarded(): the stepper
  // scans the state at `config.cadence`, run() additionally checks energy
  // divergence and polls the cancel token at the same cadence.
  void set_watchdog(const robust::WatchdogConfig& config);
  const robust::WatchdogConfig& watchdog() const { return watchdog_; }

  // Installs a cooperative cancellation token: run()/run_guarded() poll it
  // every step and abort with StatusCode::kCancelled when it fires (the
  // engine's per-job timeout path).
  void set_cancel_token(const robust::CancelToken& token);

  // Arms convergence tracking: every probe with an armed demodulator gets a
  // ConvergenceTracker fed on each completed envelope window. With
  // early_stop, run() terminates the solve once every probe's tracker has
  // decided (probes without a demodulator never decide, so early stop only
  // fires when all ports are demodulated). The solve then reports the
  // integration steps it skipped via early_stop_saved_steps().
  void set_convergence(const obs::ConvergencePolicy& policy,
                       bool early_stop = false);
  // True when convergence is armed, at least one probe exists, and every
  // probe's tracker has decided.
  bool all_converged() const;
  std::uint64_t early_stop_saved_steps() const {
    return early_stop_saved_steps_;
  }

  // Job label attached to streamed probe frames (obs::ProbeHub), e.g.
  // "micromag MAJ3 101". Streaming stays inert while nothing subscribes.
  void set_telemetry_label(std::string label);

  // Integrates for `duration` seconds of simulated time. Throws
  // robust::SolveError on watchdog violation or cancellation.
  void run(double duration);

  // Fault-tolerant run: on kNumericalDivergence the state (magnetization,
  // clock, probe records) is rewound to the call point, the step size is
  // halved, and the interval is re-solved — up to
  // watchdog().max_step_halvings times. Returns kOk on success (possibly
  // after retries), otherwise the final failure Status; cancellation is
  // returned immediately, never retried. Does not throw on classified
  // failures.
  robust::Status run_guarded(double duration);

  // Energy-relaxes the state by integrating with damping temporarily raised
  // to `relax_alpha` until the max torque |m x H| falls below `torque_tol`
  // (in A/m) or `max_time` elapses. Returns the final max torque.
  double relax(double max_time, double torque_tol = 1.0,
               double relax_alpha = 0.5);

  // Total energy (sum over terms that define one) [J]. When exchange_j is
  // non-null it receives the exchange term's contribution (the magnon-band
  // carrier tracked by the telemetry energy series).
  double total_energy(double* exchange_j = nullptr) const;

  // Max |m x H_eff| over magnetic cells — the convergence measure.
  double max_torque();

 private:
  // Reacts to probe i completing a demodulator window: registry stats,
  // gauges, convergence tracking, and the live frame stream.
  void on_window_completed(std::size_t i);
  // (Re)builds trackers_ to parallel probes_ when convergence is armed.
  void ensure_trackers();

  System system_;
  VectorField m_;
  std::vector<std::unique_ptr<FieldTerm>> terms_;
  std::vector<std::unique_ptr<RegionProbe>> probes_;
  std::unique_ptr<Stepper> stepper_;
  double time_ = 0.0;
  robust::WatchdogConfig watchdog_;
  robust::EnergyWatchdog energy_watchdog_;
  std::optional<robust::CancelToken> cancel_token_;
  std::optional<obs::ConvergencePolicy> convergence_;
  bool early_stop_ = false;
  std::vector<obs::ConvergenceTracker> trackers_;  // parallel to probes_
  std::string telemetry_label_;
  std::uint64_t early_stop_saved_steps_ = 0;
};

}  // namespace swsim::mag
