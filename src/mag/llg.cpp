#include "mag/llg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "mag/kernels/context.h"
#include "mag/kernels/runtime.h"
#include "math/constants.h"
#include "obs/clock.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "robust/fault_injection.h"

namespace swsim::mag {

using swsim::math::kGamma;
using swsim::math::kMu0;

namespace fehlberg {
// The RKF45 tableau, shared by the reference stepper and the kernel-path
// stepper so both run bit-identical arithmetic.
constexpr double a2 = 1.0 / 4.0;
constexpr double a3 = 3.0 / 8.0, b31 = 3.0 / 32.0, b32 = 9.0 / 32.0;
constexpr double a4 = 12.0 / 13.0, b41 = 1932.0 / 2197.0,
                 b42 = -7200.0 / 2197.0, b43 = 7296.0 / 2197.0;
constexpr double a5 = 1.0, b51 = 439.0 / 216.0, b52 = -8.0,
                 b53 = 3680.0 / 513.0, b54 = -845.0 / 4104.0;
constexpr double a6 = 1.0 / 2.0, b61 = -8.0 / 27.0, b62 = 2.0,
                 b63 = -3544.0 / 2565.0, b64 = 1859.0 / 4104.0,
                 b65 = -11.0 / 40.0;
// 5th-order solution weights.
constexpr double c1 = 16.0 / 135.0, c3 = 6656.0 / 12825.0,
                 c4 = 28561.0 / 56430.0, c5 = -9.0 / 50.0, c6 = 2.0 / 55.0;
// Error weights (5th - 4th).
constexpr double e1 = 16.0 / 135.0 - 25.0 / 216.0;
constexpr double e3 = 6656.0 / 12825.0 - 1408.0 / 2565.0;
constexpr double e4 = 28561.0 / 56430.0 - 2197.0 / 4104.0;
constexpr double e5 = -9.0 / 50.0 + 1.0 / 5.0;
constexpr double e6 = 2.0 / 55.0;
}  // namespace fehlberg

void effective_field(const System& sys,
                     const std::vector<std::unique_ptr<FieldTerm>>& terms,
                     const VectorField& m, double t, VectorField& h) {
  h.fill(Vec3{});
  if (!obs::metrics_armed()) {
    for (const auto& term : terms) {
      term->accumulate(sys, m, t, h);
    }
    return;
  }
  // Armed path: attribute field-assembly time per term ("mag.term.<name>.us"
  // aggregates demag vs exchange vs antenna cost across the whole run).
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& term : terms) {
    const double t0 = obs::now_us();
    term->accumulate(sys, m, t, h);
    reg.counter("mag.term." + term->name() + ".us")
        .add(static_cast<std::uint64_t>(obs::now_us() - t0));
  }
}

void llg_rhs(const System& sys, const VectorField& m, const VectorField& h,
             VectorField& dmdt) {
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) {
      dmdt[i] = Vec3{};
      continue;
    }
    const double alpha = sys.alpha_at(i);
    const double pref = -kGamma * kMu0 / (1.0 + alpha * alpha);
    const Vec3 mxh = cross(m[i], h[i]);
    dmdt[i] = pref * (mxh + alpha * cross(m[i], mxh));
  }
}

void renormalize(const System& sys, VectorField& m) {
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (mask[i]) m[i] = swsim::math::normalized(m[i]);
  }
}

Stepper::Stepper(StepperKind kind, double dt, double tolerance)
    : kind_(kind), dt_(dt), tolerance_(tolerance) {
  if (!(dt > 0.0)) throw std::invalid_argument("Stepper: dt must be > 0");
  if (!(tolerance > 0.0)) {
    throw std::invalid_argument("Stepper: tolerance must be > 0");
  }
}

Stepper::~Stepper() = default;
Stepper::Stepper(Stepper&&) noexcept = default;
Stepper& Stepper::operator=(Stepper&&) noexcept = default;

void Stepper::set_dt(double dt) {
  if (!(dt > 0.0)) throw std::invalid_argument("Stepper: dt must be > 0");
  dt_ = dt;
}

void Stepper::eval(const System& sys,
                   const std::vector<std::unique_ptr<FieldTerm>>& terms,
                   const VectorField& m, double t, VectorField& dmdt) {
  if (h_.size() != m.size()) h_ = VectorField(sys.grid());
  {
    static obs::Counter& field_us =
        obs::MetricsRegistry::global().counter("mag.field_assembly.us");
    obs::ScopedTimerUs timer(field_us);
    effective_field(sys, terms, m, t, h_);
  }
  llg_rhs(sys, m, h_, dmdt);
  ++stats_.field_evaluations;
  static obs::Counter& evals =
      obs::MetricsRegistry::global().counter("mag.field_evals");
  evals.add();
}

kernels::SolveContext* Stepper::kernel_context(
    const System& sys, const std::vector<std::unique_ptr<FieldTerm>>& terms) {
  if (kernels::reference_forced()) return nullptr;
  if (kctx_ && kctx_->matches(sys, terms)) return kctx_.get();
  // A term set that refuses to lower (thermal noise, FFT demag) is rejected
  // in O(terms) inside create(), so retrying every step is cheap.
  kctx_ = kernels::SolveContext::create(sys, terms);
  return kctx_.get();
}

void Stepper::keval(kernels::SolveContext& c, const kernels::SoaVec& state,
                    double t, kernels::SoaVec& dmdt) {
  {
    static obs::Counter& field_us =
        obs::MetricsRegistry::global().counter("mag.field_assembly.us");
    obs::ScopedTimerUs timer(field_us);
    c.eval(state, t, dmdt);
  }
  ++stats_.field_evaluations;
  static obs::Counter& evals =
      obs::MetricsRegistry::global().counter("mag.field_evals");
  evals.add();
}

double Stepper::step(const System& sys,
                     const std::vector<std::unique_ptr<FieldTerm>>& terms,
                     VectorField& m, double t) {
  // Stochastic terms draw one noise realization per step, scaled by the
  // step size the integrator is about to take.
  for (const auto& term : terms) term->advance_step(dt_);

  double taken = 0.0;
  if (kernels::SolveContext* ctx = kernel_context(sys, terms)) {
    // Fused SoA path: AoS<->SoA conversion happens only here, at the step
    // boundary; the stage math runs on the context's contiguous buffers.
    ctx->load_m(m);
    switch (kind_) {
      case StepperKind::kHeun:
        taken = kstep_heun(*ctx, t);
        break;
      case StepperKind::kRk4:
        taken = kstep_rk4(*ctx, t);
        break;
      case StepperKind::kRkf45:
        taken = kstep_rkf45(*ctx, t);
        break;
    }
    ctx->store_m(m);
  } else {
    switch (kind_) {
      case StepperKind::kHeun:
        taken = step_heun(sys, terms, m, t);
        break;
      case StepperKind::kRk4:
        taken = step_rk4(sys, terms, m, t);
        break;
      case StepperKind::kRkf45:
        taken = step_rkf45(sys, terms, m, t);
        break;
    }
  }

  // Fault-injection hook: poison one magnetic cell at the armed step index
  // (testing the watchdog + recovery path end-to-end). No-op — one relaxed
  // atomic load — when nothing is armed.
  if (robust::FaultPlan::global().consume_nan(stats_.steps_taken)) {
    const auto& mask = sys.mask();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (mask[i]) {
        m[i].x = std::numeric_limits<double>::quiet_NaN();
        break;
      }
    }
  }

  // Health scan on the raw integrator output: renormalization would mask
  // norm drift (and it preserves NaN), so check before it runs.
  if (watchdog_.cadence > 0 && stats_.steps_taken % watchdog_.cadence == 0) {
    static obs::Counter& scan_us =
        obs::MetricsRegistry::global().counter("mag.watchdog_scan.us");
    obs::ScopedTimerUs timer(scan_us);
    const robust::Status health = robust::scan_magnetization(
        m, sys.mask(), watchdog_.norm_drift_tol);
    if (!health.is_ok()) {
      obs::MetricsRegistry::global().counter("robust.watchdog_trips").add();
      auto& elog = obs::EventLog::global();
      if (elog.enabled(obs::LogLevel::kWarn)) {
        elog.event(obs::LogLevel::kWarn, "watchdog_trip")
            .str("kind", "state")
            .uint("step", stats_.steps_taken)
            .num("dt_s", dt_)
            .str("message", health.message())
            .emit();
      }
      throw robust::SolveError(health.with_context(
          "LLG step " + std::to_string(stats_.steps_taken) + ", dt = " +
          std::to_string(dt_)));
    }
  }

  renormalize(sys, m);
  static obs::Counter& steps =
      obs::MetricsRegistry::global().counter("mag.llg.steps");
  steps.add();
  ++stats_.steps_taken;
  stats_.last_dt = taken;
  return taken;
}

double Stepper::step_heun(const System& sys,
                          const std::vector<std::unique_ptr<FieldTerm>>& terms,
                          VectorField& m, double t) {
  VectorField k1(sys.grid()), k2(sys.grid());
  eval(sys, terms, m, t, k1);
  VectorField mp = m;
  for (std::size_t i = 0; i < m.size(); ++i) mp[i] += dt_ * k1[i];
  eval(sys, terms, mp, t + dt_, k2);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] += 0.5 * dt_ * (k1[i] + k2[i]);
  }
  return dt_;
}

double Stepper::step_rk4(const System& sys,
                         const std::vector<std::unique_ptr<FieldTerm>>& terms,
                         VectorField& m, double t) {
  VectorField k1(sys.grid()), k2(sys.grid()), k3(sys.grid()), k4(sys.grid());
  VectorField tmp = m;

  eval(sys, terms, m, t, k1);
  for (std::size_t i = 0; i < m.size(); ++i) tmp[i] = m[i] + 0.5 * dt_ * k1[i];
  eval(sys, terms, tmp, t + 0.5 * dt_, k2);
  for (std::size_t i = 0; i < m.size(); ++i) tmp[i] = m[i] + 0.5 * dt_ * k2[i];
  eval(sys, terms, tmp, t + 0.5 * dt_, k3);
  for (std::size_t i = 0; i < m.size(); ++i) tmp[i] = m[i] + dt_ * k3[i];
  eval(sys, terms, tmp, t + dt_, k4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] += (dt_ / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  return dt_;
}

double Stepper::step_rkf45(const System& sys,
                           const std::vector<std::unique_ptr<FieldTerm>>& terms,
                           VectorField& m, double t) {
  using namespace fehlberg;

  VectorField k1(sys.grid()), k2(sys.grid()), k3(sys.grid()), k4(sys.grid()),
      k5(sys.grid()), k6(sys.grid());
  VectorField tmp = m;

  for (int attempt = 0; attempt < 32; ++attempt) {
    const double h = dt_;
    eval(sys, terms, m, t, k1);
    for (std::size_t i = 0; i < m.size(); ++i) {
      tmp[i] = m[i] + h * a2 * k1[i];
    }
    eval(sys, terms, tmp, t + a2 * h, k2);
    for (std::size_t i = 0; i < m.size(); ++i) {
      tmp[i] = m[i] + h * (b31 * k1[i] + b32 * k2[i]);
    }
    eval(sys, terms, tmp, t + a3 * h, k3);
    for (std::size_t i = 0; i < m.size(); ++i) {
      tmp[i] = m[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    }
    eval(sys, terms, tmp, t + a4 * h, k4);
    for (std::size_t i = 0; i < m.size(); ++i) {
      tmp[i] = m[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] +
                           b54 * k4[i]);
    }
    eval(sys, terms, tmp, t + a5 * h, k5);
    for (std::size_t i = 0; i < m.size(); ++i) {
      tmp[i] = m[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] +
                           b64 * k4[i] + b65 * k5[i]);
    }
    eval(sys, terms, tmp, t + a6 * h, k6);

    double err = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      const Vec3 de = h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] + e5 * k5[i] +
                           e6 * k6[i]);
      err = std::max(err, norm(de));
    }

    if (err <= tolerance_ || dt_ <= 1e-18) {
      for (std::size_t i = 0; i < m.size(); ++i) {
        m[i] += h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i] +
                     c6 * k6[i]);
      }
      // Grow the step gently for the next call (bounded at 2x).
      if (err > 0.0) {
        const double factor =
            std::min(2.0, 0.9 * std::pow(tolerance_ / err, 0.2));
        dt_ *= std::max(factor, 0.5);
      } else {
        dt_ *= 2.0;
      }
      return h;
    }

    // Reject: shrink and retry.
    ++stats_.steps_rejected;
    const double factor =
        std::max(0.1, 0.9 * std::pow(tolerance_ / err, 0.25));
    dt_ *= factor;
  }
  throw std::runtime_error(
      "Stepper(RKF45): step size underflow - system too stiff for the "
      "requested tolerance");
}

// --- Kernel-path steppers ---------------------------------------------------
//
// Stage-for-stage transcriptions of the reference steppers above onto the
// context's SoA buffers. Scalar stage factors are collapsed exactly as the
// reference's Vec3 operators collapse them (docs/PERFORMANCE.md lays out
// the correspondence), so the results are byte-identical.

double Stepper::kstep_heun(kernels::SolveContext& c, double t) {
  keval(c, c.m_, t, c.k1_);
  c.stage1(c.tmp_, c.m_, dt_, c.k1_);
  keval(c, c.tmp_, t + dt_, c.k2_);
  const double coef[2] = {1.0, 1.0};
  const kernels::SoaVec* const ks[2] = {&c.k1_, &c.k2_};
  c.combine(c.m_, c.m_, 0.5 * dt_, coef, ks);
  return dt_;
}

double Stepper::kstep_rk4(kernels::SolveContext& c, double t) {
  keval(c, c.m_, t, c.k1_);
  c.stage1(c.tmp_, c.m_, 0.5 * dt_, c.k1_);
  keval(c, c.tmp_, t + 0.5 * dt_, c.k2_);
  c.stage1(c.tmp_, c.m_, 0.5 * dt_, c.k2_);
  keval(c, c.tmp_, t + 0.5 * dt_, c.k3_);
  c.stage1(c.tmp_, c.m_, dt_, c.k3_);
  keval(c, c.tmp_, t + dt_, c.k4_);
  const double coef[4] = {1.0, 2.0, 2.0, 1.0};
  const kernels::SoaVec* const ks[4] = {&c.k1_, &c.k2_, &c.k3_, &c.k4_};
  c.combine(c.m_, c.m_, dt_ / 6.0, coef, ks);
  return dt_;
}

double Stepper::kstep_rkf45(kernels::SolveContext& c, double t) {
  using namespace fehlberg;

  for (int attempt = 0; attempt < 32; ++attempt) {
    const double h = dt_;
    keval(c, c.m_, t, c.k1_);
    // Reference stage 2 associates as k1 * (h * a2) — a plain axpy.
    c.stage1(c.tmp_, c.m_, h * a2, c.k1_);
    keval(c, c.tmp_, t + a2 * h, c.k2_);
    {
      const double coef[2] = {b31, b32};
      const kernels::SoaVec* const ks[2] = {&c.k1_, &c.k2_};
      c.combine(c.tmp_, c.m_, h, coef, ks);
    }
    keval(c, c.tmp_, t + a3 * h, c.k3_);
    {
      const double coef[3] = {b41, b42, b43};
      const kernels::SoaVec* const ks[3] = {&c.k1_, &c.k2_, &c.k3_};
      c.combine(c.tmp_, c.m_, h, coef, ks);
    }
    keval(c, c.tmp_, t + a4 * h, c.k4_);
    {
      const double coef[4] = {b51, b52, b53, b54};
      const kernels::SoaVec* const ks[4] = {&c.k1_, &c.k2_, &c.k3_, &c.k4_};
      c.combine(c.tmp_, c.m_, h, coef, ks);
    }
    keval(c, c.tmp_, t + a5 * h, c.k5_);
    {
      const double coef[5] = {b61, b62, b63, b64, b65};
      const kernels::SoaVec* const ks[5] = {&c.k1_, &c.k2_, &c.k3_, &c.k4_,
                                            &c.k5_};
      c.combine(c.tmp_, c.m_, h, coef, ks);
    }
    keval(c, c.tmp_, t + a6 * h, c.k6_);

    const double ecoef[5] = {e1, e3, e4, e5, e6};
    const kernels::SoaVec* const eks[5] = {&c.k1_, &c.k3_, &c.k4_, &c.k5_,
                                           &c.k6_};
    const double err = c.err_max(h, ecoef, eks);

    if (err <= tolerance_ || dt_ <= 1e-18) {
      const double coef[5] = {c1, c3, c4, c5, c6};
      const kernels::SoaVec* const ks[5] = {&c.k1_, &c.k3_, &c.k4_, &c.k5_,
                                            &c.k6_};
      c.combine(c.m_, c.m_, h, coef, ks);
      // Grow the step gently for the next call (bounded at 2x).
      if (err > 0.0) {
        const double factor =
            std::min(2.0, 0.9 * std::pow(tolerance_ / err, 0.2));
        dt_ *= std::max(factor, 0.5);
      } else {
        dt_ *= 2.0;
      }
      return h;
    }

    // Reject: shrink and retry.
    ++stats_.steps_rejected;
    const double factor =
        std::max(0.1, 0.9 * std::pow(tolerance_ / err, 0.25));
    dt_ *= factor;
  }
  throw std::runtime_error(
      "Stepper(RKF45): step size underflow - system too stiff for the "
      "requested tolerance");
}

}  // namespace swsim::mag
