// Gates derived from the triangle structures (paper Sec. III-A/B):
//
// * (N)AND / (N)OR: the MAJ3 with I3 tied to a control constant —
//   I3 = 0 gives AND(I1, I2), I3 = 1 gives OR(I1, I2); the inverting
//   variants come from an inverted output (d4 = (n+1/2) lambda).
// * XNOR: the XOR structure with the flipped threshold condition.
//
// ControlledMajGate wraps a TriangleMajGate and fixes I3; it still exposes
// the 2-input FanoutGate interface and the fan-out-of-2 outputs.
#pragma once

#include <memory>

#include "core/triangle_gate.h"

namespace swsim::core {

enum class TwoInputFunction { kAnd, kOr, kNand, kNor };

std::string to_string(TwoInputFunction fn);

class ControlledMajGate final : public FanoutGate {
 public:
  // Builds the required control constant and inversion from the function.
  ControlledMajGate(const TriangleGateConfig& maj_config, TwoInputFunction fn);

  // Paper-scale device implementing fn.
  static ControlledMajGate paper_device(TwoInputFunction fn);

  std::string name() const override;
  std::size_t num_inputs() const override { return 2; }
  FanoutOutputs evaluate(const std::vector<bool>& inputs) override;
  bool reference(const std::vector<bool>& inputs) const override;

  // The control constant still costs an excitation transducer.
  int excitation_cells() const override { return 3; }

  bool control_value() const { return control_; }

 private:
  TwoInputFunction fn_;
  bool control_;
  std::unique_ptr<TriangleMajGate> maj_;
};

}  // namespace swsim::core
