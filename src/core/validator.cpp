#include "core/validator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/logic.h"
#include "io/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swsim::core {

ValidationRow evaluate_row(FanoutGate& gate,
                           const std::vector<bool>& pattern) {
  std::string span_name;
  if (obs::tracing()) {
    span_name = gate.name() + " row ";
    for (const bool b : pattern) span_name += b ? '1' : '0';
  }
  obs::Span span(span_name, "core");
  static obs::Counter& rows =
      obs::MetricsRegistry::global().counter("core.rows_evaluated");
  rows.add();
  ValidationRow row;
  row.inputs = pattern;
  row.expected = gate.reference(pattern);
  row.outputs = gate.evaluate(pattern);
  row.pass_o1 = row.outputs.o1.logic == row.expected;
  row.pass_o2 = row.outputs.o2.logic == row.expected;
  return row;
}

ValidationReport assemble_report(std::string gate_name,
                                 std::vector<ValidationRow> rows) {
  ValidationReport report;
  report.gate_name = std::move(gate_name);
  report.rows = std::move(rows);
  report.all_pass = true;
  report.min_margin = std::numeric_limits<double>::infinity();
  for (const auto& row : report.rows) {
    if (!row.status.is_ok()) {
      // A failed row can never pass, and its outputs carry no physics:
      // keep it out of the analog aggregates.
      report.all_pass = false;
      continue;
    }
    report.all_pass = report.all_pass && row.pass_o1 && row.pass_o2;
    report.max_output_asymmetry =
        std::max(report.max_output_asymmetry,
                 std::fabs(row.outputs.normalized_o1 -
                           row.outputs.normalized_o2));
    report.min_margin = std::min({report.min_margin, row.outputs.o1.margin,
                                  row.outputs.o2.margin});
  }
  return report;
}

ValidationReport validate_gate(FanoutGate& gate) {
  std::vector<ValidationRow> rows;
  for (const auto& pattern : all_input_patterns(gate.num_inputs())) {
    rows.push_back(evaluate_row(gate, pattern));
  }
  return assemble_report(gate.name(), std::move(rows));
}

std::string format_report(const ValidationReport& report) {
  std::vector<std::string> headers;
  const std::size_t n = report.rows.empty() ? 0 : report.rows[0].inputs.size();
  // Paper table convention: I3 I2 I1 (MSB..LSB) column order.
  for (std::size_t i = n; i-- > 0;) {
    headers.push_back("I" + std::to_string(i + 1));
  }
  headers.insert(headers.end(), {"O1 (norm)", "O2 (norm)", "O1", "O2",
                                 "expected", "pass"});
  swsim::io::Table table(headers);
  for (const auto& row : report.rows) {
    std::vector<std::string> cells;
    for (std::size_t i = row.inputs.size(); i-- > 0;) {
      cells.push_back(row.inputs[i] ? "1" : "0");
    }
    if (!row.status.is_ok()) {
      cells.insert(cells.end(), {"-", "-", "-", "-",
                                 row.expected ? "1" : "0",
                                 to_string(row.status.code())});
      table.add_row(std::move(cells));
      continue;
    }
    cells.push_back(swsim::io::Table::num(row.outputs.normalized_o1, 3));
    cells.push_back(swsim::io::Table::num(row.outputs.normalized_o2, 3));
    cells.push_back(row.outputs.o1.logic ? "1" : "0");
    cells.push_back(row.outputs.o2.logic ? "1" : "0");
    cells.push_back(row.expected ? "1" : "0");
    cells.push_back(row.pass_o1 && row.pass_o2 ? "yes" : "NO");
    table.add_row(std::move(cells));
  }
  std::ostringstream os;
  os << report.gate_name << " truth table\n" << table.str();
  os << "fan-out symmetry: max |O1 - O2| = "
     << swsim::io::Table::num(report.max_output_asymmetry, 4)
     << "   worst margin = " << swsim::io::Table::num(report.min_margin, 4)
     << "   verdict: " << (report.all_pass ? "PASS" : "FAIL") << '\n';
  return os.str();
}

}  // namespace swsim::core
