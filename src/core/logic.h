// Logic-level reference functions and truth-table helpers.
//
// Phase encoding convention (paper Sec. III-A): spin-wave phase 0 represents
// logic 0 and phase pi represents logic 1.
#pragma once

#include <cstddef>
#include <vector>

namespace swsim::core {

// 3-input majority — the paper's core primitive (also the full-adder carry).
bool maj3(bool a, bool b, bool c);

// 2-input exclusive OR.
bool xor2(bool a, bool b);

// n-input majority (n odd); throws std::invalid_argument for even n.
bool majority(const std::vector<bool>& inputs);

// All 2^n input combinations in ascending binary order; bit i of the row
// index maps to inputs[i] (inputs[0] is the LSB).
std::vector<std::vector<bool>> all_input_patterns(std::size_t n);

// Spin-wave phase for a logic value: 0 -> 0, 1 -> pi.
double logic_phase(bool value);

// Inverse: phase within pi/2 of pi reads as logic 1.
bool phase_logic(double phase);

}  // namespace swsim::core
