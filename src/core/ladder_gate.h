// The ladder-shape fan-out-of-2 baseline of refs. [22]/[23].
//
// Topology (abstracted to the wave network):
//
//   S1 --\                                     rail A
//         P ---- Q1 ---- O1      S3  --- Q1
//   S2 --/       |
//                | rung (carries the combined I1+I2 wave to rail B)
//                |
//   S3r -------- Q2 ---- O2                    rail B
//
// The fan-out is bought with a *replicated* input transducer (S3r) — the
// extra ME cell whose energy cost the triangle design eliminates — and the
// split at P means the I1/I2 waves arrive weaker than I3 unless the inputs
// are excited at different levels (the paper's Sec. IV-D observation).
// `calibrated_excitation` compensates the split losses; with it disabled the
// gate runs at equal levels and its margins degrade, which is exactly the
// behaviour bench_ladder_vs_triangle quantifies.
#pragma once

#include "core/gate.h"
#include "geom/gate_layout.h"
#include "wavenet/dispersion.h"
#include "wavenet/network.h"

namespace swsim::core {

struct LadderGateConfig {
  geom::LadderGateParams params;
  swsim::mag::Material material = swsim::mag::Material::fecob();
  double film_thickness = swsim::math::nm(1);
  wavenet::SplitPolicy split = wavenet::SplitPolicy::kUnitary;
  // Excite the rail inputs at boosted levels so all waves arrive at the
  // merge junctions with equal amplitude (required for clean operation).
  bool calibrated_excitation = true;
  double threshold = 0.5;  // XOR threshold
};

class LadderMajGate final : public FanoutGate {
 public:
  explicit LadderMajGate(const LadderGateConfig& config);

  std::string name() const override { return "ladder-FO2-MAJ3"; }
  std::size_t num_inputs() const override { return 3; }
  FanoutOutputs evaluate(const std::vector<bool>& inputs) override;
  bool reference(const std::vector<bool>& inputs) const override;
  // 4: I1, I2, I3 plus the replicated I3 — the baseline's energy penalty.
  int excitation_cells() const override { return 4; }

  // Peak-to-lowest input excitation amplitude ratio actually used — 1.0 for
  // equal-level drive, > 1 when calibration is on (the ladder's hidden cost).
  double excitation_level_ratio() const;

 private:
  LadderGateConfig config_;
  wavenet::Dispersion dispersion_;
  wavenet::PropagationModel model_;
  wavenet::WaveNetwork net_;
  std::vector<wavenet::NodeId> sources_;   // S1, S2, S3, S3r
  wavenet::NodeId out1_ = 0, out2_ = 0;
  std::vector<double> amplitudes_;         // per-source drive level
  double reference_amplitude_ = -1.0;

  std::pair<wavenet::Complex, wavenet::Complex> solve(
      const std::vector<bool>& inputs);
};

}  // namespace swsim::core
