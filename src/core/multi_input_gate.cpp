#include "core/multi_input_gate.h"

#include <stdexcept>

#include "core/logic.h"

namespace swsim::core {

using wavenet::NodeId;

MultiInputMajGate::MultiInputMajGate(const MultiInputMajConfig& config)
    : config_(config),
      dispersion_(config.material, config.film_thickness) {
  if (config_.num_inputs < 3 || config_.num_inputs % 2 == 0) {
    throw std::invalid_argument(
        "MultiInputMajGate: need an odd input count >= 3");
  }
  config_.params.validate();
  model_ = wavenet::PropagationModel::from_dispersion(
      dispersion_, config_.params.wavelength, config_.split);

  // All n inputs are merge arms into V ("more inputs can be added below I2
  // or above I1"): by symmetry every input arrives at the splitter with
  // exactly the same weight, so the sign of the phasor sum is the strict
  // n-input majority at any attenuation level — unlike a mixed arm/tap
  // arrangement, whose unequal weights break down beyond n = 3.
  const auto& p = config_.params;
  const NodeId v = net_.add_junction("V");
  const NodeId s = net_.add_junction("S");
  out1_ = net_.add_detector("O1");
  out2_ = net_.add_detector("O2");

  for (std::size_t i = 0; i < config_.num_inputs; ++i) {
    const NodeId src = net_.add_source("I" + std::to_string(i + 1));
    net_.connect(src, v, p.d1());
    sources_.push_back(src);
  }
  net_.connect(v, s, p.d2());
  net_.connect(s, out1_, p.branch_out());
  net_.connect(s, out2_, p.branch_out());
}

std::string MultiInputMajGate::name() const {
  return "triangle-FO2-MAJ" + std::to_string(config_.num_inputs);
}

bool MultiInputMajGate::reference(const std::vector<bool>& inputs) const {
  return majority(inputs);
}

FanoutOutputs MultiInputMajGate::evaluate(const std::vector<bool>& inputs) {
  if (inputs.size() != config_.num_inputs) {
    throw std::invalid_argument(name() + ": expected " +
                                std::to_string(config_.num_inputs) +
                                " inputs");
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    net_.excite(sources_[i], 1.0, logic_phase(inputs[i]));
  }
  const auto solved = net_.solve(model_);
  const auto p1 = solved.detector_phasor.at(out1_);
  const auto p2 = solved.detector_phasor.at(out2_);

  if (reference_amplitude_ < 0.0) {
    for (const NodeId src : sources_) net_.excite(src, 1.0, 0.0);
    const auto ref = net_.solve(model_);
    reference_amplitude_ =
        std::max(std::abs(ref.detector_phasor.at(out1_)),
                 std::abs(ref.detector_phasor.at(out2_)));
    if (!(reference_amplitude_ > 0.0)) {
      throw std::runtime_error(name() + ": zero reference amplitude");
    }
  }

  const wavenet::PhaseDetector det;
  FanoutOutputs out;
  out.o1 = det.detect(p1);
  out.o2 = det.detect(p2);
  out.normalized_o1 = std::abs(p1) / reference_amplitude_;
  out.normalized_o2 = std::abs(p2) / reference_amplitude_;
  return out;
}

}  // namespace swsim::core
