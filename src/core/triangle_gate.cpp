#include "core/triangle_gate.h"

#include <stdexcept>

#include "core/logic.h"

namespace swsim::core {

using geom::Port;
using wavenet::Complex;
using wavenet::NodeId;

TriangleGateBase::TriangleGateBase(const TriangleGateConfig& config)
    : config_(config),
      layout_(config.params),
      dispersion_(config.material, config.film_thickness) {
  model_ = wavenet::PropagationModel::from_dispersion(
      dispersion_, config_.params.wavelength, config_.split);

  // Graph mirror of the TriangleGateLayout bowtie topology: arms merge at
  // V, the combined wave crosses the transparent I3 tap at the axis
  // midpoint C, and splits at S to the two detectors (see
  // geom/gate_layout.h for the diagram).
  const auto& p = config_.params;
  const double half_axis = p.d2() / 2.0;
  const NodeId s1 = net_.add_source("I1");
  const NodeId s2 = net_.add_source("I2");
  const NodeId v = net_.add_junction("V");
  const NodeId s = net_.add_junction("S");
  out1_ = net_.add_detector("O1");
  out2_ = net_.add_detector("O2");

  net_.connect(s1, v, p.d1());
  net_.connect(s2, v, p.d1());
  net_.connect(s, out1_, p.branch_out());
  net_.connect(s, out2_, p.branch_out());

  sources_ = {s1, s2};
  if (p.has_third_input) {
    const NodeId t3 = net_.add_tap("I3");
    net_.connect(v, t3, half_axis);
    net_.connect(t3, s, half_axis);
    sources_.push_back(t3);
  } else {
    net_.connect(v, s, 2.0 * half_axis);
  }
}

std::pair<Complex, Complex> TriangleGateBase::solve_phasors(
    const std::vector<double>& input_phases) {
  std::vector<Complex> waves;
  waves.reserve(input_phases.size());
  for (double ph : input_phases) {
    waves.emplace_back(std::cos(ph), std::sin(ph));
  }
  return solve_wave_phasors(waves);
}

std::pair<Complex, Complex> TriangleGateBase::solve_wave_phasors(
    const std::vector<Complex>& input_waves) {
  if (input_waves.size() != sources_.size()) {
    throw std::invalid_argument(name() + ": expected " +
                                std::to_string(sources_.size()) +
                                " input waves");
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    net_.excite(sources_[i], std::abs(input_waves[i]),
                std::arg(input_waves[i]));
  }
  const auto result = net_.solve(model_);
  return {result.detector_phasor.at(out1_), result.detector_phasor.at(out2_)};
}

double TriangleGateBase::reference_amplitude() {
  if (reference_amplitude_ < 0.0) {
    const std::vector<double> zeros(sources_.size(), 0.0);
    const auto [p1, p2] = solve_phasors(zeros);
    reference_amplitude_ = std::max(std::abs(p1), std::abs(p2));
    if (!(reference_amplitude_ > 0.0)) {
      throw std::runtime_error(name() +
                               ": zero reference amplitude - no wave "
                               "reaches the outputs");
    }
  }
  return reference_amplitude_;
}

namespace {

std::vector<double> phases_for(const std::vector<bool>& inputs) {
  std::vector<double> phases(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    phases[i] = logic_phase(inputs[i]);
  }
  return phases;
}

}  // namespace

// --- Majority gate -----------------------------------------------------------

namespace {

// Logical inversion is realized physically (paper Sec. III-A): an output tap
// at d4 = (n + 1/2) lambda receives the wave with an extra pi of phase, so
// the fixed phase detector reads the complement. The detector itself never
// changes.
TriangleGateConfig with_inverting_tap(TriangleGateConfig config) {
  if (config.inverted) config.params.n_out += 0.5;
  return config;
}

}  // namespace

TriangleMajGate::TriangleMajGate(const TriangleGateConfig& config)
    : TriangleGateBase(with_inverting_tap(config)) {
  if (!config.params.has_third_input) {
    throw std::invalid_argument(
        "TriangleMajGate: params must have has_third_input = true");
  }
}

TriangleMajGate TriangleMajGate::paper_device() {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  return TriangleMajGate(cfg);
}

std::string TriangleMajGate::name() const {
  return config_.inverted ? "triangle-FO2-MINORITY3" : "triangle-FO2-MAJ3";
}

FanoutOutputs TriangleMajGate::evaluate(const std::vector<bool>& inputs) {
  if (inputs.size() != 3) {
    throw std::invalid_argument("TriangleMajGate: expected 3 inputs");
  }
  const auto [p1, p2] = solve_phasors(phases_for(inputs));
  const double ref = reference_amplitude();
  const wavenet::PhaseDetector det(/*reference_phase=*/0.0);
  FanoutOutputs out;
  out.o1 = det.detect(p1);
  out.o2 = det.detect(p2);
  out.normalized_o1 = std::abs(p1) / ref;
  out.normalized_o2 = std::abs(p2) / ref;
  return out;
}

bool TriangleMajGate::reference(const std::vector<bool>& inputs) const {
  const bool m = maj3(inputs.at(0), inputs.at(1), inputs.at(2));
  return config_.inverted ? !m : m;
}

// --- XOR gate ----------------------------------------------------------------

TriangleXorGate::TriangleXorGate(const TriangleGateConfig& config)
    : TriangleGateBase(config) {
  if (config.params.has_third_input) {
    throw std::invalid_argument(
        "TriangleXorGate: params must have has_third_input = false");
  }
}

TriangleXorGate TriangleXorGate::paper_device(bool xnor) {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_xor();
  cfg.inverted = xnor;
  return TriangleXorGate(cfg);
}

std::string TriangleXorGate::name() const {
  return config_.inverted ? "triangle-FO2-XNOR" : "triangle-FO2-XOR";
}

FanoutOutputs TriangleXorGate::evaluate(const std::vector<bool>& inputs) {
  if (inputs.size() != 2) {
    throw std::invalid_argument("TriangleXorGate: expected 2 inputs");
  }
  const auto [p1, p2] = solve_phasors(phases_for(inputs));
  const double ref = reference_amplitude();
  const wavenet::ThresholdDetector det(config_.threshold, config_.inverted);
  FanoutOutputs out;
  out.o1 = det.detect(p1, ref);
  out.o2 = det.detect(p2, ref);
  out.normalized_o1 = std::abs(p1) / ref;
  out.normalized_o2 = std::abs(p2) / ref;
  return out;
}

bool TriangleXorGate::reference(const std::vector<bool>& inputs) const {
  const bool x = xor2(inputs.at(0), inputs.at(1));
  return config_.inverted ? !x : x;
}

}  // namespace swsim::core
