// n-input majority gates (paper Sec. III-A: "more inputs can be added
// below I2 or above I1 and I3").
//
// Generalizes the bowtie: n-1 input arms (each d1 = n-lambda long) merge
// at the vertex V, the n-th input taps the axis at C, and the splitter S
// fans the result out to the two detectors. Phase detection reads the sign
// of the phasor sum of n equal-weight waves — an n-input majority for odd
// n. Implemented on the wave-network backend; the 3-input instance is
// bitwise-compatible with TriangleMajGate.
#pragma once

#include "core/gate.h"
#include "geom/gate_layout.h"
#include "wavenet/dispersion.h"
#include "wavenet/network.h"

namespace swsim::core {

struct MultiInputMajConfig {
  std::size_t num_inputs = 5;  // odd, >= 3
  geom::TriangleGateParams params = geom::TriangleGateParams::paper_maj3();
  swsim::mag::Material material = swsim::mag::Material::fecob();
  double film_thickness = swsim::math::nm(1);
  wavenet::SplitPolicy split = wavenet::SplitPolicy::kUnitary;
};

class MultiInputMajGate final : public FanoutGate {
 public:
  // Throws std::invalid_argument for even or < 3 input counts.
  explicit MultiInputMajGate(const MultiInputMajConfig& config);

  std::string name() const override;
  std::size_t num_inputs() const override { return config_.num_inputs; }
  FanoutOutputs evaluate(const std::vector<bool>& inputs) override;
  bool reference(const std::vector<bool>& inputs) const override;
  int excitation_cells() const override {
    return static_cast<int>(config_.num_inputs);
  }

 private:
  MultiInputMajConfig config_;
  wavenet::Dispersion dispersion_;
  wavenet::PropagationModel model_;
  wavenet::WaveNetwork net_;
  std::vector<wavenet::NodeId> sources_;
  wavenet::NodeId out1_ = 0, out2_ = 0;
  double reference_amplitude_ = -1.0;
};

}  // namespace swsim::core
