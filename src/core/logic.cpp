#include "core/logic.h"

#include <stdexcept>

#include "math/constants.h"
#include "math/lockin.h"

namespace swsim::core {

bool maj3(bool a, bool b, bool c) {
  return (static_cast<int>(a) + static_cast<int>(b) + static_cast<int>(c)) >= 2;
}

bool xor2(bool a, bool b) { return a != b; }

bool majority(const std::vector<bool>& inputs) {
  if (inputs.empty() || inputs.size() % 2 == 0) {
    throw std::invalid_argument("majority: need an odd number of inputs");
  }
  std::size_t ones = 0;
  for (bool v : inputs) ones += v ? 1 : 0;
  return 2 * ones > inputs.size();
}

std::vector<std::vector<bool>> all_input_patterns(std::size_t n) {
  if (n > 20) {
    throw std::invalid_argument("all_input_patterns: n too large");
  }
  std::vector<std::vector<bool>> rows;
  const std::size_t count = std::size_t{1} << n;
  rows.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    std::vector<bool> row(n);
    for (std::size_t b = 0; b < n; ++b) row[b] = (r >> b) & 1u;
    rows.push_back(std::move(row));
  }
  return rows;
}

double logic_phase(bool value) { return value ? swsim::math::kPi : 0.0; }

bool phase_logic(double phase) {
  return swsim::math::phase_distance(phase, swsim::math::kPi) <
         swsim::math::kPi / 2.0;
}

}  // namespace swsim::core
