// The paper's contribution: triangle-shape fan-out-of-2 gates on the
// analytical wave-network backend.
//
// TriangleMajGate — 3-input majority, phase detection at both outputs
// (Sec. III-A). TriangleXorGate — 2-input X(N)OR, threshold detection
// (Sec. III-B). Both are built from a TriangleGateLayout (geometry +
// path lengths) and a Dispersion (material physics); the wave network is
// constructed once and re-excited per evaluation.
#pragma once

#include <memory>

#include "core/gate.h"
#include "geom/gate_layout.h"
#include "wavenet/dispersion.h"
#include "wavenet/network.h"

namespace swsim::core {

struct TriangleGateConfig {
  geom::TriangleGateParams params;
  swsim::mag::Material material = swsim::mag::Material::fecob();
  double film_thickness = swsim::math::nm(1);
  wavenet::SplitPolicy split = wavenet::SplitPolicy::kUnitary;
  // Inverted output: in hardware d4 = (n+1/2) lambda adds a pi phase shift;
  // detection-side this flips the phase reference / threshold condition.
  bool inverted = false;
  double threshold = 0.5;  // XOR threshold (paper Sec. IV-C: 0.5)
};

// Shared machinery: builds the network, computes the reference (all-zero
// inputs) amplitude for normalization.
class TriangleGateBase : public FanoutGate {
 public:
  const geom::TriangleGateLayout& layout() const { return layout_; }
  const wavenet::Dispersion& dispersion() const { return dispersion_; }
  const wavenet::PropagationModel& model() const { return model_; }

  // Raw output phasors for a set of input phases (radians), bypassing logic
  // encoding — used by phase-error robustness studies.
  std::pair<wavenet::Complex, wavenet::Complex> solve_phasors(
      const std::vector<double>& input_phases);

  // Full complex excitation per input (amplitude and phase) — the interface
  // wave-level cascading uses: a downstream gate is driven by the upstream
  // gate's attenuated output phasor, per the paper's assumption (v) that
  // outputs feed the next gate directly.
  std::pair<wavenet::Complex, wavenet::Complex> solve_wave_phasors(
      const std::vector<wavenet::Complex>& input_waves);

  // Amplitude of either output when all inputs are excited at phase 0
  // (the normalization reference of Tables I / II).
  double reference_amplitude();

  int excitation_cells() const override {
    return static_cast<int>(num_inputs());
  }

 protected:
  explicit TriangleGateBase(const TriangleGateConfig& config);

  TriangleGateConfig config_;
  geom::TriangleGateLayout layout_;
  wavenet::Dispersion dispersion_;
  wavenet::PropagationModel model_;
  wavenet::WaveNetwork net_;
  std::vector<wavenet::NodeId> sources_;
  wavenet::NodeId out1_ = 0, out2_ = 0;
  double reference_amplitude_ = -1.0;  // lazily computed
};

class TriangleMajGate final : public TriangleGateBase {
 public:
  explicit TriangleMajGate(const TriangleGateConfig& config);
  // Paper-scale device (lambda = 55 nm FeCoB film of Sec. IV-A).
  static TriangleMajGate paper_device();

  std::string name() const override;
  std::size_t num_inputs() const override { return 3; }
  FanoutOutputs evaluate(const std::vector<bool>& inputs) override;
  bool reference(const std::vector<bool>& inputs) const override;
};

class TriangleXorGate final : public TriangleGateBase {
 public:
  // config.inverted = true yields the XNOR.
  explicit TriangleXorGate(const TriangleGateConfig& config);
  static TriangleXorGate paper_device(bool xnor = false);

  std::string name() const override;
  std::size_t num_inputs() const override { return 2; }
  FanoutOutputs evaluate(const std::vector<bool>& inputs) override;
  bool reference(const std::vector<bool>& inputs) const override;
};

}  // namespace swsim::core
