#include "core/parallel_bus.h"

#include <cmath>
#include <stdexcept>

namespace swsim::core {

namespace {

bool is_integer(double v, double tol = 1e-9) {
  return std::fabs(v - std::round(v)) <= tol;
}

}  // namespace

ParallelMajBus::ParallelMajBus(const ParallelBusConfig& config)
    : config_(config) {
  if (config.channels == 0) {
    throw std::invalid_argument("ParallelMajBus: need at least one channel");
  }
  const auto& p = config.params;
  if (!is_integer(p.n_arm) || !is_integer(p.n_axis_half) ||
      !is_integer(p.n_feed) || !is_integer(p.n_out)) {
    throw std::invalid_argument(
        "ParallelMajBus: channel synthesis requires integer dimension "
        "multiples (every path must divide by every channel wavelength)");
  }

  for (std::size_t c = 0; c < config.channels; ++c) {
    TriangleGateConfig gate_cfg;
    gate_cfg.params = p;
    // Channel c rides at lambda_0 / (c+1): all multiples scale by (c+1)
    // and stay integers, so the design rules hold on every channel.
    const double divisor = static_cast<double>(c + 1);
    gate_cfg.params.wavelength = p.wavelength / divisor;
    gate_cfg.params.n_arm = p.n_arm * divisor;
    gate_cfg.params.n_axis_half = p.n_axis_half * divisor;
    gate_cfg.params.n_feed = p.n_feed * divisor;
    gate_cfg.params.n_out = p.n_out * divisor;
    // Keep the physical width: it must stay below lambda_c / 2 for
    // single-mode operation, which bounds the usable channel count.
    if (p.width > gate_cfg.params.wavelength) {
      throw std::invalid_argument(
          "ParallelMajBus: channel " + std::to_string(c + 1) +
          " wavelength (" +
          std::to_string(gate_cfg.params.wavelength * 1e9) +
          " nm) falls below the waveguide width - reduce channel count or "
          "width");
    }
    gate_cfg.material = config.material;
    gate_cfg.film_thickness = config.film_thickness;
    gate_cfg.split = config.split;
    gates_.emplace_back(gate_cfg);
  }
}

double ParallelMajBus::channel_wavelength(std::size_t c) const {
  if (c >= gates_.size()) {
    throw std::out_of_range("ParallelMajBus: bad channel index");
  }
  return config_.params.wavelength / static_cast<double>(c + 1);
}

double ParallelMajBus::channel_frequency(std::size_t c) const {
  if (c >= gates_.size()) {
    throw std::out_of_range("ParallelMajBus: bad channel index");
  }
  const wavenet::Dispersion& disp = gates_[c].dispersion();
  return disp.frequency(
      wavenet::Dispersion::k_of_lambda(channel_wavelength(c)));
}

BusResult ParallelMajBus::evaluate(
    const std::vector<std::vector<bool>>& words) {
  if (words.size() != gates_.size()) {
    throw std::invalid_argument("ParallelMajBus: expected " +
                                std::to_string(gates_.size()) + " words");
  }
  BusResult result;
  for (std::size_t c = 0; c < gates_.size(); ++c) {
    BusChannelResult ch;
    ch.wavelength = channel_wavelength(c);
    ch.frequency = channel_frequency(c);
    ch.outputs = gates_[c].evaluate(words[c]);
    const bool expected = gates_[c].reference(words[c]);
    result.all_correct = result.all_correct &&
                         ch.outputs.o1.logic == expected &&
                         ch.outputs.o2.logic == expected;
    result.channels.push_back(std::move(ch));
  }
  return result;
}

}  // namespace swsim::core
