// Truth-table validation harness.
//
// Runs a FanoutGate over every input combination and reports, per row, the
// detected logic at both outputs, the normalized output magnetization
// (Tables I / II of the paper), the detection margins, and the fan-out-of-2
// symmetry |O1 - O2|.
#pragma once

#include <string>
#include <vector>

#include "core/gate.h"
#include "robust/status.h"

namespace swsim::core {

struct ValidationRow {
  std::vector<bool> inputs;
  bool expected = false;
  FanoutOutputs outputs;
  bool pass_o1 = false;
  bool pass_o2 = false;
  // Non-ok when this row's solve failed (partial-batch mode): the outputs
  // are then meaningless and the row can never pass.
  swsim::robust::Status status;
};

struct ValidationReport {
  std::string gate_name;
  std::vector<ValidationRow> rows;
  bool all_pass = false;
  // Fan-out-of-2 quality: worst |normalized_o1 - normalized_o2| over rows.
  double max_output_asymmetry = 0.0;
  // Worst detection margin over rows and outputs (radians for phase
  // detection, normalized amplitude for threshold detection).
  double min_margin = 0.0;
};

// Evaluates one input pattern (one truth-table row). Exposed so parallel
// paths (engine::BatchRunner) can evaluate rows on independent gate
// instances and still build the exact report validate_gate builds.
ValidationRow evaluate_row(FanoutGate& gate, const std::vector<bool>& pattern);

// Folds rows (in pattern order) into a report: verdict, worst asymmetry,
// worst margin. The aggregation is order-independent except for the row
// listing itself, so serial and parallel paths agree bit-for-bit when the
// rows are supplied in pattern order.
ValidationReport assemble_report(std::string gate_name,
                                 std::vector<ValidationRow> rows);

// Evaluates all 2^n input patterns.
ValidationReport validate_gate(FanoutGate& gate);

// Renders a Table I/II-style table (inputs, O1, O2, logic, pass/fail).
std::string format_report(const ValidationReport& report);

}  // namespace swsim::core
