#include "core/wave_cascade.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/logic.h"

namespace swsim::core {

using wavenet::Complex;

namespace {

TriangleGateConfig derive_xor_design(TriangleGateConfig maj) {
  maj.params.has_third_input = false;
  return maj;
}

}  // namespace

WaveCascade::WaveCascade(const TriangleGateConfig& maj_design)
    : maj_design_(maj_design), xor_design_(derive_xor_design(maj_design)) {
  if (!maj_design.params.has_third_input) {
    throw std::invalid_argument(
        "WaveCascade: the shared design must be the MAJ3 (3-input) layout");
  }
}

WaveCascade::WaveCascade() : WaveCascade([] {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  return cfg;
}()) {}

WaveCascade::SignalId WaveCascade::new_signal(Signal s) {
  signals_.push_back(std::move(s));
  return signals_.size() - 1;
}

WaveCascade::SignalId WaveCascade::primary() {
  Signal s;
  s.kind = Kind::kPrimary;
  s.index = primary_count_++;
  return new_signal(std::move(s));
}

WaveCascade::SignalId WaveCascade::constant(bool value) {
  Signal s;
  s.kind = Kind::kConstant;
  s.const_value = value;
  return new_signal(std::move(s));
}

void WaveCascade::use(SignalId id, bool as_gate_input) {
  if (id >= signals_.size()) {
    throw std::invalid_argument("WaveCascade: unknown signal");
  }
  Signal& s = signals_[id];
  if (as_gate_input && s.encoding == Encoding::kAmplitude) {
    throw std::logic_error(
        "WaveCascade: XOR outputs are amplitude-encoded and cannot drive a "
        "phase-encoded gate input; insert a normalization/readout stage");
  }
  const bool boundary = s.kind == Kind::kPrimary || s.kind == Kind::kConstant;
  if (!boundary && s.fanout >= 2) {
    throw std::runtime_error(
        "WaveCascade: fan-out of 2 exhausted on a gate output; add a "
        "repeater or use the second output");
  }
  ++s.fanout;
}

std::pair<WaveCascade::SignalId, WaveCascade::SignalId> WaveCascade::add_maj3(
    SignalId a, SignalId b, SignalId c) {
  use(a, true);
  use(b, true);
  use(c, true);
  gates_.push_back(Stage{true, {a, b, c}});
  Signal o1;
  o1.kind = Kind::kGateOut;
  o1.index = gates_.size() - 1;
  o1.which = 0;
  Signal o2 = o1;
  o2.which = 1;
  const SignalId s1 = new_signal(std::move(o1));
  const SignalId s2 = new_signal(std::move(o2));
  evaluated_ = false;
  return {s1, s2};
}

std::pair<WaveCascade::SignalId, WaveCascade::SignalId> WaveCascade::add_xor2(
    SignalId a, SignalId b) {
  use(a, true);
  use(b, true);
  gates_.push_back(Stage{false, {a, b}});
  Signal o1;
  o1.kind = Kind::kGateOut;
  o1.encoding = Encoding::kAmplitude;
  o1.index = gates_.size() - 1;
  o1.which = 0;
  Signal o2 = o1;
  o2.which = 1;
  const SignalId s1 = new_signal(std::move(o1));
  const SignalId s2 = new_signal(std::move(o2));
  evaluated_ = false;
  return {s1, s2};
}

WaveCascade::SignalId WaveCascade::add_repeater(SignalId src) {
  use(src, false);
  Signal s;
  s.kind = Kind::kRepeater;
  s.upstream = src;
  ++repeater_count_;
  evaluated_ = false;
  return new_signal(std::move(s));
}

int WaveCascade::excitation_cells() const {
  // Primaries and constants are driven transducers; repeaters are clocked
  // cells; gate stages reuse the incident wave (assumption (v)).
  return static_cast<int>(primary_count_) +
         static_cast<int>(std::count_if(
             signals_.begin(), signals_.end(),
             [](const Signal& s) { return s.kind == Kind::kConstant; })) +
         repeater_count_;
}

void WaveCascade::evaluate(const std::vector<bool>& primary_values) {
  if (primary_values.size() != primary_count_) {
    throw std::invalid_argument("WaveCascade: expected " +
                                std::to_string(primary_count_) +
                                " primary values");
  }
  // Shared physical gate models (stateless between solves).
  TriangleMajGate maj(maj_design_);
  TriangleXorGate xr(xor_design_);

  // Per-stage cached results (value and reference), filled in stage order;
  // signals are created after the stage they reference, so a single pass
  // in creation order sees the stage operands already computed.
  std::vector<std::pair<Complex, Complex>> stage_value(gates_.size());
  std::vector<std::pair<Complex, Complex>> stage_ref(gates_.size());
  std::vector<bool> stage_done(gates_.size(), false);

  for (Signal& s : signals_) {
    switch (s.kind) {
      case Kind::kPrimary: {
        const double ph = logic_phase(primary_values[s.index]);
        s.value = Complex{std::cos(ph), std::sin(ph)};
        s.reference = 1.0;
        break;
      }
      case Kind::kConstant: {
        const double ph = logic_phase(s.const_value);
        s.value = Complex{std::cos(ph), std::sin(ph)};
        s.reference = 1.0;
        break;
      }
      case Kind::kRepeater: {
        const Signal& up = signals_[s.upstream];
        const double mag = std::abs(up.value);
        s.value = mag > 0.0 ? up.value / mag : Complex{1.0, 0.0};
        s.reference = 1.0;
        s.encoding = up.encoding;
        break;
      }
      case Kind::kGateOut: {
        if (!stage_done[s.index]) {
          const Stage& st = gates_[s.index];
          std::vector<Complex> in, ref_in;
          for (SignalId op : st.operands) {
            in.push_back(signals_[op].value);
            ref_in.emplace_back(signals_[op].reference, 0.0);
          }
          if (st.is_maj) {
            stage_value[s.index] = maj.solve_wave_phasors(in);
            stage_ref[s.index] = maj.solve_wave_phasors(ref_in);
          } else {
            stage_value[s.index] = xr.solve_wave_phasors(in);
            stage_ref[s.index] = xr.solve_wave_phasors(ref_in);
          }
          stage_done[s.index] = true;
        }
        const auto& v = stage_value[s.index];
        const auto& r = stage_ref[s.index];
        s.value = s.which == 0 ? v.first : v.second;
        s.reference = std::abs(s.which == 0 ? r.first : r.second);
        break;
      }
    }
  }
  evaluated_ = true;
}

Complex WaveCascade::phasor(SignalId id) const {
  if (!evaluated_) {
    throw std::logic_error("WaveCascade: call evaluate() first");
  }
  if (id >= signals_.size()) {
    throw std::invalid_argument("WaveCascade: unknown signal");
  }
  return signals_[id].value;
}

wavenet::Detection WaveCascade::read_phase(SignalId id) const {
  const wavenet::PhaseDetector det;
  return det.detect(phasor(id));
}

wavenet::Detection WaveCascade::read_threshold(SignalId id,
                                               double threshold) const {
  if (!evaluated_) {
    throw std::logic_error("WaveCascade: call evaluate() first");
  }
  if (id >= signals_.size()) {
    throw std::invalid_argument("WaveCascade: unknown signal");
  }
  const wavenet::ThresholdDetector det(threshold);
  const Signal& s = signals_[id];
  return det.detect(s.value, s.reference > 0.0 ? s.reference : 1.0);
}

}  // namespace swsim::core
