#include "core/ladder_gate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/logic.h"

namespace swsim::core {

using wavenet::Complex;
using wavenet::NodeId;

LadderMajGate::LadderMajGate(const LadderGateConfig& config)
    : config_(config),
      dispersion_(config.material, config.film_thickness) {
  config_.params.validate();
  model_ = wavenet::PropagationModel::from_dispersion(
      dispersion_, config_.params.wavelength, config_.split);

  const double lam = config_.params.wavelength;
  const double half_rail = 0.5 * config_.params.n_rail * lam;
  const double rung = config_.params.n_rung * lam;
  const double out = std::max(config_.params.n_out, 0.5) * lam;

  const NodeId s1 = net_.add_source("I1");
  const NodeId s2 = net_.add_source("I2");
  const NodeId s3 = net_.add_source("I3");
  const NodeId s3r = net_.add_source("I3r");  // the replicated input
  const NodeId p = net_.add_junction("P");
  const NodeId q1 = net_.add_junction("Q1");
  const NodeId q2 = net_.add_junction("Q2");
  out1_ = net_.add_detector("O1");
  out2_ = net_.add_detector("O2");

  net_.connect(s1, p, half_rail);
  net_.connect(s2, p, half_rail);
  net_.connect(p, q1, half_rail);   // rail A continues to the merge with I3
  net_.connect(p, q2, rung);        // rung down to rail B
  net_.connect(s3, q1, half_rail);
  net_.connect(s3r, q2, half_rail);
  net_.connect(q1, out1_, out);
  net_.connect(q2, out2_, out);

  sources_ = {s1, s2, s3, s3r};

  // Calibration: the I1/I2 waves pass one extra junction split (P, degree 4
  // -> 3 branches) and, on the rail-B route, the longer rung; boost their
  // drive so they arrive at the merge junctions with the same amplitude as
  // the direct I3 waves (rail A reference).
  amplitudes_.assign(4, 1.0);
  if (config_.calibrated_excitation) {
    const double split_loss =
        config_.split == wavenet::SplitPolicy::kUnitary ? 1.0 / std::sqrt(3.0)
                                                        : 1.0;
    const double i12_arrival =
        split_loss * std::exp(-(2.0 * half_rail) /
                              model_.attenuation_length);
    const double i3_arrival =
        std::exp(-half_rail / model_.attenuation_length);
    const double boost = i3_arrival / i12_arrival;
    amplitudes_[0] = boost;
    amplitudes_[1] = boost;
  }
}

double LadderMajGate::excitation_level_ratio() const {
  const auto [lo, hi] =
      std::minmax_element(amplitudes_.begin(), amplitudes_.end());
  return *hi / *lo;
}

std::pair<Complex, Complex> LadderMajGate::solve(
    const std::vector<bool>& inputs) {
  if (inputs.size() != 3) {
    throw std::invalid_argument("LadderMajGate: expected 3 inputs");
  }
  // The replicated source carries the same logic value as I3.
  const bool values[4] = {inputs[0], inputs[1], inputs[2], inputs[2]};
  for (std::size_t i = 0; i < 4; ++i) {
    net_.excite(sources_[i], amplitudes_[i], logic_phase(values[i]));
  }
  const auto result = net_.solve(model_);
  return {result.detector_phasor.at(out1_), result.detector_phasor.at(out2_)};
}

FanoutOutputs LadderMajGate::evaluate(const std::vector<bool>& inputs) {
  const auto [p1, p2] = solve(inputs);
  if (reference_amplitude_ < 0.0) {
    const auto [r1, r2] = solve({false, false, false});
    reference_amplitude_ = std::max(std::abs(r1), std::abs(r2));
    if (!(reference_amplitude_ > 0.0)) {
      throw std::runtime_error("LadderMajGate: zero reference amplitude");
    }
  }
  const wavenet::PhaseDetector det;
  FanoutOutputs o;
  o.o1 = det.detect(p1);
  o.o2 = det.detect(p2);
  o.normalized_o1 = std::abs(p1) / reference_amplitude_;
  o.normalized_o2 = std::abs(p2) / reference_amplitude_;
  return o;
}

bool LadderMajGate::reference(const std::vector<bool>& inputs) const {
  return maj3(inputs.at(0), inputs.at(1), inputs.at(2));
}

}  // namespace swsim::core
