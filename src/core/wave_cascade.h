// Wave-level cascading of spin-wave gates.
//
// The paper's energy model rests on assumption (v): "the output is passed
// directly to be used by another SW gate" — no re-transduction between
// stages. This module makes that assumption testable: gates are chained at
// the *phasor* level, so a downstream gate is excited by the upstream
// gate's attenuated, phase-shifted output wave, not by a regenerated logic
// level. Consequences the logic-level netlist cannot show:
//
//   * amplitude decays multiplicatively along a cascade; after enough
//     stages the signal drops below any practical detection floor and a
//     repeater (ref. [37]) must regenerate it;
//   * MAJ outputs are phase-encoded and cascade cleanly; the XOR's output
//     is amplitude-encoded (Sec. III-B), so an XOR can only terminate a
//     phase-encoded cascade — feeding it onward requires a normalization
//     stage (the problem ref. [8] of the paper addresses).
//
// The cascade enforces the devices' fan-out of 2 per gate output, exactly
// like the logic-level Circuit.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "core/triangle_gate.h"

namespace swsim::core {

class WaveCascade {
 public:
  using SignalId = std::size_t;

  // All gates in the cascade share one device design (one gate type is one
  // physical layout); the MAJ design is configurable, the XOR design is
  // derived from it.
  explicit WaveCascade(const TriangleGateConfig& maj_design);
  WaveCascade();

  // A primary input: a transducer-launched unit wave carrying the logic
  // value supplied at evaluate() time (in creation order).
  SignalId primary();

  // A constant-value transducer wave.
  SignalId constant(bool value);

  // FO2 MAJ3 stage driven by three upstream waves; returns its two output
  // signals. Throws std::runtime_error when an operand's fan-out budget
  // (2) is exhausted.
  std::pair<SignalId, SignalId> add_maj3(SignalId a, SignalId b, SignalId c);

  // FO2 XOR stage. Its outputs are amplitude-encoded: they may only be
  // read with read_threshold() or regenerated, not fed to further gates —
  // add_maj3/add_xor2 on an XOR output throws std::logic_error.
  std::pair<SignalId, SignalId> add_xor2(SignalId a, SignalId b);

  // Repeater (ref. [37]): regenerates a phase-encoded wave to unit
  // amplitude, resetting its fan-out budget; costs one excitation cell.
  SignalId add_repeater(SignalId s);

  // Number of driven transducers per evaluation (primaries + constants +
  // gate inputs are internal waves; cost counts primaries, constants and
  // repeaters — gate stages reuse the incoming wave).
  int excitation_cells() const;

  // Evaluates the cascade for the given primary logic values; afterwards
  // the read_* functions inspect any signal.
  void evaluate(const std::vector<bool>& primary_values);

  // Raw phasor of a signal (after evaluate()).
  std::complex<double> phasor(SignalId s) const;
  // Phase detection (MAJ-style readout).
  wavenet::Detection read_phase(SignalId s) const;
  // Threshold detection (XOR-style readout) against the amplitude the
  // same signal would carry in the all-constructive case.
  wavenet::Detection read_threshold(SignalId s, double threshold = 0.5) const;

  std::size_t stage_count() const { return gates_.size(); }

 private:
  enum class Kind { kPrimary, kConstant, kGateOut, kRepeater };
  enum class Encoding { kPhase, kAmplitude };
  struct Signal {
    Kind kind;
    Encoding encoding = Encoding::kPhase;
    std::size_t index = 0;   // primary index / gate index
    int which = 0;           // gate output 0/1
    bool const_value = false;
    SignalId upstream = 0;   // repeater source
    int fanout = 0;
    std::complex<double> value{};
    double reference = 1.0;  // all-constructive amplitude at this signal
  };
  struct Stage {
    bool is_maj = false;
    std::vector<SignalId> operands;
  };

  SignalId new_signal(Signal s);
  void use(SignalId s, bool as_gate_input);

  TriangleGateConfig maj_design_;
  TriangleGateConfig xor_design_;
  std::vector<Signal> signals_;
  std::vector<Stage> gates_;
  std::size_t primary_count_ = 0;
  int repeater_count_ = 0;
  bool evaluated_ = false;
};

}  // namespace swsim::core
