// Micromagnetic-backend triangle gate: the same FanoutGate interface as the
// analytical gates, but every evaluation is a full LLG simulation of the
// rasterized device — our equivalent of the paper's MuMax3 validation
// (Fig. 5, Tables I/II).
//
// The device is the same triangle layout at reduced scale (dimension rules
// in units of lambda preserved; see DESIGN.md) so a full run is CPU
// feasible: the film is discretized, antennas drive the input regions with
// phase 0 or pi, the wave propagates and interferes, and lock-in analysis
// at the drive frequency extracts amplitude and phase at the two detector
// regions. Phase reference and normalization amplitude come from a
// calibration run with all inputs at logic 0.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/gate.h"
#include "geom/gate_layout.h"
#include "geom/roughness.h"
#include "mag/simulation.h"
#include "math/field.h"
#include "wavenet/dispersion.h"

namespace swsim::core {

struct MicromagGateConfig {
  geom::TriangleGateParams params =
      geom::TriangleGateParams::reduced_maj3(swsim::math::nm(50),
                                             swsim::math::nm(20));
  swsim::mag::Material material = swsim::mag::Material::fecob();
  double film_thickness = swsim::math::nm(1);
  double cell_size = swsim::math::nm(4);       // in-plane discretization
  double drive_amplitude = 4.0e3;              // antenna field [A/m]
  double antenna_extent_factor = 0.25;         // antenna length in lambda
  // Total simulated time; must cover transit to the outputs plus enough
  // settled periods for the lock-in window. <= 0 chooses automatically from
  // the group velocity and the longest path.
  double duration = 0.0;
  double dt = swsim::math::ps(0.25);           // RK4 step
  double settle_fraction = 0.6;  // lock-in uses the last (1 - this) of t
  double temperature = 0.0;                    // K; > 0 adds thermal noise
  std::uint64_t thermal_seed = 7;
  std::optional<geom::RoughnessParams> roughness;  // edge-roughness injection
  double margin = swsim::math::nm(20);         // vacuum margin around device
  // Absorbing boundary layers: waveguide tails appended behind every
  // antenna and beyond every detector, with Gilbert damping ramped
  // quadratically from the material value to absorber_alpha. They suppress
  // end reflections so the device operates on travelling waves (the same
  // technique device-scale MuMax3 studies use).
  double absorber_wavelengths = 2.0;  // tail length in units of lambda
  double absorber_alpha = 0.5;        // damping at the tail end
  // Numerical health policy for every LLG solve this gate runs: scan
  // cadence, divergence thresholds, and the step-halving retry budget
  // (see robust/watchdog.h). Part of the cache key: a recovered solve can
  // legitimately differ bit-for-bit from an unguarded one.
  swsim::robust::WatchdogConfig watchdog;
  // Live telemetry: with live_probes each detector probe runs an online
  // lock-in demodulator at the drive frequency (tumbling window of
  // demod_periods drive periods) feeding convergence tracking, the
  // physics block of swsim.profile/1, and the serve-plane probe stream.
  // Passive observation: the stored probe series and the offline lock-in
  // that decides logic are untouched, so output bytes do not change.
  bool live_probes = true;
  double demod_periods = 4.0;
  // Convergence policy for the live envelopes. min_time <= 0 is replaced
  // per solve by the wave transit time to the farthest output plus a
  // settling allowance, so a port the wave has not reached cannot count
  // as decided.
  swsim::obs::ConvergencePolicy convergence;
  // Terminate each LLG solve once both detector envelopes have settled.
  // This shortens the series the offline lock-in sees, so raw amplitudes
  // (and output bytes) may differ from a full-length solve; detected
  // *logic* must not. Off by default.
  bool early_stop = false;
};

// The calibration run's distilled output: the all-zero-input reference
// that normalizes amplitudes and anchors phase detection. Deterministic
// for a given MicromagGateConfig, so it can be computed once and injected
// into sibling gate instances (the engine's parallel truth-table path runs
// one calibration job that every per-row evaluation job depends on).
struct MicromagCalibration {
  double ref_amplitude = 0.0;
  double ref_phase_o1 = 0.0;
  double ref_phase_o2 = 0.0;
};

struct MicromagEvaluation {
  FanoutOutputs outputs;
  double o1_amplitude = 0.0;  // raw lock-in amplitude (m_x precession)
  double o2_amplitude = 0.0;
  double o1_phase = 0.0;      // raw lock-in phase [rad]
  double o2_phase = 0.0;
  double frequency = 0.0;     // drive frequency used [Hz]
  // Final m_x map for Fig. 5-style snapshot rendering.
  swsim::math::ScalarField snapshot_mx;
  swsim::math::Mask body;
  // Detector time series as recorded (for --probe-out / offline spectra).
  struct ProbeSeries {
    std::string name;
    std::vector<double> t, mx, my, mz;
  };
  std::vector<ProbeSeries> probe_series;
  // Integration steps skipped by early stop (0 when disabled or the solve
  // ran to full duration).
  std::uint64_t saved_steps = 0;
};

class MicromagTriangleGate final : public FanoutGate {
 public:
  explicit MicromagTriangleGate(const MicromagGateConfig& config);

  std::string name() const override;
  std::size_t num_inputs() const override {
    return config_.params.has_third_input ? 3 : 2;
  }
  FanoutOutputs evaluate(const std::vector<bool>& inputs) override;
  bool reference(const std::vector<bool>& inputs) const override;
  int excitation_cells() const override {
    return static_cast<int>(num_inputs());
  }

  // Full evaluation with raw observables and the snapshot field.
  MicromagEvaluation evaluate_full(const std::vector<bool>& inputs);

  // Runs the calibration simulation now (evaluate() otherwise runs it
  // lazily on first use) and returns the result; idempotent.
  MicromagCalibration calibrate();
  // The calibration if one has been run or injected.
  std::optional<MicromagCalibration> calibration() const;
  // Injects a calibration computed by another instance with the SAME
  // config (same content hash); skips this instance's calibration run.
  void set_calibration(const MicromagCalibration& c);

  // Polled by every LLG solve; a fired token aborts evaluate() with
  // robust::SolveError(kCancelled).
  void set_cancel_token(const swsim::robust::CancelToken& token) override {
    cancel_token_ = token;
  }

  double drive_frequency() const { return frequency_; }
  const swsim::math::Grid& grid() const { return grid_; }
  const swsim::math::Mask& body_mask() const { return body_; }
  const geom::TriangleGateLayout& layout() const { return layout_; }
  double simulated_duration() const { return duration_; }

 private:
  // Runs one simulation for the given input logic values; fills raw
  // amplitudes/phases and the snapshot.
  MicromagEvaluation run(const std::vector<bool>& inputs);
  void ensure_calibration();

  MicromagGateConfig config_;
  geom::TriangleGateLayout layout_;
  wavenet::Dispersion dispersion_;
  double frequency_ = 0.0;
  double duration_ = 0.0;
  double transit_time_ = 0.0;  // longest input->output path / group velocity
  swsim::math::Grid grid_;
  swsim::math::Mask body_;
  swsim::math::ScalarField alpha_;          // per-cell damping (absorbers)
  double origin_x_ = 0.0, origin_y_ = 0.0;  // layout -> grid offset

  struct Tail {
    swsim::math::Vec3 start;  // layout coordinates
    swsim::math::Vec3 dir;    // outward unit vector
  };
  std::vector<Tail> tails_;

  std::optional<swsim::robust::CancelToken> cancel_token_;
  bool calibrated_ = false;
  double ref_amplitude_ = 0.0;
  double ref_phase_o1_ = 0.0;
  double ref_phase_o2_ = 0.0;
};

}  // namespace swsim::core
