#include "core/derived_gates.h"

#include <stdexcept>

namespace swsim::core {

std::string to_string(TwoInputFunction fn) {
  switch (fn) {
    case TwoInputFunction::kAnd: return "AND";
    case TwoInputFunction::kOr: return "OR";
    case TwoInputFunction::kNand: return "NAND";
    case TwoInputFunction::kNor: return "NOR";
  }
  return "?";
}

ControlledMajGate::ControlledMajGate(const TriangleGateConfig& maj_config,
                                     TwoInputFunction fn)
    : fn_(fn) {
  TriangleGateConfig cfg = maj_config;
  // MAJ(a, b, 0) = AND(a, b); MAJ(a, b, 1) = OR(a, b). The inverting
  // variants read through an inverted output.
  control_ = (fn == TwoInputFunction::kOr || fn == TwoInputFunction::kNor);
  // The TriangleMajGate realizes the inversion with a half-wavelength
  // output tap internally.
  cfg.inverted = (fn == TwoInputFunction::kNand ||
                  fn == TwoInputFunction::kNor);
  maj_ = std::make_unique<TriangleMajGate>(cfg);
}

ControlledMajGate ControlledMajGate::paper_device(TwoInputFunction fn) {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  return ControlledMajGate(cfg, fn);
}

std::string ControlledMajGate::name() const {
  return "triangle-FO2-" + to_string(fn_);
}

FanoutOutputs ControlledMajGate::evaluate(const std::vector<bool>& inputs) {
  if (inputs.size() != 2) {
    throw std::invalid_argument(name() + ": expected 2 inputs");
  }
  return maj_->evaluate({inputs[0], inputs[1], control_});
}

bool ControlledMajGate::reference(const std::vector<bool>& inputs) const {
  const bool a = inputs.at(0);
  const bool b = inputs.at(1);
  switch (fn_) {
    case TwoInputFunction::kAnd: return a && b;
    case TwoInputFunction::kOr: return a || b;
    case TwoInputFunction::kNand: return !(a && b);
    case TwoInputFunction::kNor: return !(a || b);
  }
  throw std::logic_error("ControlledMajGate: unreachable");
}

}  // namespace swsim::core
