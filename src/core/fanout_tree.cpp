#include "core/fanout_tree.h"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/logic.h"

namespace swsim::core {

using wavenet::NodeId;

namespace {

int levels_for(int fanout) {
  int levels = 0;
  int leaves = 1;
  while (leaves < fanout) {
    leaves *= 2;
    ++levels;
  }
  return levels;
}

}  // namespace

FanoutTree::FanoutTree(const TriangleGateConfig& gate_config,
                       const FanoutTreeConfig& tree_config)
    : tree_config_(tree_config),
      gate_config_(gate_config),
      dispersion_(gate_config.material, gate_config.film_thickness) {
  if (tree_config.fanout < 2) {
    throw std::invalid_argument("FanoutTree: fanout must be >= 2");
  }
  if (std::fabs(tree_config.n_branch - std::round(tree_config.n_branch)) >
      1e-9 ||
      tree_config.n_branch < 1.0) {
    throw std::invalid_argument(
        "FanoutTree: n_branch must be a positive integer (the n-lambda "
        "design rule)");
  }
  model_ = wavenet::PropagationModel::from_dispersion(
      dispersion_, gate_config_.params.wavelength, gate_config_.split);

  // The gate network, as in TriangleGateBase, but with O1 feeding the
  // splitter tree instead of a detector. O2 stays a detector (the mirror
  // output keeps its ordinary load).
  const auto& p = gate_config_.params;
  const double half_axis = p.d2() / 2.0;
  const NodeId s1 = net_.add_source("I1");
  const NodeId s2 = net_.add_source("I2");
  const NodeId v = net_.add_junction("V");
  const NodeId s = net_.add_junction("S");
  net_.connect(s1, v, p.d1());
  net_.connect(s2, v, p.d1());
  sources_ = {s1, s2};
  if (p.has_third_input) {
    const NodeId t3 = net_.add_tap("I3");
    net_.connect(v, t3, half_axis);
    net_.connect(t3, s, half_axis);
    sources_.push_back(t3);
  } else {
    net_.connect(v, s, 2.0 * half_axis);
  }
  mirror_out_ = net_.add_detector("O2");
  net_.connect(s, mirror_out_, p.branch_out());

  // Splitter tree off the O1 branch.
  const double branch = tree_config_.n_branch * p.wavelength;
  const int levels = levels_for(tree_config_.fanout);

  // Recursive lambda: returns the root node of a subtree with
  // `remaining` split levels below it.
  std::function<NodeId(int, const std::string&)> make_subtree =
      [&](int remaining, const std::string& name) -> NodeId {
    if (remaining == 0) {
      const NodeId leaf = net_.add_detector("L" + name);
      leaf_ids_.push_back(leaf);
      return leaf;
    }
    const NodeId split = net_.add_junction("C" + name);  // coupler
    for (int child = 0; child < 2; ++child) {
      const std::string child_name = name + (child == 0 ? "a" : "b");
      const NodeId sub = make_subtree(remaining - 1, child_name);
      if (tree_config_.use_repeaters) {
        const NodeId rep = net_.add_repeater("R" + child_name);
        ++repeater_count_;
        net_.connect(split, rep, branch);
        net_.connect(rep, sub, branch);
      } else {
        net_.connect(split, sub, 2.0 * branch);
      }
    }
    return split;
  };

  const NodeId tree_root = make_subtree(levels, "");
  if (levels == 0) {
    // fanout rounded to 1 leaf can't happen (fanout >= 2 checked above).
    throw std::logic_error("FanoutTree: degenerate tree");
  }
  net_.connect(s, tree_root, p.branch_out());
}

int FanoutTree::replication_excitation_cells() const {
  const int inputs = gate_config_.params.has_third_input ? 3 : 2;
  const int gates = (tree_config_.fanout + 1) / 2;  // 2 outputs per gate
  return gates * inputs;
}

FanoutTreeResult FanoutTree::evaluate(const std::vector<bool>& inputs) {
  if (inputs.size() != sources_.size()) {
    throw std::invalid_argument("FanoutTree: wrong input count");
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    net_.excite(sources_[i], 1.0, logic_phase(inputs[i]));
  }
  const auto solved = net_.solve(model_);

  // Reference: the mirror output O2, which sees the plain gate's wave.
  const double direct = std::abs(solved.detector_phasor.at(mirror_out_));

  FanoutTreeResult result;
  result.excitation_cells =
      static_cast<int>(sources_.size()) + repeater_count_;
  const wavenet::PhaseDetector det;
  result.min_relative_amplitude = 1e300;
  bool first = true;
  bool first_logic = false;
  for (const NodeId leaf : leaf_ids_) {
    FanoutLeaf fl;
    fl.phasor = solved.detector_phasor.at(leaf);
    fl.detection = det.detect(fl.phasor);
    if (first) {
      first_logic = fl.detection.logic;
      first = false;
    } else if (fl.detection.logic != first_logic) {
      result.coherent = false;
    }
    result.min_relative_amplitude =
        std::min(result.min_relative_amplitude,
                 direct > 0.0 ? std::abs(fl.phasor) / direct : 0.0);
    result.leaves.push_back(std::move(fl));
  }
  return result;
}

}  // namespace swsim::core
