// Frequency-division-multiplexed (n-bit data parallel) majority bus —
// the concept of the authors' companion paper (ref. [9], DATE 2020)
// realized on the triangle structure.
//
// Spin-wave propagation is linear at small amplitudes, so waves at
// different frequencies traverse the same waveguide independently. If a
// set of wavelengths {lambda_c} all divide every path segment of the
// device an integer number of times, then *each* frequency channel sees a
// valid n-lambda design and the one physical structure evaluates one
// majority per channel simultaneously — an n-bit parallel gate with no
// extra waveguide area.
//
// Channel wavelengths are synthesized from the layout's unit length: with
// all dimension multiples integers, every path is a multiple of lambda_0,
// so lambda_c = lambda_0 / c (c = 1, 2, 3, ...) all satisfy the design
// rules. Higher channels ride higher on the dispersion (shorter waves,
// higher frequency), exactly like ref. [9]'s frequency lanes.
#pragma once

#include <vector>

#include "core/triangle_gate.h"

namespace swsim::core {

struct ParallelBusConfig {
  std::size_t channels = 4;  // bits evaluated in parallel (>= 1)
  geom::TriangleGateParams params = geom::TriangleGateParams::paper_maj3();
  swsim::mag::Material material = swsim::mag::Material::fecob();
  double film_thickness = swsim::math::nm(1);
  wavenet::SplitPolicy split = wavenet::SplitPolicy::kUnitary;
};

struct BusChannelResult {
  double wavelength = 0.0;  // [m]
  double frequency = 0.0;   // [Hz]
  FanoutOutputs outputs;
};

struct BusResult {
  std::vector<BusChannelResult> channels;
  bool all_correct = true;
};

class ParallelMajBus {
 public:
  // Throws std::invalid_argument for zero channels, non-integer dimension
  // multiples (the channel synthesis needs them), or channels whose
  // frequency falls outside the validated dispersion range.
  explicit ParallelMajBus(const ParallelBusConfig& config);

  std::size_t channels() const { return gates_.size(); }
  double channel_wavelength(std::size_t c) const;
  double channel_frequency(std::size_t c) const;

  // Evaluates one MAJ3 per channel: words[c] holds channel c's three
  // inputs. Throws on shape mismatch.
  BusResult evaluate(const std::vector<std::vector<bool>>& words);

  // Energy accounting: one structure, `channels` x 3 excitation tones.
  // (Multi-tone transducers are charged per tone, as in ref. [9].)
  int excitation_tones() const { return static_cast<int>(channels()) * 3; }

 private:
  ParallelBusConfig config_;
  // One gate object per channel: same geometry, different propagation
  // model (k, attenuation). Linearity makes the per-channel solves exact.
  std::vector<TriangleMajGate> gates_;
};

}  // namespace swsim::core
