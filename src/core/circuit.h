// Logic-level composition of spin-wave gates into circuits.
//
// The point of a fan-out-of-2 gate (the paper's motivation, Sec. I) is that
// one structure can feed two downstream gates without replication. This
// netlist model enforces exactly that: every gate output may drive at most
// two loads before a repeater (ref. [37]) or gate replication is required,
// and the cost roll-up charges energy per excitation transducer and delay
// per pipeline stage — so the FO2 advantage shows up as hard numbers in
// circuit-level comparisons (see bench_ladder_vs_triangle and the
// full-adder example).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "perf/transducer.h"

namespace swsim::core {

enum class CircuitGateKind { kMaj3, kXor2, kNot, kRepeater };

std::string to_string(CircuitGateKind kind);

// A signal in the netlist (an index into the circuit's node table).
using Signal = std::size_t;

struct CircuitCost {
  int maj_gates = 0;
  int xor_gates = 0;
  int repeaters = 0;
  int excitation_cells = 0;  // total driven transducers per evaluation
  int detection_cells = 0;
  double energy = 0.0;       // [J] per evaluation
  double delay = 0.0;        // [s] critical path
  std::size_t depth = 0;     // gate stages on the critical path
};

class Circuit {
 public:
  // max_fanout: loads allowed per gate output (2 for the paper's devices).
  explicit Circuit(int max_fanout = 2);

  // Primary input / constant signals (no fan-out limit: they are transducer
  // driven and can be replicated at the boundary).
  Signal input(std::string name);
  Signal constant(bool value);

  // Gates. Each returns the output signal. Throws std::invalid_argument on
  // unknown operands; throws std::runtime_error when an operand's fan-out
  // budget is exhausted (insert a repeater or duplicate the driver).
  Signal add_maj3(Signal a, Signal b, Signal c, bool inverted = false);
  Signal add_xor2(Signal a, Signal b, bool inverted = false);
  // AND/OR via the controlled MAJ construction (I3 = constant).
  Signal add_and2(Signal a, Signal b) {
    return add_maj3(a, b, constant(false));
  }
  Signal add_or2(Signal a, Signal b) { return add_maj3(a, b, constant(true)); }
  // Inversion via a half-wavelength output tap: costs no transducer but
  // occupies a gate output slot.
  Signal add_not(Signal a);
  // Repeater (ref. [37]): regenerates a signal, resetting its fan-out
  // budget, at one excitation transducer of cost.
  Signal add_repeater(Signal a);

  // Marks a signal as a primary output (detection transducer).
  void mark_output(Signal s, std::string name);

  std::size_t gate_count() const { return gates_.size(); }
  int fanout_of(Signal s) const;

  // Evaluates the circuit for the given primary input values (ordered as
  // created). Returns the primary outputs (ordered as marked).
  std::vector<bool> evaluate(const std::vector<bool>& input_values) const;

  // Energy / delay / cell-count roll-up under the paper's cost model.
  CircuitCost cost(
      const perf::TransducerModel& t = perf::TransducerModel::me_cell()) const;

 private:
  enum class NodeKind { kInput, kConst, kGate };
  struct Node {
    NodeKind kind = NodeKind::kInput;
    std::string name;
    bool const_value = false;
    CircuitGateKind gate_kind = CircuitGateKind::kMaj3;
    bool inverted = false;
    std::vector<Signal> operands;
    int fanout = 0;
    std::size_t depth = 0;  // gate stages from the inputs
  };

  Signal add_gate(CircuitGateKind kind, std::vector<Signal> operands,
                  bool inverted);
  void use(Signal s);
  void check(Signal s) const;

  int max_fanout_;
  std::vector<Node> nodes_;
  std::vector<Signal> inputs_;
  std::vector<Signal> gates_;
  std::vector<std::pair<Signal, std::string>> outputs_;
};

// Convenience builders used by the examples and tests.

// One-bit full adder: sum = a ^ b ^ cin, cout = MAJ3(a, b, cin). Exploits
// the FO2 MAJ output pair (one output is cout, the other could drive a
// sum-correction stage in larger designs).
struct FullAdderSignals {
  Signal a, b, cin, sum, cout;
};
FullAdderSignals build_full_adder(Circuit& c);

// n-bit ripple-carry adder; returns per-bit sum signals plus carry-out.
struct RippleAdderSignals {
  std::vector<Signal> a, b, sum;
  Signal cin, cout;
};
RippleAdderSignals build_ripple_adder(Circuit& c, std::size_t bits);

// Triple-modular-redundancy voter: MAJ3 over three module copies.
Signal build_tmr_voter(Circuit& c, Signal m0, Signal m1, Signal m2);

}  // namespace swsim::core
