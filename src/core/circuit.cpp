#include "core/circuit.h"

#include <algorithm>
#include <stdexcept>

#include "core/logic.h"

namespace swsim::core {

std::string to_string(CircuitGateKind kind) {
  switch (kind) {
    case CircuitGateKind::kMaj3: return "MAJ3";
    case CircuitGateKind::kXor2: return "XOR2";
    case CircuitGateKind::kNot: return "NOT";
    case CircuitGateKind::kRepeater: return "REP";
  }
  return "?";
}

Circuit::Circuit(int max_fanout) : max_fanout_(max_fanout) {
  if (max_fanout < 1) {
    throw std::invalid_argument("Circuit: max_fanout must be >= 1");
  }
}

Signal Circuit::input(std::string name) {
  Node n;
  n.kind = NodeKind::kInput;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  inputs_.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

Signal Circuit::constant(bool value) {
  Node n;
  n.kind = NodeKind::kConst;
  n.name = value ? "1" : "0";
  n.const_value = value;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void Circuit::check(Signal s) const {
  if (s >= nodes_.size()) {
    throw std::invalid_argument("Circuit: unknown signal");
  }
}

void Circuit::use(Signal s) {
  check(s);
  Node& n = nodes_[s];
  // Primary inputs and constants are boundary transducers that can be
  // replicated freely; gate outputs are bound by the device's fan-out.
  if (n.kind == NodeKind::kGate && n.fanout >= max_fanout_) {
    throw std::runtime_error(
        "Circuit: fan-out budget of signal '" + n.name +
        "' exhausted (max " + std::to_string(max_fanout_) +
        "): insert a repeater or replicate the driving gate");
  }
  ++n.fanout;
}

Signal Circuit::add_gate(CircuitGateKind kind, std::vector<Signal> operands,
                         bool inverted) {
  std::size_t depth = 0;
  for (Signal s : operands) {
    use(s);
    depth = std::max(depth, nodes_[s].depth);
  }
  Node n;
  n.kind = NodeKind::kGate;
  n.name = to_string(kind) + "#" + std::to_string(gates_.size());
  n.gate_kind = kind;
  n.inverted = inverted;
  n.operands = std::move(operands);
  // NOT is a detection-side trick (half-wavelength tap), not a new wave
  // stage; everything else adds a pipeline stage.
  n.depth = depth + (kind == CircuitGateKind::kNot ? 0 : 1);
  nodes_.push_back(std::move(n));
  gates_.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

Signal Circuit::add_maj3(Signal a, Signal b, Signal c, bool inverted) {
  return add_gate(CircuitGateKind::kMaj3, {a, b, c}, inverted);
}

Signal Circuit::add_xor2(Signal a, Signal b, bool inverted) {
  return add_gate(CircuitGateKind::kXor2, {a, b}, inverted);
}

Signal Circuit::add_not(Signal a) {
  return add_gate(CircuitGateKind::kNot, {a}, true);
}

Signal Circuit::add_repeater(Signal a) {
  return add_gate(CircuitGateKind::kRepeater, {a}, false);
}

void Circuit::mark_output(Signal s, std::string name) {
  use(s);
  outputs_.emplace_back(s, std::move(name));
}

int Circuit::fanout_of(Signal s) const {
  check(s);
  return nodes_[s].fanout;
}

std::vector<bool> Circuit::evaluate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("Circuit::evaluate: expected " +
                                std::to_string(inputs_.size()) + " inputs");
  }
  std::vector<bool> value(nodes_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[inputs_[i]] = input_values[i];
  }
  // Nodes are created in topological order by construction.
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    const Node& n = nodes_[s];
    switch (n.kind) {
      case NodeKind::kInput:
        break;
      case NodeKind::kConst:
        value[s] = n.const_value;
        break;
      case NodeKind::kGate: {
        bool v = false;
        switch (n.gate_kind) {
          case CircuitGateKind::kMaj3:
            v = maj3(value[n.operands[0]], value[n.operands[1]],
                     value[n.operands[2]]);
            break;
          case CircuitGateKind::kXor2:
            v = xor2(value[n.operands[0]], value[n.operands[1]]);
            break;
          case CircuitGateKind::kNot:
          case CircuitGateKind::kRepeater:
            v = value[n.operands[0]];
            break;
        }
        value[s] = n.inverted && n.gate_kind != CircuitGateKind::kNot
                       ? !v
                       : (n.gate_kind == CircuitGateKind::kNot ? !v : v);
        break;
      }
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const auto& [s, name] : outputs_) out.push_back(value[s]);
  return out;
}

CircuitCost Circuit::cost(const perf::TransducerModel& t) const {
  t.validate();
  CircuitCost c;
  std::size_t max_depth = 0;
  for (Signal s : gates_) {
    const Node& n = nodes_[s];
    max_depth = std::max(max_depth, n.depth);
    switch (n.gate_kind) {
      case CircuitGateKind::kMaj3:
        ++c.maj_gates;
        c.excitation_cells += 3;
        break;
      case CircuitGateKind::kXor2:
        ++c.xor_gates;
        c.excitation_cells += 2;
        break;
      case CircuitGateKind::kRepeater:
        ++c.repeaters;
        c.excitation_cells += 1;
        break;
      case CircuitGateKind::kNot:
        break;  // free: a half-wavelength output tap
    }
  }
  c.detection_cells = static_cast<int>(outputs_.size());
  c.energy = c.excitation_cells * t.excitation_energy();
  c.depth = max_depth;
  c.delay = static_cast<double>(max_depth) * t.delay;
  return c;
}

FullAdderSignals build_full_adder(Circuit& c) {
  FullAdderSignals fa;
  fa.a = c.input("a");
  fa.b = c.input("b");
  fa.cin = c.input("cin");
  const Signal ab = c.add_xor2(fa.a, fa.b);
  fa.sum = c.add_xor2(ab, fa.cin);
  fa.cout = c.add_maj3(fa.a, fa.b, fa.cin);
  return fa;
}

RippleAdderSignals build_ripple_adder(Circuit& c, std::size_t bits) {
  if (bits == 0) {
    throw std::invalid_argument("build_ripple_adder: bits must be >= 1");
  }
  RippleAdderSignals r;
  for (std::size_t i = 0; i < bits; ++i) {
    r.a.push_back(c.input("a" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    r.b.push_back(c.input("b" + std::to_string(i)));
  }
  r.cin = c.constant(false);
  Signal carry = r.cin;
  for (std::size_t i = 0; i < bits; ++i) {
    const Signal ab = c.add_xor2(r.a[i], r.b[i]);
    r.sum.push_back(c.add_xor2(ab, carry));
    // The FO2 MAJ: this single structure's two outputs serve the next
    // stage's carry input and (in a carry-select variant) a lookahead tap,
    // so no replication is needed.
    carry = c.add_maj3(r.a[i], r.b[i], carry);
  }
  r.cout = carry;
  return r;
}

Signal build_tmr_voter(Circuit& c, Signal m0, Signal m1, Signal m2) {
  return c.add_maj3(m0, m1, m2);
}

}  // namespace swsim::core
