#include "core/micromag_gate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/logic.h"
#include "mag/zeeman_field.h"
#include "mag/thermal_field.h"
#include "math/constants.h"
#include "math/lockin.h"

namespace swsim::core {

using namespace swsim::math;
using geom::Port;

namespace {

// Rasterizes a layout-space shape onto the simulation grid, whose origin
// (cell 0,0 corner) sits at layout coordinates (ox, oy).
Mask rasterize_shifted(const Grid& g, const geom::Shape& shape, double ox,
                       double oy) {
  Mask mask(g);
  for (std::size_t iy = 0; iy < g.ny(); ++iy) {
    for (std::size_t ix = 0; ix < g.nx(); ++ix) {
      Vec3 c = g.cell_center(ix, iy, 0);
      c.x += ox;
      c.y += oy;
      if (!shape.contains(c)) continue;
      for (std::size_t iz = 0; iz < g.nz(); ++iz) {
        mask.set(g.index(ix, iy, iz), true);
      }
    }
  }
  return mask;
}

// Lock-in over the tail of a probe's record.
LockinResult tail_lockin(const std::vector<double>& t,
                         const std::vector<double>& x, double f0,
                         double settle_fraction) {
  if (t.size() < 8) {
    throw std::runtime_error(
        "MicromagTriangleGate: too few probe samples for lock-in");
  }
  const auto i0 = static_cast<std::size_t>(
      settle_fraction * static_cast<double>(t.size()));
  const std::vector<double> window(x.begin() + static_cast<long>(i0), x.end());
  const double dt = t[1] - t[0];
  return lockin(window, dt, f0, t[i0]);
}

}  // namespace

MicromagTriangleGate::MicromagTriangleGate(const MicromagGateConfig& config)
    : config_(config),
      layout_(config.params),
      dispersion_(config.material, config.film_thickness) {
  if (!(config_.cell_size > 0.0)) {
    throw std::invalid_argument("MicromagTriangleGate: cell_size must be > 0");
  }
  if (config_.cell_size > config_.params.wavelength / 4.0) {
    throw std::invalid_argument(
        "MicromagTriangleGate: need >= 4 cells per wavelength");
  }
  if (!(config_.settle_fraction > 0.0) || config_.settle_fraction >= 0.95) {
    throw std::invalid_argument(
        "MicromagTriangleGate: settle_fraction must be in (0, 0.95)");
  }

  const double k = wavenet::Dispersion::k_of_lambda(config_.params.wavelength);
  frequency_ = dispersion_.frequency(k);

  // Absorber tails: one behind each antenna, one beyond each detector.
  const double tail_len =
      config_.absorber_wavelengths * config_.params.wavelength;
  for (const geom::PortSite& site : layout_.ports()) {
    // I3 sits transparently in the middle of the axis: no tail there (it
    // would sever the waveguide). Its backward-launched wave is absorbed in
    // the input-arm tails after passing V.
    if (site.port == Port::kIn3) continue;
    const bool is_output =
        site.port == Port::kOut1 || site.port == Port::kOut2;
    tails_.push_back(Tail{site.center,
                          is_output ? site.direction : -1.0 * site.direction});
  }

  const geom::Rect bb = layout_.bounding_box(config_.margin);
  double x0 = bb.x0(), y0 = bb.y0(), x1 = bb.x1(), y1 = bb.y1();
  for (const Tail& tail : tails_) {
    const Vec3 end = tail.start + tail.dir * (tail_len + config_.margin);
    x0 = std::min(x0, end.x - config_.params.width);
    y0 = std::min(y0, end.y - config_.params.width);
    x1 = std::max(x1, end.x + config_.params.width);
    y1 = std::max(y1, end.y + config_.params.width);
  }
  origin_x_ = x0;
  origin_y_ = y0;
  const auto nx =
      static_cast<std::size_t>(std::ceil((x1 - x0) / config_.cell_size));
  const auto ny =
      static_cast<std::size_t>(std::ceil((y1 - y0) / config_.cell_size));
  grid_ = Grid::film(nx, ny, config_.cell_size, config_.cell_size,
                     config_.film_thickness);

  body_ = rasterize_shifted(grid_, layout_.body(), origin_x_, origin_y_);
  for (const Tail& tail : tails_) {
    const geom::Segment seg(
        Vec3{tail.start.x - origin_x_, tail.start.y - origin_y_, 0},
        Vec3{tail.start.x + tail.dir.x * tail_len - origin_x_,
             tail.start.y + tail.dir.y * tail_len - origin_y_, 0},
        config_.params.width);
    body_ |= geom::rasterize(grid_, seg);
  }
  if (config_.roughness) {
    body_ = geom::apply_edge_roughness(body_, *config_.roughness);
  }

  // Per-cell damping: quadratic ramp from the material value at each tail
  // mouth to absorber_alpha at the tail end.
  alpha_ = ScalarField(grid_, config_.material.alpha);
  const double alpha0 = config_.material.alpha;
  const double alpha1 = std::max(alpha0, config_.absorber_alpha);
  for (std::size_t iy = 0; iy < grid_.ny(); ++iy) {
    for (std::size_t ix = 0; ix < grid_.nx(); ++ix) {
      const std::size_t i = grid_.index(ix, iy, 0);
      if (!body_[i]) continue;
      Vec3 pos = grid_.cell_center(ix, iy, 0);
      pos.x += origin_x_;
      pos.y += origin_y_;
      double worst = alpha0;
      for (const Tail& tail : tails_) {
        const Vec3 rel = pos - tail.start;
        const double along = dot(rel, tail.dir);
        const double across =
            std::fabs(rel.x * (-tail.dir.y) + rel.y * tail.dir.x);
        if (along <= 0.0 || along > tail_len ||
            across > config_.params.width) {
          continue;
        }
        const double s = std::min(1.0, along / tail_len);
        worst = std::max(worst, alpha0 + (alpha1 - alpha0) * s * s);
      }
      for (std::size_t iz = 0; iz < grid_.nz(); ++iz) {
        alpha_[grid_.index(ix, iy, iz)] = worst;
      }
    }
  }

  // Longest input->output path sets the transit time (the convergence
  // trackers' earliest-decision floor, and the default duration).
  double longest = 0.0;
  for (Port in : {Port::kIn1, Port::kIn2, Port::kIn3}) {
    if (in == Port::kIn3 && !config_.params.has_third_input) continue;
    for (Port out : {Port::kOut1, Port::kOut2}) {
      longest = std::max(longest, layout_.path_length(in, out));
    }
  }
  transit_time_ = longest / dispersion_.group_velocity(k);

  if (config_.duration > 0.0) {
    duration_ = config_.duration;
  } else {
    // Give the wave twice the transit time plus a generous settled window
    // for the lock-in.
    duration_ = 2.0 * transit_time_ + 20.0 / frequency_;
  }
}

std::string MicromagTriangleGate::name() const {
  return config_.params.has_third_input ? "micromag-triangle-MAJ3"
                                        : "micromag-triangle-XOR";
}

bool MicromagTriangleGate::reference(const std::vector<bool>& inputs) const {
  if (config_.params.has_third_input) {
    return maj3(inputs.at(0), inputs.at(1), inputs.at(2));
  }
  return xor2(inputs.at(0), inputs.at(1));
}

MicromagEvaluation MicromagTriangleGate::run(const std::vector<bool>& inputs) {
  swsim::mag::System sys(grid_, config_.material, body_);
  sys.set_alpha_field(alpha_);
  swsim::mag::Simulation sim(std::move(sys));
  sim.add_standard_terms();
  if (config_.temperature > 0.0) {
    sim.add_term(std::make_unique<swsim::mag::ThermalField>(
        config_.temperature, config_.thermal_seed));
    sim.set_stepper(swsim::mag::StepperKind::kHeun, config_.dt);
  } else {
    sim.set_stepper(swsim::mag::StepperKind::kRk4, config_.dt);
  }

  const double extent =
      config_.antenna_extent_factor * config_.params.wavelength;
  const Port in_ports[3] = {Port::kIn1, Port::kIn2, Port::kIn3};
  for (std::size_t i = 0; i < num_inputs(); ++i) {
    const geom::PortSite& site = layout_.port(in_ports[i]);
    const Vec3 half = site.direction * (extent / 2.0);
    const geom::Segment patch(
        Vec3{site.center.x - half.x - origin_x_,
             site.center.y - half.y - origin_y_, 0},
        Vec3{site.center.x + half.x - origin_x_,
             site.center.y + half.y - origin_y_, 0},
        config_.params.width);
    Mask region = geom::rasterize(grid_, patch);
    region &= body_;
    if (region.count() == 0) {
      throw std::runtime_error(name() + ": antenna region " +
                               geom::to_string(in_ports[i]) +
                               " rasterized to zero cells");
    }
    sim.add_term(std::make_unique<swsim::mag::AntennaField>(
        std::move(region), config_.drive_amplitude, Vec3{1, 0, 0},
        frequency_, logic_phase(inputs[i])));
  }

  const double sample_dt = 1.0 / (32.0 * frequency_);
  for (Port out : {Port::kOut1, Port::kOut2}) {
    const geom::PortSite& site = layout_.port(out);
    const Vec3 half = site.direction * (extent / 2.0);
    const geom::Segment patch(
        Vec3{site.center.x - half.x - origin_x_,
             site.center.y - half.y - origin_y_, 0},
        Vec3{site.center.x + half.x - origin_x_,
             site.center.y + half.y - origin_y_, 0},
        config_.params.width);
    Mask region = geom::rasterize(grid_, patch);
    region &= body_;
    if (region.count() == 0) {
      throw std::runtime_error(name() + ": detector region " +
                               geom::to_string(out) +
                               " rasterized to zero cells");
    }
    sim.add_probe(geom::to_string(out), region, sample_dt);
  }

  if (config_.live_probes) {
    // 32 samples per drive period (sample_dt above), so demod_periods
    // drive periods span demod_periods * 32 samples per tumbling window.
    const auto window = static_cast<std::size_t>(std::max(
        2.0, std::round(config_.demod_periods / (sample_dt * frequency_))));
    for (const char* out : {"O1", "O2"}) {
      sim.probe(out).arm_demodulator(frequency_, window);
    }
    swsim::obs::ConvergencePolicy policy = config_.convergence;
    if (policy.min_time <= 0.0) {
      // Never decide before the wave has reached the farthest output and
      // had a few periods to settle.
      policy.min_time = transit_time_ + 8.0 / frequency_;
    }
    sim.set_convergence(policy, config_.early_stop);
    std::string label = name() + " ";
    for (const bool b : inputs) label += b ? '1' : '0';
    sim.set_telemetry_label(std::move(label));
  }

  sim.set_watchdog(config_.watchdog);
  if (cancel_token_) sim.set_cancel_token(*cancel_token_);
  const robust::Status solve = sim.run_guarded(duration_);
  if (!solve.is_ok()) {
    std::string in_bits;
    for (const bool b : inputs) in_bits += b ? '1' : '0';
    throw robust::SolveError(
        solve.with_context(name() + " inputs=" + in_bits));
  }

  MicromagEvaluation ev;
  ev.frequency = frequency_;
  const auto& p1 = sim.probe("O1");
  const auto& p2 = sim.probe("O2");
  const LockinResult l1 =
      tail_lockin(p1.times(), p1.mx(), frequency_, config_.settle_fraction);
  const LockinResult l2 =
      tail_lockin(p2.times(), p2.mx(), frequency_, config_.settle_fraction);
  ev.o1_amplitude = l1.amplitude;
  ev.o2_amplitude = l2.amplitude;
  ev.o1_phase = l1.phase;
  ev.o2_phase = l2.phase;

  ev.snapshot_mx = ScalarField(grid_);
  const auto& m = sim.magnetization();
  for (std::size_t i = 0; i < m.size(); ++i) ev.snapshot_mx[i] = m[i].x;
  ev.body = body_;
  for (const auto* p : {&p1, &p2}) {
    ev.probe_series.push_back(
        {p->name(), p->times(), p->mx(), p->my(), p->mz()});
  }
  ev.saved_steps = sim.early_stop_saved_steps();
  return ev;
}

void MicromagTriangleGate::ensure_calibration() {
  if (calibrated_) return;
  const std::vector<bool> zeros(num_inputs(), false);
  const MicromagEvaluation ref = run(zeros);
  ref_amplitude_ = std::max(ref.o1_amplitude, ref.o2_amplitude);
  if (!(ref_amplitude_ > 0.0)) {
    throw std::runtime_error(name() +
                             ": calibration run produced zero output "
                             "amplitude - no wave reached the detectors");
  }
  ref_phase_o1_ = ref.o1_phase;
  ref_phase_o2_ = ref.o2_phase;
  calibrated_ = true;
}

MicromagCalibration MicromagTriangleGate::calibrate() {
  ensure_calibration();
  return {ref_amplitude_, ref_phase_o1_, ref_phase_o2_};
}

std::optional<MicromagCalibration> MicromagTriangleGate::calibration() const {
  if (!calibrated_) return std::nullopt;
  return MicromagCalibration{ref_amplitude_, ref_phase_o1_, ref_phase_o2_};
}

void MicromagTriangleGate::set_calibration(const MicromagCalibration& c) {
  if (!(c.ref_amplitude > 0.0)) {
    throw std::invalid_argument(
        name() + ": injected calibration needs ref_amplitude > 0");
  }
  ref_amplitude_ = c.ref_amplitude;
  ref_phase_o1_ = c.ref_phase_o1;
  ref_phase_o2_ = c.ref_phase_o2;
  calibrated_ = true;
}

MicromagEvaluation MicromagTriangleGate::evaluate_full(
    const std::vector<bool>& inputs) {
  if (inputs.size() != num_inputs()) {
    throw std::invalid_argument(name() + ": expected " +
                                std::to_string(num_inputs()) + " inputs");
  }
  ensure_calibration();
  MicromagEvaluation ev = run(inputs);

  auto detect = [&](double amplitude, double phase, double ref_phase) {
    wavenet::Detection d;
    d.amplitude = amplitude;
    d.phase = wrap_phase(phase - ref_phase);
    if (config_.params.has_third_input) {
      // Phase detection relative to the logic-0 calibration phase.
      const double dist0 = phase_distance(d.phase, 0.0);
      const double dist1 = phase_distance(d.phase, kPi);
      d.logic = dist1 < dist0;
      d.margin = std::fabs(dist0 - dist1) / 2.0;
    } else {
      // Threshold detection on the normalized amplitude (paper: 0.5).
      const double normalized = amplitude / ref_amplitude_;
      d.logic = !(normalized > 0.5);
      d.margin = std::fabs(normalized - 0.5);
    }
    return d;
  };

  ev.outputs.o1 = detect(ev.o1_amplitude, ev.o1_phase, ref_phase_o1_);
  ev.outputs.o2 = detect(ev.o2_amplitude, ev.o2_phase, ref_phase_o2_);
  ev.outputs.normalized_o1 = ev.o1_amplitude / ref_amplitude_;
  ev.outputs.normalized_o2 = ev.o2_amplitude / ref_amplitude_;
  return ev;
}

FanoutOutputs MicromagTriangleGate::evaluate(const std::vector<bool>& inputs) {
  return evaluate_full(inputs).outputs;
}

}  // namespace swsim::core
