#include "core/variability.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/logic.h"
#include "math/constants.h"
#include "math/rng.h"

namespace swsim::core {

double VariabilityModel::phase_sigma_for_length(double sigma_length,
                                                double wavelength) {
  if (!(wavelength > 0.0)) {
    throw std::invalid_argument(
        "phase_sigma_for_length: wavelength must be > 0");
  }
  return swsim::math::kTwoPi * sigma_length / wavelength;
}

TrialOutcome run_variability_trial(
    TriangleGateBase& gate, const VariabilityModel& model,
    swsim::math::Pcg32& rng,
    const std::vector<std::vector<bool>>& patterns) {
  const std::size_t n = gate.num_inputs();
  const bool is_phase_gate = n == 3;  // MAJ family: phase detection
  const double threshold_ref = gate.reference_amplitude();
  const wavenet::PhaseDetector phase_det;
  const wavenet::ThresholdDetector threshold_det(0.5);

  // One disturbance draw per transducer per trial (the same device
  // evaluates every row). Draw order is part of the RNG contract: phase
  // then amplitude, per input, in input order.
  std::vector<double> dphase(n), damp(n);
  for (std::size_t i = 0; i < n; ++i) {
    dphase[i] = rng.normal(0.0, model.sigma_phase);
    damp[i] = std::max(0.0, 1.0 + rng.normal(0.0, model.sigma_amplitude));
  }

  TrialOutcome outcome;
  outcome.worst_margin = 1e300;
  for (const auto& p : patterns) {
    std::vector<wavenet::Complex> waves(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ph = logic_phase(p[i]) + dphase[i];
      waves[i] = damp[i] * wavenet::Complex{std::cos(ph), std::sin(ph)};
    }
    const auto [o1, o2] = gate.solve_wave_phasors(waves);
    const bool expected = gate.reference(p);
    wavenet::Detection d1, d2;
    if (is_phase_gate) {
      d1 = phase_det.detect(o1);
      d2 = phase_det.detect(o2);
    } else {
      d1 = threshold_det.detect(o1, threshold_ref);
      d2 = threshold_det.detect(o2, threshold_ref);
    }
    const bool row_ok = d1.logic == expected && d2.logic == expected;
    if (!row_ok) {
      outcome.all_rows = false;
      ++outcome.row_failures;
    }
    outcome.worst_margin =
        std::min({outcome.worst_margin, d1.margin, d2.margin});
  }
  return outcome;
}

YieldReport estimate_yield(TriangleGateBase& gate,
                           const VariabilityModel& model,
                           std::size_t trials) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_yield: trials must be >= 1");
  }
  if (model.sigma_phase < 0.0 || model.sigma_amplitude < 0.0) {
    throw std::invalid_argument("estimate_yield: sigmas must be >= 0");
  }

  swsim::math::Pcg32 rng(model.seed);

  YieldReport report;
  report.trials = trials;
  double margin_acc = 0.0;

  const auto patterns = all_input_patterns(gate.num_inputs());
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const TrialOutcome outcome =
        run_variability_trial(gate, model, rng, patterns);
    if (outcome.all_rows) ++report.passing;
    report.worst_row_failures += outcome.row_failures;
    margin_acc += outcome.worst_margin;
  }
  report.yield =
      static_cast<double>(report.passing) / static_cast<double>(trials);
  report.mean_worst_margin = margin_acc / static_cast<double>(trials);
  return report;
}

}  // namespace swsim::core
