// Monte-Carlo variability analysis — the quantitative version of the
// paper's Sec. IV-D discussion ("we will explore deeply the variability
// and thermal noise effects on the proposed gates in the near future").
//
// Fabrication and transducer imperfections reach the interference logic
// as two disturbances:
//   * phase errors: waveguide length errors delta-L (and transducer phase
//     offsets) shift each input's arrival phase by 2 pi delta-L / lambda;
//   * amplitude errors: transducer efficiency spread and local Ms/width
//     variation scale each input's arrival amplitude.
// The Monte-Carlo engine samples both on every input of a gate, replays
// the full truth table per sample, and reports the yield (fraction of
// samples whose every row is still detected correctly) plus margin
// statistics — the numbers a designer needs to set tolerances.
#pragma once

#include <cstdint>
#include <vector>

#include "core/triangle_gate.h"
#include "math/rng.h"

namespace swsim::core {

struct VariabilityModel {
  // Std. dev. of the per-input arrival phase error [rad]. A length error
  // sigma_L maps to sigma_phase = 2 pi sigma_L / lambda.
  double sigma_phase = 0.0;
  // Std. dev. of the relative per-input amplitude error (0.05 = 5 %).
  double sigma_amplitude = 0.0;
  std::uint64_t seed = 1;

  // Convenience: the phase sigma for a geometric length tolerance.
  static double phase_sigma_for_length(double sigma_length,
                                       double wavelength);
};

struct YieldReport {
  std::size_t trials = 0;
  std::size_t passing = 0;      // trials with ALL truth-table rows correct
  double yield = 0.0;           // passing / trials
  double mean_worst_margin = 0.0;  // mean over trials of the worst row margin
  std::size_t worst_row_failures = 0;  // total row-level failures observed
};

// One Monte-Carlo sample: a single virtual device (one disturbance draw
// per transducer from `rng`, in a fixed draw order) replaying the full
// truth table.
struct TrialOutcome {
  bool all_rows = true;          // every row detected correctly
  std::size_t row_failures = 0;  // rows that mis-detected
  double worst_margin = 0.0;     // min margin over rows and outputs
};

// Runs one trial. `patterns` must be all_input_patterns(gate.num_inputs())
// (passed in so sweeps do not rebuild it per trial). This is the shared
// physics of both the serial estimate_yield loop below and the
// engine-backed parallel path (engine::BatchRunner::run_yield), which
// seeds an independent RNG stream per trial so its statistics are
// identical for any job count.
TrialOutcome run_variability_trial(TriangleGateBase& gate,
                                   const VariabilityModel& model,
                                   swsim::math::Pcg32& rng,
                                   const std::vector<std::vector<bool>>& patterns);

// Runs `trials` Monte-Carlo samples of the gate under the model. The gate
// is evaluated through its raw phasor interface so disturbances compose
// with the real propagation physics (attenuation, splits, multi-bounce).
// Works for any TriangleGateBase-derived gate (MAJ, XOR, derived).
YieldReport estimate_yield(TriangleGateBase& gate, const VariabilityModel& model,
                           std::size_t trials);

}  // namespace swsim::core
