// Fan-out beyond 2 (paper Sec. III-A, last paragraph):
//
//   "the gate fan-out capabilities can be extended beyond 2 by using
//    directional couplers [36] to split the spin wave into multiple arms
//    and using repeaters [37] to regenerate a strong SW in the different
//    waveguides."
//
// FanoutTree implements exactly that: a binary splitter tree of
// directional couplers hanging off one output of a triangle gate, with
// optional repeaters after each split level. The alternative the paper
// argues against — replicating the whole gate per extra load — is modeled
// alongside for the energy comparison.
#pragma once

#include <complex>
#include <vector>

#include "core/triangle_gate.h"
#include "perf/transducer.h"

namespace swsim::core {

struct FanoutTreeConfig {
  // Total leaves required (>= 2); rounded up to the next power of two
  // internally for the binary tree.
  int fanout = 4;
  // Insert an amplitude-regenerating repeater after each splitter level.
  bool use_repeaters = true;
  // Coupler arm length between levels, in wavelengths (integer keeps the
  // phase logic intact).
  double n_branch = 2;
};

struct FanoutLeaf {
  std::complex<double> phasor;
  wavenet::Detection detection;  // phase detection vs reference 0
};

struct FanoutTreeResult {
  std::vector<FanoutLeaf> leaves;
  // Worst leaf amplitude relative to the direct (no-tree) gate output.
  double min_relative_amplitude = 0.0;
  // Are all leaves logically identical (true fan-out)?
  bool coherent = true;
  // Cost: excitation transducers driven per evaluation, incl. repeaters.
  int excitation_cells = 0;
};

class FanoutTree {
 public:
  // Builds the tree on top of a MAJ3 gate configuration. Throws
  // std::invalid_argument on fanout < 2 or a non-integer branch multiple.
  FanoutTree(const TriangleGateConfig& gate_config,
             const FanoutTreeConfig& tree_config);

  std::size_t leaf_count() const { return leaf_ids_.size(); }

  // Evaluates the underlying MAJ3 for the given inputs and propagates its
  // O1 wave through the splitter tree.
  FanoutTreeResult evaluate(const std::vector<bool>& inputs);

  // Cost of achieving the same fan-out by replicating the whole gate:
  // ceil(fanout / 2) gate copies x excitation cells per gate.
  int replication_excitation_cells() const;

 private:
  FanoutTreeConfig tree_config_;
  TriangleGateConfig gate_config_;
  wavenet::Dispersion dispersion_;
  wavenet::PropagationModel model_;
  wavenet::WaveNetwork net_;
  std::vector<wavenet::NodeId> sources_;
  std::vector<wavenet::NodeId> leaf_ids_;
  wavenet::NodeId mirror_out_ = 0;  // the gate's other output (O2)
  int repeater_count_ = 0;
  double direct_reference_ = -1.0;
};

}  // namespace swsim::core
