// The fan-out-of-2 spin-wave gate interface.
//
// Every gate in this library — the proposed triangle MAJ3/XOR, the derived
// (N)AND/(N)OR/XNOR, the ladder baseline, and the micromagnetic-backend
// variants — evaluates a vector of logic inputs and produces TWO outputs
// (the paper's fan-out of 2), each carrying the detected logic value plus
// the raw analog quantities (amplitude, phase, normalized magnetization)
// that Tables I and II report.
#pragma once

#include <string>
#include <vector>

#include "robust/cancel.h"
#include "wavenet/detector.h"

namespace swsim::core {

struct FanoutOutputs {
  wavenet::Detection o1;
  wavenet::Detection o2;
  // Output amplitude normalized to the all-inputs-equal (fully constructive)
  // reference — the "normalized output magnetization" of Tables I / II.
  double normalized_o1 = 0.0;
  double normalized_o2 = 0.0;
};

class FanoutGate {
 public:
  virtual ~FanoutGate() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_inputs() const = 0;

  // Evaluates the gate. Throws std::invalid_argument if inputs.size() !=
  // num_inputs().
  virtual FanoutOutputs evaluate(const std::vector<bool>& inputs) = 0;

  // The Boolean function this gate is supposed to implement (used by the
  // validator); must be pure.
  virtual bool reference(const std::vector<bool>& inputs) const = 0;

  // Number of excitation transducers an evaluation drives (for the energy
  // model).
  virtual int excitation_cells() const = 0;

  // Installs a cooperative cancellation token. Long-running backends (the
  // micromagnetic gate's LLG solves) poll it and abort evaluate() with
  // robust::SolveError(kCancelled); the analytic gates finish in
  // microseconds and ignore it. The engine arms one per job attempt so a
  // timed-out job stops burning its worker thread.
  virtual void set_cancel_token(const swsim::robust::CancelToken& token) {
    (void)token;
  }
};

}  // namespace swsim::core
