file(REMOVE_RECURSE
  "CMakeFiles/swsim_math.dir/fft.cpp.o"
  "CMakeFiles/swsim_math.dir/fft.cpp.o.d"
  "CMakeFiles/swsim_math.dir/field.cpp.o"
  "CMakeFiles/swsim_math.dir/field.cpp.o.d"
  "CMakeFiles/swsim_math.dir/grid.cpp.o"
  "CMakeFiles/swsim_math.dir/grid.cpp.o.d"
  "CMakeFiles/swsim_math.dir/lockin.cpp.o"
  "CMakeFiles/swsim_math.dir/lockin.cpp.o.d"
  "CMakeFiles/swsim_math.dir/rng.cpp.o"
  "CMakeFiles/swsim_math.dir/rng.cpp.o.d"
  "CMakeFiles/swsim_math.dir/spectrum.cpp.o"
  "CMakeFiles/swsim_math.dir/spectrum.cpp.o.d"
  "CMakeFiles/swsim_math.dir/stats.cpp.o"
  "CMakeFiles/swsim_math.dir/stats.cpp.o.d"
  "libswsim_math.a"
  "libswsim_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
