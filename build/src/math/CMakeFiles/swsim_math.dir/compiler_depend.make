# Empty compiler generated dependencies file for swsim_math.
# This may be replaced when dependencies are built.
