
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fft.cpp" "src/math/CMakeFiles/swsim_math.dir/fft.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/fft.cpp.o.d"
  "/root/repo/src/math/field.cpp" "src/math/CMakeFiles/swsim_math.dir/field.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/field.cpp.o.d"
  "/root/repo/src/math/grid.cpp" "src/math/CMakeFiles/swsim_math.dir/grid.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/grid.cpp.o.d"
  "/root/repo/src/math/lockin.cpp" "src/math/CMakeFiles/swsim_math.dir/lockin.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/lockin.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/swsim_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/rng.cpp.o.d"
  "/root/repo/src/math/spectrum.cpp" "src/math/CMakeFiles/swsim_math.dir/spectrum.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/spectrum.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/swsim_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/swsim_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
