file(REMOVE_RECURSE
  "libswsim_math.a"
)
