file(REMOVE_RECURSE
  "CMakeFiles/swsim_geom.dir/gate_layout.cpp.o"
  "CMakeFiles/swsim_geom.dir/gate_layout.cpp.o.d"
  "CMakeFiles/swsim_geom.dir/roughness.cpp.o"
  "CMakeFiles/swsim_geom.dir/roughness.cpp.o.d"
  "CMakeFiles/swsim_geom.dir/shape.cpp.o"
  "CMakeFiles/swsim_geom.dir/shape.cpp.o.d"
  "libswsim_geom.a"
  "libswsim_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
