file(REMOVE_RECURSE
  "libswsim_geom.a"
)
