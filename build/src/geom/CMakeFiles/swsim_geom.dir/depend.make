# Empty dependencies file for swsim_geom.
# This may be replaced when dependencies are built.
