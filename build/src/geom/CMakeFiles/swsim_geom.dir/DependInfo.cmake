
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/gate_layout.cpp" "src/geom/CMakeFiles/swsim_geom.dir/gate_layout.cpp.o" "gcc" "src/geom/CMakeFiles/swsim_geom.dir/gate_layout.cpp.o.d"
  "/root/repo/src/geom/roughness.cpp" "src/geom/CMakeFiles/swsim_geom.dir/roughness.cpp.o" "gcc" "src/geom/CMakeFiles/swsim_geom.dir/roughness.cpp.o.d"
  "/root/repo/src/geom/shape.cpp" "src/geom/CMakeFiles/swsim_geom.dir/shape.cpp.o" "gcc" "src/geom/CMakeFiles/swsim_geom.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/swsim_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
