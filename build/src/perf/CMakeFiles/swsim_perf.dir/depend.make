# Empty dependencies file for swsim_perf.
# This may be replaced when dependencies are built.
