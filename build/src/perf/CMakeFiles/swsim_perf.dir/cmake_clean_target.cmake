file(REMOVE_RECURSE
  "libswsim_perf.a"
)
