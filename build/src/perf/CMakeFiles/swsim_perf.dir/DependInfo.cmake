
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/area.cpp" "src/perf/CMakeFiles/swsim_perf.dir/area.cpp.o" "gcc" "src/perf/CMakeFiles/swsim_perf.dir/area.cpp.o.d"
  "/root/repo/src/perf/cmos_ref.cpp" "src/perf/CMakeFiles/swsim_perf.dir/cmos_ref.cpp.o" "gcc" "src/perf/CMakeFiles/swsim_perf.dir/cmos_ref.cpp.o.d"
  "/root/repo/src/perf/comparison.cpp" "src/perf/CMakeFiles/swsim_perf.dir/comparison.cpp.o" "gcc" "src/perf/CMakeFiles/swsim_perf.dir/comparison.cpp.o.d"
  "/root/repo/src/perf/gate_cost.cpp" "src/perf/CMakeFiles/swsim_perf.dir/gate_cost.cpp.o" "gcc" "src/perf/CMakeFiles/swsim_perf.dir/gate_cost.cpp.o.d"
  "/root/repo/src/perf/latency.cpp" "src/perf/CMakeFiles/swsim_perf.dir/latency.cpp.o" "gcc" "src/perf/CMakeFiles/swsim_perf.dir/latency.cpp.o.d"
  "/root/repo/src/perf/transducer.cpp" "src/perf/CMakeFiles/swsim_perf.dir/transducer.cpp.o" "gcc" "src/perf/CMakeFiles/swsim_perf.dir/transducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/swsim_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/swsim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/wavenet/CMakeFiles/swsim_wavenet.dir/DependInfo.cmake"
  "/root/repo/build/src/mag/CMakeFiles/swsim_mag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
