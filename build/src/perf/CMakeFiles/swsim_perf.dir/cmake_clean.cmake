file(REMOVE_RECURSE
  "CMakeFiles/swsim_perf.dir/area.cpp.o"
  "CMakeFiles/swsim_perf.dir/area.cpp.o.d"
  "CMakeFiles/swsim_perf.dir/cmos_ref.cpp.o"
  "CMakeFiles/swsim_perf.dir/cmos_ref.cpp.o.d"
  "CMakeFiles/swsim_perf.dir/comparison.cpp.o"
  "CMakeFiles/swsim_perf.dir/comparison.cpp.o.d"
  "CMakeFiles/swsim_perf.dir/gate_cost.cpp.o"
  "CMakeFiles/swsim_perf.dir/gate_cost.cpp.o.d"
  "CMakeFiles/swsim_perf.dir/latency.cpp.o"
  "CMakeFiles/swsim_perf.dir/latency.cpp.o.d"
  "CMakeFiles/swsim_perf.dir/transducer.cpp.o"
  "CMakeFiles/swsim_perf.dir/transducer.cpp.o.d"
  "libswsim_perf.a"
  "libswsim_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
