# Empty compiler generated dependencies file for swsim_io.
# This may be replaced when dependencies are built.
