file(REMOVE_RECURSE
  "CMakeFiles/swsim_io.dir/csv.cpp.o"
  "CMakeFiles/swsim_io.dir/csv.cpp.o.d"
  "CMakeFiles/swsim_io.dir/ovf.cpp.o"
  "CMakeFiles/swsim_io.dir/ovf.cpp.o.d"
  "CMakeFiles/swsim_io.dir/render.cpp.o"
  "CMakeFiles/swsim_io.dir/render.cpp.o.d"
  "CMakeFiles/swsim_io.dir/table.cpp.o"
  "CMakeFiles/swsim_io.dir/table.cpp.o.d"
  "libswsim_io.a"
  "libswsim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
