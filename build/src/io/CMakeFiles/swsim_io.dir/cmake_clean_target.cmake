file(REMOVE_RECURSE
  "libswsim_io.a"
)
