file(REMOVE_RECURSE
  "CMakeFiles/swsim_mag.dir/anisotropy_field.cpp.o"
  "CMakeFiles/swsim_mag.dir/anisotropy_field.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/demag_field.cpp.o"
  "CMakeFiles/swsim_mag.dir/demag_field.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/exchange_field.cpp.o"
  "CMakeFiles/swsim_mag.dir/exchange_field.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/field_term.cpp.o"
  "CMakeFiles/swsim_mag.dir/field_term.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/llg.cpp.o"
  "CMakeFiles/swsim_mag.dir/llg.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/material.cpp.o"
  "CMakeFiles/swsim_mag.dir/material.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/probe.cpp.o"
  "CMakeFiles/swsim_mag.dir/probe.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/simulation.cpp.o"
  "CMakeFiles/swsim_mag.dir/simulation.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/system.cpp.o"
  "CMakeFiles/swsim_mag.dir/system.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/thermal_field.cpp.o"
  "CMakeFiles/swsim_mag.dir/thermal_field.cpp.o.d"
  "CMakeFiles/swsim_mag.dir/zeeman_field.cpp.o"
  "CMakeFiles/swsim_mag.dir/zeeman_field.cpp.o.d"
  "libswsim_mag.a"
  "libswsim_mag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_mag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
