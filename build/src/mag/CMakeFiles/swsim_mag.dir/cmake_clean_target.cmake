file(REMOVE_RECURSE
  "libswsim_mag.a"
)
