# Empty compiler generated dependencies file for swsim_mag.
# This may be replaced when dependencies are built.
