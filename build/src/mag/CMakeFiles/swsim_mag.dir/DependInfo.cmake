
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mag/anisotropy_field.cpp" "src/mag/CMakeFiles/swsim_mag.dir/anisotropy_field.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/anisotropy_field.cpp.o.d"
  "/root/repo/src/mag/demag_field.cpp" "src/mag/CMakeFiles/swsim_mag.dir/demag_field.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/demag_field.cpp.o.d"
  "/root/repo/src/mag/exchange_field.cpp" "src/mag/CMakeFiles/swsim_mag.dir/exchange_field.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/exchange_field.cpp.o.d"
  "/root/repo/src/mag/field_term.cpp" "src/mag/CMakeFiles/swsim_mag.dir/field_term.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/field_term.cpp.o.d"
  "/root/repo/src/mag/llg.cpp" "src/mag/CMakeFiles/swsim_mag.dir/llg.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/llg.cpp.o.d"
  "/root/repo/src/mag/material.cpp" "src/mag/CMakeFiles/swsim_mag.dir/material.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/material.cpp.o.d"
  "/root/repo/src/mag/probe.cpp" "src/mag/CMakeFiles/swsim_mag.dir/probe.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/probe.cpp.o.d"
  "/root/repo/src/mag/simulation.cpp" "src/mag/CMakeFiles/swsim_mag.dir/simulation.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/simulation.cpp.o.d"
  "/root/repo/src/mag/system.cpp" "src/mag/CMakeFiles/swsim_mag.dir/system.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/system.cpp.o.d"
  "/root/repo/src/mag/thermal_field.cpp" "src/mag/CMakeFiles/swsim_mag.dir/thermal_field.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/thermal_field.cpp.o.d"
  "/root/repo/src/mag/zeeman_field.cpp" "src/mag/CMakeFiles/swsim_mag.dir/zeeman_field.cpp.o" "gcc" "src/mag/CMakeFiles/swsim_mag.dir/zeeman_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/swsim_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
