
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/circuit.cpp" "src/core/CMakeFiles/swsim_core.dir/circuit.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/circuit.cpp.o.d"
  "/root/repo/src/core/derived_gates.cpp" "src/core/CMakeFiles/swsim_core.dir/derived_gates.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/derived_gates.cpp.o.d"
  "/root/repo/src/core/fanout_tree.cpp" "src/core/CMakeFiles/swsim_core.dir/fanout_tree.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/fanout_tree.cpp.o.d"
  "/root/repo/src/core/ladder_gate.cpp" "src/core/CMakeFiles/swsim_core.dir/ladder_gate.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/ladder_gate.cpp.o.d"
  "/root/repo/src/core/logic.cpp" "src/core/CMakeFiles/swsim_core.dir/logic.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/logic.cpp.o.d"
  "/root/repo/src/core/micromag_gate.cpp" "src/core/CMakeFiles/swsim_core.dir/micromag_gate.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/micromag_gate.cpp.o.d"
  "/root/repo/src/core/multi_input_gate.cpp" "src/core/CMakeFiles/swsim_core.dir/multi_input_gate.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/multi_input_gate.cpp.o.d"
  "/root/repo/src/core/parallel_bus.cpp" "src/core/CMakeFiles/swsim_core.dir/parallel_bus.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/parallel_bus.cpp.o.d"
  "/root/repo/src/core/triangle_gate.cpp" "src/core/CMakeFiles/swsim_core.dir/triangle_gate.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/triangle_gate.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/swsim_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/validator.cpp.o.d"
  "/root/repo/src/core/variability.cpp" "src/core/CMakeFiles/swsim_core.dir/variability.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/variability.cpp.o.d"
  "/root/repo/src/core/wave_cascade.cpp" "src/core/CMakeFiles/swsim_core.dir/wave_cascade.cpp.o" "gcc" "src/core/CMakeFiles/swsim_core.dir/wave_cascade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/swsim_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/swsim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/mag/CMakeFiles/swsim_mag.dir/DependInfo.cmake"
  "/root/repo/build/src/wavenet/CMakeFiles/swsim_wavenet.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/swsim_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/swsim_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
