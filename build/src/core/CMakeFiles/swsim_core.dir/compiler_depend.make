# Empty compiler generated dependencies file for swsim_core.
# This may be replaced when dependencies are built.
