file(REMOVE_RECURSE
  "CMakeFiles/swsim_core.dir/circuit.cpp.o"
  "CMakeFiles/swsim_core.dir/circuit.cpp.o.d"
  "CMakeFiles/swsim_core.dir/derived_gates.cpp.o"
  "CMakeFiles/swsim_core.dir/derived_gates.cpp.o.d"
  "CMakeFiles/swsim_core.dir/fanout_tree.cpp.o"
  "CMakeFiles/swsim_core.dir/fanout_tree.cpp.o.d"
  "CMakeFiles/swsim_core.dir/ladder_gate.cpp.o"
  "CMakeFiles/swsim_core.dir/ladder_gate.cpp.o.d"
  "CMakeFiles/swsim_core.dir/logic.cpp.o"
  "CMakeFiles/swsim_core.dir/logic.cpp.o.d"
  "CMakeFiles/swsim_core.dir/micromag_gate.cpp.o"
  "CMakeFiles/swsim_core.dir/micromag_gate.cpp.o.d"
  "CMakeFiles/swsim_core.dir/multi_input_gate.cpp.o"
  "CMakeFiles/swsim_core.dir/multi_input_gate.cpp.o.d"
  "CMakeFiles/swsim_core.dir/parallel_bus.cpp.o"
  "CMakeFiles/swsim_core.dir/parallel_bus.cpp.o.d"
  "CMakeFiles/swsim_core.dir/triangle_gate.cpp.o"
  "CMakeFiles/swsim_core.dir/triangle_gate.cpp.o.d"
  "CMakeFiles/swsim_core.dir/validator.cpp.o"
  "CMakeFiles/swsim_core.dir/validator.cpp.o.d"
  "CMakeFiles/swsim_core.dir/variability.cpp.o"
  "CMakeFiles/swsim_core.dir/variability.cpp.o.d"
  "CMakeFiles/swsim_core.dir/wave_cascade.cpp.o"
  "CMakeFiles/swsim_core.dir/wave_cascade.cpp.o.d"
  "libswsim_core.a"
  "libswsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
