file(REMOVE_RECURSE
  "libswsim_core.a"
)
