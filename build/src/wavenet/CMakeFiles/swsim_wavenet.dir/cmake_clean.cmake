file(REMOVE_RECURSE
  "CMakeFiles/swsim_wavenet.dir/detector.cpp.o"
  "CMakeFiles/swsim_wavenet.dir/detector.cpp.o.d"
  "CMakeFiles/swsim_wavenet.dir/dispersion.cpp.o"
  "CMakeFiles/swsim_wavenet.dir/dispersion.cpp.o.d"
  "CMakeFiles/swsim_wavenet.dir/network.cpp.o"
  "CMakeFiles/swsim_wavenet.dir/network.cpp.o.d"
  "libswsim_wavenet.a"
  "libswsim_wavenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_wavenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
