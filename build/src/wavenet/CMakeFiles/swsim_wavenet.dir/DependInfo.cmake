
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavenet/detector.cpp" "src/wavenet/CMakeFiles/swsim_wavenet.dir/detector.cpp.o" "gcc" "src/wavenet/CMakeFiles/swsim_wavenet.dir/detector.cpp.o.d"
  "/root/repo/src/wavenet/dispersion.cpp" "src/wavenet/CMakeFiles/swsim_wavenet.dir/dispersion.cpp.o" "gcc" "src/wavenet/CMakeFiles/swsim_wavenet.dir/dispersion.cpp.o.d"
  "/root/repo/src/wavenet/network.cpp" "src/wavenet/CMakeFiles/swsim_wavenet.dir/network.cpp.o" "gcc" "src/wavenet/CMakeFiles/swsim_wavenet.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/swsim_math.dir/DependInfo.cmake"
  "/root/repo/build/src/mag/CMakeFiles/swsim_mag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
