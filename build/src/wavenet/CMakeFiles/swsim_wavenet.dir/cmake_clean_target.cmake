file(REMOVE_RECURSE
  "libswsim_wavenet.a"
)
