# Empty compiler generated dependencies file for swsim_wavenet.
# This may be replaced when dependencies are built.
