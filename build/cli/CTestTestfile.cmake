# CMake generated Testfile for 
# Source directory: /root/repo/cli
# Build directory: /root/repo/build/cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/cli/swsim" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;12;add_test;/root/repo/cli/CMakeLists.txt;0;")
add_test(cli_truthtable_maj "/root/repo/build/cli/swsim" "truthtable" "maj")
set_tests_properties(cli_truthtable_maj PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;13;add_test;/root/repo/cli/CMakeLists.txt;0;")
add_test(cli_truthtable_xnor "/root/repo/build/cli/swsim" "truthtable" "xnor")
set_tests_properties(cli_truthtable_xnor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;14;add_test;/root/repo/cli/CMakeLists.txt;0;")
add_test(cli_truthtable_maj5 "/root/repo/build/cli/swsim" "truthtable" "maj5")
set_tests_properties(cli_truthtable_maj5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;15;add_test;/root/repo/cli/CMakeLists.txt;0;")
add_test(cli_dispersion "/root/repo/build/cli/swsim" "dispersion" "--material" "yig" "--applied" "250")
set_tests_properties(cli_dispersion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;16;add_test;/root/repo/cli/CMakeLists.txt;0;")
add_test(cli_yield "/root/repo/build/cli/swsim" "yield" "--gate" "xor" "--trials" "100")
set_tests_properties(cli_yield PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;18;add_test;/root/repo/cli/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/cli/swsim" "compare")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/cli/CMakeLists.txt;19;add_test;/root/repo/cli/CMakeLists.txt;0;")
