# Empty dependencies file for swsim_cli_args.
# This may be replaced when dependencies are built.
