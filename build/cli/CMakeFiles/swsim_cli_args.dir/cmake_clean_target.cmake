file(REMOVE_RECURSE
  "libswsim_cli_args.a"
)
