file(REMOVE_RECURSE
  "CMakeFiles/swsim_cli_args.dir/args.cpp.o"
  "CMakeFiles/swsim_cli_args.dir/args.cpp.o.d"
  "libswsim_cli_args.a"
  "libswsim_cli_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim_cli_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
