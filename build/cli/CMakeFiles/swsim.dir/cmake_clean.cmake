file(REMOVE_RECURSE
  "CMakeFiles/swsim.dir/main.cpp.o"
  "CMakeFiles/swsim.dir/main.cpp.o.d"
  "swsim"
  "swsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
