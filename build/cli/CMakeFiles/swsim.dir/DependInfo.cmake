
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/cli/main.cpp" "cli/CMakeFiles/swsim.dir/main.cpp.o" "gcc" "cli/CMakeFiles/swsim.dir/main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/cli/CMakeFiles/swsim_cli_args.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/swsim_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/wavenet/CMakeFiles/swsim_wavenet.dir/DependInfo.cmake"
  "/root/repo/build/src/mag/CMakeFiles/swsim_mag.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/swsim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/swsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/swsim_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
