file(REMOVE_RECURSE
  "../bench/bench_table3_performance"
  "../bench/bench_table3_performance.pdb"
  "CMakeFiles/bench_table3_performance.dir/bench_table3_performance.cpp.o"
  "CMakeFiles/bench_table3_performance.dir/bench_table3_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
