file(REMOVE_RECURSE
  "../bench/bench_table1_maj"
  "../bench/bench_table1_maj.pdb"
  "CMakeFiles/bench_table1_maj.dir/bench_table1_maj.cpp.o"
  "CMakeFiles/bench_table1_maj.dir/bench_table1_maj.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_maj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
