file(REMOVE_RECURSE
  "../bench/bench_fig1_dispersion"
  "../bench/bench_fig1_dispersion.pdb"
  "CMakeFiles/bench_fig1_dispersion.dir/bench_fig1_dispersion.cpp.o"
  "CMakeFiles/bench_fig1_dispersion.dir/bench_fig1_dispersion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dispersion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
