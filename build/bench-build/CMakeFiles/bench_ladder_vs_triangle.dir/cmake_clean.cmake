file(REMOVE_RECURSE
  "../bench/bench_ladder_vs_triangle"
  "../bench/bench_ladder_vs_triangle.pdb"
  "CMakeFiles/bench_ladder_vs_triangle.dir/bench_ladder_vs_triangle.cpp.o"
  "CMakeFiles/bench_ladder_vs_triangle.dir/bench_ladder_vs_triangle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ladder_vs_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
