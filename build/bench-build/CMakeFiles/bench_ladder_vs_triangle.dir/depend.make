# Empty dependencies file for bench_ladder_vs_triangle.
# This may be replaced when dependencies are built.
