file(REMOVE_RECURSE
  "../bench/bench_fig5_snapshots"
  "../bench/bench_fig5_snapshots.pdb"
  "CMakeFiles/bench_fig5_snapshots.dir/bench_fig5_snapshots.cpp.o"
  "CMakeFiles/bench_fig5_snapshots.dir/bench_fig5_snapshots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
