# Empty dependencies file for bench_fig5_snapshots.
# This may be replaced when dependencies are built.
