file(REMOVE_RECURSE
  "../bench/bench_fig2_interference"
  "../bench/bench_fig2_interference.pdb"
  "CMakeFiles/bench_fig2_interference.dir/bench_fig2_interference.cpp.o"
  "CMakeFiles/bench_fig2_interference.dir/bench_fig2_interference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
