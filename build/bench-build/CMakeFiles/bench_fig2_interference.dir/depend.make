# Empty dependencies file for bench_fig2_interference.
# This may be replaced when dependencies are built.
