file(REMOVE_RECURSE
  "../bench/bench_table2_xor"
  "../bench/bench_table2_xor.pdb"
  "CMakeFiles/bench_table2_xor.dir/bench_table2_xor.cpp.o"
  "CMakeFiles/bench_table2_xor.dir/bench_table2_xor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_xor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
