file(REMOVE_RECURSE
  "CMakeFiles/test_core_parallel_bus.dir/test_core_parallel_bus.cpp.o"
  "CMakeFiles/test_core_parallel_bus.dir/test_core_parallel_bus.cpp.o.d"
  "test_core_parallel_bus"
  "test_core_parallel_bus.pdb"
  "test_core_parallel_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_parallel_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
