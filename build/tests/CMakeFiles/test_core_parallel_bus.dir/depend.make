# Empty dependencies file for test_core_parallel_bus.
# This may be replaced when dependencies are built.
