# Empty compiler generated dependencies file for test_mag_system.
# This may be replaced when dependencies are built.
