file(REMOVE_RECURSE
  "CMakeFiles/test_mag_system.dir/test_mag_system.cpp.o"
  "CMakeFiles/test_mag_system.dir/test_mag_system.cpp.o.d"
  "test_mag_system"
  "test_mag_system.pdb"
  "test_mag_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
