file(REMOVE_RECURSE
  "CMakeFiles/test_mag_thermal.dir/test_mag_thermal.cpp.o"
  "CMakeFiles/test_mag_thermal.dir/test_mag_thermal.cpp.o.d"
  "test_mag_thermal"
  "test_mag_thermal.pdb"
  "test_mag_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
