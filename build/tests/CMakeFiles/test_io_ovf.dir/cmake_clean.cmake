file(REMOVE_RECURSE
  "CMakeFiles/test_io_ovf.dir/test_io_ovf.cpp.o"
  "CMakeFiles/test_io_ovf.dir/test_io_ovf.cpp.o.d"
  "test_io_ovf"
  "test_io_ovf.pdb"
  "test_io_ovf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_ovf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
