# Empty dependencies file for test_io_ovf.
# This may be replaced when dependencies are built.
