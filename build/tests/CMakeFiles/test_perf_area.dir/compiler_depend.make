# Empty compiler generated dependencies file for test_perf_area.
# This may be replaced when dependencies are built.
