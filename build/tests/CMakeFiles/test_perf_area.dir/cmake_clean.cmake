file(REMOVE_RECURSE
  "CMakeFiles/test_perf_area.dir/test_perf_area.cpp.o"
  "CMakeFiles/test_perf_area.dir/test_perf_area.cpp.o.d"
  "test_perf_area"
  "test_perf_area.pdb"
  "test_perf_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
