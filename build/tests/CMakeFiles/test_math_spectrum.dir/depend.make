# Empty dependencies file for test_math_spectrum.
# This may be replaced when dependencies are built.
