file(REMOVE_RECURSE
  "CMakeFiles/test_math_spectrum.dir/test_math_spectrum.cpp.o"
  "CMakeFiles/test_math_spectrum.dir/test_math_spectrum.cpp.o.d"
  "test_math_spectrum"
  "test_math_spectrum.pdb"
  "test_math_spectrum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
