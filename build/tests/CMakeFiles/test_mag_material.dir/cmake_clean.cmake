file(REMOVE_RECURSE
  "CMakeFiles/test_mag_material.dir/test_mag_material.cpp.o"
  "CMakeFiles/test_mag_material.dir/test_mag_material.cpp.o.d"
  "test_mag_material"
  "test_mag_material.pdb"
  "test_mag_material[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_material.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
