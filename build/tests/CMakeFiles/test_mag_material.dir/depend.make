# Empty dependencies file for test_mag_material.
# This may be replaced when dependencies are built.
