file(REMOVE_RECURSE
  "CMakeFiles/test_math_fft.dir/test_math_fft.cpp.o"
  "CMakeFiles/test_math_fft.dir/test_math_fft.cpp.o.d"
  "test_math_fft"
  "test_math_fft.pdb"
  "test_math_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
