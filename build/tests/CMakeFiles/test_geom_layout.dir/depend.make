# Empty dependencies file for test_geom_layout.
# This may be replaced when dependencies are built.
