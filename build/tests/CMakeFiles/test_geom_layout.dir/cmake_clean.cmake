file(REMOVE_RECURSE
  "CMakeFiles/test_geom_layout.dir/test_geom_layout.cpp.o"
  "CMakeFiles/test_geom_layout.dir/test_geom_layout.cpp.o.d"
  "test_geom_layout"
  "test_geom_layout.pdb"
  "test_geom_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
