# Empty dependencies file for test_core_wave_cascade.
# This may be replaced when dependencies are built.
