file(REMOVE_RECURSE
  "CMakeFiles/test_core_wave_cascade.dir/test_core_wave_cascade.cpp.o"
  "CMakeFiles/test_core_wave_cascade.dir/test_core_wave_cascade.cpp.o.d"
  "test_core_wave_cascade"
  "test_core_wave_cascade.pdb"
  "test_core_wave_cascade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_wave_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
