file(REMOVE_RECURSE
  "CMakeFiles/test_mag_simulation.dir/test_mag_simulation.cpp.o"
  "CMakeFiles/test_mag_simulation.dir/test_mag_simulation.cpp.o.d"
  "test_mag_simulation"
  "test_mag_simulation.pdb"
  "test_mag_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
