# Empty dependencies file for test_mag_simulation.
# This may be replaced when dependencies are built.
