# Empty dependencies file for test_mag_multilayer.
# This may be replaced when dependencies are built.
