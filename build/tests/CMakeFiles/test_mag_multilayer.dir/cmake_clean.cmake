file(REMOVE_RECURSE
  "CMakeFiles/test_mag_multilayer.dir/test_mag_multilayer.cpp.o"
  "CMakeFiles/test_mag_multilayer.dir/test_mag_multilayer.cpp.o.d"
  "test_mag_multilayer"
  "test_mag_multilayer.pdb"
  "test_mag_multilayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
