# Empty dependencies file for test_core_logic.
# This may be replaced when dependencies are built.
