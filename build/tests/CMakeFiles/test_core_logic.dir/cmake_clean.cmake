file(REMOVE_RECURSE
  "CMakeFiles/test_core_logic.dir/test_core_logic.cpp.o"
  "CMakeFiles/test_core_logic.dir/test_core_logic.cpp.o.d"
  "test_core_logic"
  "test_core_logic.pdb"
  "test_core_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
