file(REMOVE_RECURSE
  "CMakeFiles/test_core_ladder_gate.dir/test_core_ladder_gate.cpp.o"
  "CMakeFiles/test_core_ladder_gate.dir/test_core_ladder_gate.cpp.o.d"
  "test_core_ladder_gate"
  "test_core_ladder_gate.pdb"
  "test_core_ladder_gate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ladder_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
