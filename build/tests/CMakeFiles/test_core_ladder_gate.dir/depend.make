# Empty dependencies file for test_core_ladder_gate.
# This may be replaced when dependencies are built.
