# Empty dependencies file for test_geom_roughness.
# This may be replaced when dependencies are built.
