file(REMOVE_RECURSE
  "CMakeFiles/test_geom_roughness.dir/test_geom_roughness.cpp.o"
  "CMakeFiles/test_geom_roughness.dir/test_geom_roughness.cpp.o.d"
  "test_geom_roughness"
  "test_geom_roughness.pdb"
  "test_geom_roughness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_roughness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
