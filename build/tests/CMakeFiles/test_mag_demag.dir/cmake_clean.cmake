file(REMOVE_RECURSE
  "CMakeFiles/test_mag_demag.dir/test_mag_demag.cpp.o"
  "CMakeFiles/test_mag_demag.dir/test_mag_demag.cpp.o.d"
  "test_mag_demag"
  "test_mag_demag.pdb"
  "test_mag_demag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_demag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
