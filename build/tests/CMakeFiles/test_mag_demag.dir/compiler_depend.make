# Empty compiler generated dependencies file for test_mag_demag.
# This may be replaced when dependencies are built.
