# Empty compiler generated dependencies file for test_geom_shape.
# This may be replaced when dependencies are built.
