file(REMOVE_RECURSE
  "CMakeFiles/test_geom_shape.dir/test_geom_shape.cpp.o"
  "CMakeFiles/test_geom_shape.dir/test_geom_shape.cpp.o.d"
  "test_geom_shape"
  "test_geom_shape.pdb"
  "test_geom_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
