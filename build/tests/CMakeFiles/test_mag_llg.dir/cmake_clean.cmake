file(REMOVE_RECURSE
  "CMakeFiles/test_mag_llg.dir/test_mag_llg.cpp.o"
  "CMakeFiles/test_mag_llg.dir/test_mag_llg.cpp.o.d"
  "test_mag_llg"
  "test_mag_llg.pdb"
  "test_mag_llg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_llg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
