# Empty compiler generated dependencies file for test_mag_llg.
# This may be replaced when dependencies are built.
