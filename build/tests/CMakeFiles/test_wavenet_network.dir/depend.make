# Empty dependencies file for test_wavenet_network.
# This may be replaced when dependencies are built.
