file(REMOVE_RECURSE
  "CMakeFiles/test_wavenet_network.dir/test_wavenet_network.cpp.o"
  "CMakeFiles/test_wavenet_network.dir/test_wavenet_network.cpp.o.d"
  "test_wavenet_network"
  "test_wavenet_network.pdb"
  "test_wavenet_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavenet_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
