file(REMOVE_RECURSE
  "CMakeFiles/test_core_cascade_property.dir/test_core_cascade_property.cpp.o"
  "CMakeFiles/test_core_cascade_property.dir/test_core_cascade_property.cpp.o.d"
  "test_core_cascade_property"
  "test_core_cascade_property.pdb"
  "test_core_cascade_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cascade_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
