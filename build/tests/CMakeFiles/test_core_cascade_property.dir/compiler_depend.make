# Empty compiler generated dependencies file for test_core_cascade_property.
# This may be replaced when dependencies are built.
