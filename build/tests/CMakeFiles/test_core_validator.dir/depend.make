# Empty dependencies file for test_core_validator.
# This may be replaced when dependencies are built.
