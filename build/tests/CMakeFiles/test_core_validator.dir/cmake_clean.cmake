file(REMOVE_RECURSE
  "CMakeFiles/test_core_validator.dir/test_core_validator.cpp.o"
  "CMakeFiles/test_core_validator.dir/test_core_validator.cpp.o.d"
  "test_core_validator"
  "test_core_validator.pdb"
  "test_core_validator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
