# Empty compiler generated dependencies file for test_integration_micromag.
# This may be replaced when dependencies are built.
