file(REMOVE_RECURSE
  "CMakeFiles/test_integration_micromag.dir/test_integration_micromag.cpp.o"
  "CMakeFiles/test_integration_micromag.dir/test_integration_micromag.cpp.o.d"
  "test_integration_micromag"
  "test_integration_micromag.pdb"
  "test_integration_micromag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_micromag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
