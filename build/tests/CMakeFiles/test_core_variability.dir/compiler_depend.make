# Empty compiler generated dependencies file for test_core_variability.
# This may be replaced when dependencies are built.
