file(REMOVE_RECURSE
  "CMakeFiles/test_core_variability.dir/test_core_variability.cpp.o"
  "CMakeFiles/test_core_variability.dir/test_core_variability.cpp.o.d"
  "test_core_variability"
  "test_core_variability.pdb"
  "test_core_variability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
