# Empty dependencies file for test_mag_fields.
# This may be replaced when dependencies are built.
