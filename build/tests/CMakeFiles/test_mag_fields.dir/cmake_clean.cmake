file(REMOVE_RECURSE
  "CMakeFiles/test_mag_fields.dir/test_mag_fields.cpp.o"
  "CMakeFiles/test_mag_fields.dir/test_mag_fields.cpp.o.d"
  "test_mag_fields"
  "test_mag_fields.pdb"
  "test_mag_fields[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
