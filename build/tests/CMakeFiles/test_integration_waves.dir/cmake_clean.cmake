file(REMOVE_RECURSE
  "CMakeFiles/test_integration_waves.dir/test_integration_waves.cpp.o"
  "CMakeFiles/test_integration_waves.dir/test_integration_waves.cpp.o.d"
  "test_integration_waves"
  "test_integration_waves.pdb"
  "test_integration_waves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
