# Empty compiler generated dependencies file for test_integration_waves.
# This may be replaced when dependencies are built.
