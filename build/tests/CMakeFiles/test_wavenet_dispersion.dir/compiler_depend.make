# Empty compiler generated dependencies file for test_wavenet_dispersion.
# This may be replaced when dependencies are built.
