file(REMOVE_RECURSE
  "CMakeFiles/test_wavenet_dispersion.dir/test_wavenet_dispersion.cpp.o"
  "CMakeFiles/test_wavenet_dispersion.dir/test_wavenet_dispersion.cpp.o.d"
  "test_wavenet_dispersion"
  "test_wavenet_dispersion.pdb"
  "test_wavenet_dispersion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavenet_dispersion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
