file(REMOVE_RECURSE
  "CMakeFiles/test_math_lockin.dir/test_math_lockin.cpp.o"
  "CMakeFiles/test_math_lockin.dir/test_math_lockin.cpp.o.d"
  "test_math_lockin"
  "test_math_lockin.pdb"
  "test_math_lockin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_lockin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
