# Empty compiler generated dependencies file for test_math_lockin.
# This may be replaced when dependencies are built.
