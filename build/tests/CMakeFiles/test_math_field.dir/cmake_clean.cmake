file(REMOVE_RECURSE
  "CMakeFiles/test_math_field.dir/test_math_field.cpp.o"
  "CMakeFiles/test_math_field.dir/test_math_field.cpp.o.d"
  "test_math_field"
  "test_math_field.pdb"
  "test_math_field[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
