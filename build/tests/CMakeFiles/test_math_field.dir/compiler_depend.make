# Empty compiler generated dependencies file for test_math_field.
# This may be replaced when dependencies are built.
