# Empty dependencies file for test_core_triangle_gate.
# This may be replaced when dependencies are built.
