file(REMOVE_RECURSE
  "CMakeFiles/test_core_triangle_gate.dir/test_core_triangle_gate.cpp.o"
  "CMakeFiles/test_core_triangle_gate.dir/test_core_triangle_gate.cpp.o.d"
  "test_core_triangle_gate"
  "test_core_triangle_gate.pdb"
  "test_core_triangle_gate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_triangle_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
