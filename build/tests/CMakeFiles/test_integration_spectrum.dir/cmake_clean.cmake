file(REMOVE_RECURSE
  "CMakeFiles/test_integration_spectrum.dir/test_integration_spectrum.cpp.o"
  "CMakeFiles/test_integration_spectrum.dir/test_integration_spectrum.cpp.o.d"
  "test_integration_spectrum"
  "test_integration_spectrum.pdb"
  "test_integration_spectrum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
