# Empty dependencies file for test_integration_spectrum.
# This may be replaced when dependencies are built.
