file(REMOVE_RECURSE
  "CMakeFiles/test_mag_domain_wall.dir/test_mag_domain_wall.cpp.o"
  "CMakeFiles/test_mag_domain_wall.dir/test_mag_domain_wall.cpp.o.d"
  "test_mag_domain_wall"
  "test_mag_domain_wall.pdb"
  "test_mag_domain_wall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mag_domain_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
