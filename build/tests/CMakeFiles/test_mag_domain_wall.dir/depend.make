# Empty dependencies file for test_mag_domain_wall.
# This may be replaced when dependencies are built.
