# Empty dependencies file for test_wavenet_energy.
# This may be replaced when dependencies are built.
