file(REMOVE_RECURSE
  "CMakeFiles/test_wavenet_energy.dir/test_wavenet_energy.cpp.o"
  "CMakeFiles/test_wavenet_energy.dir/test_wavenet_energy.cpp.o.d"
  "test_wavenet_energy"
  "test_wavenet_energy.pdb"
  "test_wavenet_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavenet_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
