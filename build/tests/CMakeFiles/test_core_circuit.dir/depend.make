# Empty dependencies file for test_core_circuit.
# This may be replaced when dependencies are built.
