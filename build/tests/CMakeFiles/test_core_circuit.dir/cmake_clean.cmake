file(REMOVE_RECURSE
  "CMakeFiles/test_core_circuit.dir/test_core_circuit.cpp.o"
  "CMakeFiles/test_core_circuit.dir/test_core_circuit.cpp.o.d"
  "test_core_circuit"
  "test_core_circuit.pdb"
  "test_core_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
