file(REMOVE_RECURSE
  "CMakeFiles/test_perf_latency.dir/test_perf_latency.cpp.o"
  "CMakeFiles/test_perf_latency.dir/test_perf_latency.cpp.o.d"
  "test_perf_latency"
  "test_perf_latency.pdb"
  "test_perf_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
