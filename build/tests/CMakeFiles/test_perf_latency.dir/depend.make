# Empty dependencies file for test_perf_latency.
# This may be replaced when dependencies are built.
