# Empty compiler generated dependencies file for test_core_fanout_tree.
# This may be replaced when dependencies are built.
