file(REMOVE_RECURSE
  "CMakeFiles/test_core_multi_input.dir/test_core_multi_input.cpp.o"
  "CMakeFiles/test_core_multi_input.dir/test_core_multi_input.cpp.o.d"
  "test_core_multi_input"
  "test_core_multi_input.pdb"
  "test_core_multi_input[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multi_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
