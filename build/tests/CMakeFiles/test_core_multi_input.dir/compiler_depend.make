# Empty compiler generated dependencies file for test_core_multi_input.
# This may be replaced when dependencies are built.
