file(REMOVE_RECURSE
  "CMakeFiles/test_math_grid.dir/test_math_grid.cpp.o"
  "CMakeFiles/test_math_grid.dir/test_math_grid.cpp.o.d"
  "test_math_grid"
  "test_math_grid.pdb"
  "test_math_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
