file(REMOVE_RECURSE
  "CMakeFiles/test_wavenet_detector.dir/test_wavenet_detector.cpp.o"
  "CMakeFiles/test_wavenet_detector.dir/test_wavenet_detector.cpp.o.d"
  "test_wavenet_detector"
  "test_wavenet_detector.pdb"
  "test_wavenet_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavenet_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
