# Empty dependencies file for test_wavenet_detector.
# This may be replaced when dependencies are built.
