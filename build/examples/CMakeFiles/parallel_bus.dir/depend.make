# Empty dependencies file for parallel_bus.
# This may be replaced when dependencies are built.
