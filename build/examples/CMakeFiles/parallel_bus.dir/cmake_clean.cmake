file(REMOVE_RECURSE
  "CMakeFiles/parallel_bus.dir/parallel_bus.cpp.o"
  "CMakeFiles/parallel_bus.dir/parallel_bus.cpp.o.d"
  "parallel_bus"
  "parallel_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
