# Empty dependencies file for majority_voter.
# This may be replaced when dependencies are built.
