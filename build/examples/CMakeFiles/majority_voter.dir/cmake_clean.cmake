file(REMOVE_RECURSE
  "CMakeFiles/majority_voter.dir/majority_voter.cpp.o"
  "CMakeFiles/majority_voter.dir/majority_voter.cpp.o.d"
  "majority_voter"
  "majority_voter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/majority_voter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
