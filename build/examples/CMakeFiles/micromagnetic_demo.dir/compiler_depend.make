# Empty compiler generated dependencies file for micromagnetic_demo.
# This may be replaced when dependencies are built.
