file(REMOVE_RECURSE
  "CMakeFiles/micromagnetic_demo.dir/micromagnetic_demo.cpp.o"
  "CMakeFiles/micromagnetic_demo.dir/micromagnetic_demo.cpp.o.d"
  "micromagnetic_demo"
  "micromagnetic_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micromagnetic_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
