file(REMOVE_RECURSE
  "CMakeFiles/gate_designer.dir/gate_designer.cpp.o"
  "CMakeFiles/gate_designer.dir/gate_designer.cpp.o.d"
  "gate_designer"
  "gate_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
