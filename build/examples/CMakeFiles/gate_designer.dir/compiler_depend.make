# Empty compiler generated dependencies file for gate_designer.
# This may be replaced when dependencies are built.
