# Empty compiler generated dependencies file for full_adder.
# This may be replaced when dependencies are built.
