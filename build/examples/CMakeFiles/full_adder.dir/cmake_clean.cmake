file(REMOVE_RECURSE
  "CMakeFiles/full_adder.dir/full_adder.cpp.o"
  "CMakeFiles/full_adder.dir/full_adder.cpp.o.d"
  "full_adder"
  "full_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
