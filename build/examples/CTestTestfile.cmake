# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_adder "/root/repo/build/examples/full_adder" "4")
set_tests_properties(example_full_adder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_majority_voter "/root/repo/build/examples/majority_voter")
set_tests_properties(example_majority_voter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gate_designer "/root/repo/build/examples/gate_designer" "55" "fecob")
set_tests_properties(example_gate_designer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_bus "/root/repo/build/examples/parallel_bus" "3")
set_tests_properties(example_parallel_bus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_micromagnetic_demo "/root/repo/build/examples/micromagnetic_demo")
set_tests_properties(example_micromagnetic_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
