#!/usr/bin/env bash
# The repository's one-command CI gate:
#   1. configure + build + full ctest suite (the tier-1 check of ROADMAP.md)
#   2. a ThreadSanitizer build of the parallel-evaluation engine tests,
#      run directly, to catch data races in the thread pool / scheduler /
#      result cache.
#
# Usage: scripts/check.sh [build-dir]           (default: build)
# Env:   SWSIM_CHECK_SKIP_TSAN=1 skips stage 2 (e.g. toolchains without
#        libtsan).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== stage 1: build + ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

if [[ "${SWSIM_CHECK_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== stage 2: TSan skipped (SWSIM_CHECK_SKIP_TSAN=1) =="
  exit 0
fi

TSAN_DIR="${BUILD_DIR}-tsan"
TSAN_TESTS=(test_engine_pool test_engine_cache test_engine_determinism)

echo "== stage 2: ThreadSanitizer engine tests (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S . \
  -DSWSIM_TSAN=ON -DSWSIM_BUILD_BENCH=OFF -DSWSIM_BUILD_EXAMPLES=OFF \
  >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  # halt_on_error: any race fails the run, not just the report.
  TSAN_OPTIONS="halt_on_error=1" "${TSAN_DIR}/tests/${t}"
done

echo "== all checks passed =="
