#!/usr/bin/env bash
# The repository's one-command CI gate:
#   1. configure + build + full ctest suite (the tier-1 check of ROADMAP.md),
#      then the magnetics suites re-run under SWSIM_KERNEL_REF=1 — the
#      scalar reference oracle — so a fused-kernel bug cannot hide behind
#      the identical-by-construction default path (docs/PERFORMANCE.md).
#   2. a ThreadSanitizer build of the parallel-evaluation engine tests,
#      run directly, to catch data races in the thread pool / scheduler /
#      result cache.
#   3. an Address+UBSan build of the robustness tests (fault injection,
#      scheduler timeouts/retries, cache corruption) — the failure paths
#      are exactly where lifetime bugs hide.
#   4. an observability smoke run: a traced + metered batch over the fault
#      example, then `swsim trace-check` / `swsim stats` validate the
#      dumps the run produced — the trace JSON and metrics JSON must parse
#      under instrumented, multi-threaded, partially-failing load.
#   5. a bench-pipeline smoke: `swsim bench run --quick` on two bench
#      targets, the emitted BENCH_*.json self-compare clean through
#      `swsim bench gate`, and a deliberately deflated baseline must make
#      the gate FAIL (exit non-zero) — the regression detector detects.
#   6. an SWSIM_OBS_OFF compile check: the whole library + CLI must still
#      build with observability compiled out (the stub headers are only
#      honest if something links against them regularly).
#   7. a serve smoke: a real `swsim serve` daemon on a Unix socket, probed
#      by concurrent `swsim client --verify` tenants (served bytes must
#      equal locally recomputed CLI bytes), a per-tenant injected fault, a
#      warm-cache re-request proven by healthz counters, and a SIGTERM
#      drain with an in-flight request that must complete (docs/SERVING.md).
#   8. a chaos smoke: the daemon starts over a crash-littered cache dir
#      (corrupt spill entry + orphaned tmp file) and must report both
#      recovered; a seeded `swsim client --chaos` storm must end every
#      exchange terminally (0 hung); an expired deadline must come back as
#      a deadline-exceeded rejection (client exit 5) without engine work;
#      and the daemon must still SIGTERM-drain clean afterwards
#      (docs/ROBUSTNESS.md).
#   9. a serve-telemetry smoke: a traced daemon + traced client round trip
#      merged into one timeline by `swsim trace merge` and validated by
#      `swsim trace-check` (flow events across two pids); the request log
#      must carry the client's trace id; SIGQUIT must dump the flight
#      recorder without killing the daemon; and a quick `swsim loadgen`
#      run must emit a BENCH_serve_throughput.json with 0 hung exchanges
#      and a bounded shed rate (docs/OBSERVABILITY.md).
#  10. a physics-telemetry smoke: a served micromag job watched live by
#      `swsim probe tail` (frames must stream while the solve runs and the
#      daemon's healthz must account for them); a local run whose
#      swsim.profile/1 dump carries a physics block with a real
#      converged_at; and an `--early-stop` run that must save integration
#      steps while producing exactly the same logic truth table as the
#      full-length run (docs/OBSERVABILITY.md §8).
#
# Usage: scripts/check.sh [build-dir]           (default: build)
# Env:   SWSIM_CHECK_SKIP_TSAN=1 skips stage 2 (e.g. toolchains without
#        libtsan).
#        SWSIM_CHECK_SKIP_ASAN=1 skips stage 3 (toolchains without libasan).
#        SWSIM_CHECK_SKIP_BENCH=1 skips stage 5.
#        SWSIM_CHECK_SKIP_OBSOFF=1 skips stage 6.
#        SWSIM_CHECK_SKIP_SERVE=1 skips stages 7-10.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== stage 1: build + ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== stage 1b: magnetics suites under the scalar reference oracle =="
KREF_TESTS=(test_mag_kernels test_mag_llg test_mag_simulation
            test_integration_micromag)
for t in "${KREF_TESTS[@]}"; do
  SWSIM_KERNEL_REF=1 "${BUILD_DIR}/tests/${t}"
done

if [[ "${SWSIM_CHECK_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== stage 2: TSan skipped (SWSIM_CHECK_SKIP_TSAN=1) =="
else
  TSAN_DIR="${BUILD_DIR}-tsan"
  TSAN_TESTS=(test_engine_pool test_engine_cache test_engine_determinism
              test_engine_resilience test_engine_cache_concurrent
              test_mag_kernels
              test_obs_trace test_obs_metrics test_obs_log
              test_obs_determinism
              test_obs_physics
              test_serve_admission test_serve_server
              test_serve_codec test_serve_chaos test_serve_slo
              test_serve_probe_stream)

  echo "== stage 2: ThreadSanitizer engine tests (${TSAN_DIR}) =="
  cmake -B "${TSAN_DIR}" -S . \
    -DSWSIM_TSAN=ON -DSWSIM_BUILD_BENCH=OFF -DSWSIM_BUILD_EXAMPLES=OFF \
    >/dev/null
  cmake --build "${TSAN_DIR}" -j "${JOBS}" --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    # halt_on_error: any race fails the run, not just the report.
    TSAN_OPTIONS="halt_on_error=1" "${TSAN_DIR}/tests/${t}"
  done
fi

if [[ "${SWSIM_CHECK_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== stage 3: ASan+UBSan skipped (SWSIM_CHECK_SKIP_ASAN=1) =="
else
  ASAN_DIR="${BUILD_DIR}-asan"
  ASAN_TESTS=(test_robust_status test_robust_watchdog test_robust_fault
              test_engine_resilience test_engine_pool test_engine_cache)

  echo "== stage 3: ASan+UBSan robustness tests (${ASAN_DIR}) =="
  cmake -B "${ASAN_DIR}" -S . \
    -DSWSIM_ASAN=ON -DSWSIM_BUILD_BENCH=OFF -DSWSIM_BUILD_EXAMPLES=OFF \
    >/dev/null
  cmake --build "${ASAN_DIR}" -j "${JOBS}" --target "${ASAN_TESTS[@]}"
  for t in "${ASAN_TESTS[@]}"; do
    # Any leak, lifetime error, or UB report fails the run outright.
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
      UBSAN_OPTIONS="halt_on_error=1" "${ASAN_DIR}/tests/${t}"
  done
fi

echo "== stage 4: traced batch + dump validation =="
OBS_DIR="${BUILD_DIR}/obs-smoke"
mkdir -p "${OBS_DIR}"
# A batch with injected faults, every sink armed: trace, metrics, JSONL
# event log. The run itself must stay exit-0 (keep-going mode), and each
# dump must validate with the reader subcommands.
"${BUILD_DIR}/cli/swsim" batch examples/batch_faults.txt --jobs 2 \
  --inject "throw:job 15,divergence:job 17" \
  --out "${OBS_DIR}/batch.csv" --report "${OBS_DIR}/failures.csv" \
  --trace-out "${OBS_DIR}/trace.json" \
  --metrics-out "${OBS_DIR}/metrics.json" \
  --log-json "${OBS_DIR}/events.jsonl" --log-level debug
"${BUILD_DIR}/cli/swsim" trace-check "${OBS_DIR}/trace.json"
"${BUILD_DIR}/cli/swsim" stats "${OBS_DIR}/metrics.json" >/dev/null
# The injected failures must have produced structured error events.
grep -q '"event": *"job_failed"\|"event":"job_failed"' \
  "${OBS_DIR}/events.jsonl" || {
  echo "stage 4: expected a job_failed event in events.jsonl" >&2
  exit 1
}

if [[ "${SWSIM_CHECK_SKIP_BENCH:-0}" == "1" ]]; then
  echo "== stage 5: bench pipeline skipped (SWSIM_CHECK_SKIP_BENCH=1) =="
else
  echo "== stage 5: bench run --quick + regression gate =="
  BENCH_DIR="${BUILD_DIR}/bench-smoke"
  rm -rf "${BENCH_DIR}"
  mkdir -p "${BENCH_DIR}/baseline" "${BENCH_DIR}/current"
  # Two representative targets: one pure-analytic, one LLG + engine with an
  # embedded RunProfile. --quick keeps this to tens of seconds.
  "${BUILD_DIR}/cli/swsim" bench run fig2_interference solver_perf \
    --quick --out-dir "${BENCH_DIR}/current" \
    --bin-dir "${BUILD_DIR}/bench" >/dev/null
  test -s "${BENCH_DIR}/current/BENCH_fig2_interference.json"
  test -s "${BENCH_DIR}/current/BENCH_solver_perf.json"
  # The solver_perf artifact must carry the embedded profile schema.
  grep -q '"swsim.profile/1"' "${BENCH_DIR}/current/BENCH_solver_perf.json"
  # Self-comparison: a run gated against itself has zero regressions.
  cp "${BENCH_DIR}/current/"BENCH_*.json "${BENCH_DIR}/baseline/"
  "${BUILD_DIR}/cli/swsim" bench gate --baseline "${BENCH_DIR}/baseline" \
    --current "${BENCH_DIR}/current"
  # Deflate the baseline medians to ~0 and kill its noise estimate: every
  # case is now an apparent slowdown, and the gate MUST fail.
  sed -i -E 's/"median": [0-9.eE+-]+/"median": 1e-12/g; s/"mad": [0-9.eE+-]+/"mad": 0/g' \
    "${BENCH_DIR}/baseline/"BENCH_*.json
  if "${BUILD_DIR}/cli/swsim" bench gate --baseline "${BENCH_DIR}/baseline" \
      --current "${BENCH_DIR}/current" --tolerance 0.5 --mad-k 0 \
      >/dev/null 2>&1; then
    echo "stage 5: gate passed against a deflated baseline (should FAIL)" >&2
    exit 1
  fi
  echo "stage 5: gate correctly failed on the deflated baseline"
fi

if [[ "${SWSIM_CHECK_SKIP_OBSOFF:-0}" == "1" ]]; then
  echo "== stage 6: OBS_OFF build skipped (SWSIM_CHECK_SKIP_OBSOFF=1) =="
else
  OBSOFF_DIR="${BUILD_DIR}-obsoff"
  echo "== stage 6: SWSIM_OBS_OFF compile check (${OBSOFF_DIR}) =="
  cmake -B "${OBSOFF_DIR}" -S . \
    -DSWSIM_OBS_OFF=ON -DSWSIM_BUILD_TESTS=OFF -DSWSIM_BUILD_BENCH=OFF \
    -DSWSIM_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${OBSOFF_DIR}" -j "${JOBS}" --target swsim
  # The disarmed CLI must still run and not emit progress noise.
  "${OBSOFF_DIR}/cli/swsim" truthtable maj >/dev/null
fi

if [[ "${SWSIM_CHECK_SKIP_SERVE:-0}" == "1" ]]; then
  echo "== stage 7: serve smoke skipped (SWSIM_CHECK_SKIP_SERVE=1) =="
else
  echo "== stage 7: serve daemon smoke =="
  SERVE_DIR="${BUILD_DIR}/serve-smoke"
  rm -rf "${SERVE_DIR}"
  mkdir -p "${SERVE_DIR}"
  SOCK="${SERVE_DIR}/serve.sock"
  SWSIM="${BUILD_DIR}/cli/swsim"

  # A per-tenant injected fault: only the client named "faulty" fails.
  "${SWSIM}" serve --socket "${SOCK}" --jobs 2 \
    --request-log "${SERVE_DIR}/requests.jsonl" \
    --cache-dir "${SERVE_DIR}/cache" \
    --inject "throw:faulty" > "${SERVE_DIR}/serve.log" 2>&1 &
  SERVE_PID=$!
  trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do
    "${SWSIM}" client --socket "${SOCK}" hello >/dev/null 2>&1 && break
    sleep 0.1
  done

  # Concurrent tenants, each verifying served bytes == locally recomputed
  # CLI bytes (the client recomputes through the shared workload specs and
  # byte-compares; any mismatch is exit 1).
  VERIFY_PIDS=()
  for i in 1 2 3 4; do
    "${SWSIM}" client --socket "${SOCK}" --client "tenant${i}" --id "${i}" \
      truthtable maj --verify > "${SERVE_DIR}/tenant${i}.txt" 2>&1 &
    VERIFY_PIDS+=($!)
  done
  for pid in "${VERIFY_PIDS[@]}"; do wait "${pid}"; done
  grep -q "verify OK" "${SERVE_DIR}/tenant1.txt"

  # The faulty tenant's request fails remotely (exit 1) without touching
  # anyone else. It must be a yield — yields bypass the cache, so its jobs
  # actually run and hit the injected per-tenant fault.
  if "${SWSIM}" client --socket "${SOCK}" --client faulty yield maj \
      --trials 200 > "${SERVE_DIR}/faulty.txt" 2>&1; then
    echo "stage 7: the injected per-tenant fault did not fail" >&2
    exit 1
  fi

  # Warm cache: the maj table is already paid for, so a repeat request
  # must raise cache hits while jobs_executed stays put.
  health() {
    "${SWSIM}" client --socket "${SOCK}" healthz |
      grep -o "\"${1}\":[0-9]*" | head -1 | cut -d: -f2
  }
  JOBS_BEFORE="$(health jobs_executed)"
  HITS_BEFORE="$(health hits)"
  "${SWSIM}" client --socket "${SOCK}" --client repeat truthtable maj \
    >/dev/null
  JOBS_AFTER="$(health jobs_executed)"
  HITS_AFTER="$(health hits)"
  if [[ "${JOBS_AFTER}" != "${JOBS_BEFORE}" || \
        "${HITS_AFTER}" -le "${HITS_BEFORE}" ]]; then
    echo "stage 7: warm-cache repeat re-solved (jobs ${JOBS_BEFORE} -> \
${JOBS_AFTER}, hits ${HITS_BEFORE} -> ${HITS_AFTER})" >&2
    exit 1
  fi

  # Graceful drain: SIGTERM with a request in flight. The in-flight client
  # must complete normally (exit 0) and the daemon must exit 0.
  "${SWSIM}" client --socket "${SOCK}" --client inflight yield maj \
    --trials 100000 > "${SERVE_DIR}/inflight.txt" 2>&1 &
  INFLIGHT_PID=$!
  sleep 0.3
  kill -TERM "${SERVE_PID}"
  wait "${INFLIGHT_PID}"
  wait "${SERVE_PID}"
  trap - EXIT
  grep -q "yield" "${SERVE_DIR}/inflight.txt"
  test ! -e "${SOCK}" || { echo "stage 7: socket not unlinked" >&2; exit 1; }
  # The request log accounted for every request: the failed tenant, the
  # warm repeat, and the drained in-flight yield all have JSONL lines.
  grep -q '"client":"faulty".*"code":"internal"' "${SERVE_DIR}/requests.jsonl"
  grep -q '"client":"repeat".*"code":"ok"' "${SERVE_DIR}/requests.jsonl"
  grep -q '"client":"inflight".*"type":"yield".*"code":"ok"' \
    "${SERVE_DIR}/requests.jsonl"
  echo "stage 7: serve smoke passed"
fi

if [[ "${SWSIM_CHECK_SKIP_SERVE:-0}" == "1" ]]; then
  echo "== stage 8: chaos smoke skipped (SWSIM_CHECK_SKIP_SERVE=1) =="
else
  echo "== stage 8: chaos transport + crash-recovery smoke =="
  CHAOS_DIR="${BUILD_DIR}/chaos-smoke"
  rm -rf "${CHAOS_DIR}"
  mkdir -p "${CHAOS_DIR}/cache"
  SOCK="${CHAOS_DIR}/chaos.sock"
  SWSIM="${BUILD_DIR}/cli/swsim"

  # Litter the cache dir the way a crash does: a torn spill entry and a
  # tmp file that never reached its atomic rename. Startup must quarantine
  # the one and remove the other, and say so.
  printf 'definitely not a spill file' > "${CHAOS_DIR}/cache/00ff.swc"
  printf 'partial write' > "${CHAOS_DIR}/cache/dead.swc.tmp.4242"
  "${SWSIM}" serve --socket "${SOCK}" --jobs 2 \
    --cache-dir "${CHAOS_DIR}/cache" \
    --idle-timeout 5 --frame-timeout 1 \
    > "${CHAOS_DIR}/serve.log" 2>&1 &
  SERVE_PID=$!
  trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do
    "${SWSIM}" client --socket "${SOCK}" hello >/dev/null 2>&1 && break
    sleep 0.1
  done
  grep -q "cache recovery: 1 scanned, 0 healthy, 1 quarantined, 1 tmp" \
    "${CHAOS_DIR}/serve.log"
  test -e "${CHAOS_DIR}/cache/quarantine/00ff.swc"
  test ! -e "${CHAOS_DIR}/cache/dead.swc.tmp.4242"

  # A seeded hostile storm: torn frames, garbage, oversized prefixes,
  # vanishing clients. Exit 0 == every exchange ended terminally (a hung
  # session is the only failure), and the printed summary must agree.
  "${SWSIM}" client --socket "${SOCK}" --client storm \
    --chaos "seed=7,count=16,slow-byte-s=0.005" truthtable maj \
    > "${CHAOS_DIR}/storm.txt"
  grep -q " 0 hung" "${CHAOS_DIR}/storm.txt"

  # A request that cannot finish inside its budget comes back as a
  # deadline-exceeded rejection: the dedicated client exit code 5 and a
  # rejected_deadline healthz counter (the queued-shed-without-engine-work
  # half of this contract is pinned by ServeServer.QueuedDeadline* in
  # ctest and the engine_jobs_during_shed bench scalar).
  health() {
    "${SWSIM}" client --socket "${SOCK}" healthz |
      grep -o "\"${1}\":[0-9]*" | head -1 | cut -d: -f2
  }
  HURRIED_RC=0
  "${SWSIM}" client --socket "${SOCK}" --client hurried \
    --deadline 0.05 yield maj --trials 100000 \
    > "${CHAOS_DIR}/hurried.txt" 2>&1 || HURRIED_RC=$?
  if [[ "${HURRIED_RC}" -ne 5 ]]; then
    echo "stage 8: expected exit 5 for a deadline-exceeded request," \
         "got ${HURRIED_RC}" >&2
    exit 1
  fi
  # The client can give up (exit 5) a beat before the server finishes
  # accounting the rejection, so give the counter a moment to land.
  REJECTED=0
  for _ in $(seq 50); do
    REJECTED="$(health rejected_deadline)"
    [[ "${REJECTED:-0}" -ge 1 ]] && break
    sleep 0.1
  done
  if [[ "${REJECTED:-0}" -lt 1 ]]; then
    echo "stage 8: deadline rejection not visible in healthz" >&2
    exit 1
  fi

  # After the storm the daemon still answers honestly and drains clean.
  "${SWSIM}" client --socket "${SOCK}" --client after truthtable maj \
    --verify > "${CHAOS_DIR}/after.txt" 2>&1
  grep -q "verify OK" "${CHAOS_DIR}/after.txt"
  kill -TERM "${SERVE_PID}"
  wait "${SERVE_PID}"
  trap - EXIT
  test ! -e "${SOCK}" || { echo "stage 8: socket not unlinked" >&2; exit 1; }
  echo "stage 8: chaos smoke passed"
fi

if [[ "${SWSIM_CHECK_SKIP_SERVE:-0}" == "1" ]]; then
  echo "== stage 9: serve telemetry smoke skipped (SWSIM_CHECK_SKIP_SERVE=1) =="
else
  echo "== stage 9: serve telemetry smoke (traces, slo, loadgen) =="
  TELEM_DIR="${BUILD_DIR}/telemetry-smoke"
  rm -rf "${TELEM_DIR}"
  mkdir -p "${TELEM_DIR}"
  SOCK="${TELEM_DIR}/telemetry.sock"
  SWSIM="${BUILD_DIR}/cli/swsim"

  "${SWSIM}" serve --socket "${SOCK}" --jobs 2 \
    --idle-timeout 30 --frame-timeout 5 \
    --trace-out "${TELEM_DIR}/server_trace.json" \
    --request-log "${TELEM_DIR}/requests.jsonl" \
    > "${TELEM_DIR}/serve.log" 2>&1 &
  SERVE_PID=$!
  trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do
    "${SWSIM}" client --socket "${SOCK}" hello >/dev/null 2>&1 && break
    sleep 0.1
  done

  # A traced request: the client stamps the trace context, the server
  # continues the same flow, and both sides echo/record the timing split.
  "${SWSIM}" client --socket "${SOCK}" --client tracer \
    --trace-id smoke-trace --trace-out "${TELEM_DIR}/client_trace.json" \
    truthtable maj --timing > "${TELEM_DIR}/traced.txt" 2>&1
  grep -q "client: timing: queue" "${TELEM_DIR}/traced.txt"

  # Per-tenant SLO accounting is visible over the wire.
  "${SWSIM}" client --socket "${SOCK}" healthz > "${TELEM_DIR}/healthz.txt"
  grep -q '"slo"' "${TELEM_DIR}/healthz.txt"
  grep -q '"tracer"' "${TELEM_DIR}/healthz.txt"

  # SIGQUIT dumps the flight recorder into the request log without taking
  # the daemon down: it must keep answering afterwards.
  kill -QUIT "${SERVE_PID}"
  DUMPED=0
  for _ in $(seq 50); do
    grep -q '"flight_recorder":"begin"' "${TELEM_DIR}/requests.jsonl" \
      2>/dev/null && { DUMPED=1; break; }
    sleep 0.1
  done
  if [[ "${DUMPED}" -ne 1 ]]; then
    echo "stage 9: SIGQUIT did not dump the flight recorder" >&2
    exit 1
  fi
  "${SWSIM}" client --socket "${SOCK}" hello >/dev/null

  # A quick load-generator run against the same daemon: its BENCH file
  # must report zero hung exchanges and a bounded shed rate.
  "${SWSIM}" loadgen --socket "${SOCK}" --quick --duration 1 \
    --concurrency 2 --tenant smokegen --seed 11 \
    --out-dir "${TELEM_DIR}" > "${TELEM_DIR}/loadgen.txt"
  BENCH_JSON="${TELEM_DIR}/BENCH_serve_throughput.json"
  test -s "${BENCH_JSON}"
  grep -q '"hung": 0\(\.0\+\)\?\([,}]\|$\)' "${BENCH_JSON}" || {
    echo "stage 9: loadgen reported hung exchanges" >&2
    cat "${TELEM_DIR}/loadgen.txt" >&2
    exit 1
  }
  grep -q '"closed_loop_latency"' "${BENCH_JSON}"

  # Drain so the server writes its trace file, then merge both sides into
  # one timeline and validate it: the merged trace must span two processes
  # and still carry the flow arrows that tie client to solver.
  kill -TERM "${SERVE_PID}"
  wait "${SERVE_PID}"
  trap - EXIT
  test -s "${TELEM_DIR}/server_trace.json"
  test -s "${TELEM_DIR}/client_trace.json"
  "${SWSIM}" trace merge --out "${TELEM_DIR}/merged_trace.json" \
    "${TELEM_DIR}/client_trace.json" "${TELEM_DIR}/server_trace.json"
  "${SWSIM}" trace-check "${TELEM_DIR}/merged_trace.json" \
    > "${TELEM_DIR}/trace_check.txt"
  grep -q "trace OK" "${TELEM_DIR}/trace_check.txt"
  if grep -q " 0 flow events" "${TELEM_DIR}/trace_check.txt"; then
    echo "stage 9: merged trace carries no flow events" >&2
    exit 1
  fi
  grep -q "across 2 processes" "${TELEM_DIR}/trace_check.txt"

  # The request log carries the client's trace id end to end.
  grep -q '"trace_id":"smoke-trace"' "${TELEM_DIR}/requests.jsonl"
  echo "stage 9: serve telemetry smoke passed"
fi

if [[ "${SWSIM_CHECK_SKIP_SERVE:-0}" == "1" ]]; then
  echo "== stage 10: physics telemetry smoke skipped (SWSIM_CHECK_SKIP_SERVE=1) =="
else
  echo "== stage 10: physics telemetry smoke (probe stream, convergence) =="
  PROBE_DIR="${BUILD_DIR}/probe-smoke"
  rm -rf "${PROBE_DIR}"
  mkdir -p "${PROBE_DIR}"
  SOCK="${PROBE_DIR}/probe.sock"
  SWSIM="${BUILD_DIR}/cli/swsim"

  "${SWSIM}" serve --socket "${SOCK}" --jobs 2 \
    --idle-timeout 30 --frame-timeout 5 \
    > "${PROBE_DIR}/serve.log" 2>&1 &
  SERVE_PID=$!
  trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do
    "${SWSIM}" client --socket "${SOCK}" hello >/dev/null 2>&1 && break
    sleep 0.1
  done

  # A live subscriber first, then the job: lock-in frames must stream out
  # of the daemon *while* the LLG solve is running, and the tail must see
  # its bounded stream through to the terminal marker.
  "${SWSIM}" probe tail --socket "${SOCK}" --max-frames 6 \
    > "${PROBE_DIR}/tail.txt" 2>&1 &
  TAIL_PID=$!
  sleep 0.3
  "${SWSIM}" client --socket "${SOCK}" --client probesmoke \
    micromag maj --early-stop --deadline 300 \
    > "${PROBE_DIR}/served.txt" 2>&1
  grep -q "verdict: PASS" "${PROBE_DIR}/served.txt"
  wait "${TAIL_PID}"
  grep -q "stream ended (done): 6 frames" "${PROBE_DIR}/tail.txt"
  grep -Eq "O[12] window [0-9]+ .* A [0-9.]+" "${PROBE_DIR}/tail.txt"

  # The daemon accounted for the stream and holds no subscriber open.
  "${SWSIM}" client --socket "${SOCK}" healthz > "${PROBE_DIR}/healthz.txt"
  grep -q '"probe":{"active":0' "${PROBE_DIR}/healthz.txt"
  grep -q '"streams":1' "${PROBE_DIR}/healthz.txt"
  kill -TERM "${SERVE_PID}"
  wait "${SERVE_PID}"
  trap - EXIT

  # Full-length local run: the profile's physics block must carry a real
  # convergence time for the detection probes (-1 would mean "never").
  "${SWSIM}" micromag --jobs "${JOBS}" \
    --profile-out "${PROBE_DIR}/profile.json" \
    > "${PROBE_DIR}/full.txt" 2>&1
  grep -q '"physics"' "${PROBE_DIR}/profile.json"
  grep -q '"converged_at": *[0-9]' "${PROBE_DIR}/profile.json"

  # Early stop must actually save integration steps, and the saved steps
  # must be free: the detected logic table is identical to the full run.
  "${SWSIM}" micromag --jobs "${JOBS}" --early-stop \
    > "${PROBE_DIR}/early.txt" 2>&1
  SAVED="$(grep -o 'early stop saved [0-9]*' "${PROBE_DIR}/early.txt" \
           | awk '{print $4}')"
  if [[ -z "${SAVED}" || "${SAVED}" -eq 0 ]]; then
    echo "stage 10: --early-stop saved no integration steps" >&2
    exit 1
  fi
  for f in full early; do
    grep -E '^[01] ' "${PROBE_DIR}/${f}.txt" \
      | awk '{print $1, $2, $3, $6, $7, $8, $9}' > "${PROBE_DIR}/${f}.logic"
  done
  if ! diff -u "${PROBE_DIR}/full.logic" "${PROBE_DIR}/early.logic"; then
    echo "stage 10: --early-stop changed the detected logic" >&2
    exit 1
  fi
  echo "stage 10: physics telemetry smoke passed"
fi

echo "== all checks passed =="
