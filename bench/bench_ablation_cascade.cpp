// Ablation: the paper's extension claims (Sec. III-A last paragraph and
// Sec. IV-D), quantified.
//
//  1. Fan-out beyond 2 via directional couplers + repeaters vs replicating
//     the gate — transducer counts and worst leaf amplitude per fan-out.
//  2. Wave-level cascading (assumption (v)): raw gate-to-gate chaining
//     breaks on narrow-vote patterns because the MAJ output amplitude is
//     vote-dependent; a normalization stage (repeater, cf. ref. [8])
//     restores logic-exact operation.
//  3. Area-delay-power products vs CMOS (the ref. [42] figure of merit).
//
// Output: console tables + bench_ablation_cascade.csv.
#include <iostream>

#include "bench/harness.h"
#include "core/fanout_tree.h"
#include "core/logic.h"
#include "core/wave_cascade.h"
#include "io/csv.h"
#include "io/table.h"
#include "math/constants.h"
#include "perf/area.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

int main(int argc, char** argv) {
  swsim::bench::Harness harness("ablation_cascade", &argc, argv);
  std::cout << "=== Ablation: fan-out extension, cascading, ADP ===\n\n";
  io::CsvWriter csv("bench_ablation_cascade.csv");

  core::TriangleGateConfig design;
  design.params = geom::TriangleGateParams::paper_maj3();

  // 1. Fan-out scaling.
  std::cout << "1. fan-out > 2: coupler tree + repeaters vs gate "
               "replication\n\n";
  Table fo({"fan-out", "tree cells (inputs+reps)", "replication cells",
            "worst leaf amplitude", "all leaves coherent"});
  csv.write_row({"section", "fanout", "tree_cells", "repl_cells",
                 "min_leaf_amp", "coherent"});
  for (int fanout : {2, 4, 8, 16}) {
    core::FanoutTreeConfig tcfg;
    tcfg.fanout = fanout;
    core::FanoutTree tree(design, tcfg);
    const auto result = tree.evaluate({true, true, false});
    fo.add_row({std::to_string(fanout),
                std::to_string(result.excitation_cells),
                std::to_string(tree.replication_excitation_cells()),
                Table::num(result.min_relative_amplitude, 3),
                result.coherent ? "yes" : "NO"});
    csv.write_row({"fanout", std::to_string(fanout),
                   std::to_string(result.excitation_cells),
                   std::to_string(tree.replication_excitation_cells()),
                   Table::num(result.min_relative_amplitude, 4),
                   result.coherent ? "1" : "0"});
  }
  std::cout << fo.str()
            << "(the tree re-drives only repeaters; replication re-excites "
               "all 3 inputs per gate copy and loads the *sources* of those "
               "inputs with extra fan-out)\n\n";

  // 2. Cascade normalization.
  std::cout << "2. wave-level cascading: MAJ -> MAJ over all 32 patterns\n\n";
  auto run_chain = [&](bool normalize) {
    core::WaveCascade wc(design);
    const auto a = wc.primary();
    const auto b = wc.primary();
    const auto c = wc.primary();
    const auto d = wc.primary();
    const auto e = wc.primary();
    auto [m1, m1b] = wc.add_maj3(a, b, c);
    (void)m1b;
    const auto stage1 = normalize ? wc.add_repeater(m1) : m1;
    const auto [m2, m2b] = wc.add_maj3(stage1, d, e);
    (void)m2b;
    int wrong = 0;
    for (const auto& p : core::all_input_patterns(5)) {
      wc.evaluate(p);
      const bool expected =
          core::maj3(core::maj3(p[0], p[1], p[2]), p[3], p[4]);
      if (wc.read_phase(m2).logic != expected) ++wrong;
    }
    return wrong;
  };
  const int raw_wrong = run_chain(false);
  const int norm_wrong = run_chain(true);
  Table cascade({"cascade", "wrong patterns (of 32)"});
  cascade.add_row({"raw gate-to-gate (assumption (v), literal)",
                   std::to_string(raw_wrong)});
  cascade.add_row({"with repeater/normalizer between stages",
                   std::to_string(norm_wrong)});
  std::cout << cascade.str()
            << "(the MAJ output amplitude is vote-dependent — Table I — so "
               "narrow votes get outvoted downstream unless normalized; "
               "this is the problem the authors' companion work, ref. [8], "
               "addresses)\n\n";
  csv.write_row({"cascade", "raw", std::to_string(raw_wrong), "", "", ""});
  csv.write_row(
      {"cascade", "normalized", std::to_string(norm_wrong), "", "", ""});

  // 3. ADP figure of merit.
  std::cout << "3. area-delay-power products (ref. [42] figure of merit)\n\n";
  const geom::TriangleGateLayout maj_layout(
      geom::TriangleGateParams::paper_maj3());
  const geom::TriangleGateLayout xor_layout(
      geom::TriangleGateParams::paper_xor());
  std::vector<perf::AdpRow> rows;
  rows.push_back(
      perf::sw_adp(perf::SwGateCost::triangle_maj3(), maj_layout));
  rows.push_back(perf::sw_adp(perf::SwGateCost::triangle_xor(), xor_layout));
  rows.push_back(perf::cmos_adp(
      perf::CmosGate::reference(perf::CmosNode::k16nm,
                                perf::GateFunction::kMaj3)));
  rows.push_back(perf::cmos_adp(
      perf::CmosGate::reference(perf::CmosNode::k7nm,
                                perf::GateFunction::kMaj3)));

  Table adp({"design", "area (um^2)", "delay (ns)", "power (nW)",
             "ADP (um^2*ns*nW)"});
  const double base = rows[0].adp;
  for (const auto& r : rows) {
    adp.add_row({r.design, Table::num(r.area * 1e12, 3),
                 Table::num(to_ns(r.delay), 2), Table::num(r.power * 1e9, 1),
                 Table::num(r.adp / base, 2) + "x triangle-MAJ"});
    csv.write_row({"adp", r.design, Table::num(r.area * 1e12, 4),
                   Table::num(to_ns(r.delay), 4),
                   Table::num(r.power * 1e9, 3),
                   Table::num(r.adp, 6)});
  }
  std::cout << adp.str()
            << "(spin-wave gates trade 10-40x delay for orders of magnitude "
               "lower power; ref. [42] reports 800x ADP gains for a hybrid "
               "CMOS/SW divider on the same basis)\n";

  // Timed kernel: the two-stage MAJ cascade over all 32 patterns — the
  // deepest analytic evaluation in the suite.
  constexpr int kChainsPerSample = 50;
  harness.time_case(
      "maj_cascade_32_patterns",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kChainsPerSample; ++rep) {
          acc += run_chain(true);
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/32.0 * kChainsPerSample);
  harness.add_scalar("raw_cascade_wrong", raw_wrong);
  harness.add_scalar("normalized_cascade_wrong", norm_wrong);
  return harness.finish() ? 0 : 1;
}
