// Fig. 5 reproduction: micromagnetic snapshots of the fan-in-3 fan-out-2
// Majority gate for all 8 input patterns (a-h).
//
// The paper shows MuMax3 m_z color maps; we run our own LLG solver on the
// reduced-scale triangle device (dimension rules in lambda preserved, see
// DESIGN.md), render the precession component m_x as ASCII maps and PGM
// images (fig5_<pattern>.pgm), and report the detected phases/logic at both
// outputs — the quantitative content of the figure.
//
// Runtime: ~9 LLG runs of a few seconds each.
#include <chrono>
#include <iostream>

#include "bench/harness.h"
#include "core/logic.h"
#include "core/micromag_gate.h"
#include "io/render.h"
#include "io/table.h"
#include "math/constants.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

int main(int argc, char** argv) {
  swsim::bench::Harness harness("fig5_snapshots", &argc, argv);
  std::cout << "=== Fig. 5: micromagnetic MAJ3 snapshots (reduced scale) ===\n\n";

  core::MicromagGateConfig cfg;
  cfg.params = geom::TriangleGateParams::reduced_maj3(nm(50), nm(20));
  core::MicromagTriangleGate gate(cfg);

  std::cout << "device: lambda = " << to_nm(cfg.params.wavelength)
            << " nm, width = " << to_nm(cfg.params.width)
            << " nm, f = " << to_ghz(gate.drive_frequency())
            << " GHz, grid " << gate.grid().nx() << " x " << gate.grid().ny()
            << " cells, " << to_ns(gate.simulated_duration())
            << " ns per run\n\n";

  Table table({"panel", "I3", "I2", "I1", "O1 norm", "O2 norm", "O1 phase",
               "O2 phase", "MAJ", "detected", "ok"});
  bool all_ok = true;
  const char* panels = "abcdefgh";
  int panel = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& p : core::all_input_patterns(3)) {
    const auto ev = gate.evaluate_full(p);
    const bool expected = core::maj3(p[0], p[1], p[2]);
    const bool ok = ev.outputs.o1.logic == expected &&
                    ev.outputs.o2.logic == expected;
    all_ok = all_ok && ok;

    const std::string name(1, panels[panel]);
    table.add_row({name, p[2] ? "1" : "0", p[1] ? "1" : "0",
                   p[0] ? "1" : "0", Table::num(ev.outputs.normalized_o1, 3),
                   Table::num(ev.outputs.normalized_o2, 3),
                   Table::num(ev.outputs.o1.phase, 2),
                   Table::num(ev.outputs.o2.phase, 2), expected ? "1" : "0",
                   std::string(ev.outputs.o1.logic ? "1" : "0") +
                       (ev.outputs.o2.logic ? "1" : "0"),
                   ok ? "yes" : "NO"});

    io::write_pgm("fig5_" + name + ".pgm", ev.snapshot_mx, 2e-4, &ev.body);

    // Print the first and last panels as ASCII so the interference pattern
    // is visible in the console output.
    if (panel == 0 || panel == 7) {
      std::cout << "panel (" << name << "): {I1,I2,I3} = {" << p[0] << ","
                << p[1] << "," << p[2] << "}  m_x map ('+' ridge / '-' "
                << "trough, like the paper's red/blue):\n"
                << io::ascii_map(ev.snapshot_mx, 2e-4, &ev.body, 0, 110)
                << '\n';
    }
    ++panel;
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::cout << table.str() << '\n'
            << "PGM images written: fig5_a.pgm ... fig5_h.pgm\n"
            << "total simulation time: "
            << std::chrono::duration<double>(t1 - t0).count() << " s\n"
            << "verdict: "
            << (all_ok ? "all 8 panels show correct FO2 MAJ3 operation"
                       : "FAILURES present")
            << '\n';

  // Too heavy to repeat: one sample for the whole 8-pattern LLG pass
  // (median = min = the run, mad = 0 — the gate falls back to the
  // relative tolerance for single-sample cases).
  const double total_s = std::chrono::duration<double>(t1 - t0).count();
  harness.record_samples("llg_8_patterns", "s", {total_s},
                         total_s > 0.0 ? 8.0 / total_s : 0.0);
  harness.add_scalar("panels_ok", all_ok ? 8.0 : 0.0);
  if (!harness.finish()) return 1;
  return all_ok ? 0 : 1;
}
