// Micro-benchmarks of the simulation substrate (google-benchmark):
// effective-field terms, steppers, FFT demag, and a full gate evaluation.
// Not a paper table — engineering data for anyone extending the solver.
//
// After the micro-benchmarks, a macro comparison runs the paper-style
// 8-entry MAJ truth table on the LLG backend three ways — legacy serial,
// engine cold-cache, engine warm-cache — and prints wall time, speedup and
// cache hit rate (also dumped to bench_engine_speedup.csv). The speedup of
// the cold engine run comes from the thread pool (and is therefore ~1x on
// a single-core host); the warm run's comes from the content-addressed
// cache and is host-independent. All three paths must produce an
// identical report — the table says so explicitly.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>

#include "bench/harness.h"
#include "core/micromag_gate.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "engine/batch_runner.h"
#include "engine/hash.h"
#include "io/csv.h"
#include "io/table.h"
#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "mag/kernels/runtime.h"
#include "mag/llg.h"
#include "mag/simulation.h"
#include "mag/zeeman_field.h"
#include "math/fft.h"
#include "obs/metrics.h"
#include "obs/profile.h"

using namespace swsim;
using namespace swsim::math;

namespace {

mag::System make_system(std::size_t n) {
  return mag::System(Grid(n, n, 1, 5e-9, 5e-9, 1e-9),
                     mag::Material::fecob());
}

void BM_ExchangeField(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  mag::ExchangeField ex;
  for (auto _ : state) {
    h.fill(Vec3{});
    ex.accumulate(sys, m, 0.0, h);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_ExchangeField)->Arg(32)->Arg(64)->Arg(128);

void BM_ThinFilmDemag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  mag::ThinFilmDemagField demag;
  for (auto _ : state) {
    h.fill(Vec3{});
    demag.accumulate(sys, m, 0.0, h);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_ThinFilmDemag)->Arg(64)->Arg(128);

void BM_NewellDemag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  mag::NewellDemagField demag(sys);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  for (auto _ : state) {
    h.fill(Vec3{});
    demag.accumulate(sys, m, 0.0, h);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_NewellDemag)->Arg(16)->Arg(32)->Arg(64);

void BM_StepperRk4(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  std::vector<std::unique_ptr<mag::FieldTerm>> terms;
  terms.push_back(std::make_unique<mag::ExchangeField>());
  terms.push_back(std::make_unique<mag::UniaxialAnisotropyField>());
  terms.push_back(std::make_unique<mag::ThinFilmDemagField>());
  auto m = sys.uniform_magnetization({0, 0, 1});
  mag::Stepper stepper(mag::StepperKind::kRk4, 0.25e-12);
  double t = 0.0;
  for (auto _ : state) {
    t += stepper.step(sys, terms, m, t);
    benchmark::DoNotOptimize(m.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_StepperRk4)->Arg(32)->Arg(64);

void BM_StepperHeun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  std::vector<std::unique_ptr<mag::FieldTerm>> terms;
  terms.push_back(std::make_unique<mag::ExchangeField>());
  terms.push_back(std::make_unique<mag::UniaxialAnisotropyField>());
  terms.push_back(std::make_unique<mag::ThinFilmDemagField>());
  auto m = sys.uniform_magnetization({0, 0, 1});
  mag::Stepper stepper(mag::StepperKind::kHeun, 0.25e-12);
  double t = 0.0;
  for (auto _ : state) {
    t += stepper.step(sys, terms, m, t);
    benchmark::DoNotOptimize(m.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_StepperHeun)->Arg(32)->Arg(64);

void BM_Fft3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Complex> data(n * n);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Complex{static_cast<double>(i % 7), 0.0};
  }
  for (auto _ : state) {
    fft3d(data, n, n, 1);
    fft3d(data, n, n, 1, /*inverse=*/true);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft3d)->Arg(64)->Arg(128)->Arg(256);

void BM_TriangleGateEvaluate(benchmark::State& state) {
  core::TriangleMajGate gate = core::TriangleMajGate::paper_device();
  gate.reference_amplitude();  // warm the normalization cache
  const std::vector<bool> pattern{true, false, true};
  for (auto _ : state) {
    auto out = gate.evaluate(pattern);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TriangleGateEvaluate);

// Single-solve throughput of the three solver configurations on one
// representative term set (exchange + anisotropy + thin-film demag +
// antenna, the Fig. 2/5 workload): the scalar reference path, the fused
// SoA kernel path, and the kernel path with intra-solve threads. All three
// produce byte-identical magnetization (asserted here — a bench that
// quietly measured a divergent solver would be worse than useless).
void run_kernel_throughput(swsim::bench::Harness& harness) {
  const std::size_t n = harness.quick() ? 64 : 128;
  const std::size_t steps = harness.quick() ? 40 : 100;
  mag::System sys = make_system(n);

  const auto make_terms = [&sys] {
    std::vector<std::unique_ptr<mag::FieldTerm>> terms;
    terms.push_back(std::make_unique<mag::ExchangeField>());
    terms.push_back(std::make_unique<mag::UniaxialAnisotropyField>());
    terms.push_back(std::make_unique<mag::ThinFilmDemagField>());
    Mask region(sys.grid(), false);
    for (std::size_t y = 0; y < sys.grid().ny(); ++y) {
      for (std::size_t x = 2; x < 6; ++x) {
        region.set(sys.grid().index(x, y, 0), true);
      }
    }
    terms.push_back(std::make_unique<mag::AntennaField>(
        region, 4e3, Vec3{1, 0, 0}, 10e9, 0.0));
    return terms;
  };

  const double cell_steps =
      static_cast<double>(n) * static_cast<double>(n) *
      static_cast<double>(steps);
  VectorField result(sys.grid());
  const auto run_solve = [&](int force_mode, std::size_t cell_jobs) {
    mag::kernels::set_force_reference(force_mode);
    mag::kernels::set_cell_jobs(cell_jobs);
    auto terms = make_terms();
    auto m = sys.uniform_magnetization({0, 0, 1});
    mag::Stepper stepper(mag::StepperKind::kRk4, 0.25e-12);
    double t = 0.0;
    for (std::size_t s = 0; s < steps; ++s) t += stepper.step(sys, terms, m, t);
    result = m;
  };

  std::cout << "\nkernel throughput: " << n << "x" << n << " cells, " << steps
            << " RK4 steps per sample\n";
  harness.time_case("kernel_scalar_ref",
                    [&] { run_solve(/*force reference*/ 1, 1); }, cell_steps);
  const VectorField ref = result;
  harness.time_case("kernel_fused_soa",
                    [&] { run_solve(/*force kernels*/ 0, 1); }, cell_steps);
  const VectorField fused = result;
  const std::size_t hw = engine::ThreadPool::default_threads();
  harness.time_case("kernel_fused_soa_mt", [&] { run_solve(0, hw); },
                    cell_steps);
  const VectorField fused_mt = result;
  mag::kernels::set_force_reference(-1);  // back to the SWSIM_KERNEL_REF env
  mag::kernels::set_cell_jobs(1);

  bool identical = ref.size() == fused.size();
  for (std::size_t i = 0; identical && i < ref.size(); ++i) {
    identical = std::memcmp(&ref[i], &fused[i], sizeof(Vec3)) == 0 &&
                std::memcmp(&ref[i], &fused_mt[i], sizeof(Vec3)) == 0;
  }
  std::cout << "reference vs fused vs fused+mt (" << hw
            << " threads): " << (identical ? "byte-identical" : "DIVERGED")
            << "\n";

  const auto median_ips = [&harness](const std::string& name) {
    for (const auto& [case_name, c] : harness.cases()) {
      if (case_name == name) return c.items_per_second;
    }
    return 0.0;
  };
  // Gated scalar (see compare_benches): single-thread fused throughput is
  // the headline number this PR's acceptance bar tracks.
  harness.add_scalar("cell_steps_per_second", median_ips("kernel_fused_soa"));
  harness.add_scalar("kernel_speedup",
                     median_ips("kernel_scalar_ref") > 0.0
                         ? median_ips("kernel_fused_soa") /
                               median_ips("kernel_scalar_ref")
                         : 0.0);
  harness.add_scalar("kernel_identical_output", identical ? 1.0 : 0.0);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Serial vs engine on the 8-entry micromagnetic MAJ truth table.
void run_engine_comparison(swsim::bench::Harness& harness) {
  core::MicromagGateConfig cfg;
  cfg.params = geom::TriangleGateParams::reduced_maj3(math::nm(50),
                                                      math::nm(20));
  // Coarse cells: this measures scheduling, not Fig. 5. --quick coarsens
  // further; serial and engine still compare like with like.
  cfg.cell_size = math::nm(harness.quick() ? 8 : 5);

  std::cout << "\nserial vs engine: micromagnetic MAJ truth table "
            << "(8 rows + calibration per pass)\n";

  // Arm the metrics registry so the engine's engine.job_seconds histogram
  // yields per-job latency percentiles for the CSV (serial rows record
  // nothing — the legacy path never touches the scheduler).
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::arm();

  // Legacy serial path: one gate, lazy calibration, rows in order.
  auto t0 = std::chrono::steady_clock::now();
  core::MicromagTriangleGate serial_gate(cfg);
  const auto serial_report = core::validate_gate(serial_gate);
  const double serial_s = seconds_since(t0);

  // Engine path, cold cache: one calibration job fans out to 8 row jobs.
  engine::BatchRunner runner(engine::EngineConfig{});
  auto calib = std::make_shared<std::optional<core::MicromagCalibration>>();
  const engine::BatchRunner::GateFactory factory = [cfg, calib] {
    auto gate = std::make_unique<core::MicromagTriangleGate>(cfg);
    if (calib->has_value()) gate->set_calibration(**calib);
    return gate;
  };
  const auto prepare = [cfg, calib] {
    core::MicromagTriangleGate gate(cfg);
    *calib = gate.calibrate();
  };
  const std::uint64_t key = engine::hash_of(cfg);

  t0 = std::chrono::steady_clock::now();
  const auto cold_report = runner.run_truth_table(factory, key, prepare);
  const double cold_s = seconds_since(t0);
  const auto cold_stats = runner.stats();
  const auto cold_jobs = obs::MetricsRegistry::global()
                             .histogram("engine.job_seconds")
                             .snapshot();
  obs::MetricsRegistry::global().histogram("engine.job_seconds").reset();

  // Second identical run: every row should come out of the cache.
  t0 = std::chrono::steady_clock::now();
  const auto warm_report = runner.run_truth_table(factory, key, prepare);
  const double warm_s = seconds_since(t0);
  const auto warm_stats = runner.stats();
  const auto warm_jobs = obs::MetricsRegistry::global()
                             .histogram("engine.job_seconds")
                             .snapshot();

  // Snapshot the run profile while the registry is still armed — it embeds
  // in BENCH_solver_perf.json as the machine-readable record of this pass.
  const std::uint64_t cells =
      static_cast<std::uint64_t>(serial_gate.grid().nx()) *
      static_cast<std::uint64_t>(serial_gate.grid().ny());
  const obs::RunProfile profile =
      obs::RunProfile::collect(serial_s + cold_s + warm_s, cells);
  harness.set_profile_json(profile.to_json());
  obs::MetricsRegistry::disarm();
  const std::size_t warm_hits = warm_stats.cache.hits - cold_stats.cache.hits;
  const std::size_t warm_misses =
      warm_stats.cache.misses - cold_stats.cache.misses;
  const double warm_hit_rate =
      warm_hits + warm_misses == 0
          ? 0.0
          : static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses);

  const std::string serial_str = core::format_report(serial_report);
  const bool cold_same = core::format_report(cold_report) == serial_str;
  const bool warm_same = core::format_report(warm_report) == serial_str;

  const auto p_ms = [](const obs::Histogram::Snapshot& s, double q) {
    return s.count == 0 ? std::string("")
                        : io::Table::num(s.quantile(q) * 1e3, 3);
  };

  io::Table t({"path", "wall (s)", "speedup", "cache hit rate",
               "job p50/p99 (ms)", "identical output"});
  t.add_row({"serial", io::Table::num(serial_s, 2), "1.00", "-", "-", "yes"});
  t.add_row({"engine cold (" + std::to_string(runner.threads()) + " threads)",
             io::Table::num(cold_s, 2), io::Table::num(serial_s / cold_s, 2),
             io::Table::num(cold_stats.cache.hit_rate() * 100, 0) + "%",
             p_ms(cold_jobs, 0.5) + "/" + p_ms(cold_jobs, 0.99),
             cold_same ? "yes" : "NO"});
  t.add_row({"engine warm", io::Table::num(warm_s, 2),
             io::Table::num(serial_s / warm_s, 2),
             io::Table::num(warm_hit_rate * 100, 0) + "%",
             warm_jobs.count == 0
                 ? "-"
                 : p_ms(warm_jobs, 0.5) + "/" + p_ms(warm_jobs, 0.99),
             warm_same ? "yes" : "NO"});
  std::cout << t.str();

  io::CsvWriter csv("bench_engine_speedup.csv");
  csv.write_row({"path", "wall_s", "speedup", "cache_hit_rate",
                 "job_p50_ms", "job_p90_ms", "job_p99_ms",
                 "identical_output"});
  csv.write_row({"serial", io::Table::num(serial_s, 4), "1.0", "", "", "",
                 "", "1"});
  csv.write_row({"engine_cold", io::Table::num(cold_s, 4),
                 io::Table::num(serial_s / cold_s, 4),
                 io::Table::num(cold_stats.cache.hit_rate(), 4),
                 p_ms(cold_jobs, 0.5), p_ms(cold_jobs, 0.9),
                 p_ms(cold_jobs, 0.99), cold_same ? "1" : "0"});
  csv.write_row({"engine_warm", io::Table::num(warm_s, 4),
                 io::Table::num(serial_s / warm_s, 4),
                 io::Table::num(warm_hit_rate, 4), p_ms(warm_jobs, 0.5),
                 p_ms(warm_jobs, 0.9), p_ms(warm_jobs, 0.99),
                 warm_same ? "1" : "0"});
  std::cout << "wrote bench_engine_speedup.csv\n";

  harness.record_samples("serial_truth_table", "s", {serial_s},
                         serial_s > 0.0 ? 8.0 / serial_s : 0.0);
  harness.record_samples("engine_cold_truth_table", "s", {cold_s},
                         cold_s > 0.0 ? 8.0 / cold_s : 0.0);
  harness.record_samples("engine_warm_truth_table", "s", {warm_s},
                         warm_s > 0.0 ? 8.0 / warm_s : 0.0);
  harness.add_scalar("speedup_cold", cold_s > 0.0 ? serial_s / cold_s : 0.0);
  harness.add_scalar("speedup_warm", warm_s > 0.0 ? serial_s / warm_s : 0.0);
  harness.add_scalar("warm_cache_hit_rate", warm_hit_rate);
  harness.add_scalar("identical_output",
                     (cold_same && warm_same) ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  // The harness strips its own flags (--quick/--repeats/...) from argv
  // first, so google-benchmark only sees what it recognizes.
  swsim::bench::Harness harness("solver_perf", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!harness.quick()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::cout << "micro-benchmarks skipped (--quick)\n";
  }
  benchmark::Shutdown();
  run_kernel_throughput(harness);
  run_engine_comparison(harness);
  return harness.finish() ? 0 : 1;
}
