// Micro-benchmarks of the simulation substrate (google-benchmark):
// effective-field terms, steppers, FFT demag, and a full gate evaluation.
// Not a paper table — engineering data for anyone extending the solver.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/triangle_gate.h"
#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "mag/llg.h"
#include "mag/simulation.h"
#include "math/fft.h"

using namespace swsim;
using namespace swsim::math;

namespace {

mag::System make_system(std::size_t n) {
  return mag::System(Grid(n, n, 1, 5e-9, 5e-9, 1e-9),
                     mag::Material::fecob());
}

void BM_ExchangeField(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  mag::ExchangeField ex;
  for (auto _ : state) {
    h.fill(Vec3{});
    ex.accumulate(sys, m, 0.0, h);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_ExchangeField)->Arg(32)->Arg(64)->Arg(128);

void BM_ThinFilmDemag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  mag::ThinFilmDemagField demag;
  for (auto _ : state) {
    h.fill(Vec3{});
    demag.accumulate(sys, m, 0.0, h);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_ThinFilmDemag)->Arg(64)->Arg(128);

void BM_NewellDemag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  mag::NewellDemagField demag(sys);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  for (auto _ : state) {
    h.fill(Vec3{});
    demag.accumulate(sys, m, 0.0, h);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_NewellDemag)->Arg(16)->Arg(32)->Arg(64);

void BM_StepperRk4(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  std::vector<std::unique_ptr<mag::FieldTerm>> terms;
  terms.push_back(std::make_unique<mag::ExchangeField>());
  terms.push_back(std::make_unique<mag::UniaxialAnisotropyField>());
  terms.push_back(std::make_unique<mag::ThinFilmDemagField>());
  auto m = sys.uniform_magnetization({0, 0, 1});
  mag::Stepper stepper(mag::StepperKind::kRk4, 0.25e-12);
  double t = 0.0;
  for (auto _ : state) {
    t += stepper.step(sys, terms, m, t);
    benchmark::DoNotOptimize(m.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_StepperRk4)->Arg(32)->Arg(64);

void BM_StepperHeun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mag::System sys = make_system(n);
  std::vector<std::unique_ptr<mag::FieldTerm>> terms;
  terms.push_back(std::make_unique<mag::ExchangeField>());
  terms.push_back(std::make_unique<mag::UniaxialAnisotropyField>());
  terms.push_back(std::make_unique<mag::ThinFilmDemagField>());
  auto m = sys.uniform_magnetization({0, 0, 1});
  mag::Stepper stepper(mag::StepperKind::kHeun, 0.25e-12);
  double t = 0.0;
  for (auto _ : state) {
    t += stepper.step(sys, terms, m, t);
    benchmark::DoNotOptimize(m.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_StepperHeun)->Arg(32)->Arg(64);

void BM_Fft3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Complex> data(n * n);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Complex{static_cast<double>(i % 7), 0.0};
  }
  for (auto _ : state) {
    fft3d(data, n, n, 1);
    fft3d(data, n, n, 1, /*inverse=*/true);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft3d)->Arg(64)->Arg(128)->Arg(256);

void BM_TriangleGateEvaluate(benchmark::State& state) {
  core::TriangleMajGate gate = core::TriangleMajGate::paper_device();
  gate.reference_amplitude();  // warm the normalization cache
  const std::vector<bool> pattern{true, false, true};
  for (auto _ : state) {
    auto out = gate.evaluate(pattern);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TriangleGateEvaluate);

}  // namespace
