// Table I reproduction: fan-in of 3, fan-out of 2 Majority gate normalized
// output magnetization, all 8 input patterns.
//
// The paper extracted normalized output spin-wave energy from MuMax3; we
// evaluate the paper-scale device on the analytical wave-network backend
// and report both normalized amplitude and normalized energy (amplitude^2),
// the quantity whose value pattern Table I shows (mixed rows cluster near
// (1/3)^2 ~ 0.11). The shape criteria checked, per the paper:
//   * unanimous rows read 1.000 at both outputs;
//   * all six mixed rows collapse to small values (phase carries the
//     logic, not amplitude);
//   * O1 == O2 (fan-out of 2), paper: equal to ~0.001;
//   * phase detection reproduces MAJ3 on every row.
//
// Output: console table + bench_table1_maj.csv.
#include <iostream>

#include "bench/harness.h"
#include "core/logic.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "io/csv.h"
#include "io/table.h"

using namespace swsim;
using swsim::io::Table;

namespace {

// Paper Table I values (normalized output magnetization), indexed by the
// row pattern {I3 I2 I1} packed as (I3<<2 | I2<<1 | I1).
struct PaperRow {
  double o1;
  double o2;
};
constexpr PaperRow kPaper[8] = {
    {1.0, 1.0},      {0.083, 0.084}, {0.16, 0.16}, {0.164, 0.164},
    {0.164, 0.164},  {0.16, 0.16},   {0.083, 0.084}, {1.0, 1.0},
};

}  // namespace

int main(int argc, char** argv) {
  swsim::bench::Harness harness("table1_maj", &argc, argv);
  std::cout << "=== Table I: FO2 MAJ3 normalized output magnetization ===\n\n";

  core::TriangleMajGate gate = core::TriangleMajGate::paper_device();
  Table table({"I3", "I2", "I1", "O1 amp", "O2 amp", "O1 energy", "O2 energy",
               "paper O1", "paper O2", "MAJ", "detected", "ok"});
  io::CsvWriter csv("bench_table1_maj.csv");
  csv.write_row({"i3", "i2", "i1", "o1_amp", "o2_amp", "o1_energy",
                 "o2_energy", "paper_o1", "paper_o2", "expected",
                 "detected_o1", "detected_o2"});

  bool all_ok = true;
  double worst_sym = 0.0;
  for (const auto& p : core::all_input_patterns(3)) {
    const auto out = gate.evaluate(p);
    const bool expected = core::maj3(p[0], p[1], p[2]);
    const int idx = (p[2] << 2) | (p[1] << 1) | static_cast<int>(p[0]);
    const bool ok = out.o1.logic == expected && out.o2.logic == expected;
    all_ok = all_ok && ok;
    worst_sym = std::max(worst_sym,
                         std::fabs(out.normalized_o1 - out.normalized_o2));
    table.add_row({p[2] ? "1" : "0", p[1] ? "1" : "0", p[0] ? "1" : "0",
                   Table::num(out.normalized_o1, 3),
                   Table::num(out.normalized_o2, 3),
                   Table::num(out.normalized_o1 * out.normalized_o1, 3),
                   Table::num(out.normalized_o2 * out.normalized_o2, 3),
                   Table::num(kPaper[idx].o1, 3), Table::num(kPaper[idx].o2, 3),
                   expected ? "1" : "0",
                   std::string(out.o1.logic ? "1" : "0") +
                       (out.o2.logic ? "1" : "0"),
                   ok ? "yes" : "NO"});
    csv.write_row({p[2] ? "1" : "0", p[1] ? "1" : "0", p[0] ? "1" : "0",
                   Table::num(out.normalized_o1, 5),
                   Table::num(out.normalized_o2, 5),
                   Table::num(out.normalized_o1 * out.normalized_o1, 5),
                   Table::num(out.normalized_o2 * out.normalized_o2, 5),
                   Table::num(kPaper[idx].o1, 3), Table::num(kPaper[idx].o2, 3),
                   expected ? "1" : "0", out.o1.logic ? "1" : "0",
                   out.o2.logic ? "1" : "0"});
  }
  std::cout << table.str() << '\n';

  std::cout << "shape checks vs the paper:\n"
            << "  unanimous rows = 1.000 at both outputs:      "
            << (gate.evaluate({false, false, false}).normalized_o1 > 0.999
                    ? "yes"
                    : "NO")
            << '\n'
            << "  mixed rows strongly suppressed (paper 0.08-0.16 energy): "
               "see energy columns\n"
            << "  fan-out symmetry max|O1-O2| = " << Table::num(worst_sym, 6)
            << "  (paper: 0.001)\n"
            << "  truth table (phase detection): "
            << (all_ok ? "all 8 rows correct" : "FAILURES present") << '\n';

  // Timed kernel: the full 8-row analytic truth table.
  constexpr int kTablesPerSample = 500;
  harness.time_case(
      "analytic_truth_table",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kTablesPerSample; ++rep) {
          for (const auto& p : core::all_input_patterns(3)) {
            acc += gate.evaluate(p).normalized_o1;
          }
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/8.0 * kTablesPerSample);
  harness.add_scalar("fanout_asymmetry_max", worst_sym);
  harness.add_scalar("rows_ok", all_ok ? 8.0 : 0.0);
  if (!harness.finish()) return 1;
  return all_ok ? 0 : 1;
}
