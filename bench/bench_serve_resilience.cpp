// Serve-layer resilience figures: what the deadline/chaos/recovery
// machinery costs on the hot path and how fast the daemon rejects work it
// must not do.
//
//   1. hello_roundtrip   — framed request/response over a live unix-socket
//                          session: the floor every serve feature pays.
//   2. deadline_shed     — an already-expired deadline is rejected at
//                          dispatch with kDeadlineExceeded; this is the
//                          "say no quickly" path and must stay far cheaper
//                          than solving.
//   3. chaos_storm       — a seeded FaultyTransport storm (torn frames,
//                          garbage, oversized prefixes, vanishing
//                          clients); the scalar chaos_hung must be 0:
//                          every hostile exchange ends terminally.
//   4. recovery_scan     — crash-recovery sweep of a spill directory
//                          holding healthy, corrupt and torn-tmp entries.
//
// Runtime: a few seconds; the daemon lives in-process on a temp socket.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "engine/result_cache.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace swsim;

namespace {

namespace fs = std::filesystem;

serve::Request hello_request() {
  serve::Request r;
  r.type = serve::RequestType::kHello;
  r.client = "bench";
  return r;
}

serve::Request doomed_request() {
  serve::Request r;
  r.type = serve::RequestType::kTruthTable;
  r.client = "bench";
  r.gate.kind = "maj";
  r.deadline_s = 1e-9;  // expired before the dispatcher can pick it up
  return r;
}

// Seeds `dir` with the litter a crashed daemon leaves behind: healthy
// spilled entries plus a corrupt .swc and an orphaned tmp file.
void seed_spill_litter(const fs::path& dir, int healthy_entries) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    engine::ResultCache writer(1, dir.string());
    for (int i = 0; i < healthy_entries + 1; ++i) {
      writer.insert(static_cast<std::uint64_t>(i + 1),
                    {1.0 * i, 2.0 * i, 3.0 * i});
    }
  }
  {
    std::ofstream torn(dir / engine::ResultCache::spill_filename(9999),
                       std::ios::binary);
    torn << "definitely not a spill file";
  }
  {
    std::ofstream tmp(dir / "dead.swc.tmp.4242", std::ios::binary);
    tmp << "partial write";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("serve_resilience", &argc, argv);

  const fs::path dir = fs::temp_directory_path() / "swsim_bench_serve";
  fs::create_directories(dir);

  serve::ServerConfig cfg;
  cfg.socket_path = (dir / "bench.sock").string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  cfg.idle_timeout_s = 10.0;
  cfg.frame_timeout_s = 2.0;

  serve::Server server(cfg);
  if (const auto st = server.start(); !st.is_ok()) {
    std::fprintf(stderr, "bench_serve_resilience: start: %s\n",
                 st.str().c_str());
    return 1;
  }

  // 1. Clean round trips on one persistent session.
  const int roundtrips = harness.quick() ? 50 : 200;
  serve::Client client;
  if (!client.connect_unix(cfg.socket_path).is_ok()) {
    std::fprintf(stderr, "bench_serve_resilience: connect failed\n");
    return 1;
  }
  int bad_hello = 0;
  harness.time_case(
      "hello_roundtrip",
      [&] {
        for (int i = 0; i < roundtrips; ++i) {
          serve::Response resp;
          if (!client.call(hello_request(), &resp).is_ok() ||
              !resp.status.is_ok()) {
            ++bad_hello;
          }
        }
      },
      roundtrips);

  // 2. Expired deadlines are shed before the engine burns a microsecond.
  const int sheds = harness.quick() ? 50 : 200;
  int shed_wrong = 0;
  const auto jobs_before = server.runner().stats().jobs_executed;
  harness.time_case(
      "deadline_shed",
      [&] {
        for (int i = 0; i < sheds; ++i) {
          serve::Response resp;
          if (!client.call(doomed_request(), &resp).is_ok() ||
              resp.status.code() != robust::StatusCode::kDeadlineExceeded) {
            ++shed_wrong;
          }
        }
      },
      sheds);
  const auto jobs_after = server.runner().stats().jobs_executed;

  // 3. A seeded hostile storm; slow actions disabled so the figure is the
  // daemon's rejection speed, not the profile's sleeps.
  serve::ChaosProfile profile;
  profile.seed = 42;
  profile.exchanges = harness.quick() ? 8 : 16;
  profile.delay = 0;
  profile.slowloris = 0;
  profile.exchange_deadline_s = 10.0;
  int chaos_hung = 0;
  harness.time_case(
      "chaos_storm",
      [&] {
        const serve::ChaosSummary summary =
            serve::run_chaos(profile, cfg.socket_path, 0, hello_request());
        chaos_hung += summary.hung;
      },
      profile.exchanges);

  // 4. Crash-recovery scan, litter re-seeded outside the timed region.
  const int healthy = harness.quick() ? 16 : 64;
  const fs::path spill = dir / "spill";
  std::vector<double> scan_samples;
  std::size_t quarantined = 0;
  for (int rep = 0; rep < harness.warmup() + harness.repeats(); ++rep) {
    seed_spill_litter(spill, healthy);
    engine::ResultCache cache(4, spill.string());
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = cache.recover_spill_dir();
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep >= harness.warmup()) scan_samples.push_back(dt);
    quarantined = report.quarantined;
  }
  harness.record_samples("recovery_scan", "s", scan_samples);

  server.shutdown();
  fs::remove_all(dir);

  harness.add_scalar("chaos_hung", chaos_hung);
  harness.add_scalar("deadline_shed_errors", shed_wrong);
  harness.add_scalar("engine_jobs_during_shed",
                     static_cast<double>(jobs_after - jobs_before));
  harness.add_scalar("recovery_quarantined_per_scan",
                     static_cast<double>(quarantined));

  bool ok = harness.finish();
  if (bad_hello > 0 || shed_wrong > 0 || chaos_hung > 0 ||
      jobs_after != jobs_before) {
    std::fprintf(stderr,
                 "bench_serve_resilience: invariant failures (hello %d, "
                 "shed %d, hung %d, engine jobs %llu)\n",
                 bad_hello, shed_wrong, chaos_hung,
                 static_cast<unsigned long long>(jobs_after - jobs_before));
    ok = false;
  }
  return ok ? 0 : 1;
}
